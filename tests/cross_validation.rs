//! Cross-validation between the three semantics in the repository:
//!
//! * the **prover** (symbolic, over `BehAbs`),
//! * the **falsifier** (bounded concrete exploration of `BehAbs`),
//! * the **runtime** (the executable interpreter).
//!
//! Agreement obligations:
//! 1. a *proved* property has no bounded-depth concrete counterexample;
//! 2. every runtime trace of every benchmark, under random drivers and
//!    schedules, is in `BehAbs` and satisfies every proved trace property.

use proptest::prelude::*;
use reflex::ast::{PropBody, Ty, Value};
use reflex::runtime::oracle::check_trace_inclusion;
use reflex::runtime::{Interpreter, RandomWorld, Registry};
use reflex::trace::{check_trace, Msg};
use reflex::verify::{falsify, prove_all, FalsifyOptions, ProverOptions};

#[test]
fn proved_properties_have_no_bounded_counterexamples() {
    let options = ProverOptions::default();
    let fops = FalsifyOptions {
        max_exchanges: 3,
        max_states: 4_000,
        domain_per_type: 2,
    };
    for bench in reflex::kernels::all_benchmarks() {
        let checked = (bench.checked)();
        for (name, outcome) in prove_all(&checked, &options) {
            assert!(outcome.is_proved(), "{}::{name}", bench.name);
            if let Some(cx) = falsify(&checked, &name, &fops) {
                panic!(
                    "{}::{name} was PROVED but the falsifier found:\n{cx}",
                    bench.name
                );
            }
        }
    }
}

/// Drives a kernel with `n` random (but well-typed) injections and checks
/// the run against the oracles.
fn random_drive(
    checked: &reflex::typeck::CheckedProgram,
    seed: u64,
    injections: usize,
) -> Result<(), String> {
    let mut kernel = Interpreter::new(
        checked,
        Registry::new(),
        Box::new(RandomWorld::new(seed ^ 0xABCD)),
        seed,
    )
    .map_err(|e| e.to_string())?;

    // A simple deterministic PRNG for choosing injections.
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let strings = ["a.org", "b.org", "alice", "x"];
    let program = checked.program().clone();
    for _ in 0..injections {
        let comps = kernel.components().to_vec();
        if comps.is_empty() {
            break;
        }
        let comp = &comps[(next() as usize) % comps.len()];
        let msg_decl = &program.messages[(next() as usize) % program.messages.len()];
        let args: Vec<Value> = msg_decl
            .payload
            .iter()
            .map(|ty| match ty {
                Ty::Bool => Value::Bool(next() % 2 == 0),
                Ty::Num => Value::Num((next() % 5) as i64),
                Ty::Str => Value::from(strings[(next() as usize) % strings.len()]),
                Ty::Fdesc => Value::Fdesc(reflex::ast::Fdesc::new(next() % 4)),
                Ty::Comp => unreachable!("typeck forbids comp payloads"),
            })
            .collect();
        kernel
            .inject(comp.id, Msg::new(&msg_decl.name, args))
            .map_err(|e| e.to_string())?;
        kernel.step().map_err(|e| e.to_string())?;
    }
    kernel.run(128).map_err(|e| e.to_string())?;

    check_trace_inclusion(checked, kernel.trace())
        .map_err(|e| format!("{e}\n{}", kernel.trace()))?;
    for p in &program.properties {
        if let PropBody::Trace(tp) = &p.body {
            check_trace(kernel.trace(), tp)
                .map_err(|e| format!("{}: {e}\n{}", p.name, kernel.trace()))?;
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_runs_of_every_benchmark_satisfy_proved_properties(seed in any::<u64>()) {
        for bench in reflex::kernels::all_benchmarks() {
            let checked = (bench.checked)();
            random_drive(&checked, seed, 10)
                .unwrap_or_else(|e| panic!("{} (seed {seed}): {e}", bench.name));
        }
    }
}
