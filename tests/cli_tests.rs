//! Smoke tests for the `rx` command-line frontend.

use std::process::Command;

fn rx(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_rx"))
        .args(args)
        .output()
        .expect("rx runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn kernel(name: &str) -> String {
    format!(
        "{}/crates/reflex-kernels/rx/{name}.rx",
        env!("CARGO_MANIFEST_DIR")
    )
}

#[test]
fn check_reports_statistics() {
    let (ok, stdout, _) = rx(&["check", &kernel("ssh")]);
    assert!(ok);
    assert!(stdout.contains("5 properties"), "{stdout}");
}

#[test]
fn verify_proves_all_car_properties() {
    let (ok, stdout, _) = rx(&["verify", &kernel("car")]);
    assert!(ok, "{stdout}");
    assert_eq!(stdout.matches("✓").count(), 8);
    assert!(stdout.contains("all properties verified."));
}

#[test]
fn verify_single_property() {
    let (ok, stdout, _) = rx(&["verify", &kernel("ssh"), "LoginEnablesPty"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("✓ LoginEnablesPty"));
}

#[test]
fn verify_fails_with_nonzero_exit_on_false_property() {
    // Write a kernel with a false property to a temp file.
    let dir = std::env::temp_dir().join("rx-cli-test");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("bad.rx");
    std::fs::write(
        &path,
        r#"
components { C "c.py" (); }
messages { A(); B(); }
init { c0 <- spawn C(); }
handlers {
  when C:B() { send(c0, B()); }
}
properties {
  Bogus: [Send(C(), A())] Enables [Send(C(), B())];
}
"#,
    )
    .expect("write");
    let (ok, stdout, stderr) = rx(&["verify", path.to_str().expect("utf8")]);
    assert!(!ok);
    assert!(stdout.contains("✗ Bogus"), "{stdout}");
    assert!(stderr.contains("failed to verify"), "{stderr}");

    // And falsify finds the concrete witness.
    let (ok, stdout, _) = rx(&["falsify", path.to_str().expect("utf8"), "Bogus"]);
    assert!(ok);
    assert!(stdout.contains("counterexample"), "{stdout}");
}

#[test]
fn show_prints_program_and_behabs_stats() {
    let (ok, stdout, _) = rx(&["show", &kernel("browser")]);
    assert!(ok);
    assert!(stdout.contains("handlers {"));
    assert!(stdout.contains("behavioral abstraction"));
}

#[test]
fn run_executes_and_checks_inclusion() {
    let (ok, stdout, _) = rx(&["run", &kernel("car"), "8", "3"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("trace ⊆ BehAbs ✓"));
}

#[test]
fn usage_and_io_errors() {
    let (ok, _, stderr) = rx(&[]);
    assert!(!ok);
    assert!(stderr.contains("usage"));
    let (ok, _, stderr) = rx(&["verify", "/nonexistent.rx"]);
    assert!(!ok);
    assert!(stderr.contains("nonexistent"));
    let (ok, _, stderr) = rx(&["frobnicate", "x"]);
    assert!(!ok);
    assert!(stderr.contains("usage"));
}

#[test]
fn parse_errors_carry_positions() {
    let dir = std::env::temp_dir().join("rx-cli-test");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("syntax.rx");
    std::fs::write(&path, "components {\n  C \"c\" ()\n}\n").expect("write");
    let (ok, _, stderr) = rx(&["check", path.to_str().expect("utf8")]);
    assert!(!ok);
    assert!(stderr.contains("parse error at 3:"), "{stderr}");
}

#[test]
fn run_supervised_with_faults_reports_incidents_and_monitor_verdict() {
    let (ok, stdout, stderr) = rx(&[
        "run",
        &kernel("car"),
        "40",
        "3",
        "--faults",
        "10:crash",
        "--monitor",
    ]);
    assert!(ok, "{stdout}\n{stderr}");
    assert!(stdout.contains("supervised run"), "{stdout}");
    assert!(stdout.contains("comp-crashed"), "{stdout}");
    assert!(stdout.contains("comp-restarted"), "{stdout}");
    assert!(
        stdout.contains("monitor: no certificate violations ✓"),
        "{stdout}"
    );
}

#[test]
fn run_supervised_without_faults_is_clean() {
    let (ok, stdout, _) = rx(&["run", &kernel("ssh"), "20", "--supervise"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("incidents: none"), "{stdout}");
}

#[test]
fn run_rejects_a_malformed_fault_spec() {
    let (ok, _, stderr) = rx(&["run", &kernel("car"), "10", "--faults", "5:explode"]);
    assert!(!ok);
    assert!(stderr.contains("--faults"), "{stderr}");
}

#[test]
fn soak_runs_the_suite_and_writes_incident_logs() {
    let dir = std::env::temp_dir().join("rx-cli-test-soak");
    let _ = std::fs::remove_dir_all(&dir);
    let dir_s = dir.to_str().expect("utf8");
    let (ok, stdout, stderr) = rx(&[
        "soak",
        "--steps",
        "120",
        "--seed",
        "1",
        "--jobs",
        "2",
        "--incident-dir",
        dir_s,
    ]);
    assert!(ok, "{stdout}\n{stderr}");
    assert!(stdout.contains("soak ok: 7 kernel(s)"), "{stdout}");
    for k in [
        "car",
        "browser",
        "browser2",
        "browser3",
        "ssh",
        "ssh2",
        "webserver",
    ] {
        assert!(dir.join(format!("{k}.log")).is_file(), "missing {k}.log");
    }
}

#[test]
fn soak_single_kernel_row() {
    let (ok, stdout, _) = rx(&["soak", "--kernel", "webserver", "--steps", "80"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("webserver"), "{stdout}");
    assert!(stdout.contains("soak ok: 1 kernel(s)"), "{stdout}");
    let (ok, _, stderr) = rx(&["soak", "--kernel", "nope"]);
    assert!(!ok);
    assert!(stderr.contains("nope"), "{stderr}");
}

#[test]
fn watch_iterations_flag_ends_the_loop() {
    let (ok, stdout, _) = rx(&["watch", &kernel("car"), "--iterations", "1"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("[1]"), "{stdout}");
    assert!(stdout.contains("re-proved"), "{stdout}");
    assert!(
        !stdout.contains("watching"),
        "--iterations 1 must exit instead of waiting for edits: {stdout}"
    );
}

#[test]
fn verify_budget_expiry_reports_timeouts_with_nonzero_exit() {
    let (ok, stdout, stderr) = rx(&["verify", &kernel("car"), "--budget-ms", "0"]);
    assert!(!ok);
    assert!(stdout.contains("⏱"), "{stdout}");
    assert!(stderr.contains("stopped by the session budget"), "{stderr}");
}

#[test]
fn verify_trace_json_writes_event_lines() {
    let dir = std::env::temp_dir().join("rx-cli-test");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join(format!("trace-{}.jsonl", std::process::id()));
    let path_s = path.to_str().expect("utf8");
    let (ok, _, _) = rx(&["verify", &kernel("ssh"), "--trace-json", path_s]);
    assert!(ok);
    let trace = std::fs::read_to_string(&path).expect("trace file written");
    assert!(trace.contains(r#""event":"session_start""#), "{trace}");
    assert_eq!(
        trace.matches(r#""event":"property""#).count(),
        5,
        "ssh has 5 properties: {trace}"
    );
    assert!(trace.contains(r#""event":"session_finish""#), "{trace}");
}

#[test]
fn store_scrub_quarantines_corrupt_entries() {
    let dir = std::env::temp_dir().join(format!("rx-cli-scrub-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dir_s = dir.to_str().expect("utf8");

    // Populate the store, then bit-rot one segment's first frame (offset
    // 50 is inside its payload, breaking the integrity fingerprint).
    let (ok, stdout, _) = rx(&["verify", &kernel("car"), "--store", dir_s]);
    assert!(ok, "{stdout}");
    let mut segments: Vec<_> = std::fs::read_dir(&dir)
        .expect("store exists")
        .map(|e| e.expect("entry").path())
        .filter(|p| p.is_dir())
        .flat_map(|shard| {
            std::fs::read_dir(shard)
                .into_iter()
                .flatten()
                .map(|e| e.expect("entry").path())
        })
        .filter(|p| p.extension().is_some_and(|x| x == "log"))
        .collect();
    segments.sort();
    assert!(!segments.is_empty());
    let victim = &segments[0];
    let mut bytes = std::fs::read(victim).expect("readable");
    bytes[50] ^= 0x01;
    std::fs::write(victim, &bytes).expect("writable");

    // Scrub quarantines the damaged entry and exits nonzero.
    let (ok, stdout, stderr) = rx(&["store", "scrub", dir_s]);
    assert!(!ok, "{stdout}");
    assert!(stdout.contains("quarantined"), "{stdout}");
    assert!(stderr.contains("quarantined"), "{stderr}");
    assert!(
        dir.join("quarantine").join("report.json").is_file(),
        "machine-readable quarantine report written"
    );
    assert!(
        !victim.exists(),
        "the damaged entry was moved out of the store"
    );

    // A second scrub — with the kernel supplied for full checker
    // validation — finds a clean store.
    let (ok, stdout, _) = rx(&["store", "scrub", dir_s, &kernel("car")]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("store is clean"), "{stdout}");
}

#[test]
fn watch_starts_degraded_when_the_store_cannot_open() {
    // A store path that is a *file* cannot be opened as a directory.
    let bogus = std::env::temp_dir().join(format!("rx-cli-notadir-{}", std::process::id()));
    std::fs::write(&bogus, b"not a directory").expect("write");
    let bogus_s = bogus.to_str().expect("utf8");

    // Default: warn, start degraded, still verify everything.
    let (ok, stdout, stderr) = rx(&[
        "watch",
        &kernel("car"),
        "--store",
        bogus_s,
        "--iterations",
        "1",
    ]);
    assert!(ok, "{stdout}\n{stderr}");
    assert!(stderr.contains("DEGRADED"), "{stderr}");
    assert!(stdout.contains("✓"), "{stdout}");

    // --strict-store: the same situation is fatal.
    let (ok, _, stderr) = rx(&[
        "watch",
        &kernel("car"),
        "--store",
        bogus_s,
        "--strict-store",
        "--iterations",
        "1",
    ]);
    assert!(!ok);
    assert!(!stderr.contains("DEGRADED"), "{stderr}");
    let _ = std::fs::remove_file(&bogus);
}

#[test]
fn chaos_single_seed_upholds_invariants_and_writes_json() {
    let (ok, stdout, stderr) = rx(&["chaos", "--seeds", "0..1"]);
    assert!(ok, "{stdout}\n{stderr}");
    assert!(
        stdout.contains("all robustness invariants held"),
        "{stdout}"
    );
    let json = std::fs::read_to_string("BENCH_chaos.json").expect("BENCH_chaos.json written");
    assert!(json.contains(r#""invariants_held": true"#), "{json}");
    assert!(json.contains(r#""aborts": 0"#), "{json}");
}

#[test]
fn unknown_flag_is_a_usage_error() {
    let (ok, _, stderr) = rx(&["verify", &kernel("car"), "--bogus"]);
    assert!(!ok);
    assert!(stderr.contains("unknown flag"), "{stderr}");
    assert!(stderr.contains("usage: rx verify"), "{stderr}");
}

#[test]
fn bad_flag_value_is_a_usage_error() {
    let (ok, _, stderr) = rx(&["verify", &kernel("car"), "--jobs", "many"]);
    assert!(!ok);
    assert!(stderr.contains("invalid value"), "{stderr}");
}

#[test]
fn client_without_an_endpoint_is_a_usage_error() {
    let out = Command::new(env!("CARGO_BIN_EXE_rx"))
        .args(["client", "ping"])
        .output()
        .expect("rx runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("nothing to connect to"), "{stderr}");
}

#[test]
fn client_connect_failure_exits_with_the_retryable_code() {
    // Transport failures are transient by classification: exit 3, so a
    // wrapping script can tell "try again" (3) from broken (1) and
    // mis-invoked (2).
    let out = Command::new(env!("CARGO_BIN_EXE_rx"))
        .args([
            "client",
            "--socket",
            "/nonexistent/rxd.sock",
            "--retries",
            "0",
            "ping",
        ])
        .output()
        .expect("rx runs");
    assert_eq!(out.status.code(), Some(3));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("retryable"), "{stderr}");
}

#[test]
fn client_json_errors_carry_the_typed_code() {
    let out = Command::new(env!("CARGO_BIN_EXE_rx"))
        .args([
            "client",
            "--socket",
            "/nonexistent/rxd.sock",
            "--retries",
            "0",
            "--json",
            "ping",
        ])
        .output()
        .expect("rx runs");
    assert_eq!(out.status.code(), Some(3));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"retryable\": true"), "{stdout}");
    // A connect failure has no remote ERR_* code; the field is null.
    assert!(stdout.contains("\"code\": null"), "{stdout}");
}

#[test]
fn bench_serve_validates_its_flags() {
    let (ok, _, stderr) = rx(&["bench", "serve", "--clients", "0"]);
    assert!(!ok);
    assert!(stderr.contains("at least 1"), "{stderr}");
    let (ok, _, stderr) = rx(&["bench", "serve", "--socket", "a", "--tcp", "b"]);
    assert!(!ok);
    assert!(stderr.contains("not both"), "{stderr}");
}

#[test]
fn rxd_without_a_listener_is_a_usage_error() {
    let out = Command::new(env!("CARGO_BIN_EXE_rxd"))
        .output()
        .expect("rxd runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("nothing to listen on"), "{stderr}");
    assert!(stderr.contains("usage: rxd"), "{stderr}");
}

/// End to end over a real unix socket: boot `rxd`, talk to it with
/// `rx client`, shut it down cleanly.
#[test]
fn daemon_serves_rx_client_over_a_unix_socket() {
    let socket = std::env::temp_dir().join(format!("rx-cli-rxd-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&socket);
    let mut daemon = Command::new(env!("CARGO_BIN_EXE_rxd"))
        .args(["--socket", socket.to_str().expect("utf8"), "--workers", "1"])
        .spawn()
        .expect("rxd boots");
    for _ in 0..200 {
        if socket.exists() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    assert!(socket.exists(), "rxd never bound its socket");
    let sock = socket.to_str().expect("utf8");

    let (ok, stdout, stderr) = rx(&["client", "--socket", sock, "ping"]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("pong"), "{stdout}");

    let (ok, stdout, stderr) = rx(&["client", "--socket", sock, "check", &kernel("car")]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("properties"), "{stdout}");

    let (ok, stdout, _) = rx(&["client", "--socket", sock, "stats", "--json"]);
    assert!(ok);
    assert!(stdout.contains("\"requests_served\""), "{stdout}");

    let (ok, stdout, _) = rx(&["client", "--socket", sock, "shutdown"]);
    assert!(ok);
    assert!(stdout.contains("shutting down"), "{stdout}");

    let status = daemon.wait().expect("rxd exits");
    assert!(status.success(), "rxd must exit 0 after a clean shutdown");
    let _ = std::fs::remove_file(&socket);
}
