//! Whole-pipeline integration test through the `reflex` façade crate:
//! author a kernel in concrete syntax, check it, prove its properties,
//! validate the certificates, run it, and confirm the runtime agrees —
//! including the "modify and re-verify for free" workflow the paper
//! advertises.

use reflex::prelude::*;
use reflex::runtime::{EmptyWorld, Interpreter, Registry, ScriptedBehavior};
use reflex::trace::Msg;
use reflex::verify::{check_certificate, falsify, prove, prove_all, FalsifyOptions, ProverOptions};

const CHAT: &str = r#"
// A moderated chat-room kernel: messages from muted users are dropped,
// and only the moderator can mute.
components {
  Mod "moderator.py" ();
  User "user-conn.py" (name: str);
  Log "audit-log.py" ();
}
messages {
  Join(str);
  Say(str);
  Mute(str);
  Post(str, str);
  Audit(str);
}
state {
  muted_user: str = "";
}
init {
  M <- spawn Mod();
  LG <- spawn Log();
}
handlers {
  when Mod:Join(name) {
    lookup User(u : u.name == name) {
    } else {
      n <- spawn User(name);
    }
  }
  // Muting latches: one (nonempty) muted user, forever. The first draft
  // of this handler simply overwrote `muted_user`, and the prover
  // rejected the MutedStayMuted policy below with a real counterexample:
  // mute alice, then mute bob, and alice can post again.
  when Mod:Mute(name) {
    if (muted_user == "" && name != "") {
      muted_user = name;
      send(LG, Audit(name));
    }
  }
  when User:Say(text) {
    if (sender.name != muted_user) {
      send(LG, Post(sender.name, text));
    }
  }
}
properties {
  UsersNeverDuplicated: forall n: str.
    [Spawn(User(n))] Disables [Spawn(User(n))];
  UsersJoinedByModerator: forall n: str.
    [Recv(Mod(), Join(n))] Enables [Spawn(User(n))];
  // Note: "every Mute is immediately followed by an Audit" is FALSE for
  // this kernel (ignored re-mutes are not audited) and the prover rejects
  // it; the true statement is the converse direction.
  AuditsComeFromMutes: forall n: str.
    [Recv(Mod(), Mute(n))] ImmBefore [Send(Log(), Audit(n))];
  PostsComeFromUsers: forall n: str, t: str.
    [Recv(User(n, ), Say(t))] Enables [Send(Log(), Post(n, t))];
}
"#;

#[test]
fn author_verify_run_modify_reverify() {
    // 1. Author: the source above has a deliberate syntax quirk to fix —
    //    `User(n, )` is invalid; correct it the way a user would.
    let src = CHAT.replace("User(n, )", "User(n, _)");
    // `User` has one config field, so `(n, _)` is an arity error; the
    // correct pattern is `User(n)`.
    let src = src.replace("User(n, _)", "User(n)");
    let program = parse_program("chat", &src).expect("parses after fixes");
    let checked = check(&program).expect("well-formed");

    // 2. Verify everything; validate certificates.
    let options = ProverOptions::default();
    for (name, outcome) in prove_all(&checked, &options) {
        let cert = outcome
            .certificate()
            .unwrap_or_else(|| panic!("{name}: {}", outcome.failure().unwrap()));
        check_certificate(&checked, cert, &options).expect("certificate valid");
    }

    // 3. Run: the moderator joins two users, mutes one, both speak.
    let registry = Registry::new().register("moderator.py", |_| {
        Box::new(ScriptedBehavior::new().starts_with([
            Msg::new("Join", [Value::from("alice")]),
            Msg::new("Join", [Value::from("bob")]),
            Msg::new("Join", [Value::from("alice")]), // duplicate — ignored
            Msg::new("Mute", [Value::from("bob")]),
        ]))
    });
    let mut kernel = Interpreter::new(&checked, registry, Box::new(EmptyWorld), 77).expect("boots");
    kernel.run(20).expect("runs");
    assert_eq!(kernel.components_of("User").len(), 2);

    let users: Vec<_> = kernel.components_of("User").iter().map(|u| u.id).collect();
    for u in &users {
        kernel
            .inject(*u, Msg::new("Say", [Value::from("hi")]))
            .expect("inject");
    }
    kernel.run(10).expect("runs");
    // Only alice's message was posted.
    let posts: Vec<_> = kernel
        .trace()
        .iter_chrono()
        .filter_map(|a| match a {
            reflex::trace::Action::Send { msg, .. } if msg.name == "Post" => {
                Some(msg.args[0].clone())
            }
            _ => None,
        })
        .collect();
    assert_eq!(posts, vec![Value::from("alice")]);

    reflex::runtime::oracle::check_trace_inclusion(&checked, kernel.trace()).expect("in BehAbs");
    reflex::trace::check_trace_properties(kernel.trace(), &checked.program().properties)
        .map_err(|(n, e)| format!("{n}: {e}"))
        .expect("holds");

    // 4. Modify: drop the mute check — "no additional proof burden", just
    //    re-run the automation, which now correctly fails.
    let buggy_src = src.replace(
        "if (sender.name != muted_user) {\n      send(LG, Post(sender.name, text));\n    }",
        "send(LG, Post(sender.name, text));",
    );
    assert_ne!(buggy_src, src);
    let buggy = check(&parse_program("chat2", &buggy_src).expect("parses")).expect("checks");
    // The local-witness property still verifies (posts still name their
    // author), and so does everything else…
    for (name, outcome) in prove_all(&buggy, &options) {
        assert!(
            outcome.is_proved(),
            "{name} unaffected by dropping the mute check"
        );
    }
    // …because "muted users cannot post" was never stated! State it:
    let with_policy = buggy_src.replace(
        "properties {",
        "properties {\n  MutedStayMuted: forall n: str.\n    [Send(Log(), Audit(n))] Disables [Send(Log(), Post(n, _))];",
    );
    let with_policy =
        check(&parse_program("chat3", &with_policy).expect("parses")).expect("checks");
    let outcome = prove(&with_policy, "MutedStayMuted", &options).expect("exists");
    assert!(!outcome.is_proved(), "the dropped check must now be caught");
    let cx = falsify(&with_policy, "MutedStayMuted", &FalsifyOptions::default())
        .expect("concrete counterexample: mute bob, bob posts anyway");
    assert!(cx.trace.len() >= 4);

    // And on the original (guarded) kernel the new policy verifies.
    let fixed = src.replace(
        "properties {",
        "properties {\n  MutedStayMuted: forall n: str.\n    [Send(Log(), Audit(n))] Disables [Send(Log(), Post(n, _))];",
    );
    let fixed = check(&parse_program("chat4", &fixed).expect("parses")).expect("checks");
    let outcome = prove(&fixed, "MutedStayMuted", &options).expect("exists");
    assert!(
        outcome.is_proved(),
        "guarded kernel satisfies MutedStayMuted: {:?}",
        outcome.failure()
    );
}
