//! Differential testing of the symbolic evaluator against the concrete
//! interpreter: for a random (loop-free, call-free) handler and random
//! concrete inputs, exactly one symbolic path's condition is satisfied by
//! the inputs, and that path's emitted actions and post-state coincide
//! with what the interpreter actually did.
//!
//! This pins down the central soundness ingredient of the whole system:
//! the symbolic `Exchange` relation really over-approximates (here:
//! exactly predicts) the concrete one.

use proptest::prelude::*;
use reflex::ast::build::{CmdBuilder, ProgramBuilder};
use reflex::ast::{Expr, Program, Ty, Value};
use reflex::runtime::{EmptyWorld, Interpreter, Registry};
use reflex::symbolic::{SymAction, SymKind, Term};
use reflex::trace::{Action, Msg};
use reflex::verify::{Abstraction, ProverOptions};

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

const STRINGS: [&str; 3] = ["a", "b", "c"];

fn gen_expr(r: &mut Rng, ty: Ty) -> Expr {
    match (ty, r.below(5)) {
        (Ty::Str, 0) => Expr::var("p0"),
        (Ty::Str, 1) => Expr::var("sv"),
        (Ty::Str, 2) => Expr::var("sv").cat(Expr::var("p0")),
        (Ty::Str, _) => Expr::lit(STRINGS[r.below(3) as usize]),
        (Ty::Num, 0) => Expr::var("p1"),
        (Ty::Num, 1) => Expr::var("nv"),
        (Ty::Num, 2) => Expr::var("nv").add(Expr::var("p1")),
        (Ty::Num, 3) => Expr::var("nv").sub(Expr::lit(r.below(3) as i64)),
        (Ty::Num, _) => Expr::lit(r.below(4) as i64),
        (Ty::Bool, 0) => Expr::var("bv"),
        (Ty::Bool, 1) => gen_expr(r, Ty::Str).eq(gen_expr(r, Ty::Str)),
        (Ty::Bool, 2) => gen_expr(r, Ty::Num).lt(gen_expr(r, Ty::Num)),
        (Ty::Bool, 3) => gen_expr(r, Ty::Num).le(gen_expr(r, Ty::Num)),
        (Ty::Bool, _) => gen_expr(r, Ty::Bool).not(),
        _ => unreachable!("data types only"),
    }
}

fn gen_body(r: &mut Rng, h: &mut CmdBuilder, depth: usize) {
    for i in 0..1 + r.below(3) {
        match r.below(6) {
            0 => {
                h.assign("sv", gen_expr(r, Ty::Str));
            }
            1 => {
                h.assign("nv", gen_expr(r, Ty::Num));
            }
            2 => {
                h.assign("bv", gen_expr(r, Ty::Bool));
            }
            3 => {
                h.send(
                    Expr::var("sink"),
                    "Out",
                    [gen_expr(r, Ty::Str), gen_expr(r, Ty::Num)],
                );
            }
            4 if depth > 0 => {
                let cond = gen_expr(r, Ty::Bool);
                let seed = r.next();
                h.if_else(
                    cond,
                    |t| gen_body(&mut Rng(seed | 1), t, depth - 1),
                    |e| gen_body(&mut Rng(seed.rotate_left(17) | 1), e, depth - 1),
                );
            }
            _ => {
                h.spawn(format!("w{depth}_{i}"), "Sink", [gen_expr(r, Ty::Str)]);
            }
        }
    }
}

fn gen_program(seed: u64) -> Program {
    let _r = Rng(seed | 1);
    ProgramBuilder::new("diff")
        .component("Drv", "drv.py", [])
        .component("Sink", "sink.py", [("tag", Ty::Str)])
        .message("In", [Ty::Str, Ty::Num])
        .message("Out", [Ty::Str, Ty::Num])
        .state("sv", Ty::Str, Expr::lit("a"))
        .state("nv", Ty::Num, Expr::lit(0i64))
        .state("bv", Ty::Bool, Expr::lit(false))
        .init_spawn("drv", "Drv", [])
        .init_spawn("sink", "Sink", [Expr::lit("s0")])
        .handler("Drv", "In", ["p0", "p1"], |h| {
            gen_body(&mut Rng(seed.rotate_left(5) | 1), h, 2);
        })
        .finish()
}

/// Substitutes the concrete exchange inputs into a symbolic term.
fn ground(
    t: &Term,
    pre: &reflex::symbolic::SymState,
    pre_values: &std::collections::BTreeMap<String, Value>,
    payload: &[Value],
) -> Term {
    t.rewrite_leaves(&|leaf| {
        let Term::Sym(sv) = leaf else { return None };
        match &sv.kind {
            SymKind::StateVar(name) => {
                // Match by identity with this world's pre-state symbols.
                match pre.data.get(name) {
                    Some(Term::Sym(s)) if s == sv => Some(Term::Lit(pre_values[name].clone())),
                    _ => None,
                }
            }
            SymKind::Param(name) => {
                let idx = match name.as_str() {
                    "p0" => 0,
                    "p1" => 1,
                    _ => return None,
                };
                Some(Term::Lit(payload[idx].clone()))
            }
            _ => None,
        }
    })
}

fn run_case(seed: u64, s_arg: &str, n_arg: i64, pre_rounds: usize) -> Result<(), String> {
    let program = gen_program(seed);
    let Ok(checked) = reflex::typeck::check(&program) else {
        return Ok(()); // name collision in generated binders: skip
    };
    let options = ProverOptions::default();
    let abs = Abstraction::build(&checked, &options);
    let world = &abs.worlds[0];

    // Drive the interpreter into a random pre-state first, then perform
    // the exchange under test.
    let mut kernel = Interpreter::new(&checked, Registry::new(), Box::new(EmptyWorld), seed)
        .map_err(|e| e.to_string())?;
    let drv = kernel.components_of("Drv")[0].id;
    let mut r = Rng(seed.rotate_left(23) | 1);
    for _ in 0..pre_rounds {
        let s = STRINGS[r.below(3) as usize];
        let n = r.below(4) as i64;
        kernel
            .inject(drv, Msg::new("In", [Value::from(s), Value::Num(n)]))
            .map_err(|e| e.to_string())?;
        kernel.run(4).map_err(|e| e.to_string())?;
    }
    let pre_values: std::collections::BTreeMap<String, Value> = ["sv", "nv", "bv"]
        .iter()
        .map(|v| {
            (
                (*v).to_owned(),
                kernel.state_var(v).expect("present").clone(),
            )
        })
        .collect();
    let trace_before = kernel.trace().len();
    let payload = vec![Value::from(s_arg), Value::Num(n_arg)];
    kernel
        .inject(drv, Msg::new("In", payload.clone()))
        .map_err(|e| e.to_string())?;
    kernel.step().map_err(|e| e.to_string())?;
    let concrete_actions: Vec<Action> = kernel.trace().actions()[trace_before + 2..].to_vec();

    // Find the symbolic paths whose condition the concrete inputs satisfy.
    let exchange = abs.worlds[0]
        .exchanges
        .iter()
        .find(|e| e.ctype == "Drv" && e.msg == "In")
        .expect("case exists");
    let mut matching = Vec::new();
    for path in &exchange.paths {
        let all_true = path.condition.iter().all(|(t, pol)| {
            // Ground conditions must fold to literals.
            match ground(t, &world.pre, &pre_values, &payload) {
                Term::Lit(Value::Bool(b)) => b == *pol,
                other => panic!("condition did not ground: {other}"),
            }
        });
        if all_true {
            matching.push(path);
        }
    }
    if matching.len() != 1 {
        return Err(format!(
            "seed {seed}: expected exactly 1 satisfied path, got {}\nprogram:\n{program}",
            matching.len()
        ));
    }
    let path = matching[0];

    // The path's emitted actions must coincide with the concrete ones
    // (modulo fresh component identities).
    if path.actions.len() != concrete_actions.len() {
        return Err(format!(
            "seed {seed}: action count mismatch: symbolic {} vs concrete {}\nprogram:\n{program}",
            path.actions.len(),
            concrete_actions.len()
        ));
    }
    for (sym, conc) in path.actions.iter().zip(&concrete_actions) {
        let ok = match (sym, conc) {
            (SymAction::Send { comp, msg, args }, Action::Send { comp: cc, msg: cm }) => {
                comp.ctype == cc.ctype
                    && *msg == cm.name
                    && args.len() == cm.args.len()
                    && args.iter().zip(&cm.args).all(|(t, v)| {
                        ground(t, &world.pre, &pre_values, &payload) == Term::Lit(v.clone())
                    })
            }
            (SymAction::Spawn { comp }, Action::Spawn { comp: cc }) => {
                comp.ctype == cc.ctype
                    && comp.config.len() == cc.config.len()
                    && comp.config.iter().zip(&cc.config).all(|(t, v)| {
                        ground(t, &world.pre, &pre_values, &payload) == Term::Lit(v.clone())
                    })
            }
            _ => false,
        };
        if !ok {
            return Err(format!(
                "seed {seed}: action mismatch: symbolic {sym} vs concrete {conc}\nprogram:\n{program}"
            ));
        }
    }

    // The path's post-state must equal the interpreter's.
    for v in ["sv", "nv", "bv"] {
        let sym_post = ground(
            path.state.data.get(v).expect("present"),
            &world.pre,
            &pre_values,
            &payload,
        );
        let conc_post = kernel.state_var(v).expect("present").clone();
        if sym_post != Term::Lit(conc_post.clone()) {
            return Err(format!(
                "seed {seed}: post-state mismatch on {v}: symbolic {sym_post} vs concrete {conc_post}\nprogram:\n{program}"
            ));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn symbolic_paths_predict_concrete_execution(
        seed in any::<u64>(),
        s_idx in 0usize..3,
        n_arg in -2i64..5,
        pre_rounds in 0usize..4,
    ) {
        run_case(seed, STRINGS[s_idx], n_arg, pre_rounds)
            .unwrap_or_else(|e| panic!("{e}"));
    }
}

#[test]
fn fixed_seed_sweep() {
    for seed in 0..48u64 {
        run_case(seed, "b", 1, 2).unwrap_or_else(|e| panic!("{e}"));
    }
}
