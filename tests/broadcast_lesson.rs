//! The paper's §7 design lesson, as an executable artifact.
//!
//! "We originally provided a more general `broadcast` primitive which sent
//! a message to all components satisfying a predicate. However, broadcast
//! complicated reasoning because a single broadcast command could generate
//! an unbounded number of send actions; handling this unbounded behavior
//! proved extraordinarily difficult. We instead use `lookup`."
//!
//! Our reproduction retains `broadcast`: the interpreter executes it and
//! the trace-inclusion oracle accounts for it — but the proof automation
//! refuses it, with a diagnostic pointing at the `lookup` rewrite. The two
//! kernels below implement the same feature; only the `lookup` one can be
//! verified.

use reflex::ast::Value;
use reflex::runtime::oracle::check_trace_inclusion;
use reflex::runtime::{EmptyWorld, Interpreter, Registry};
use reflex::trace::{Action, Msg};
use reflex::verify::{falsify, prove, FalsifyOptions, ProverOptions};

const BROADCAST_KERNEL: &str = r#"
components {
  Mgr "mgr.py" ();
  Tab "tab.py" (domain: str);
}
messages {
  NewTab(str);
  Update(str, str);
  Refresh(str);
}
state {
  tabs: num = 0;
}
init {
  M <- spawn Mgr();
}
handlers {
  when Mgr:NewTab(d) {
    tabs = tabs + 1;
    t <- spawn Tab(d);
  }
  // Push the update to EVERY tab of the domain — the removed primitive.
  when Mgr:Update(d, v) {
    broadcast Tab(t : t.domain == d), Refresh(v);
  }
}
properties {
  RefreshStaysInDomain: forall d: str, v: str.
    [Recv(Mgr(), Update(d, v))] Enables [Send(Tab(d), Refresh(v))];
}
"#;

#[test]
fn broadcast_runs_but_cannot_be_verified() {
    let program = reflex::parser::parse_program("bcast", BROADCAST_KERNEL).expect("parses");
    let checked = reflex::typeck::check(&program).expect("type-checks fine");

    // 1. The interpreter executes broadcasts: three same-domain tabs all
    //    get the refresh; the other domain's tab does not.
    let mut kernel =
        Interpreter::new(&checked, Registry::new(), Box::new(EmptyWorld), 4).expect("boots");
    let mgr = kernel.components_of("Mgr")[0].id;
    for d in ["a.org", "a.org", "b.org", "a.org"] {
        kernel
            .inject(mgr, Msg::new("NewTab", [Value::from(d)]))
            .expect("inject");
    }
    kernel.run(8).expect("runs");
    kernel
        .inject(
            mgr,
            Msg::new("Update", [Value::from("a.org"), Value::from("v1")]),
        )
        .expect("inject");
    kernel.run(8).expect("runs");
    let refreshed: Vec<Value> = kernel
        .trace()
        .iter_chrono()
        .filter_map(|a| match a {
            Action::Send { comp, msg } if msg.name == "Refresh" => Some(comp.config[0].clone()),
            _ => None,
        })
        .collect();
    assert_eq!(refreshed.len(), 3, "one send per matching tab");
    assert!(refreshed.iter().all(|d| *d == Value::from("a.org")));

    // 2. The trace — unbounded sends and all — is a valid behavior.
    check_trace_inclusion(&checked, kernel.trace()).expect("in BehAbs");

    // 3. But the automation refuses the program, with the §7 diagnostic.
    let outcome =
        prove(&checked, "RefreshStaysInDomain", &ProverOptions::default()).expect("exists");
    let failure = outcome.failure().expect("must be refused");
    assert!(
        failure.reason.contains("broadcast") && failure.reason.contains("lookup"),
        "diagnostic should explain the §7 lesson: {failure}"
    );

    // 4. The falsifier still works concretely (and finds no violation —
    //    the kernel is actually correct, just not automatable).
    assert!(falsify(&checked, "RefreshStaysInDomain", &FalsifyOptions::default()).is_none());
}

#[test]
fn the_lookup_rewrite_is_verifiable() {
    // The paper's fix: route each update individually through `lookup`.
    let rewritten = BROADCAST_KERNEL.replace(
        "    broadcast Tab(t : t.domain == d), Refresh(v);",
        "    lookup Tab(t : t.domain == d) {\n      send(t, Refresh(v));\n    }",
    );
    let program = reflex::parser::parse_program("bcast2", &rewritten).expect("parses");
    let checked = reflex::typeck::check(&program).expect("checks");
    let options = ProverOptions::default();
    let outcome = prove(&checked, "RefreshStaysInDomain", &options).expect("exists");
    let cert = outcome
        .certificate()
        .unwrap_or_else(|| panic!("lookup version verifies: {:?}", outcome.failure()));
    reflex::verify::check_certificate(&checked, cert, &options).expect("valid");
}

#[test]
fn forged_certificates_for_broadcast_programs_are_rejected() {
    // Obtain a real certificate from the lookup version, then try to pass
    // it off against the broadcast program: the checker must refuse before
    // even looking at the (under-approximate) abstraction.
    let rewritten = BROADCAST_KERNEL.replace(
        "    broadcast Tab(t : t.domain == d), Refresh(v);",
        "    lookup Tab(t : t.domain == d) {\n      send(t, Refresh(v));\n    }",
    );
    let good = reflex::typeck::check(
        &reflex::parser::parse_program("bcast2", &rewritten).expect("parses"),
    )
    .expect("checks");
    let options = ProverOptions::default();
    let cert = prove(&good, "RefreshStaysInDomain", &options)
        .expect("exists")
        .certificate()
        .expect("proved")
        .clone();

    let bcast = reflex::typeck::check(
        &reflex::parser::parse_program("bcast", BROADCAST_KERNEL).expect("parses"),
    )
    .expect("checks");
    let err = reflex::verify::check_certificate(&bcast, &cert, &options);
    assert!(
        err.is_err(),
        "no certificate may validate against a broadcast program"
    );
}

#[test]
fn broadcast_round_trips_and_type_checks() {
    let program = reflex::parser::parse_program("bcast", BROADCAST_KERNEL).expect("parses");
    let printed = program.to_string();
    assert!(printed.contains("broadcast Tab(t : t.domain == d), Refresh(v);"));
    let reparsed = reflex::parser::parse_program("bcast", &printed).expect("reparses");
    assert_eq!(program, reparsed);

    // Type errors in broadcasts are caught like everywhere else.
    let bad = BROADCAST_KERNEL.replace("Refresh(v)", "Refresh(tabs)");
    let program = reflex::parser::parse_program("bad", &bad).expect("parses");
    assert!(
        reflex::typeck::check(&program).is_err(),
        "num into str payload"
    );
}
