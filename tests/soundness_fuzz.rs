//! Prover soundness fuzzing: generate random well-formed kernels and
//! random properties, run the pushbutton prover, and cross-examine every
//! **proved** claim with two independent semantics:
//!
//! * the bounded concrete falsifier must find no counterexample;
//! * random executions of the real interpreter must satisfy the property
//!   (and stay inside `BehAbs`).
//!
//! A single disagreement would demonstrate an unsoundness in the proof
//! search, the certificate checker, the symbolic evaluator or the solver —
//! this is the reproduction's analog of pitting Reflex's Ltac automation
//! against Coq's kernel.

use proptest::prelude::*;
use reflex::ast::build::{CmdBuilder, ProgramBuilder};
use reflex::ast::{
    ActionPat, CompPat, Expr, PatField, Program, PropertyDecl, TracePropKind, Ty, Value,
};
use reflex::runtime::{Interpreter, RandomWorld, Registry};
use reflex::trace::{check_trace, Msg};
use reflex::verify::{check_certificate, falsify, prove, FalsifyOptions, ProverOptions};

// ---- random program generation -------------------------------------------

/// A tiny deterministic PRNG so generation is reproducible from one seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
    fn flip(&mut self) -> bool {
        self.next().is_multiple_of(2)
    }
}

const STRINGS: [&str; 3] = ["a", "b", "c"];
const MSGS: [(&str, &[Ty]); 3] = [("M1", &[Ty::Str]), ("M2", &[Ty::Str, Ty::Num]), ("M3", &[])];

/// A random data expression of the given type over the fixed scope
/// (state vars `sv`/`nv`/`bv`, handler params `p0…`).
fn gen_expr(r: &mut Rng, ty: Ty, params: &[(String, Ty)]) -> Expr {
    let vars: Vec<&str> = match ty {
        Ty::Str => vec!["sv"],
        Ty::Num => vec!["nv"],
        Ty::Bool => vec!["bv"],
        _ => vec![],
    };
    let param: Vec<&str> = params
        .iter()
        .filter(|(_, t)| *t == ty)
        .map(|(n, _)| n.as_str())
        .collect();
    match r.below(4) {
        0 if !param.is_empty() => Expr::var(param[r.below(param.len() as u64) as usize]),
        1 if !vars.is_empty() => Expr::var(vars[r.below(vars.len() as u64) as usize]),
        2 if ty == Ty::Num => Expr::var("nv").add(Expr::lit((r.below(3)) as i64)),
        _ => match ty {
            Ty::Str => Expr::lit(STRINGS[r.below(3) as usize]),
            Ty::Num => Expr::lit((r.below(3)) as i64),
            Ty::Bool => Expr::lit(r.flip()),
            _ => unreachable!("data types only"),
        },
    }
}

fn gen_cond(r: &mut Rng, params: &[(String, Ty)]) -> Expr {
    match r.below(4) {
        0 => Expr::var("bv"),
        1 => gen_expr(r, Ty::Str, params).eq(gen_expr(r, Ty::Str, params)),
        2 => gen_expr(r, Ty::Num, params).lt(Expr::lit((1 + r.below(3)) as i64)),
        _ => gen_expr(r, Ty::Num, params).eq(gen_expr(r, Ty::Num, params)),
    }
}

/// Emits 1–3 random statements into `h`. Depth-bounds the nesting.
fn gen_body(r: &mut Rng, h: &mut CmdBuilder, params: &[(String, Ty)], depth: usize) {
    let n = 1 + r.below(3);
    for i in 0..n {
        match r.below(7) {
            0 => {
                h.assign("sv", gen_expr(r, Ty::Str, params));
            }
            1 => {
                h.assign("nv", gen_expr(r, Ty::Num, params));
            }
            2 => {
                h.assign("bv", gen_expr(r, Ty::Bool, params));
            }
            3 => {
                let (msg, sig) = MSGS[r.below(3) as usize];
                let target = if r.flip() { "a0" } else { "b0" };
                let args: Vec<Expr> = sig.iter().map(|t| gen_expr(r, *t, params)).collect();
                h.send(Expr::var(target), msg, args);
            }
            4 if depth > 0 => {
                let cond = gen_cond(r, params);
                let seed = r.next();
                h.if_else(
                    cond,
                    |t| gen_body(&mut Rng(seed | 1), t, params, depth - 1),
                    |e| gen_body(&mut Rng(seed.rotate_left(11) | 1), e, params, depth - 1),
                );
            }
            5 => {
                let binder = format!("sp{depth}_{i}");
                h.spawn(binder, "B", [gen_expr(r, Ty::Str, params)]);
            }
            6 if depth > 0 => {
                let binder = format!("lk{depth}_{i}");
                let pred = Expr::var(&binder)
                    .cfg("tag")
                    .eq(gen_expr(r, Ty::Str, params));
                let seed = r.next();
                h.lookup(
                    "B",
                    binder.clone(),
                    pred,
                    |f| gen_body(&mut Rng(seed | 1), f, params, depth - 1),
                    |_| {},
                );
            }
            _ => {
                h.assign("nv", Expr::var("nv").add(Expr::lit(1i64)));
            }
        }
    }
}

fn gen_pat_field(r: &mut Rng, ty: Ty, allowed_vars: &[(&str, Ty)]) -> PatField {
    let candidates: Vec<&str> = allowed_vars
        .iter()
        .filter(|(_, t)| *t == ty)
        .map(|(n, _)| *n)
        .collect();
    match r.below(3) {
        0 if !candidates.is_empty() => {
            PatField::var(candidates[r.below(candidates.len() as u64) as usize])
        }
        1 => PatField::Any,
        _ => match ty {
            Ty::Str => PatField::lit(STRINGS[r.below(3) as usize]),
            Ty::Num => PatField::lit((r.below(3)) as i64),
            _ => PatField::Any,
        },
    }
}

/// Generates an action pattern; `allowed_vars` restricts which property
/// variables may appear (used to respect the obligation-variable rule).
fn gen_pattern(r: &mut Rng, allowed_vars: &[(&str, Ty)]) -> ActionPat {
    let comp = match r.below(3) {
        0 => CompPat::of_type("A"),
        1 => CompPat::of_type("B"),
        _ => CompPat::with_config("B", [gen_pat_field(r, Ty::Str, allowed_vars)]),
    };
    match r.below(4) {
        0 => ActionPat::Spawn {
            comp: CompPat::with_config("B", [gen_pat_field(r, Ty::Str, allowed_vars)]),
        },
        1 => {
            let (msg, sig) = MSGS[r.below(3) as usize];
            ActionPat::Recv {
                comp,
                msg: msg.into(),
                args: sig
                    .iter()
                    .map(|t| gen_pat_field(r, *t, allowed_vars))
                    .collect(),
            }
        }
        _ => {
            let (msg, sig) = MSGS[r.below(3) as usize];
            ActionPat::Send {
                comp,
                msg: msg.into(),
                args: sig
                    .iter()
                    .map(|t| gen_pat_field(r, *t, allowed_vars))
                    .collect(),
            }
        }
    }
}

fn gen_program(seed: u64) -> Program {
    let mut r = Rng(seed | 1);
    let mut b = ProgramBuilder::new("fuzzed")
        .component("A", "a.py", [])
        .component("B", "b.py", [("tag", Ty::Str)])
        .message("M1", [Ty::Str])
        .message("M2", [Ty::Str, Ty::Num])
        .message("M3", [])
        .state("sv", Ty::Str, Expr::lit("a"))
        .state("nv", Ty::Num, Expr::lit(0i64))
        .state("bv", Ty::Bool, Expr::lit(false))
        .init_spawn("a0", "A", [])
        .init_spawn("b0", "B", [Expr::lit("a")]);

    // 1–4 random handlers over distinct (ctype, msg) pairs.
    let mut pairs: Vec<(&str, &str, &[Ty])> = vec![
        ("A", "M1", &[Ty::Str]),
        ("A", "M2", &[Ty::Str, Ty::Num]),
        ("B", "M1", &[Ty::Str]),
        ("B", "M3", &[]),
    ];
    let n_handlers = 1 + r.below(4) as usize;
    for k in 0..n_handlers {
        let idx = r.below(pairs.len() as u64) as usize;
        let (ctype, msg, sig) = pairs.remove(idx);
        let params: Vec<(String, Ty)> = sig
            .iter()
            .enumerate()
            .map(|(i, t)| (format!("p{k}_{i}"), *t))
            .collect();
        let param_names: Vec<String> = params.iter().map(|(n, _)| n.clone()).collect();
        let seed2 = r.next();
        let params2 = params.clone();
        b = b.handler_owned(ctype, msg, param_names, move |h| {
            gen_body(&mut Rng(seed2 | 1), h, &params2, 2);
        });
    }

    // 1–3 random properties, respecting the obligation-variable rule.
    let var_pool: [(&str, Ty); 2] = [("x", Ty::Str), ("y", Ty::Num)];
    let n_props = 1 + r.below(3) as usize;
    for k in 0..n_props {
        let kind = [
            TracePropKind::Enables,
            TracePropKind::Disables,
            TracePropKind::Ensures,
            TracePropKind::ImmBefore,
            TracePropKind::ImmAfter,
        ][r.below(5) as usize];
        // Trigger first (may use any vars), then the obligation limited to
        // the trigger's vars (except for Disables, which is unrestricted).
        let trigger = gen_pattern(&mut r, &var_pool);
        let trigger_vars: Vec<(&str, Ty)> = var_pool
            .iter()
            .filter(|(n, _)| trigger.vars().iter().any(|v| v == n))
            .copied()
            .collect();
        let obligation = if kind == TracePropKind::Disables {
            gen_pattern(&mut r, &var_pool)
        } else {
            gen_pattern(&mut r, &trigger_vars)
        };
        let (a, b_pat) = if kind.trigger_is_b() {
            (obligation, trigger)
        } else {
            (trigger, obligation)
        };
        let mut used: Vec<(&str, Ty)> = Vec::new();
        for v in a.vars().into_iter().chain(b_pat.vars()) {
            if let Some(entry) = var_pool.iter().find(|(n, _)| *n == v) {
                if !used.contains(entry) {
                    used.push(*entry);
                }
            }
        }
        b = b.property(PropertyDecl::trace(format!("P{k}"), used, kind, a, b_pat));
    }
    b.finish()
}

// ---- the fuzz loop --------------------------------------------------------

fn fuzz_one(seed: u64) -> Result<(), String> {
    let program = gen_program(seed);
    // Free parser coverage: every generated program must round-trip
    // through the pretty-printer.
    let printed = program.to_string();
    let reparsed = reflex::parser::parse_program(&program.name, &printed).map_err(|e| {
        format!(
            "seed {seed}: reparse failed: {e}
{printed}"
        )
    })?;
    if reparsed != program {
        return Err(format!(
            "seed {seed}: print→parse is not the identity
{printed}"
        ));
    }
    // Some generated programs are ill-formed (e.g. a binder name collides);
    // those are simply skipped — the fuzz targets the prover, not typeck.
    let Ok(checked) = reflex::typeck::check(&program) else {
        return Ok(());
    };
    let options = ProverOptions::default();
    for prop in &program.properties {
        let outcome = prove(&checked, &prop.name, &options).map_err(|e| e.to_string())?;
        let Some(cert) = outcome.certificate() else {
            continue; // failure to prove is always acceptable
        };
        // (1) The certificate must validate.
        check_certificate(&checked, cert, &options).map_err(|e| {
            format!(
                "seed {seed}, {}: certificate rejected: {e}\nprogram:\n{program}",
                prop.name
            )
        })?;
        // (2) No bounded concrete counterexample.
        if let Some(cx) = falsify(
            &checked,
            &prop.name,
            &FalsifyOptions {
                max_exchanges: 3,
                max_states: 3_000,
                domain_per_type: 2,
            },
        ) {
            return Err(format!(
                "seed {seed}: {} PROVED but falsified:\n{cx}\nprogram:\n{program}",
                prop.name
            ));
        }
    }
    // (3) Random runs satisfy every proved property.
    let proved: Vec<_> = program
        .properties
        .iter()
        .filter(|p| {
            prove(&checked, &p.name, &options)
                .map(|o| o.is_proved())
                .unwrap_or(false)
        })
        .cloned()
        .collect();
    let mut kernel = Interpreter::new(
        &checked,
        Registry::new(),
        Box::new(RandomWorld::new(seed)),
        seed,
    )
    .map_err(|e| e.to_string())?;
    let mut r = Rng(seed.rotate_left(7) | 1);
    for _ in 0..8 {
        let comps = kernel.components().to_vec();
        let comp = &comps[r.below(comps.len() as u64) as usize];
        let (msg, sig) = MSGS[r.below(3) as usize];
        let args: Vec<Value> = sig
            .iter()
            .map(|t| match t {
                Ty::Str => Value::from(STRINGS[r.below(3) as usize]),
                Ty::Num => Value::Num(r.below(3) as i64),
                _ => unreachable!("message payloads are str/num here"),
            })
            .collect();
        kernel
            .inject(comp.id, Msg::new(msg, args))
            .map_err(|e| e.to_string())?;
        kernel.step().map_err(|e| e.to_string())?;
    }
    kernel.run(64).map_err(|e| e.to_string())?;
    reflex::runtime::oracle::check_trace_inclusion(&checked, kernel.trace())
        .map_err(|e| format!("seed {seed}: {e}\nprogram:\n{program}"))?;
    for p in &proved {
        if let reflex::ast::PropBody::Trace(tp) = &p.body {
            check_trace(kernel.trace(), tp).map_err(|e| {
                format!(
                    "seed {seed}: proved {} violated at runtime: {e}\ntrace:\n{}\nprogram:\n{program}",
                    p.name,
                    kernel.trace()
                )
            })?;
        }
    }
    Ok(())
}

/// Shared-cache and parallel-prover agreement on one random program: the
/// cross-property cache must never flip an outcome, and the parallel
/// driver must reproduce the serial run exactly.
fn agreement_one(seed: u64) -> Result<(), String> {
    use reflex::verify::{prove_all, prove_all_parallel};
    let program = gen_program(seed);
    let Ok(checked) = reflex::typeck::check(&program) else {
        return Ok(()); // generator occasionally types badly; skip
    };
    let cache_on = ProverOptions::default();
    let cache_off = ProverOptions {
        shared_cache: false,
        ..ProverOptions::default()
    };
    let serial = prove_all(&checked, &cache_on);
    let parallel = prove_all_parallel(&checked, &cache_on, 3);
    let uncached = prove_all(&checked, &cache_off);
    for (((name, a), (_, b)), (_, c)) in serial.iter().zip(&parallel).zip(&uncached) {
        // Parallel vs serial: identical outcomes, certificates included.
        match (a.certificate(), b.certificate()) {
            (Some(ca), Some(cb)) if ca == cb => {}
            (None, None) if a.failure() == b.failure() => {}
            _ => {
                return Err(format!(
                    "seed {seed}: parallel prover diverged on {name}\nprogram:\n{program}"
                ))
            }
        }
        // Cache on vs off: same proved set (certificate shapes may differ).
        if a.is_proved() != c.is_proved() {
            return Err(format!(
                "seed {seed}: shared cache changed the outcome of {name}\nprogram:\n{program}"
            ));
        }
        if let Some(cert) = a.certificate() {
            check_certificate(&checked, cert, &cache_on)
                .map_err(|e| format!("seed {seed}: {name}: cert rejected: {e}"))?;
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prover_is_sound_on_random_programs(seed in any::<u64>()) {
        fuzz_one(seed).unwrap_or_else(|e| panic!("{e}"));
    }

    #[test]
    fn shared_cache_and_parallelism_agree_on_random_programs(seed in any::<u64>()) {
        agreement_one(seed).unwrap_or_else(|e| panic!("{e}"));
    }
}

#[test]
fn fuzz_fixed_seeds() {
    // A deterministic sweep, independent of proptest's RNG, so CI always
    // covers the same ground.
    for seed in 0..64u64 {
        fuzz_one(seed).unwrap_or_else(|e| panic!("{e}"));
    }
}

#[test]
#[ignore]
fn fuzz_statistics() {
    let mut checked_ok = 0;
    let mut proved = 0;
    let mut failed = 0;
    let mut total_props = 0;
    for seed in 0..200u64 {
        let program = gen_program(seed);
        let Ok(checked) = reflex::typeck::check(&program) else {
            continue;
        };
        checked_ok += 1;
        let options = ProverOptions::default();
        for prop in &program.properties {
            total_props += 1;
            match prove(&checked, &prop.name, &options).unwrap().is_proved() {
                true => proved += 1,
                false => failed += 1,
            }
        }
    }
    println!("programs checked: {checked_ok}/200; properties: {total_props} ({proved} proved, {failed} unprovable)");
}
