//! Fault-path integration tests for the session engine: virtual-clock
//! budget determinism, and scripted read-EIO / fsync-fault schedules
//! driving a watch session through degrade → retry → re-attach.

use std::sync::Arc;

use reflex_driver::{
    BackoffPolicy, Event, MemorySink, NullSink, SessionConfig, VerifySession, WatchSession,
};
use reflex_verify::{FaultyFs, FsFault, FsFaultPlan, FsOp, ProverOptions, VerifyFs, VirtualClock};

fn checked(name: &str, source: &str) -> reflex_typeck::CheckedProgram {
    let program = reflex_parser::parse_program(name, source).expect("kernel parses");
    reflex_typeck::check(&program).expect("kernel typechecks")
}

fn session(config: SessionConfig) -> VerifySession {
    VerifySession::new(config).expect("session opens")
}

/// Under a [`VirtualClock`] the wall-clock budget is a pure function of
/// how many times the provers poll it, so the same budget must time out
/// the *same* property set on every run — no scheduling or machine-speed
/// dependence left.
#[test]
fn virtual_clock_budget_times_out_the_same_property_set_every_run() {
    let ssh = checked("ssh", reflex_kernels::ssh::SOURCE);
    let run = || {
        let report = session(SessionConfig {
            options: ProverOptions::default(),
            jobs: 1,
            budget_ms: Some(1),
            // 50µs per budget poll: a 1ms budget allows ~20 explored
            // paths before the simulated deadline passes.
            clock: Some(Arc::new(VirtualClock::new(50_000))),
            ..SessionConfig::default()
        })
        .verify_checked(&ssh, &NullSink)
        .expect("session completes despite the budget");
        report
            .outcomes
            .iter()
            .map(|(name, outcome)| (name.clone(), outcome.is_timeout()))
            .collect::<Vec<_>>()
    };

    let first = run();
    let second = run();
    assert!(!first.is_empty());
    assert_eq!(
        first, second,
        "a simulated deadline must be deterministic across runs"
    );
    assert!(
        first.iter().any(|(_, timed_out)| *timed_out),
        "a 1ms virtual budget (~20 polls) cannot finish ssh"
    );
}

/// Drives one watch session over `fs` through the canonical four
/// iterations — healthy, tolerated-faulty, degraded, re-attached — and
/// asserts no verdict is ever lost and the store events tell the story.
fn degrade_and_reattach(fs: &FaultyFs, dir: &std::path::Path) {
    let car = checked("car", reflex_kernels::car::SOURCE);
    let mut watch = WatchSession::new(SessionConfig {
        options: ProverOptions::default(),
        jobs: 1,
        store_dir: Some(dir.to_string_lossy().into_owned()),
        store_fs: Some(Arc::new(fs.clone()) as Arc<dyn VerifyFs>),
        ..SessionConfig::default()
    })
    .expect("healthy store opens")
    .with_backoff(BackoffPolicy {
        base_ms: 1,
        cap_ms: 2,
        retries: 2,
    });
    assert!(!watch.degraded());

    let sink = MemorySink::new();
    // 1: healthy store-backed iteration populates certificates.
    let it = watch.verify(&car, &sink).expect("iteration 1");
    assert!(!it.degraded);
    assert_eq!(it.failures(), 0);

    // 2: the scripted faults start firing. The iteration completes
    // (store errors are misses) and flags the store for a retry.
    fs.unheal();
    let it = watch.verify(&car, &sink).expect("iteration 2");
    assert!(!it.degraded, "one bad iteration is tolerated");
    assert_eq!(it.failures(), 0);

    // 3: the backoff probes hit the same faults, the store detaches.
    let it = watch.verify(&car, &sink).expect("iteration 3");
    assert!(it.degraded, "persistent faults must degrade");
    assert!(watch.degraded());
    assert_eq!(it.failures(), 0, "degraded mode loses no verdicts");

    // 4: the disk heals; the probe passes and the store re-attaches.
    fs.heal();
    let it = watch.verify(&car, &sink).expect("iteration 4");
    assert!(!it.degraded, "a healthy store must re-attach");
    assert!(!watch.degraded());
    assert_eq!(it.failures(), 0);

    assert!(fs.injected() > 0, "the scripted schedule must have fired");
    let (mut retries, mut degraded, mut recovered) = (0, 0, 0);
    for event in sink.events() {
        match event {
            Event::StoreRetry { .. } => retries += 1,
            Event::StoreDegraded { .. } => degraded += 1,
            Event::StoreRecovered => recovered += 1,
            _ => {}
        }
    }
    assert_eq!(retries, 2, "both backoff probes fired");
    assert_eq!(degraded, 1);
    assert_eq!(recovered, 1);
}

/// A disk whose every *read* fails with EIO must push the watch loop
/// through degrade and re-attach: the certificate loads and the probe's
/// read-back all miss, while writes keep landing.
#[test]
fn scripted_read_eio_faults_degrade_then_reattach_the_watch_store() {
    let dir = std::env::temp_dir().join(format!("rx-watch-eio-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let fs = FaultyFs::new(FsFaultPlan::Scripted(
        (0..4096)
            .map(|n| (FsOp::Read, n, FsFault::ReadEio))
            .collect(),
    ));
    fs.heal(); // start with a healthy disk; `unheal` arms the schedule
    degrade_and_reattach(&fs, &dir);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A disk whose every *fsync* fails must likewise degrade and re-attach:
/// reads stay fine, but every framed write (head records, probe entries)
/// loses its durability barrier and is rolled back.
#[test]
fn scripted_fsync_faults_degrade_then_reattach_the_watch_store() {
    let dir = std::env::temp_dir().join(format!("rx-watch-fsync-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let fs = FaultyFs::new(FsFaultPlan::Scripted(
        (0..4096)
            .map(|n| (FsOp::Sync, n, FsFault::SyncFail))
            .collect(),
    ));
    fs.heal();
    degrade_and_reattach(&fs, &dir);
    let _ = std::fs::remove_dir_all(&dir);
}
