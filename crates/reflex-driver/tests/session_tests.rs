//! Integration tests for the `VerifySession` pipeline engine: budget
//! expiry, event-count determinism across worker counts, in-memory watch
//! reuse, and batch verification.

use reflex_driver::{
    BatchItem, Event, MemorySink, NullSink, PropertyStatus, SessionBatch, SessionConfig,
    VerifySession, WatchSession,
};
use reflex_verify::ProverOptions;

fn checked(name: &str, source: &str) -> reflex_typeck::CheckedProgram {
    let program = reflex_parser::parse_program(name, source).expect("kernel parses");
    reflex_typeck::check(&program).expect("kernel typechecks")
}

fn session(config: SessionConfig) -> VerifySession {
    VerifySession::new(config).expect("session opens")
}

/// An exhausted wall-clock budget must stop every property with
/// `Outcome::Timeout` — never hang, never report a plain failure.
#[test]
fn expired_wall_clock_budget_reports_timeout_for_every_property() {
    let car = checked("car", reflex_kernels::car::SOURCE);
    let sink = MemorySink::new();
    let report = session(SessionConfig {
        options: ProverOptions::default(),
        jobs: 1,
        budget_ms: Some(0),
        ..SessionConfig::default()
    })
    .verify_checked(&car, &sink)
    .expect("session completes despite the budget");

    assert!(!report.outcomes.is_empty());
    assert_eq!(
        report.timeouts(),
        report.outcomes.len(),
        "all must time out"
    );
    assert_eq!(report.proved(), 0);
    for (name, outcome) in &report.outcomes {
        assert!(outcome.is_timeout(), "{name} should be a timeout");
        let reason = outcome.failure().expect("timeout carries a reason");
        assert!(
            reason.reason.contains("budget"),
            "{name}: reason should mention the budget: {}",
            reason.reason
        );
    }
    // The sink saw the same story.
    let statuses: Vec<_> = sink
        .properties()
        .iter()
        .filter_map(|e| match e {
            Event::Property { status, .. } => Some(*status),
            _ => None,
        })
        .collect();
    assert_eq!(statuses.len(), report.outcomes.len());
    assert!(statuses.iter().all(|s| *s == PropertyStatus::Timeout));
}

/// A node budget too small for real proof search must surface as timeouts,
/// and the session must still terminate with a report.
#[test]
fn tiny_node_budget_reports_timeouts_not_hangs() {
    let ssh = checked("ssh", reflex_kernels::ssh::SOURCE);
    let report = session(SessionConfig {
        options: ProverOptions::default(),
        jobs: 2,
        budget_nodes: Some(1),
        ..SessionConfig::default()
    })
    .verify_checked(&ssh, &NullSink)
    .expect("session completes despite the budget");

    assert!(report.timeouts() > 0, "a 1-node budget cannot prove ssh");
    assert_eq!(
        report.failures(),
        report.outcomes.len() - report.proved(),
        "timeouts count as failures"
    );
}

/// Serial and parallel runs must emit the same *events* (same properties,
/// same statuses, same obligation counts) — only timings may differ — and
/// byte-identical certificates.
#[test]
fn event_counts_and_certificates_match_across_job_counts() {
    let car = checked("car", reflex_kernels::car::SOURCE);

    let run = |jobs: usize| {
        let sink = MemorySink::new();
        let report = session(SessionConfig {
            options: ProverOptions::default(),
            jobs,
            ..SessionConfig::default()
        })
        .verify_checked(&car, &sink)
        .expect("car verifies");
        (report, sink)
    };
    let (serial, serial_sink) = run(1);
    let (parallel, parallel_sink) = run(8);

    assert_eq!(
        serial_sink.len(),
        parallel_sink.len(),
        "event counts differ"
    );

    let rows = |sink: &MemorySink| {
        let mut v: Vec<(String, PropertyStatus, usize)> = sink
            .properties()
            .iter()
            .filter_map(|e| match e {
                Event::Property {
                    name,
                    status,
                    obligations,
                    ..
                } => Some((name.clone(), *status, *obligations)),
                _ => None,
            })
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    };
    assert_eq!(rows(&serial_sink), rows(&parallel_sink));

    // Certificates must be byte-identical, not merely equivalent.
    assert_eq!(serial.outcomes.len(), parallel.outcomes.len());
    for ((name_s, out_s), (name_p, out_p)) in serial.outcomes.iter().zip(&parallel.outcomes) {
        assert_eq!(name_s, name_p, "property order must be declaration order");
        assert_eq!(
            out_s.certificate(),
            out_p.certificate(),
            "{name_s}: serial and parallel certificates differ"
        );
    }
}

/// The in-memory watch loop: iteration one proves from scratch, iteration
/// two (unchanged program) reuses every certificate in full.
#[test]
fn watch_session_reuses_certificates_across_iterations() {
    let car = checked("car", reflex_kernels::car::SOURCE);
    let mut watch = WatchSession::new(SessionConfig {
        options: ProverOptions::default(),
        jobs: 1,
        ..SessionConfig::default()
    })
    .expect("watch session opens");

    let first = watch.verify(&car, &NullSink).expect("first iteration");
    assert_eq!(first.failures(), 0);
    assert!(first.report.reused.is_empty(), "nothing to reuse yet");

    let second = watch.verify(&car, &NullSink).expect("second iteration");
    assert_eq!(second.failures(), 0);
    assert_eq!(
        second.report.reused.len(),
        second.report.outcomes.len(),
        "an unchanged program must reuse every proof: {:?}",
        second.report.summary()
    );
}

/// A batch verifies distinct kernels concurrently, one report each, in
/// input order — and the per-program cache namespacing keeps their
/// packages from cross-contaminating.
#[test]
fn batch_verifies_many_kernels_in_input_order() {
    let batch = SessionBatch::new(SessionConfig {
        options: ProverOptions::default(),
        jobs: 4,
        ..SessionConfig::default()
    })
    .expect("batch opens");
    let items = vec![
        BatchItem {
            name: "car".to_owned(),
            source: reflex_kernels::car::SOURCE.to_owned(),
        },
        BatchItem {
            name: "ssh".to_owned(),
            source: reflex_kernels::ssh::SOURCE.to_owned(),
        },
    ];
    let reports = batch.verify(&items, &NullSink);
    assert_eq!(reports.len(), 2);
    for (item, report) in items.iter().zip(&reports) {
        let report = report.as_ref().expect("kernel verifies");
        assert_eq!(report.program, item.name);
        assert_eq!(report.failures(), 0, "{}: {}", item.name, report.summary());
    }
}

/// Asking for a property that does not exist is a session error, not a
/// silent empty report.
#[test]
fn unknown_property_filter_is_an_error() {
    let car = checked("car", reflex_kernels::car::SOURCE);
    let err = session(SessionConfig {
        options: ProverOptions::default(),
        jobs: 1,
        property: Some("NoSuchThing".to_owned()),
        ..SessionConfig::default()
    })
    .verify_checked(&car, &NullSink)
    .expect_err("must refuse an unknown property");
    assert!(err.to_string().contains("NoSuchThing"), "{err}");
}

/// A store that starts failing mid-loop must degrade the watch session
/// to in-memory caching (after capped-backoff retries) without losing a
/// single verdict, and re-attach the moment the disk heals.
#[test]
fn watch_session_degrades_and_recovers_on_store_failure() {
    use std::sync::Arc;

    use reflex_driver::BackoffPolicy;
    use reflex_verify::{FaultyFs, VerifyFs};

    let car = checked("car", reflex_kernels::car::SOURCE);
    let dir = std::env::temp_dir().join(format!("rx-watch-degrade-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Every operation faults while unhealed; healed it is a passthrough.
    let fs = FaultyFs::seeded(0, 1_000_000);
    fs.heal();

    let mut watch = WatchSession::new(SessionConfig {
        options: ProverOptions::default(),
        jobs: 1,
        store_dir: Some(dir.to_string_lossy().into_owned()),
        store_fs: Some(Arc::new(fs.clone()) as Arc<dyn VerifyFs>),
        ..SessionConfig::default()
    })
    .expect("healthy store opens")
    .with_backoff(BackoffPolicy {
        base_ms: 1,
        cap_ms: 2,
        retries: 2,
    });
    assert!(!watch.degraded());

    let sink = MemorySink::new();
    // 1: healthy store-backed iteration.
    let it = watch.verify(&car, &sink).expect("iteration 1");
    assert!(!it.degraded);
    assert_eq!(it.failures(), 0);

    // 2: the disk starts failing. The iteration still completes (errors
    // are misses) and flags the store for a retry.
    fs.unheal();
    let it = watch.verify(&car, &sink).expect("iteration 2");
    assert!(!it.degraded, "one bad iteration is tolerated");
    assert_eq!(it.failures(), 0);

    // 3: retries fail, the store detaches, the iteration runs degraded on
    // the in-memory carry.
    let it = watch.verify(&car, &sink).expect("iteration 3");
    assert!(it.degraded, "persistent failure must degrade");
    assert!(watch.degraded());
    assert!(watch.degraded_reason().is_some());
    assert_eq!(it.failures(), 0, "degraded mode loses no verdicts");
    assert!(it.summary().contains("DEGRADED"));

    // 4: the disk heals; the store is re-attached before the iteration.
    fs.heal();
    let it = watch.verify(&car, &sink).expect("iteration 4");
    assert!(!it.degraded, "a healthy store must re-attach");
    assert!(!watch.degraded());
    assert_eq!(it.failures(), 0);

    let (mut retries, mut degraded, mut recovered) = (0, 0, 0);
    for event in sink.events() {
        match event {
            Event::StoreRetry { .. } => retries += 1,
            Event::StoreDegraded { .. } => degraded += 1,
            Event::StoreRecovered => recovered += 1,
            _ => {}
        }
    }
    assert_eq!(retries, 2, "both backoff probes fired");
    assert_eq!(degraded, 1);
    assert_eq!(recovered, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A proof task that panics must be isolated as `Outcome::Crashed` —
/// never torn down the session or poisoned its siblings — and classified
/// identically whether the fan-out runs on one worker or eight. The
/// siblings must still prove with certificates the independent checker
/// accepts.
#[test]
fn injected_panic_is_isolated_and_deterministic_across_job_counts() {
    const VICTIM: &str = "NoLockAfterCrash";
    let car = checked("car", reflex_kernels::car::SOURCE);

    let run = |jobs: usize| {
        let sink = MemorySink::new();
        let report = session(SessionConfig {
            options: ProverOptions {
                panic_on: Some(VICTIM.to_owned()),
                ..ProverOptions::default()
            },
            jobs,
            ..SessionConfig::default()
        })
        .verify_checked(&car, &sink)
        .expect("the session survives a panicking proof task");
        (report, sink)
    };
    let (serial, serial_sink) = run(1);
    let (parallel, parallel_sink) = run(8);

    for (label, report) in [("serial", &serial), ("parallel", &parallel)] {
        assert_eq!(report.crashes(), 1, "{label}: exactly one crash");
        assert_eq!(
            report.proved(),
            report.outcomes.len() - 1,
            "{label}: every sibling still proves"
        );
        for (name, outcome) in &report.outcomes {
            if name == VICTIM {
                assert!(outcome.is_crashed(), "{label}: {name} must be Crashed");
                let failure = outcome.failure().expect("a crash carries a reason");
                assert!(
                    failure.reason.contains("panicked"),
                    "{label}: crash reason should mention the panic: {}",
                    failure.reason
                );
            } else {
                // The session already validated these; re-check anyway so
                // this test stands alone.
                let cert = outcome
                    .certificate()
                    .unwrap_or_else(|| panic!("{label}: {name} should have proved"));
                reflex_verify::check_certificate(&car, cert, &ProverOptions::default())
                    .unwrap_or_else(|e| panic!("{label}: {name}: {e}"));
            }
        }
    }

    // Identical classification and identical certificates across worker
    // counts — a crash is a deterministic verdict, not a race artifact.
    for ((n1, o1), (n2, o2)) in serial.outcomes.iter().zip(&parallel.outcomes) {
        assert_eq!(n1, n2);
        assert_eq!(o1.is_crashed(), o2.is_crashed(), "{n1}");
        assert_eq!(o1.certificate(), o2.certificate(), "{n1}");
        assert_eq!(
            o1.failure().map(|f| f.reason.clone()),
            o2.failure().map(|f| f.reason.clone()),
            "{n1}: crash reasons must match"
        );
    }

    // Both sinks told the same story: one crashed property event, the
    // rest proved.
    for sink in [&serial_sink, &parallel_sink] {
        let crashed = sink
            .properties()
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    Event::Property {
                        status: PropertyStatus::Crashed,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(crashed, 1);
    }
}
