//! Integration tests for the `VerifySession` pipeline engine: budget
//! expiry, event-count determinism across worker counts, in-memory watch
//! reuse, and batch verification.

use reflex_driver::{
    BatchItem, Event, MemorySink, NullSink, PropertyStatus, SessionBatch, SessionConfig,
    VerifySession, WatchSession,
};
use reflex_verify::ProverOptions;

fn checked(name: &str, source: &str) -> reflex_typeck::CheckedProgram {
    let program = reflex_parser::parse_program(name, source).expect("kernel parses");
    reflex_typeck::check(&program).expect("kernel typechecks")
}

fn session(config: SessionConfig) -> VerifySession {
    VerifySession::new(config).expect("session opens")
}

/// An exhausted wall-clock budget must stop every property with
/// `Outcome::Timeout` — never hang, never report a plain failure.
#[test]
fn expired_wall_clock_budget_reports_timeout_for_every_property() {
    let car = checked("car", reflex_kernels::car::SOURCE);
    let sink = MemorySink::new();
    let report = session(SessionConfig {
        options: ProverOptions::default(),
        jobs: 1,
        budget_ms: Some(0),
        ..SessionConfig::default()
    })
    .verify_checked(&car, &sink)
    .expect("session completes despite the budget");

    assert!(!report.outcomes.is_empty());
    assert_eq!(
        report.timeouts(),
        report.outcomes.len(),
        "all must time out"
    );
    assert_eq!(report.proved(), 0);
    for (name, outcome) in &report.outcomes {
        assert!(outcome.is_timeout(), "{name} should be a timeout");
        let reason = outcome.failure().expect("timeout carries a reason");
        assert!(
            reason.reason.contains("budget"),
            "{name}: reason should mention the budget: {}",
            reason.reason
        );
    }
    // The sink saw the same story.
    let statuses: Vec<_> = sink
        .properties()
        .iter()
        .filter_map(|e| match e {
            Event::Property { status, .. } => Some(*status),
            _ => None,
        })
        .collect();
    assert_eq!(statuses.len(), report.outcomes.len());
    assert!(statuses.iter().all(|s| *s == PropertyStatus::Timeout));
}

/// A node budget too small for real proof search must surface as timeouts,
/// and the session must still terminate with a report.
#[test]
fn tiny_node_budget_reports_timeouts_not_hangs() {
    let ssh = checked("ssh", reflex_kernels::ssh::SOURCE);
    let report = session(SessionConfig {
        options: ProverOptions::default(),
        jobs: 2,
        budget_nodes: Some(1),
        ..SessionConfig::default()
    })
    .verify_checked(&ssh, &NullSink)
    .expect("session completes despite the budget");

    assert!(report.timeouts() > 0, "a 1-node budget cannot prove ssh");
    assert_eq!(
        report.failures(),
        report.outcomes.len() - report.proved(),
        "timeouts count as failures"
    );
}

/// Serial and parallel runs must emit the same *events* (same properties,
/// same statuses, same obligation counts) — only timings may differ — and
/// byte-identical certificates.
#[test]
fn event_counts_and_certificates_match_across_job_counts() {
    let car = checked("car", reflex_kernels::car::SOURCE);

    let run = |jobs: usize| {
        let sink = MemorySink::new();
        let report = session(SessionConfig {
            options: ProverOptions::default(),
            jobs,
            ..SessionConfig::default()
        })
        .verify_checked(&car, &sink)
        .expect("car verifies");
        (report, sink)
    };
    let (serial, serial_sink) = run(1);
    let (parallel, parallel_sink) = run(8);

    assert_eq!(
        serial_sink.len(),
        parallel_sink.len(),
        "event counts differ"
    );

    let rows = |sink: &MemorySink| {
        let mut v: Vec<(String, PropertyStatus, usize)> = sink
            .properties()
            .iter()
            .filter_map(|e| match e {
                Event::Property {
                    name,
                    status,
                    obligations,
                    ..
                } => Some((name.clone(), *status, *obligations)),
                _ => None,
            })
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    };
    assert_eq!(rows(&serial_sink), rows(&parallel_sink));

    // Certificates must be byte-identical, not merely equivalent.
    assert_eq!(serial.outcomes.len(), parallel.outcomes.len());
    for ((name_s, out_s), (name_p, out_p)) in serial.outcomes.iter().zip(&parallel.outcomes) {
        assert_eq!(name_s, name_p, "property order must be declaration order");
        assert_eq!(
            out_s.certificate(),
            out_p.certificate(),
            "{name_s}: serial and parallel certificates differ"
        );
    }
}

/// The in-memory watch loop: iteration one proves from scratch, iteration
/// two (unchanged program) reuses every certificate in full.
#[test]
fn watch_session_reuses_certificates_across_iterations() {
    let car = checked("car", reflex_kernels::car::SOURCE);
    let mut watch = WatchSession::new(SessionConfig {
        options: ProverOptions::default(),
        jobs: 1,
        ..SessionConfig::default()
    })
    .expect("watch session opens");

    let first = watch.verify(&car, &NullSink).expect("first iteration");
    assert_eq!(first.failures(), 0);
    assert!(first.report.reused.is_empty(), "nothing to reuse yet");

    let second = watch.verify(&car, &NullSink).expect("second iteration");
    assert_eq!(second.failures(), 0);
    assert_eq!(
        second.report.reused.len(),
        second.report.outcomes.len(),
        "an unchanged program must reuse every proof: {:?}",
        second.report.summary()
    );
}

/// A batch verifies distinct kernels concurrently, one report each, in
/// input order — and the per-program cache namespacing keeps their
/// packages from cross-contaminating.
#[test]
fn batch_verifies_many_kernels_in_input_order() {
    let batch = SessionBatch::new(SessionConfig {
        options: ProverOptions::default(),
        jobs: 4,
        ..SessionConfig::default()
    })
    .expect("batch opens");
    let items = vec![
        BatchItem {
            name: "car".to_owned(),
            source: reflex_kernels::car::SOURCE.to_owned(),
        },
        BatchItem {
            name: "ssh".to_owned(),
            source: reflex_kernels::ssh::SOURCE.to_owned(),
        },
    ];
    let reports = batch.verify(&items, &NullSink);
    assert_eq!(reports.len(), 2);
    for (item, report) in items.iter().zip(&reports) {
        let report = report.as_ref().expect("kernel verifies");
        assert_eq!(report.program, item.name);
        assert_eq!(report.failures(), 0, "{}: {}", item.name, report.summary());
    }
}

/// Asking for a property that does not exist is a session error, not a
/// silent empty report.
#[test]
fn unknown_property_filter_is_an_error() {
    let car = checked("car", reflex_kernels::car::SOURCE);
    let err = session(SessionConfig {
        options: ProverOptions::default(),
        jobs: 1,
        property: Some("NoSuchThing".to_owned()),
        ..SessionConfig::default()
    })
    .verify_checked(&car, &NullSink)
    .expect_err("must refuse an unknown property");
    assert!(err.to_string().contains("NoSuchThing"), "{err}");
}
