//! Structured per-stage instrumentation for [`crate::VerifySession`].
//!
//! The session engine narrates its run as a stream of [`Event`]s — stage
//! boundaries with wall time, per-property outcomes, and a final counter
//! block (paths explored, cache and store hits, solver memo traffic) —
//! into an [`Instrument`] sink chosen by the caller:
//!
//! * [`HumanSink`] — readable one-line-per-event text, for terminals;
//! * [`JsonLinesSink`] — one self-contained JSON object per line, for
//!   `rx verify --trace-json` and machine consumers;
//! * [`MemorySink`] — an in-memory event log, for tests and the benchmark
//!   harness (which reads counters out of it instead of private structs);
//! * [`NullSink`] — discards everything (the default).
//!
//! Events are *facts about the run*, not rendering: every sink sees the
//! same stream, so the human text, the JSON trace and the benchmark
//! tables can never drift apart. Property events may be emitted from
//! worker threads in completion order; stage events are always emitted
//! from the session thread in pipeline order. Event **counts** (not
//! timings) are deterministic for a given input and configuration,
//! regardless of `--jobs` — CI diffs serial vs parallel traces on exactly
//! that.

use std::io::Write;
use std::sync::Mutex;

/// The fixed stages of the verification pipeline, in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Reading the kernel source from disk (skipped for in-memory input).
    Load,
    /// Parsing the source into an AST.
    Parse,
    /// Type-checking the AST.
    Typecheck,
    /// Building the behavioral abstraction and planning proof reuse
    /// (loading store candidates, diffing dependency fingerprints).
    Plan,
    /// Proof search and certificate checking.
    Prove,
    /// Writing certificates back to the proof store.
    Persist,
    /// Assembling the session report and counter block.
    Report,
}

impl Stage {
    /// Stable lower-case name used in event streams.
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Load => "load",
            Stage::Parse => "parse",
            Stage::Typecheck => "typecheck",
            Stage::Plan => "plan",
            Stage::Prove => "prove",
            Stage::Persist => "persist",
            Stage::Report => "report",
        }
    }
}

/// How one property's verification ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PropertyStatus {
    /// Proved, certificate in hand.
    Proved,
    /// The proof search failed (the property may still be false or just
    /// beyond the automation).
    Failed,
    /// Stopped by the session budget.
    Timeout,
    /// Stopped by an explicit cancellation request (see
    /// [`reflex_verify::Outcome::Cancelled`]).
    Cancelled,
    /// The proof task panicked and was isolated (see
    /// [`reflex_verify::Outcome::Crashed`]).
    Crashed,
}

impl PropertyStatus {
    /// Stable lower-case name used in event streams.
    pub fn as_str(self) -> &'static str {
        match self {
            PropertyStatus::Proved => "proved",
            PropertyStatus::Failed => "failed",
            PropertyStatus::Timeout => "timeout",
            PropertyStatus::Cancelled => "cancelled",
            PropertyStatus::Crashed => "crashed",
        }
    }
}

/// The counter block emitted once per session, after the prove stage.
///
/// All counters are scoped to the session (assembled from deltas of the
/// process-wide atomics), except `interned_terms`, which reports the
/// interner's live size — it is shared state by design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Counters {
    /// Symbolic path segments analyzed.
    pub paths_explored: u64,
    /// Cross-property proof-cache hits (invariants + lemmas).
    pub cache_hits: u64,
    /// Cross-property proof-cache misses (invariants + lemmas).
    pub cache_misses: u64,
    /// Solver entailment queries issued.
    pub solver_queries: u64,
    /// Entailment queries answered from the global memo table.
    pub solver_memo_hits: u64,
    /// Distinct hash-consed term nodes alive in the interner.
    pub interned_terms: u64,
    /// Certificates loaded from the proof store.
    pub store_loaded: u64,
    /// Certificates written back to the proof store.
    pub store_saved: u64,
}

/// One structured fact about a session run.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// The session started on the named program.
    SessionStart {
        /// Program name.
        program: String,
        /// Resolved worker-thread count.
        jobs: usize,
    },
    /// A pipeline stage began.
    StageStart {
        /// Which stage.
        stage: Stage,
    },
    /// A pipeline stage finished.
    StageFinish {
        /// Which stage.
        stage: Stage,
        /// Stage wall-clock, milliseconds.
        wall_ms: f64,
    },
    /// One property's outcome was decided (possibly on a worker thread,
    /// in completion order).
    Property {
        /// Property name.
        name: String,
        /// How it ended.
        status: PropertyStatus,
        /// How the outcome was obtained, when proof reuse was in play
        /// (`"full"`, `"partial"`, `"reproved"`; `None` for plain proving).
        reuse: Option<&'static str>,
        /// Discharged obligations in the certificate (0 if not proved).
        obligations: usize,
        /// Proof-search wall-clock for this property, milliseconds.
        wall_ms: f64,
    },
    /// The session's counter block (once, after proving).
    Counters(Counters),
    /// The session finished.
    SessionFinish {
        /// Properties proved.
        proved: usize,
        /// Properties whose proof search failed.
        failed: usize,
        /// Properties stopped by the budget.
        timeout: usize,
        /// Proof tasks that panicked and were isolated.
        crashed: usize,
        /// Whole-session wall-clock, milliseconds.
        wall_ms: f64,
    },
    /// The watch loop is retrying the proof store after a transient I/O
    /// error, before the backoff sleep.
    StoreRetry {
        /// 1-based retry attempt.
        attempt: u32,
        /// Backoff sleep before this attempt, milliseconds.
        delay_ms: u64,
    },
    /// The proof store failed repeatedly; the watch loop detached it and
    /// dropped to in-memory caching.
    StoreDegraded {
        /// The last I/O failure that tripped the degradation.
        reason: String,
    },
    /// A previously degraded store responded to a health probe and was
    /// re-attached.
    StoreRecovered,
}

impl Event {
    /// Renders the event as one self-contained JSON object (no trailing
    /// newline). Timings are rounded to 0.1 ms; counts are exact.
    pub fn to_json(&self) -> String {
        match self {
            Event::SessionStart { program, jobs } => format!(
                r#"{{"event":"session_start","program":{},"jobs":{jobs}}}"#,
                json_string(program)
            ),
            Event::StageStart { stage } => {
                format!(r#"{{"event":"stage_start","stage":"{}"}}"#, stage.as_str())
            }
            Event::StageFinish { stage, wall_ms } => format!(
                r#"{{"event":"stage_finish","stage":"{}","wall_ms":{:.1}}}"#,
                stage.as_str(),
                wall_ms
            ),
            Event::Property {
                name,
                status,
                reuse,
                obligations,
                wall_ms,
            } => {
                let reuse = match reuse {
                    Some(r) => format!(r#""{r}""#),
                    None => "null".to_owned(),
                };
                format!(
                    r#"{{"event":"property","name":{},"status":"{}","reuse":{reuse},"obligations":{obligations},"wall_ms":{:.1}}}"#,
                    json_string(name),
                    status.as_str(),
                    wall_ms
                )
            }
            Event::Counters(c) => format!(
                r#"{{"event":"counters","paths_explored":{},"cache_hits":{},"cache_misses":{},"solver_queries":{},"solver_memo_hits":{},"interned_terms":{},"store_loaded":{},"store_saved":{}}}"#,
                c.paths_explored,
                c.cache_hits,
                c.cache_misses,
                c.solver_queries,
                c.solver_memo_hits,
                c.interned_terms,
                c.store_loaded,
                c.store_saved
            ),
            Event::SessionFinish {
                proved,
                failed,
                timeout,
                crashed,
                wall_ms,
            } => format!(
                r#"{{"event":"session_finish","proved":{proved},"failed":{failed},"timeout":{timeout},"crashed":{crashed},"wall_ms":{:.1}}}"#,
                wall_ms
            ),
            Event::StoreRetry { attempt, delay_ms } => {
                format!(r#"{{"event":"store_retry","attempt":{attempt},"delay_ms":{delay_ms}}}"#)
            }
            Event::StoreDegraded { reason } => format!(
                r#"{{"event":"store_degraded","reason":{}}}"#,
                json_string(reason)
            ),
            Event::StoreRecovered => r#"{"event":"store_recovered"}"#.to_owned(),
        }
    }

    /// Renders the event as one human-readable line (no trailing newline).
    pub fn to_human(&self) -> String {
        match self {
            Event::SessionStart { program, jobs } => {
                format!("session {program}: starting ({jobs} job(s))")
            }
            Event::StageStart { stage } => format!("stage {}: start", stage.as_str()),
            Event::StageFinish { stage, wall_ms } => {
                format!("stage {}: done in {wall_ms:.1} ms", stage.as_str())
            }
            Event::Property {
                name,
                status,
                reuse,
                obligations,
                wall_ms,
            } => {
                let reuse = reuse.map(|r| format!(", {r}")).unwrap_or_default();
                format!(
                    "property {name}: {} ({obligations} obligations{reuse}) in {wall_ms:.1} ms",
                    status.as_str()
                )
            }
            Event::Counters(c) => format!(
                "counters: {} paths, cache {}/{} hit/miss, solver {} queries ({} memo hits), {} interned terms, store {} loaded / {} saved",
                c.paths_explored,
                c.cache_hits,
                c.cache_misses,
                c.solver_queries,
                c.solver_memo_hits,
                c.interned_terms,
                c.store_loaded,
                c.store_saved
            ),
            Event::SessionFinish {
                proved,
                failed,
                timeout,
                crashed,
                wall_ms,
            } => format!(
                "session finished: {proved} proved, {failed} failed, {timeout} timed out, {crashed} crashed in {wall_ms:.1} ms"
            ),
            Event::StoreRetry { attempt, delay_ms } => {
                format!("store: transient I/O error, retry #{attempt} after {delay_ms} ms")
            }
            Event::StoreDegraded { reason } => {
                format!("store: DEGRADED to in-memory caching ({reason})")
            }
            Event::StoreRecovered => "store: recovered, re-attached".to_owned(),
        }
    }
}

/// Encodes a string as a JSON string literal (with quotes).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A sink for session events.
///
/// Implementations must be `Sync`: property events may arrive from worker
/// threads concurrently.
pub trait Instrument: Sync {
    /// Receives one event. Must not panic; slow sinks slow the session.
    fn event(&self, event: &Event);
}

/// Discards every event.
#[derive(Debug, Default)]
pub struct NullSink;

impl Instrument for NullSink {
    fn event(&self, _event: &Event) {}
}

/// Writes one human-readable text line per event.
pub struct HumanSink<W: Write + Send> {
    out: Mutex<W>,
}

impl<W: Write + Send> HumanSink<W> {
    /// A sink writing to `out` (stderr, a file, a buffer…).
    pub fn new(out: W) -> Self {
        HumanSink {
            out: Mutex::new(out),
        }
    }

    /// Consumes the sink, returning the writer.
    pub fn into_inner(self) -> W {
        self.out.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<W: Write + Send> Instrument for HumanSink<W> {
    fn event(&self, event: &Event) {
        if let Ok(mut out) = self.out.lock() {
            let _ = writeln!(out, "{}", event.to_human());
        }
    }
}

/// Writes one JSON object per line per event (JSON Lines).
pub struct JsonLinesSink<W: Write + Send> {
    out: Mutex<W>,
}

impl<W: Write + Send> JsonLinesSink<W> {
    /// A sink writing to `out`.
    pub fn new(out: W) -> Self {
        JsonLinesSink {
            out: Mutex::new(out),
        }
    }

    /// Consumes the sink, returning the writer.
    pub fn into_inner(self) -> W {
        self.out.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<W: Write + Send> Instrument for JsonLinesSink<W> {
    fn event(&self, event: &Event) {
        if let Ok(mut out) = self.out.lock() {
            let _ = writeln!(out, "{}", event.to_json());
        }
    }
}

/// Records every event in memory, for tests and the benchmark harness.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// A snapshot of the events recorded so far.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().map(|e| e.clone()).unwrap_or_default()
    }

    /// The recorded property events, in completion order.
    pub fn properties(&self) -> Vec<Event> {
        self.events()
            .into_iter()
            .filter(|e| matches!(e, Event::Property { .. }))
            .collect()
    }

    /// The session's counter block, if the run got far enough to emit it.
    pub fn counters(&self) -> Option<Counters> {
        self.events().into_iter().rev().find_map(|e| match e {
            Event::Counters(c) => Some(c),
            _ => None,
        })
    }

    /// Total events recorded.
    pub fn len(&self) -> usize {
        self.events.lock().map(|e| e.len()).unwrap_or(0)
    }

    /// Whether no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Instrument for MemorySink {
    fn event(&self, event: &Event) {
        if let Ok(mut events) = self.events.lock() {
            events.push(event.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_lines_are_self_contained_objects() {
        let e = Event::Property {
            name: "a \"quoted\" prop".into(),
            status: PropertyStatus::Proved,
            reuse: Some("full"),
            obligations: 3,
            wall_ms: 1.25,
        };
        let json = e.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains(r#"\"quoted\""#));
        assert!(json.contains(r#""reuse":"full""#));
    }

    #[test]
    fn memory_sink_records_in_order() {
        let sink = MemorySink::new();
        sink.event(&Event::StageStart { stage: Stage::Load });
        sink.event(&Event::StageFinish {
            stage: Stage::Load,
            wall_ms: 0.5,
        });
        let events = sink.events();
        assert_eq!(events.len(), 2);
        assert!(matches!(
            events[0],
            Event::StageStart { stage: Stage::Load }
        ));
    }
}
