//! The edit-verify loop: repeated [`VerifySession`] runs that carry
//! certificates forward from one iteration to the next.
//!
//! With a proof store configured the carrying is done by the store itself
//! (certificates persist across processes); without one, the session
//! keeps the previous iteration's certificates in memory and hands them
//! to the incremental planner each round.

use reflex_typeck::CheckedProgram;
use reflex_verify::certificate::Certificate;

use crate::{Instrument, SessionConfig, SessionError, SessionReport, VerifySession};

/// A long-lived verification session for the watch loop.
#[derive(Debug)]
pub struct WatchSession {
    session: VerifySession,
    store_mode: bool,
    previous: Vec<(String, Certificate)>,
}

/// The result of one watch iteration.
#[derive(Debug)]
pub struct WatchIteration {
    /// The underlying session report.
    pub report: SessionReport,
}

impl WatchSession {
    /// Creates a session. With `store_dir` set in the config, certificates
    /// are reused through the proof store; otherwise they are carried
    /// in memory from iteration to iteration.
    pub fn new(config: SessionConfig) -> Result<WatchSession, SessionError> {
        let store_mode = config.store_dir.is_some();
        Ok(WatchSession {
            session: VerifySession::new(config)?,
            store_mode,
            previous: Vec::new(),
        })
    }

    /// Verifies the program, reusing whatever previous certificates still
    /// apply, and remembers this iteration's certificates for the next.
    pub fn verify(
        &mut self,
        checked: &CheckedProgram,
        sink: &dyn Instrument,
    ) -> Result<WatchIteration, SessionError> {
        let report = if self.store_mode {
            self.session.verify_checked(checked, sink)?
        } else {
            let report = self
                .session
                .verify_incremental(checked, &self.previous, sink)?;
            self.previous = report
                .outcomes
                .iter()
                .filter_map(|(name, o)| o.certificate().map(|c| (name.clone(), c.clone())))
                .collect();
            report
        };
        Ok(WatchIteration { report })
    }
}

impl WatchIteration {
    /// Number of properties that failed to verify this iteration
    /// (including budget timeouts).
    pub fn failures(&self) -> usize {
        self.report.failures()
    }

    /// One-line summary, e.g.
    /// `5 reused, 1 patched, 2 re-proved (3 from store) in 412.0 ms`.
    pub fn summary(&self) -> String {
        self.report.summary()
    }
}
