//! The edit-verify loop: repeated [`VerifySession`] runs that carry
//! certificates forward from one iteration to the next.
//!
//! With a proof store configured the carrying is done by the store itself
//! (certificates persist across processes); without one, the session
//! keeps the previous iteration's certificates in memory and hands them
//! to the incremental planner each round.
//!
//! # Degraded mode
//!
//! The watch loop must survive a flaky disk. Store I/O errors are
//! tolerated per iteration (a failed write is a future miss, a failed
//! read is a miss now); when errors persist, the loop retries the store
//! with capped exponential backoff and, if the store still fails,
//! *detaches* it and degrades to in-memory certificate carrying — the
//! same soundness, minus cross-process persistence. Every iteration in
//! degraded mode probes the store and re-attaches it the moment it
//! recovers. Both transitions are reported as instrument events
//! ([`Event::StoreDegraded`] / [`Event::StoreRecovered`]) and on the
//! iteration summary. A store that cannot even be *opened* at startup
//! follows the same policy (start degraded, keep probing) unless
//! [`SessionConfig::strict_store`] demands a hard error.

use std::sync::Arc;

use reflex_typeck::CheckedProgram;
use reflex_verify::certificate::Certificate;
use reflex_verify::{Clock, ProofStore, VerifyFs};

use crate::{Event, Instrument, SessionConfig, SessionError, SessionReport, VerifySession};

/// Retry policy for a store that starts returning I/O errors: `retries`
/// probe attempts with exponential backoff from `base_ms`, capped at
/// `cap_ms`, before the store is detached.
#[derive(Debug, Clone, Copy)]
pub struct BackoffPolicy {
    /// First retry delay, milliseconds.
    pub base_ms: u64,
    /// Upper bound on any single delay, milliseconds.
    pub cap_ms: u64,
    /// Probe attempts before degrading.
    pub retries: u32,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            base_ms: 50,
            cap_ms: 2_000,
            retries: 3,
        }
    }
}

impl BackoffPolicy {
    /// The capped exponential delay before the 1-based `attempt`.
    pub fn delay_ms(&self, attempt: u32) -> u64 {
        self.base_ms
            .checked_shl(attempt.saturating_sub(1))
            .unwrap_or(self.cap_ms)
            .min(self.cap_ms)
    }
}

/// A long-lived verification session for the watch loop.
#[derive(Debug)]
pub struct WatchSession {
    session: VerifySession,
    /// The configured store directory, kept (even while degraded) so the
    /// loop can re-open and re-attach the store when it recovers.
    store_dir: Option<String>,
    store_fs: Option<Arc<dyn VerifyFs>>,
    /// Clock behind the retry backoff: real by default, virtual under the
    /// simulator (backoff then costs simulated time only).
    clock: Arc<dyn Clock>,
    backoff: BackoffPolicy,
    /// Store configured but currently detached.
    degraded: bool,
    degraded_reason: Option<String>,
    /// The store's error counter at the last reconciliation — new errors
    /// beyond this snapshot mean the disk is acting up.
    io_errors_seen: u64,
    /// Errors were observed last iteration; the next iteration must probe
    /// (with backoff) before trusting the store again.
    pending_retry: bool,
    /// In-memory certificate carry: kept up to date in *both* modes, so
    /// degrading mid-loop loses nothing.
    previous: Vec<(String, Certificate)>,
}

/// The result of one watch iteration.
#[derive(Debug)]
pub struct WatchIteration {
    /// The underlying session report.
    pub report: SessionReport,
    /// Whether this iteration ran degraded (store detached, in-memory
    /// certificate carrying only).
    pub degraded: bool,
}

impl WatchSession {
    /// Creates a session. With `store_dir` set in the config, certificates
    /// are reused through the proof store; otherwise they are carried
    /// in memory from iteration to iteration.
    ///
    /// A store directory that cannot be opened is not fatal unless
    /// [`SessionConfig::strict_store`] is set: the session starts in
    /// degraded (in-memory) mode — see [`WatchSession::degraded_reason`]
    /// for the warning to surface — and re-attaches the store if a later
    /// iteration finds it healthy.
    pub fn new(config: SessionConfig) -> Result<WatchSession, SessionError> {
        let store_dir = config.store_dir.clone();
        let store_fs = config.store_fs.clone();
        let clock = config
            .clock
            .clone()
            .unwrap_or_else(reflex_verify::RealClock::shared);
        match VerifySession::new(config.clone()) {
            Ok(session) => {
                let io_errors_seen = session.env().store().map_or(0, |s| s.io_errors());
                Ok(WatchSession {
                    session,
                    store_dir,
                    store_fs,
                    clock,
                    backoff: BackoffPolicy::default(),
                    degraded: false,
                    degraded_reason: None,
                    io_errors_seen,
                    pending_retry: false,
                    previous: Vec::new(),
                })
            }
            Err(SessionError::Store { path, message }) if !config.strict_store => {
                let mut memory_config = config;
                memory_config.store_dir = None;
                let session = VerifySession::new(memory_config)?;
                Ok(WatchSession {
                    session,
                    store_dir,
                    store_fs,
                    clock,
                    backoff: BackoffPolicy::default(),
                    degraded: true,
                    degraded_reason: Some(format!("store open failed: {path}: {message}")),
                    io_errors_seen: 0,
                    pending_retry: false,
                    previous: Vec::new(),
                })
            }
            Err(e) => Err(e),
        }
    }

    /// A watch loop over an existing session — the service core's
    /// in-process watch path, where the core's long-lived [`Env`] (not
    /// this loop) owns the store. The loop only drives the retry /
    /// degrade / re-attach policy around the env's store slot; it starts
    /// degraded if `store_dir` is configured but the env has no store
    /// attached.
    ///
    /// [`Env`]: crate::Env
    pub fn over(
        session: VerifySession,
        store_dir: Option<String>,
        store_fs: Option<Arc<dyn VerifyFs>>,
        clock: Arc<dyn Clock>,
    ) -> WatchSession {
        let attached = session.env().has_store();
        let io_errors_seen = session.env().store().map_or(0, |s| s.io_errors());
        let degraded = store_dir.is_some() && !attached;
        WatchSession {
            session,
            store_dir,
            store_fs,
            clock,
            backoff: BackoffPolicy::default(),
            degraded,
            degraded_reason: degraded.then(|| "store not attached at startup".to_owned()),
            io_errors_seen,
            pending_retry: false,
            previous: Vec::new(),
        }
    }

    /// Overrides the store retry/backoff policy (tests use tiny delays).
    pub fn with_backoff(mut self, backoff: BackoffPolicy) -> WatchSession {
        self.backoff = backoff;
        self
    }

    /// Whether the loop is currently degraded (store configured but
    /// detached).
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    /// Why the loop is (or started) degraded, for startup warnings.
    pub fn degraded_reason(&self) -> Option<&str> {
        self.degraded_reason.as_deref()
    }

    /// Verifies the program, reusing whatever previous certificates still
    /// apply, and remembers this iteration's certificates for the next.
    ///
    /// Store trouble never makes this return an error: transient I/O
    /// failures are retried with capped exponential backoff, persistent
    /// ones degrade the loop to in-memory carrying (with an
    /// [`Event::StoreDegraded`]), and a recovered store is re-attached
    /// (with an [`Event::StoreRecovered`]).
    pub fn verify(
        &mut self,
        checked: &CheckedProgram,
        sink: &dyn Instrument,
    ) -> Result<WatchIteration, SessionError> {
        if self.store_dir.is_some() {
            self.reconcile_store(sink);
        }
        let store_attached = self.session.env().has_store();
        let report = if store_attached {
            self.session.verify_checked(checked, sink)?
        } else {
            self.session
                .verify_incremental(checked, &self.previous, sink)?
        };
        // Keep the in-memory carry fresh in both modes: when the store
        // degrades mid-loop, the next iteration still reuses this run's
        // certificates.
        self.previous = report
            .outcomes
            .iter()
            .filter_map(|(name, o)| o.certificate().map(|c| (name.clone(), c.clone())))
            .collect();
        if store_attached {
            if let Some(store) = self.session.env().store() {
                let now = store.io_errors();
                if now > self.io_errors_seen {
                    self.pending_retry = true;
                }
                self.io_errors_seen = now;
            }
        }
        Ok(WatchIteration {
            report,
            degraded: self.degraded,
        })
    }

    /// Before an iteration: retry a store that erred last round (with
    /// backoff, detaching it if it stays broken), or probe a detached
    /// store for recovery (re-attaching it if healthy).
    fn reconcile_store(&mut self, sink: &dyn Instrument) {
        if self.degraded {
            if let Some(store) = self.reopen_store() {
                if store.probe().is_ok() {
                    self.io_errors_seen = store.io_errors();
                    self.session.env().attach_store(store);
                    self.degraded = false;
                    self.degraded_reason = None;
                    self.pending_retry = false;
                    sink.event(&Event::StoreRecovered);
                }
            }
            return;
        }
        if !self.pending_retry {
            return;
        }
        let Some(store) = self.session.env().store() else {
            self.pending_retry = false;
            return;
        };
        let mut healthy = false;
        let mut last_reason = "store kept failing".to_owned();
        for attempt in 1..=self.backoff.retries {
            let delay_ms = self.backoff.delay_ms(attempt);
            sink.event(&Event::StoreRetry { attempt, delay_ms });
            self.clock.sleep_ms(delay_ms);
            match store.probe() {
                Ok(()) => {
                    healthy = true;
                    break;
                }
                Err(e) => last_reason = e.to_string(),
            }
        }
        self.io_errors_seen = store.io_errors();
        self.pending_retry = false;
        if !healthy {
            self.session.env().detach_store();
            self.degraded = true;
            self.degraded_reason = Some(last_reason.clone());
            sink.event(&Event::StoreDegraded {
                reason: last_reason,
            });
        }
    }

    /// Re-opens the configured store directory on the configured
    /// filesystem (for recovery probes while degraded).
    fn reopen_store(&self) -> Option<ProofStore> {
        let dir = self.store_dir.as_ref()?;
        let opened = match &self.store_fs {
            Some(fs) => ProofStore::open_with(dir, Arc::clone(fs)),
            None => ProofStore::open(dir),
        };
        opened.ok()
    }
}

impl WatchIteration {
    /// Number of properties that failed to verify this iteration
    /// (including budget timeouts and isolated crashes).
    pub fn failures(&self) -> usize {
        self.report.failures()
    }

    /// One-line summary, e.g.
    /// `5 reused, 1 patched, 2 re-proved (3 from store) in 412.0 ms`,
    /// with a degraded-mode banner when the store is detached.
    pub fn summary(&self) -> String {
        if self.degraded {
            format!(
                "{} [DEGRADED: store detached, in-memory only]",
                self.report.summary()
            )
        } else {
            self.report.summary()
        }
    }
}
