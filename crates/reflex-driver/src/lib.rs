//! The unified verification session engine behind every `rx` entry point.
//!
//! The paper's pushbutton thesis rests on one fixed pipeline shape —
//! parse → typecheck → symbolically evaluate → prove over the behavioral
//! abstraction — yet a growing toolchain keeps re-wiring that shape by
//! hand: the CLI, the watch loop, the incremental validator and the
//! benchmark harness each had private copies of the same staging, stats
//! and error plumbing. This crate is the one copy they all share now:
//!
//! * [`VerifySession`] — a staged pipeline
//!   (`Load → Parse → Typecheck → Plan → Prove → Persist → Report`) over a
//!   shared [`Env`] (cross-property [`ProofCache`], prover options, proof
//!   store handle, job pool, session budget);
//! * [`Instrument`] — structured per-stage events (wall time, cache and
//!   store hit counts, proof-search node counts) into pluggable sinks:
//!   human text, JSON lines, in-memory for tests and benches;
//! * cooperative cancellation and wall-clock/node budgets
//!   ([`reflex_verify::ProofBudget`]) threaded into the provers, so a
//!   stuck property degrades to a reported [`Outcome::Timeout`] instead of
//!   hanging the batch;
//! * [`SessionBatch`] — verifying many kernels concurrently while sharing
//!   the term interner (process-global by construction) and the
//!   cross-property proof cache.
//!
//! Determinism contract: outcomes and certificates are byte-identical for
//! every `jobs` value (inherited from [`reflex_verify`]'s pure-package
//! caches), and instrumentation event *counts* are a pure function of the
//! input and configuration — only timings and completion order vary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod instrument;
pub mod watch;

pub use instrument::{
    json_string, Counters, Event, HumanSink, Instrument, JsonLinesSink, MemorySink, NullSink,
    PropertyStatus, Stage,
};
pub use watch::{BackoffPolicy, WatchIteration, WatchSession};

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use reflex_ast::Fp;

use reflex_typeck::CheckedProgram;
use reflex_verify::certificate::Certificate;
use reflex_verify::{
    check_certificate_with, load_candidates, persist_outcomes, prove_with_cache, resolve_jobs,
    reverify_observed, Abstraction, CacheStats, Outcome, ProofBudget, ProofCache, ProofStore,
    PropStats, ProverOptions, ProverStats, Reuse, VerifyError,
};

/// Why a session could not run to completion (as opposed to per-property
/// proof failures, which are reported inside [`SessionReport`]).
#[derive(Debug, Clone)]
pub enum SessionError {
    /// The kernel source could not be read.
    Load {
        /// Offending path.
        path: String,
        /// The I/O error.
        message: String,
    },
    /// The source did not parse.
    Parse(String),
    /// The program did not type-check.
    Typecheck(String),
    /// The prover rejected the request (unknown property, malformed
    /// previous certificates).
    Verify(VerifyError),
    /// A freshly produced certificate failed the independent checker —
    /// a prover bug surfacing exactly where the architecture routes it.
    Check {
        /// The property whose certificate was rejected.
        property: String,
        /// The checker's complaint.
        message: String,
    },
    /// The proof store could not be opened.
    Store {
        /// Store directory.
        path: String,
        /// The I/O error.
        message: String,
    },
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Load { path, message } => write!(f, "{path}: {message}"),
            SessionError::Parse(e) => write!(f, "{e}"),
            SessionError::Typecheck(e) => write!(f, "type error: {e}"),
            SessionError::Verify(e) => write!(f, "{e}"),
            SessionError::Check { property, message } => {
                write!(
                    f,
                    "{property}: certificate rejected by the checker: {message}"
                )
            }
            SessionError::Store { path, message } => write!(f, "{path}: {message}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<VerifyError> for SessionError {
    fn from(e: VerifyError) -> Self {
        SessionError::Verify(e)
    }
}

/// Configuration for a [`VerifySession`] or [`SessionBatch`].
#[derive(Debug, Clone, Default)]
pub struct SessionConfig {
    /// Proof-search configuration (a session budget configured below is
    /// installed into `options.budget` automatically).
    pub options: ProverOptions,
    /// Worker threads for the property/kernel fan-out (`0`: one per CPU).
    pub jobs: usize,
    /// Persist and reuse certificates through a content-addressed proof
    /// store at this directory.
    pub store_dir: Option<String>,
    /// Wall-clock budget for the whole session, milliseconds.
    pub budget_ms: Option<u64>,
    /// Explored-path budget for the whole session.
    pub budget_nodes: Option<u64>,
    /// Verify only this property (all properties when `None`).
    pub property: Option<String>,
    /// Filesystem the proof store runs on. `None` means the real
    /// filesystem; tests and the chaos harness inject a
    /// [`reflex_verify::vfs::FaultyFs`] here to exercise the store's
    /// degradation paths end to end.
    pub store_fs: Option<Arc<dyn reflex_verify::vfs::VerifyFs>>,
    /// Treat a proof store that cannot be opened as fatal. Off by default
    /// for the watch loop, which instead starts degraded (in-memory) and
    /// re-attaches when the store recovers; `rx watch --strict-store`
    /// turns it on.
    pub strict_store: bool,
    /// Clock behind the session budget's wall-clock axis and the watch
    /// loop's retry backoff. `None` means the machine's monotonic clock;
    /// the simulator injects a [`reflex_verify::VirtualClock`] so
    /// `budget_ms` timeouts and backoff delays become deterministic
    /// functions of the work performed rather than of the host's speed.
    pub clock: Option<Arc<dyn reflex_verify::Clock>>,
}

/// Shared state of one session or batch: options, the cross-property
/// proof caches, the store handle, the job pool width and the budget.
///
/// The term interner and the entailment memo are process-global by
/// construction, so every [`Env`] shares them implicitly. The
/// [`ProofCache`] tables are shared too, but namespaced by program
/// fingerprint: cached subproof packages are pure functions of
/// *(program, key)*, so serving a package across different programs
/// would be wrong — a batch shares each program's cache across its
/// properties and across repeated sessions (the watch loop), never
/// across distinct programs.
#[derive(Debug)]
pub struct Env {
    /// Prover configuration, with the session budget installed.
    pub options: ProverOptions,
    /// Per-program cross-property proof caches, keyed by the program's
    /// canonical content fingerprint.
    caches: RwLock<HashMap<Fp, Arc<ProofCache>>>,
    /// Proof store, when persistence is configured. Behind a lock so the
    /// watch loop can detach it on repeated I/O failure (degraded mode)
    /// and re-attach it on recovery without rebuilding the env.
    store: RwLock<Option<ProofStore>>,
    /// Resolved worker-thread count.
    pub jobs: usize,
    /// The session budget / cancellation token, if one was configured.
    pub budget: Option<Arc<ProofBudget>>,
    /// This env's own symbolic-engine counters (interner and entailment
    /// memo traffic). The underlying tables are process-global, but these
    /// counters are scoped onto every proof task this env runs, so
    /// `--stats` reports this session's work alone — a long-lived process
    /// (watch loop, test binary) never leaks counts across envs.
    pub sym_stats: Arc<reflex_symbolic::SymSessionStats>,
}

impl Env {
    /// Builds the shared state: opens the store, creates the budget and
    /// installs it into the prover options.
    pub fn new(config: &SessionConfig) -> Result<Env, SessionError> {
        let store = match &config.store_dir {
            Some(dir) => {
                let opened = match &config.store_fs {
                    Some(fs) => ProofStore::open_with(dir, Arc::clone(fs)),
                    None => ProofStore::open(dir),
                };
                Some(opened.map_err(|e| SessionError::Store {
                    path: dir.clone(),
                    message: e.to_string(),
                })?)
            }
            None => None,
        };
        let budget = (config.budget_ms.is_some() || config.budget_nodes.is_some()).then(|| {
            let clock = config
                .clock
                .clone()
                .unwrap_or_else(reflex_verify::RealClock::shared);
            Arc::new(ProofBudget::new_with_clock(
                clock,
                config.budget_ms.map(std::time::Duration::from_millis),
                config.budget_nodes,
            ))
        });
        let mut options = config.options.clone();
        options.budget = budget.clone();
        Ok(Env {
            options,
            caches: RwLock::new(HashMap::new()),
            store: RwLock::new(store),
            jobs: resolve_jobs(config.jobs),
            budget,
            sym_stats: reflex_symbolic::SymSessionStats::new(),
        })
    }

    /// Runs `f` with this env's symbolic counters scoped onto the current
    /// thread. Every proof task (on any worker thread) must run inside
    /// this so the env's counters see exactly this env's work.
    pub fn with_sym_stats<R>(&self, f: impl FnOnce() -> R) -> R {
        reflex_symbolic::with_session_stats(Arc::clone(&self.sym_stats), f)
    }

    /// A snapshot of the proof store handle, if one is attached. The
    /// handle is cheap to clone (a path plus shared counters); sessions
    /// take one snapshot per run so a mid-run detach cannot split a run
    /// between two store states.
    pub fn store(&self) -> Option<ProofStore> {
        self.store.read().expect("store slot poisoned").clone()
    }

    /// Whether a proof store is currently attached.
    pub fn has_store(&self) -> bool {
        self.store.read().expect("store slot poisoned").is_some()
    }

    /// Attaches (or replaces) the proof store — the watch loop's recovery
    /// path.
    pub fn attach_store(&self, store: ProofStore) {
        *self.store.write().expect("store slot poisoned") = Some(store);
    }

    /// Detaches the proof store, returning the old handle — the watch
    /// loop's degradation path. Subsequent sessions run purely in memory.
    pub fn detach_store(&self) -> Option<ProofStore> {
        self.store.write().expect("store slot poisoned").take()
    }

    /// The proof cache for the program with canonical fingerprint `fp`
    /// (created on first use). Repeated sessions over the same program —
    /// watch iterations, batch retries — share one cache; distinct
    /// programs never do.
    pub fn cache_for(&self, fp: Fp) -> Arc<ProofCache> {
        if let Some(cache) = self.caches.read().expect("cache map poisoned").get(&fp) {
            return Arc::clone(cache);
        }
        Arc::clone(
            self.caches
                .write()
                .expect("cache map poisoned")
                .entry(fp)
                .or_default(),
        )
    }
}

/// The result of one session run: outcomes, reuse classification, store
/// traffic, the counter block, and the single serializer every `--stats`
/// and `--json` consumer goes through. `Clone` so a resident service can
/// cache whole reports for idempotent retries.
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// Program name.
    pub program: String,
    /// `(property, outcome)` in declaration order.
    pub outcomes: Vec<(String, Outcome)>,
    /// Properties whose previous certificates were reused wholesale.
    pub reused: Vec<String>,
    /// Properties whose certificates were patched per-case.
    pub partial: Vec<String>,
    /// Properties proved from scratch.
    pub reproved: Vec<String>,
    /// Certificates loaded from the proof store.
    pub store_loaded: usize,
    /// Certificates written back to the proof store.
    pub store_saved: usize,
    /// Whether fresh certificates were validated by the independent
    /// checker during this run (reused store certificates always are).
    pub certificates_checked: bool,
    /// The run's counter block and per-property rows.
    pub stats: ProverStats,
    /// Whole-session wall-clock, milliseconds.
    pub wall_ms: f64,
}

impl SessionReport {
    /// Properties proved.
    pub fn proved(&self) -> usize {
        self.outcomes.iter().filter(|(_, o)| o.is_proved()).count()
    }

    /// Properties not proved (genuine failures *and* budget timeouts —
    /// both mean "no certificate", which is what exit codes care about).
    pub fn failures(&self) -> usize {
        self.outcomes.len() - self.proved()
    }

    /// Properties stopped by the session budget.
    pub fn timeouts(&self) -> usize {
        self.outcomes.iter().filter(|(_, o)| o.is_timeout()).count()
    }

    /// Properties stopped by an explicit cancellation request.
    pub fn cancellations(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|(_, o)| o.is_cancelled())
            .count()
    }

    /// How many proof tasks panicked and were isolated as
    /// [`Outcome::Crashed`].
    pub fn crashes(&self) -> usize {
        self.outcomes.iter().filter(|(_, o)| o.is_crashed()).count()
    }

    /// One ✓/✗/⏱ line per property (plus an indented failure reason),
    /// matching the `rx verify` output format.
    pub fn render_properties(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for (name, outcome) in &self.outcomes {
            match outcome {
                Outcome::Proved(cert) => {
                    let how = if self.reused.iter().any(|n| n == name) {
                        ", reused from store, re-checked"
                    } else if self.partial.iter().any(|n| n == name) {
                        ", patched per-case, re-checked"
                    } else if self.certificates_checked {
                        ", certificate checked"
                    } else {
                        ""
                    };
                    let _ = writeln!(
                        s,
                        "  ✓ {name}  ({} obligations{how})",
                        cert.obligation_count()
                    );
                }
                Outcome::Timeout(failure) => {
                    let _ = writeln!(s, "  ⏱ {name} (timeout)");
                    let _ = writeln!(s, "      {failure}");
                }
                Outcome::Cancelled(failure) => {
                    let _ = writeln!(s, "  ⊘ {name} (cancelled)");
                    let _ = writeln!(s, "      {failure}");
                }
                Outcome::Crashed(failure) => {
                    let _ = writeln!(s, "  ✗ {name} (crashed)");
                    let _ = writeln!(s, "      {failure}");
                }
                Outcome::Failed(failure) => {
                    let _ = writeln!(s, "  ✗ {name}");
                    let _ = writeln!(s, "      {failure}");
                }
            }
        }
        s
    }

    /// One summary line, e.g.
    /// `5 reused, 1 patched, 2 re-proved (3 from store) in 412.0 ms`.
    pub fn summary(&self) -> String {
        let store = if self.store_loaded > 0 {
            format!(" ({} from store)", self.store_loaded)
        } else {
            String::new()
        };
        format!(
            "{} reused, {} patched, {} re-proved{store} in {:.1} ms",
            self.reused.len(),
            self.partial.len(),
            self.reproved.len(),
            self.wall_ms
        )
    }

    /// The human-readable counter block (`rx verify --stats`).
    pub fn render_stats(&self) -> String {
        self.stats.render()
    }

    /// The whole report as one JSON document (`rx verify --json`). Same
    /// field names as the event stream, so the two can be joined.
    pub fn render_json(&self) -> String {
        use std::fmt::Write as _;
        let mut props = String::new();
        for (i, (name, outcome)) in self.outcomes.iter().enumerate() {
            if i > 0 {
                props.push(',');
            }
            let status = status_of(outcome);
            let row = self.stats.properties.iter().find(|p| p.name == *name);
            let _ = write!(
                props,
                r#"{{"name":{},"status":"{}","obligations":{},"wall_ms":{:.1}}}"#,
                json_string(name),
                status.as_str(),
                outcome
                    .certificate()
                    .map_or(0, Certificate::obligation_count),
                row.map_or(0.0, |p| p.wall_ms),
            );
        }
        format!(
            concat!(
                r#"{{"program":{},"jobs":{},"wall_ms":{:.1},"#,
                r#""proved":{},"failed":{},"timeout":{},"cancelled":{},"crashed":{},"#,
                r#""reused":{},"partial":{},"reproved":{},"#,
                r#""store_loaded":{},"store_saved":{},"#,
                r#""paths_explored":{},"cache_hits":{},"cache_misses":{},"#,
                r#""solver_queries":{},"solver_memo_hits":{},"interned_terms":{},"#,
                r#""properties":[{}]}}"#
            ),
            json_string(&self.program),
            self.stats.jobs,
            self.wall_ms,
            self.proved(),
            self.failures() - self.timeouts() - self.cancellations() - self.crashes(),
            self.timeouts(),
            self.cancellations(),
            self.crashes(),
            self.reused.len(),
            self.partial.len(),
            self.reproved.len(),
            self.store_loaded,
            self.store_saved,
            self.stats.paths_explored,
            self.stats.cache.invariant_hits + self.stats.cache.lemma_hits,
            self.stats.cache.invariant_misses + self.stats.cache.lemma_misses,
            self.stats.solver_queries,
            self.stats.solver_memo_hits,
            self.stats.interned_terms,
            props
        )
    }
}

fn status_of(outcome: &Outcome) -> PropertyStatus {
    match outcome {
        Outcome::Proved(_) => PropertyStatus::Proved,
        Outcome::Timeout(_) => PropertyStatus::Timeout,
        Outcome::Cancelled(_) => PropertyStatus::Cancelled,
        Outcome::Failed(_) => PropertyStatus::Failed,
        Outcome::Crashed(_) => PropertyStatus::Crashed,
    }
}

/// A staged, instrumented verification pipeline over a shared [`Env`].
///
/// One session verifies one program (from a path, source text, a checked
/// program, or incrementally against previous certificates); construct
/// many sessions over one [`Env`] — or use [`SessionBatch`] — to share
/// the proof cache and budget across kernels.
#[derive(Debug, Clone)]
pub struct VerifySession {
    env: Arc<Env>,
    /// Verify only this property, when set.
    property: Option<String>,
    /// Validate fresh certificates with the independent checker.
    check_certificates: bool,
    /// Request-scoped prover options: the env's options with this
    /// session's own budget installed. `None` means the env's options
    /// (and env-wide budget, if any) apply unchanged. This is what lets a
    /// long-lived service env run many concurrent request sessions, each
    /// under its own budget.
    options_override: Option<ProverOptions>,
}

impl VerifySession {
    /// A session with its own fresh [`Env`].
    pub fn new(config: SessionConfig) -> Result<VerifySession, SessionError> {
        let property = config.property.clone();
        Ok(VerifySession {
            env: Arc::new(Env::new(&config)?),
            property,
            check_certificates: true,
            options_override: None,
        })
    }

    /// A session over an existing shared [`Env`] (what [`SessionBatch`]
    /// does internally).
    pub fn with_env(env: Arc<Env>) -> VerifySession {
        VerifySession {
            env,
            property: None,
            check_certificates: true,
            options_override: None,
        }
    }

    /// A request-scoped session over a shared [`Env`] with its own
    /// budget: the env's interner, caches and store are shared, but this
    /// session's proof work ticks (and is cancelled) against `budget`
    /// alone. Pass `None` to drop an env-wide budget for this request.
    pub fn with_env_budget(env: Arc<Env>, budget: Option<Arc<ProofBudget>>) -> VerifySession {
        let mut options = env.options.clone();
        options.budget = budget;
        VerifySession {
            env,
            property: None,
            check_certificates: true,
            options_override: Some(options),
        }
    }

    /// Restricts the session to one property (the service core's
    /// single-property requests).
    pub fn with_property(mut self, property: Option<String>) -> VerifySession {
        self.property = property;
        self
    }

    /// The shared state (options, cache, store, budget).
    pub fn env(&self) -> &Arc<Env> {
        &self.env
    }

    /// The prover options this session actually runs under: the env's,
    /// unless a request-scoped budget was installed.
    fn options(&self) -> &ProverOptions {
        self.options_override.as_ref().unwrap_or(&self.env.options)
    }

    /// The session budget, for cooperative cancellation from another
    /// thread ([`ProofBudget::cancel`]). A request-scoped budget shadows
    /// the env-wide one.
    pub fn budget(&self) -> Option<&Arc<ProofBudget>> {
        match &self.options_override {
            Some(options) => options.budget.as_ref(),
            None => self.env.budget.as_ref(),
        }
    }

    /// Disables independent-checker validation of fresh certificates
    /// (store-loaded certificates are always re-validated regardless).
    pub fn without_certificate_checks(mut self) -> VerifySession {
        self.check_certificates = false;
        self
    }

    /// Runs the full pipeline on a kernel file: `Load` through `Report`.
    pub fn verify_path(
        &self,
        path: &str,
        sink: &dyn Instrument,
    ) -> Result<SessionReport, SessionError> {
        let load_start = Instant::now();
        sink.event(&Event::StageStart { stage: Stage::Load });
        let src = std::fs::read_to_string(path).map_err(|e| SessionError::Load {
            path: path.to_owned(),
            message: e.to_string(),
        })?;
        let name = std::path::Path::new(path)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("kernel")
            .to_owned();
        sink.event(&Event::StageFinish {
            stage: Stage::Load,
            wall_ms: ms_since(load_start),
        });
        self.verify_source(&name, &src, sink)
    }

    /// Runs the pipeline on in-memory source: `Parse` through `Report`.
    pub fn verify_source(
        &self,
        name: &str,
        src: &str,
        sink: &dyn Instrument,
    ) -> Result<SessionReport, SessionError> {
        let parse_start = Instant::now();
        sink.event(&Event::StageStart {
            stage: Stage::Parse,
        });
        let program = reflex_parser::parse_program(name, src)
            .map_err(|e| SessionError::Parse(e.to_string()))?;
        sink.event(&Event::StageFinish {
            stage: Stage::Parse,
            wall_ms: ms_since(parse_start),
        });

        let typecheck_start = Instant::now();
        sink.event(&Event::StageStart {
            stage: Stage::Typecheck,
        });
        let checked =
            reflex_typeck::check(&program).map_err(|e| SessionError::Typecheck(e.to_string()))?;
        sink.event(&Event::StageFinish {
            stage: Stage::Typecheck,
            wall_ms: ms_since(typecheck_start),
        });
        self.verify_checked(&checked, sink)
    }

    /// Runs `Plan` through `Report` on an already-checked program.
    pub fn verify_checked(
        &self,
        checked: &CheckedProgram,
        sink: &dyn Instrument,
    ) -> Result<SessionReport, SessionError> {
        self.run(checked, None, sink)
    }

    /// Runs `Plan` through `Report`, reusing `previous` certificates from
    /// an earlier in-process run (the watch loop's in-memory mode).
    pub fn verify_incremental(
        &self,
        checked: &CheckedProgram,
        previous: &[(String, Certificate)],
        sink: &dyn Instrument,
    ) -> Result<SessionReport, SessionError> {
        self.run(checked, Some(previous), sink)
    }

    /// The `Plan → Prove → Persist → Report` core every entry point above
    /// funnels into.
    fn run(
        &self,
        checked: &CheckedProgram,
        previous: Option<&[(String, Certificate)]>,
        sink: &dyn Instrument,
    ) -> Result<SessionReport, SessionError> {
        let env = &*self.env;
        let options = self.options();
        // One store snapshot per run: a concurrent detach (watch
        // degradation) must not split this run between two store states.
        let store = env.store();
        let session_start = Instant::now();
        sink.event(&Event::SessionStart {
            program: checked.program().name.clone(),
            jobs: env.jobs,
        });

        let cache = env.cache_for(checked.fingerprints().program);
        let paths_before = reflex_verify::paths_explored();
        // This env's own counters (scoped onto every proof task below), so
        // `--stats` reports this run alone even when other sessions share
        // the process-global interner and memo. Snapshots, not resets: a
        // reused env accumulates across its runs.
        let queries_before = env.sym_stats.memo_queries();
        let memo_hits_before = env.sym_stats.memo_hits();
        let cache_before = cache.stats();

        // ---- Plan: store candidates / previous certificates -------------
        let plan_start = Instant::now();
        sink.event(&Event::StageStart { stage: Stage::Plan });
        let candidates: Vec<(String, Certificate)> = match (previous, &store) {
            (Some(prev), _) => prev.to_vec(),
            (None, Some(store)) => load_candidates(checked, options, store),
            (None, None) => Vec::new(),
        };
        let store_loaded = if store.is_some() && previous.is_none() {
            candidates.len()
        } else {
            0
        };
        sink.event(&Event::StageFinish {
            stage: Stage::Plan,
            wall_ms: ms_since(plan_start),
        });

        // ---- Prove ------------------------------------------------------
        let prove_start = Instant::now();
        sink.event(&Event::StageStart {
            stage: Stage::Prove,
        });
        let prop_rows: Mutex<Vec<PropStats>> = Mutex::new(Vec::new());
        let observe = |name: &str, reuse: Reuse, outcome: &Outcome, wall_ms: f64| {
            sink.event(&Event::Property {
                name: name.to_owned(),
                status: status_of(outcome),
                reuse: Some(reuse.as_str()),
                obligations: outcome
                    .certificate()
                    .map_or(0, Certificate::obligation_count),
                wall_ms,
            });
            if let Ok(mut rows) = prop_rows.lock() {
                rows.push(PropStats {
                    name: name.to_owned(),
                    proved: outcome.is_proved(),
                    wall_ms,
                    obligations: outcome
                        .certificate()
                        .map_or(0, Certificate::obligation_count),
                });
            }
        };

        // Scope the env's symbolic counters over the whole Prove stage;
        // the verify crate's pool re-installs the scope on every worker.
        let (outcomes, reused, partial, reproved) =
            env.with_sym_stats(|| -> Result<_, SessionError> {
                Ok(
                    if candidates.is_empty() && previous.is_none() && store.is_none() {
                        // Plain proving: fan the properties out over the
                        // program's shared cross-property cache (env-wide, so a
                        // repeated session over the same program starts warm).
                        let proved = self.prove_fresh(checked, &cache, sink)?;
                        if let Ok(mut rows) = prop_rows.lock() {
                            rows.extend(proved.iter().map(|(name, outcome, wall_ms)| {
                                PropStats {
                                    name: name.clone(),
                                    proved: outcome.is_proved(),
                                    wall_ms: *wall_ms,
                                    obligations: outcome
                                        .certificate()
                                        .map_or(0, Certificate::obligation_count),
                                }
                            }));
                        }
                        let outcomes: Vec<(String, Outcome)> = proved
                            .into_iter()
                            .map(|(name, outcome, _)| (name, outcome))
                            .collect();
                        let reproved = outcomes.iter().map(|(n, _)| n.clone()).collect();
                        (outcomes, Vec::new(), Vec::new(), reproved)
                    } else {
                        // Reuse ladder: store candidates are validated by the
                        // independent checker before being trusted; in-process
                        // certificates are exactly as trustworthy as their run.
                        let validate = previous.is_none();
                        let report = reverify_observed(
                            &candidates,
                            checked,
                            options,
                            env.jobs,
                            validate,
                            Some(&observe),
                        )?;
                        (
                            report.outcomes,
                            report.reused,
                            report.partial,
                            report.reproved,
                        )
                    },
                )
            })?;
        sink.event(&Event::StageFinish {
            stage: Stage::Prove,
            wall_ms: ms_since(prove_start),
        });

        // ---- Persist ----------------------------------------------------
        let mut store_saved = 0usize;
        if let (Some(store), None) = (&store, previous) {
            let persist_start = Instant::now();
            sink.event(&Event::StageStart {
                stage: Stage::Persist,
            });
            store_saved = persist_outcomes(checked, options, store, &outcomes);
            sink.event(&Event::StageFinish {
                stage: Stage::Persist,
                wall_ms: ms_since(persist_start),
            });
        }

        // ---- Report -----------------------------------------------------
        let report_start = Instant::now();
        sink.event(&Event::StageStart {
            stage: Stage::Report,
        });
        let cache_stats = cache_delta(&cache_before, &cache.stats());
        let mut rows = prop_rows.into_inner().unwrap_or_default();
        // Worker threads pushed rows in completion order; report them in
        // declaration order like every other consumer.
        rows.sort_by_key(|r| {
            outcomes
                .iter()
                .position(|(n, _)| *n == r.name)
                .unwrap_or(usize::MAX)
        });
        let stats = ProverStats {
            jobs: env.jobs,
            total_ms: ms_since(session_start),
            properties: rows,
            paths_explored: reflex_verify::paths_explored() - paths_before,
            cache: cache_stats,
            solver_queries: env.sym_stats.memo_queries().saturating_sub(queries_before),
            solver_memo_hits: env.sym_stats.memo_hits().saturating_sub(memo_hits_before),
            interned_terms: reflex_symbolic::intern_stats().nodes,
        };
        sink.event(&Event::Counters(Counters {
            paths_explored: stats.paths_explored,
            cache_hits: stats.cache.invariant_hits + stats.cache.lemma_hits,
            cache_misses: stats.cache.invariant_misses + stats.cache.lemma_misses,
            solver_queries: stats.solver_queries,
            solver_memo_hits: stats.solver_memo_hits,
            interned_terms: stats.interned_terms,
            store_loaded: store_loaded as u64,
            store_saved: store_saved as u64,
        }));
        sink.event(&Event::StageFinish {
            stage: Stage::Report,
            wall_ms: ms_since(report_start),
        });

        let report = SessionReport {
            program: checked.program().name.clone(),
            reused,
            partial,
            reproved,
            store_loaded,
            store_saved,
            certificates_checked: self.check_certificates || store.is_some(),
            wall_ms: ms_since(session_start),
            stats,
            outcomes,
        };
        sink.event(&Event::SessionFinish {
            proved: report.proved(),
            failed: report.failures() - report.timeouts() - report.crashes(),
            timeout: report.timeouts(),
            crashed: report.crashes(),
            wall_ms: report.wall_ms,
        });
        Ok(report)
    }

    /// Plain (non-incremental) proving: the property fan-out over the
    /// env's shared cache, with per-property events and independent
    /// certificate checking.
    fn prove_fresh(
        &self,
        checked: &CheckedProgram,
        cache: &ProofCache,
        sink: &dyn Instrument,
    ) -> Result<Vec<(String, Outcome, f64)>, SessionError> {
        let env = &*self.env;
        let options = self.options();
        let abs = Abstraction::build(checked, options);
        let names: Vec<String> = match &self.property {
            Some(p) => {
                // Surface the unknown-property error before spawning
                // anything.
                if checked.program().property(p).is_none() {
                    return Err(SessionError::Verify(VerifyError::NoSuchProperty {
                        name: p.clone(),
                    }));
                }
                vec![p.clone()]
            }
            None => checked
                .program()
                .properties
                .iter()
                .map(|p| p.name.clone())
                .collect(),
        };

        let prove_one = |name: &str| -> Result<(Outcome, f64), SessionError> {
            let start = Instant::now();
            // Panic isolation: a panicking proof task becomes this
            // property's Crashed outcome instead of unwinding into the
            // job pool and killing the session. Serial and parallel runs
            // share this closure, so they classify identically.
            let outcome = match reflex_verify::catch_crash(name, || {
                prove_with_cache(&abs, name, options, Some(cache))
            }) {
                Ok(result) => result?,
                Err(crashed) => crashed,
            };
            if self.check_certificates {
                if let Some(cert) = outcome.certificate() {
                    check_certificate_with(&abs, cert, options).map_err(|e| {
                        SessionError::Check {
                            property: name.to_owned(),
                            message: e.to_string(),
                        }
                    })?;
                }
            }
            let wall_ms = ms_since(start);
            sink.event(&Event::Property {
                name: name.to_owned(),
                status: status_of(&outcome),
                reuse: None,
                obligations: outcome
                    .certificate()
                    .map_or(0, Certificate::obligation_count),
                wall_ms,
            });
            Ok((outcome, wall_ms))
        };
        // The verify crate's work-stealing pool schedules the property
        // tasks; results land in declaration order regardless of timing.
        let results =
            reflex_verify::sched::run_indexed(env.jobs, names.len(), |i| prove_one(&names[i]));
        let mut outcomes = Vec::with_capacity(names.len());
        for (name, result) in names.into_iter().zip(results) {
            let (outcome, wall_ms) = result?;
            outcomes.push((name, outcome, wall_ms));
        }
        Ok(outcomes)
    }
}

/// Verifies many kernels concurrently over one shared [`Env`]: the term
/// interner (process-global), the cross-property proof cache and the
/// session budget are all shared, so an auxiliary invariant proved for
/// one kernel is free for every other, and one budget bounds the whole
/// batch.
#[derive(Debug)]
pub struct SessionBatch {
    env: Arc<Env>,
    check_certificates: bool,
}

/// One kernel of a [`SessionBatch`].
#[derive(Debug, Clone)]
pub struct BatchItem {
    /// Program name (for reports and events).
    pub name: String,
    /// Kernel source text.
    pub source: String,
}

impl SessionBatch {
    /// A batch with a fresh shared [`Env`].
    pub fn new(config: SessionConfig) -> Result<SessionBatch, SessionError> {
        Ok(SessionBatch {
            env: Arc::new(Env::new(&config)?),
            check_certificates: true,
        })
    }

    /// A batch over an existing shared [`Env`].
    pub fn with_env(env: Arc<Env>) -> SessionBatch {
        SessionBatch {
            env,
            check_certificates: true,
        }
    }

    /// The shared state.
    pub fn env(&self) -> &Arc<Env> {
        &self.env
    }

    /// Disables independent-checker validation of fresh certificates.
    pub fn without_certificate_checks(mut self) -> SessionBatch {
        self.check_certificates = false;
        self
    }

    /// Verifies every kernel, fanning them out over the env's job pool.
    /// Results are in input order; each kernel gets its own
    /// [`SessionReport`] (or [`SessionError`]), and all sessions emit
    /// into the same sink.
    pub fn verify(
        &self,
        items: &[BatchItem],
        sink: &dyn Instrument,
    ) -> Vec<Result<SessionReport, SessionError>> {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::OnceLock;

        type Slot = OnceLock<Result<SessionReport, SessionError>>;
        let slots: Vec<Slot> = (0..items.len()).map(|_| OnceLock::new()).collect();
        let next = AtomicUsize::new(0);
        let workers = self.env.jobs.min(items.len()).max(1);
        let run_one = |item: &BatchItem| {
            let mut session = VerifySession::with_env(self.env.clone());
            session.check_certificates = self.check_certificates;
            session.verify_source(&item.name, &item.source, sink)
        };
        if workers > 1 {
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        let _ = slots[i].set(run_one(item));
                    });
                }
            });
        } else {
            for (i, item) in items.iter().enumerate() {
                let _ = slots[i].set(run_one(item));
            }
        }
        slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("every batch slot filled"))
            .collect()
    }
}

/// `Load → Parse → Typecheck` as a standalone helper, for entry points
/// that need a checked program without proving anything (`rx check`,
/// `rx falsify`, `rx show`, `rx run`).
pub fn load_program(path: &str) -> Result<CheckedProgram, SessionError> {
    let src = std::fs::read_to_string(path).map_err(|e| SessionError::Load {
        path: path.to_owned(),
        message: e.to_string(),
    })?;
    let name = std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("kernel");
    let program = reflex_parser::parse_program(name, &src)
        .map_err(|e| SessionError::Parse(format!("{path}: {e}")))?;
    reflex_typeck::check(&program).map_err(|e| SessionError::Typecheck(e.to_string()))
}

fn ms_since(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1e3
}

/// Session-scoped cache counters: the difference between two snapshots of
/// a long-lived (batch-shared) cache. Entry counts report the live table
/// size, not a delta.
fn cache_delta(before: &CacheStats, after: &CacheStats) -> CacheStats {
    CacheStats {
        invariant_entries: after.invariant_entries,
        lemma_entries: after.lemma_entries,
        invariant_hits: after.invariant_hits.saturating_sub(before.invariant_hits),
        invariant_misses: after
            .invariant_misses
            .saturating_sub(before.invariant_misses),
        lemma_hits: after.lemma_hits.saturating_sub(before.lemma_hits),
        lemma_misses: after.lemma_misses.saturating_sub(before.lemma_misses),
    }
}
