//! Integration tests: parsing full programs and round-tripping through the
//! pretty-printer.

use reflex_ast::{ActionPat, Cmd, CompPat, Expr, PatField, PropBody, TracePropKind, Ty, Value};
use reflex_parser::parse_program;

const SSH_SRC: &str = r#"
// Simplified SSH kernel (paper Figure 3).
components {
  Connection "client.py" ();
  Password "user-auth.c" ();
  Terminal "pty-alloc.c" ();
}

messages {
  ReqAuth(str, str);
  Auth(str);
  ReqTerm(str);
  Term(str, fdesc);
}

state {
  auth_user: str = "";
  auth_ok: bool = false;
}

init {
  C <- spawn Connection();
  P <- spawn Password();
  T <- spawn Terminal();
}

handlers {
  when Connection:ReqAuth(user, pass) {
    send(P, ReqAuth(user, pass));
  }
  when Password:Auth(user) {
    auth_user = user;
    auth_ok = true;
  }
  when Connection:ReqTerm(user) {
    if (user == auth_user && auth_ok) {
      send(T, ReqTerm(user));
    }
  }
  when Terminal:Term(user, t) {
    if (user == auth_user && auth_ok) {
      send(C, Term(user, t));
    }
  }
}

properties {
  AuthBeforeTerm: forall u: str.
    [Recv(Password(), Auth(u))] Enables [Send(Terminal(), ReqTerm(u))];
}
"#;

#[test]
fn parses_the_paper_ssh_kernel() {
    let p = parse_program("ssh", SSH_SRC).expect("parses");
    assert_eq!(p.components.len(), 3);
    assert_eq!(p.messages.len(), 4);
    assert_eq!(p.state.len(), 2);
    assert_eq!(p.handlers.len(), 4);
    assert_eq!(p.properties.len(), 1);
    assert_eq!(
        p.init_comp_vars(),
        vec![
            ("C".to_owned(), "Connection".to_owned()),
            ("P".to_owned(), "Password".to_owned()),
            ("T".to_owned(), "Terminal".to_owned()),
        ]
    );

    let h = p.handler("Connection", "ReqTerm").expect("handler exists");
    match &h.body {
        Cmd::If { cond, .. } => {
            let expected = Expr::var("user")
                .eq(Expr::var("auth_user"))
                .and(Expr::var("auth_ok"));
            assert_eq!(cond, &expected);
        }
        other => panic!("expected if, got {other:?}"),
    }

    let prop = p.property("AuthBeforeTerm").expect("property exists");
    assert_eq!(prop.forall, vec![("u".to_owned(), Ty::Str)]);
    match &prop.body {
        PropBody::Trace(tp) => {
            assert_eq!(tp.kind, TracePropKind::Enables);
            assert_eq!(
                tp.a,
                ActionPat::Recv {
                    comp: CompPat::with_config("Password", []),
                    msg: "Auth".into(),
                    args: vec![PatField::var("u")],
                }
            );
        }
        other => panic!("expected trace property, got {other:?}"),
    }
}

#[test]
fn roundtrips_through_pretty_printer() {
    let p = parse_program("ssh", SSH_SRC).expect("parses");
    let printed = p.to_string();
    let reparsed = parse_program("ssh", &printed)
        .unwrap_or_else(|e| panic!("reparse failed: {e}\n--- printed ---\n{printed}"));
    assert_eq!(p, reparsed, "print→parse must be the identity");
}

#[test]
fn parses_noninterference_and_quantified_patterns() {
    let src = r#"
components {
  Engine "engine.c" ();
  Tab "tab.py" (domain: str, id: num);
}
messages {
  Crash();
}
init {
  e <- spawn Engine();
}
handlers {
}
properties {
  EngineNI: noninterference {
    high components: Engine;
    high vars: ;
  }
  DomainNI: forall d: str. noninterference {
    high components: Tab(d, _), Engine;
    high vars: mode, focus;
  }
  UniqueIds: forall i: num.
    [Spawn(Tab(_, i))] Disables [Spawn(Tab(_, i))];
}
"#;
    let p = parse_program("car", src).expect("parses");
    assert_eq!(p.properties.len(), 3);
    match &p.properties[1].body {
        PropBody::NonInterference(spec) => {
            assert_eq!(spec.high_comps.len(), 2);
            assert_eq!(
                spec.high_comps[0],
                CompPat::with_config("Tab", [PatField::var("d"), PatField::Any])
            );
            assert_eq!(spec.high_vars, vec!["mode", "focus"]);
        }
        other => panic!("expected NI property, got {other:?}"),
    }
    // Round-trip the NI program too.
    let printed = p.to_string();
    let reparsed =
        parse_program("car", &printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
    assert_eq!(p, reparsed);
}

#[test]
fn parses_full_command_language() {
    let src = r#"
components {
  Cookie "cookie.py" (domain: str);
  Tab "tab.py" (domain: str);
}
messages {
  SetCookie(str, str);
  Result(str);
}
state {
  hits: num = 0;
}
init {
}
handlers {
  when Tab:SetCookie(d, v) {
    hits = hits + 1;
    r <- call sanitize(v, "strict");
    lookup Cookie(k : k.domain == sender.domain) {
      send(k, SetCookie(d, r));
    } else {
      n <- spawn Cookie(sender.domain);
      send(n, SetCookie(d, r));
    }
    if (hits <= 3 || d != "") {
      hits = 0 - hits;
    } else {
      hits = -1;
    }
  }
}
"#;
    let p = parse_program("cookies", src).expect("parses");
    let h = &p.handlers[0];
    assert_eq!(h.body.binders(), vec!["r", "k", "n"]);
    assert_eq!(h.body.max_actions(), 3); // call + (send | spawn+send) + 0
    let printed = p.to_string();
    assert_eq!(parse_program("cookies", &printed).expect("reparse"), p);
}

#[test]
fn negative_literals_roundtrip() {
    let src = r#"
components { C "c" (); }
messages { M(num); }
state { x: num = -5; }
init { }
handlers {
  when C:M(n) {
    if (n == -5) {
      x = -n;
    }
  }
}
"#;
    let p = parse_program("neg", src).expect("parses");
    assert_eq!(p.state[0].init, Some(Expr::Lit(Value::Num(-5))));
    let printed = p.to_string();
    assert_eq!(parse_program("neg", &printed).expect("reparse"), p);
}

#[test]
fn call_patterns_parse_both_forms() {
    let src = r#"
components { C "c" (); }
messages { M(); }
init { }
handlers { }
properties {
  P1: [Call(wget(...), r)] Disables [Call(wget(...), r)];
  P2: forall u: str.
    [Call(check(u, _), "ok")] Enables [Send(C(), M())];
}
"#;
    let p = parse_program("calls", src).expect("parses");
    match &p.properties[0].body {
        PropBody::Trace(tp) => match &tp.a {
            ActionPat::Call { args, result, .. } => {
                assert!(args.is_none());
                assert_eq!(result, &PatField::var("r"));
            }
            other => panic!("expected call pattern, got {other:?}"),
        },
        _ => panic!("expected trace prop"),
    }
    match &p.properties[1].body {
        PropBody::Trace(tp) => match &tp.a {
            ActionPat::Call { args, result, .. } => {
                assert_eq!(args, &Some(vec![PatField::var("u"), PatField::Any]));
                assert_eq!(result, &PatField::lit("ok"));
            }
            other => panic!("expected call pattern, got {other:?}"),
        },
        _ => panic!("expected trace prop"),
    }
    let printed = p.to_string();
    assert_eq!(parse_program("calls", &printed).expect("reparse"), p);
}

#[test]
fn error_positions_are_reported() {
    let err = parse_program("bad", "components {\n  C \"c\" ()\n}").unwrap_err();
    // Missing semicolon after the component declaration: the error points at
    // the closing brace on line 3.
    let pos = err.pos.expect("has position");
    assert_eq!(pos.line, 3);

    let err = parse_program("bad", "handlers { when C:M() { x = ; } }").unwrap_err();
    assert!(err.to_string().contains("expected expression"));

    let err = parse_program("bad", "frobnicate { }").unwrap_err();
    assert!(err.to_string().contains("unknown section"));

    let err = parse_program(
        "bad",
        "properties { P: [Recv(C, M())] Foo [Recv(C, M())]; }",
    )
    .unwrap_err();
    assert!(err.to_string().contains("unknown trace property keyword"));
}

#[test]
fn empty_sections_and_programs() {
    let p = parse_program("empty", "").expect("empty program parses");
    assert!(p.components.is_empty());
    let p = parse_program("empty", "components { } messages { } init { } handlers { }")
        .expect("parses");
    assert_eq!(p.init, Cmd::Nop);
}

#[test]
fn atmostonce_sugar_desugars_to_disables() {
    let src = r#"
components { Tab "t.py" (id: num); }
messages { M(); }
init { }
handlers { }
properties {
  UniqueIds: forall i: num. atmostonce [Spawn(Tab(i))];
}
"#;
    let p = parse_program("sugar", src).expect("parses");
    match &p.properties[0].body {
        PropBody::Trace(tp) => {
            assert_eq!(tp.kind, TracePropKind::Disables);
            assert_eq!(tp.a, tp.b);
            assert_eq!(
                tp.a,
                ActionPat::Spawn {
                    comp: CompPat::with_config("Tab", [PatField::var("i")])
                }
            );
        }
        other => panic!("expected desugared Disables, got {other:?}"),
    }
    // The desugared form round-trips (printing shows the core primitive).
    let printed = p.to_string();
    assert_eq!(parse_program("sugar", &printed).expect("reparse"), p);
}
