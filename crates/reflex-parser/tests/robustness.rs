//! Robustness: the lexer and parser must never panic, whatever the input.

use proptest::prelude::*;
use reflex_parser::{lex, parse_program};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn lexer_never_panics(input in "\\PC*") {
        let _ = lex(&input);
    }

    #[test]
    fn parser_never_panics(input in "\\PC*") {
        let _ = parse_program("fuzz", &input);
    }

    /// Structured garbage: interleavings of real tokens are more likely to
    /// reach deep parser states than uniform noise.
    #[test]
    fn parser_never_panics_on_token_soup(
        words in proptest::collection::vec(
            prop_oneof![
                Just("components"), Just("messages"), Just("state"), Just("init"),
                Just("handlers"), Just("properties"), Just("when"), Just("if"),
                Just("else"), Just("send"), Just("spawn"), Just("call"),
                Just("lookup"), Just("broadcast"), Just("forall"), Just("Enables"),
                Just("Disables"), Just("noninterference"), Just("atmostonce"),
                Just("{"), Just("}"), Just("("), Just(")"), Just("["), Just("]"),
                Just(";"), Just(":"), Just(","), Just("."), Just("<-"), Just("=="),
                Just("="), Just("&&"), Just("!"), Just("x"), Just("C"), Just("M"),
                Just("\"s\""), Just("42"), Just("str"), Just("num"), Just("_"),
            ],
            0..40,
        )
    ) {
        let input = words.join(" ");
        let _ = parse_program("fuzz", &input);
    }

    /// Anything that parses must round-trip through the printer.
    #[test]
    fn parsed_programs_roundtrip(
        words in proptest::collection::vec(
            prop_oneof![
                Just("components { C \"c\" (); }"),
                Just("messages { M(str); }"),
                Just("state { x: num = 0; }"),
                Just("init { }"),
                Just("init { a <- spawn C(); }"),
                Just("handlers { }"),
                Just("handlers { when C:M(s) { x = x + 1; } }"),
                Just("properties { P: [Recv(C(), M(_))] Enables [Recv(C(), M(_))]; }"),
            ],
            0..5,
        )
    ) {
        let input = words.join("\n");
        if let Ok(program) = parse_program("fuzz", &input) {
            let printed = program.to_string();
            let reparsed = parse_program("fuzz", &printed)
                .unwrap_or_else(|e| panic!("printed output failed to reparse: {e}\n{printed}"));
            prop_assert_eq!(program, reparsed);
        }
    }
}
