//! Frontend for the concrete Reflex (`.rx`) syntax.
//!
//! The paper used a Python frontend to translate concrete Reflex syntax to
//! the Coq AST, insulating programmers from the dependently typed
//! embedding; this crate plays the same role for the Rust reproduction. It
//! is the inverse of the pretty-printer in `reflex-ast`: for every
//! well-formed program `p`, `parse_program(&p.name, &p.to_string()) == p`.
//!
//! # Example
//!
//! ```
//! let src = r#"
//! components {
//!   Echo "echo.py" ();
//! }
//! messages {
//!   Ping(str);
//!   Pong(str);
//! }
//! init {
//!   e <- spawn Echo();
//! }
//! handlers {
//!   when Echo:Ping(s) {
//!     send(e, Pong(s));
//!   }
//! }
//! properties {
//!   PongAfterPing: forall s: str.
//!     [Recv(Echo(), Ping(s))] Enables [Send(Echo(), Pong(s))];
//! }
//! "#;
//! let program = reflex_parser::parse_program("ping", src)?;
//! assert_eq!(program.handlers.len(), 1);
//! assert_eq!(program.properties.len(), 1);
//! # Ok::<(), reflex_parser::ParseError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod lexer;
mod parser;

pub use error::{ParseError, Pos};
pub use lexer::{lex, Spanned, Tok};
pub use parser::parse_program;
