//! Parse errors with source positions.

use std::fmt;

/// A line/column source position (1-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// An error produced while lexing or parsing `.rx` source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Where the error occurred (`None` for end-of-input errors).
    pub pos: Option<Pos>,
    /// What went wrong.
    pub message: String,
}

impl ParseError {
    /// An error at a known position.
    pub fn at(pos: Pos, message: impl Into<String>) -> ParseError {
        ParseError {
            pos: Some(pos),
            message: message.into(),
        }
    }

    /// An error at end of input.
    pub fn eof(message: impl Into<String>) -> ParseError {
        ParseError {
            pos: None,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.pos {
            Some(pos) => write!(f, "parse error at {pos}: {}", self.message),
            None => write!(f, "parse error at end of input: {}", self.message),
        }
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = ParseError::at(Pos { line: 3, col: 7 }, "expected `;`");
        assert_eq!(e.to_string(), "parse error at 3:7: expected `;`");
        let e = ParseError::eof("expected `}`");
        assert_eq!(e.to_string(), "parse error at end of input: expected `}`");
    }
}
