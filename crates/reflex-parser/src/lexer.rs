//! Lexer for the concrete `.rx` syntax.

use std::fmt;

use crate::error::{ParseError, Pos};

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal (non-negative; unary minus is an operator).
    Num(i64),
    /// String literal (unescaped contents).
    Str(String),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `.`
    Dot,
    /// `...`
    Ellipsis,
    /// `<-`
    LArrow,
    /// `=`
    Assign,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `+`
    Plus,
    /// `++`
    PlusPlus,
    /// `-`
    Minus,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `!`
    Bang,
    /// `*`
    Star,
    /// `_`
    Underscore,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Num(n) => write!(f, "`{n}`"),
            Tok::Str(s) => write!(f, "{s:?}"),
            Tok::LBrace => f.write_str("`{`"),
            Tok::RBrace => f.write_str("`}`"),
            Tok::LParen => f.write_str("`(`"),
            Tok::RParen => f.write_str("`)`"),
            Tok::LBracket => f.write_str("`[`"),
            Tok::RBracket => f.write_str("`]`"),
            Tok::Comma => f.write_str("`,`"),
            Tok::Semi => f.write_str("`;`"),
            Tok::Colon => f.write_str("`:`"),
            Tok::Dot => f.write_str("`.`"),
            Tok::Ellipsis => f.write_str("`...`"),
            Tok::LArrow => f.write_str("`<-`"),
            Tok::Assign => f.write_str("`=`"),
            Tok::EqEq => f.write_str("`==`"),
            Tok::NotEq => f.write_str("`!=`"),
            Tok::AndAnd => f.write_str("`&&`"),
            Tok::OrOr => f.write_str("`||`"),
            Tok::Plus => f.write_str("`+`"),
            Tok::PlusPlus => f.write_str("`++`"),
            Tok::Minus => f.write_str("`-`"),
            Tok::Lt => f.write_str("`<`"),
            Tok::Le => f.write_str("`<=`"),
            Tok::Bang => f.write_str("`!`"),
            Tok::Star => f.write_str("`*`"),
            Tok::Underscore => f.write_str("`_`"),
        }
    }
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// Position of the token's first character.
    pub pos: Pos,
}

/// Tokenizes `.rx` source.
///
/// Comments run from `//` to end of line. Whitespace separates tokens.
///
/// # Errors
///
/// Returns a [`ParseError`] on unterminated strings, invalid escapes,
/// numeric overflow or unexpected characters.
pub fn lex(src: &str) -> Result<Vec<Spanned>, ParseError> {
    let mut out = Vec::new();
    let mut chars = src.char_indices().peekable();
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! bump {
        () => {{
            let c = chars.next();
            if let Some((_, ch)) = c {
                if ch == '\n' {
                    line += 1;
                    col = 1;
                } else {
                    col += 1;
                }
            }
            c
        }};
    }

    while let Some(&(_, c)) = chars.peek() {
        let pos = Pos { line, col };
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                bump!();
            }
            '/' => {
                bump!();
                match chars.peek() {
                    Some(&(_, '/')) => {
                        while let Some(&(_, ch)) = chars.peek() {
                            if ch == '\n' {
                                break;
                            }
                            bump!();
                        }
                    }
                    _ => return Err(ParseError::at(pos, "unexpected character `/`")),
                }
            }
            'a'..='z' | 'A'..='Z' => {
                let mut s = String::new();
                while let Some(&(_, ch)) = chars.peek() {
                    if ch.is_ascii_alphanumeric() || ch == '_' {
                        s.push(ch);
                        bump!();
                    } else {
                        break;
                    }
                }
                out.push(Spanned {
                    tok: Tok::Ident(s),
                    pos,
                });
            }
            '_' => {
                bump!();
                // `_` followed by ident chars is an identifier; alone it is
                // the wildcard token.
                let mut s = String::new();
                while let Some(&(_, ch)) = chars.peek() {
                    if ch.is_ascii_alphanumeric() || ch == '_' {
                        s.push(ch);
                        bump!();
                    } else {
                        break;
                    }
                }
                if s.is_empty() {
                    out.push(Spanned {
                        tok: Tok::Underscore,
                        pos,
                    });
                } else {
                    out.push(Spanned {
                        tok: Tok::Ident(format!("_{s}")),
                        pos,
                    });
                }
            }
            '0'..='9' => {
                let mut n: i64 = 0;
                while let Some(&(_, ch)) = chars.peek() {
                    if let Some(d) = ch.to_digit(10) {
                        n = n
                            .checked_mul(10)
                            .and_then(|n| n.checked_add(d as i64))
                            .ok_or_else(|| ParseError::at(pos, "integer literal overflows i64"))?;
                        bump!();
                    } else {
                        break;
                    }
                }
                out.push(Spanned {
                    tok: Tok::Num(n),
                    pos,
                });
            }
            '"' => {
                bump!();
                let mut s = String::new();
                loop {
                    match bump!() {
                        None => return Err(ParseError::at(pos, "unterminated string literal")),
                        Some((_, '"')) => break,
                        Some((_, '\\')) => match bump!() {
                            Some((_, '"')) => s.push('"'),
                            Some((_, '\\')) => s.push('\\'),
                            Some((_, 'n')) => s.push('\n'),
                            Some((_, 't')) => s.push('\t'),
                            Some((_, 'r')) => s.push('\r'),
                            Some((_, '0')) => s.push('\0'),
                            Some((_, 'u')) => {
                                // \u{XXXX}
                                match bump!() {
                                    Some((_, '{')) => {}
                                    _ => {
                                        return Err(ParseError::at(
                                            pos,
                                            "expected `{` after `\\u` escape",
                                        ))
                                    }
                                }
                                let mut hex = String::new();
                                loop {
                                    match bump!() {
                                        Some((_, '}')) => break,
                                        Some((_, h)) if h.is_ascii_hexdigit() => hex.push(h),
                                        _ => {
                                            return Err(ParseError::at(
                                                pos,
                                                "invalid `\\u{...}` escape",
                                            ))
                                        }
                                    }
                                }
                                let cp = u32::from_str_radix(&hex, 16)
                                    .ok()
                                    .and_then(char::from_u32)
                                    .ok_or_else(|| {
                                        ParseError::at(pos, "invalid unicode escape value")
                                    })?;
                                s.push(cp);
                            }
                            Some((_, other)) => {
                                return Err(ParseError::at(
                                    pos,
                                    format!("unknown escape `\\{other}`"),
                                ))
                            }
                            None => return Err(ParseError::at(pos, "unterminated string literal")),
                        },
                        Some((_, ch)) => s.push(ch),
                    }
                }
                out.push(Spanned {
                    tok: Tok::Str(s),
                    pos,
                });
            }
            '{' => {
                bump!();
                out.push(Spanned {
                    tok: Tok::LBrace,
                    pos,
                });
            }
            '}' => {
                bump!();
                out.push(Spanned {
                    tok: Tok::RBrace,
                    pos,
                });
            }
            '(' => {
                bump!();
                out.push(Spanned {
                    tok: Tok::LParen,
                    pos,
                });
            }
            ')' => {
                bump!();
                out.push(Spanned {
                    tok: Tok::RParen,
                    pos,
                });
            }
            '[' => {
                bump!();
                out.push(Spanned {
                    tok: Tok::LBracket,
                    pos,
                });
            }
            ']' => {
                bump!();
                out.push(Spanned {
                    tok: Tok::RBracket,
                    pos,
                });
            }
            ',' => {
                bump!();
                out.push(Spanned {
                    tok: Tok::Comma,
                    pos,
                });
            }
            ';' => {
                bump!();
                out.push(Spanned {
                    tok: Tok::Semi,
                    pos,
                });
            }
            ':' => {
                bump!();
                out.push(Spanned {
                    tok: Tok::Colon,
                    pos,
                });
            }
            '.' => {
                bump!();
                if let Some(&(_, '.')) = chars.peek() {
                    bump!();
                    match chars.peek() {
                        Some(&(_, '.')) => {
                            bump!();
                            out.push(Spanned {
                                tok: Tok::Ellipsis,
                                pos,
                            });
                        }
                        _ => return Err(ParseError::at(pos, "expected `...`")),
                    }
                } else {
                    out.push(Spanned { tok: Tok::Dot, pos });
                }
            }
            '<' => {
                bump!();
                match chars.peek() {
                    Some(&(_, '-')) => {
                        bump!();
                        out.push(Spanned {
                            tok: Tok::LArrow,
                            pos,
                        });
                    }
                    Some(&(_, '=')) => {
                        bump!();
                        out.push(Spanned { tok: Tok::Le, pos });
                    }
                    _ => out.push(Spanned { tok: Tok::Lt, pos }),
                }
            }
            '=' => {
                bump!();
                match chars.peek() {
                    Some(&(_, '=')) => {
                        bump!();
                        out.push(Spanned {
                            tok: Tok::EqEq,
                            pos,
                        });
                    }
                    _ => out.push(Spanned {
                        tok: Tok::Assign,
                        pos,
                    }),
                }
            }
            '!' => {
                bump!();
                match chars.peek() {
                    Some(&(_, '=')) => {
                        bump!();
                        out.push(Spanned {
                            tok: Tok::NotEq,
                            pos,
                        });
                    }
                    _ => out.push(Spanned {
                        tok: Tok::Bang,
                        pos,
                    }),
                }
            }
            '&' => {
                bump!();
                match chars.peek() {
                    Some(&(_, '&')) => {
                        bump!();
                        out.push(Spanned {
                            tok: Tok::AndAnd,
                            pos,
                        });
                    }
                    _ => return Err(ParseError::at(pos, "expected `&&`")),
                }
            }
            '|' => {
                bump!();
                match chars.peek() {
                    Some(&(_, '|')) => {
                        bump!();
                        out.push(Spanned {
                            tok: Tok::OrOr,
                            pos,
                        });
                    }
                    _ => return Err(ParseError::at(pos, "expected `||`")),
                }
            }
            '+' => {
                bump!();
                match chars.peek() {
                    Some(&(_, '+')) => {
                        bump!();
                        out.push(Spanned {
                            tok: Tok::PlusPlus,
                            pos,
                        });
                    }
                    _ => out.push(Spanned {
                        tok: Tok::Plus,
                        pos,
                    }),
                }
            }
            '-' => {
                bump!();
                out.push(Spanned {
                    tok: Tok::Minus,
                    pos,
                });
            }
            '*' => {
                bump!();
                out.push(Spanned {
                    tok: Tok::Star,
                    pos,
                });
            }
            other => {
                return Err(ParseError::at(
                    pos,
                    format!("unexpected character `{other}`"),
                ));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src)
            .expect("lexes")
            .into_iter()
            .map(|s| s.tok)
            .collect()
    }

    #[test]
    fn operators_disambiguate() {
        assert_eq!(
            toks("<- <= < == = != ! && || + ++ - . ... * _ _x"),
            vec![
                Tok::LArrow,
                Tok::Le,
                Tok::Lt,
                Tok::EqEq,
                Tok::Assign,
                Tok::NotEq,
                Tok::Bang,
                Tok::AndAnd,
                Tok::OrOr,
                Tok::Plus,
                Tok::PlusPlus,
                Tok::Minus,
                Tok::Dot,
                Tok::Ellipsis,
                Tok::Star,
                Tok::Underscore,
                Tok::Ident("_x".into()),
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            toks(r#""a\"b" "\n" "\u{263a}""#),
            vec![
                Tok::Str("a\"b".into()),
                Tok::Str("\n".into()),
                Tok::Str("\u{263a}".into()),
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("a // comment\n b"),
            vec![Tok::Ident("a".into()), Tok::Ident("b".into())]
        );
    }

    #[test]
    fn positions_track_lines() {
        let spanned = lex("a\n  b").expect("lexes");
        assert_eq!(spanned[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(spanned[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn errors_on_bad_input() {
        assert!(lex("\"unterminated").is_err());
        assert!(lex("a & b").is_err());
        assert!(lex("99999999999999999999").is_err());
        assert!(lex("#").is_err());
        assert!(lex(r#""\q""#).is_err());
    }
}
