//! Recursive-descent parser for `.rx` programs.

use reflex_ast::{
    ActionPat, Cmd, CompPat, CompTypeDecl, Expr, Handler, MsgDecl, NiSpec, PatField, Program,
    PropBody, PropertyDecl, StateVarDecl, TraceProp, TracePropKind, Ty, UnOp, Value,
};

use crate::error::{ParseError, Pos};
use crate::lexer::{lex, Spanned, Tok};

/// Parses a complete `.rx` program.
///
/// `name` becomes [`Program::name`] (diagnostic only — `.rx` files do not
/// carry a program name).
///
/// # Errors
///
/// Returns the first lexical or syntactic error, with its source position.
pub fn parse_program(name: &str, src: &str) -> Result<Program, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, i: 0 };
    let mut program = Program::new(name);
    while !p.at_end() {
        let (kw, pos) = p.expect_ident("section name")?;
        match kw.as_str() {
            "components" => {
                p.expect(Tok::LBrace)?;
                while !p.eat(Tok::RBrace) {
                    program.components.push(p.comp_decl()?);
                }
            }
            "messages" => {
                p.expect(Tok::LBrace)?;
                while !p.eat(Tok::RBrace) {
                    program.messages.push(p.msg_decl()?);
                }
            }
            "state" => {
                p.expect(Tok::LBrace)?;
                while !p.eat(Tok::RBrace) {
                    program.state.push(p.state_decl()?);
                }
            }
            "init" => {
                p.expect(Tok::LBrace)?;
                let mut cmds = Vec::new();
                while !p.eat(Tok::RBrace) {
                    cmds.push(p.stmt()?);
                }
                program.init = Cmd::seq(cmds);
            }
            "handlers" => {
                p.expect(Tok::LBrace)?;
                while !p.eat(Tok::RBrace) {
                    program.handlers.push(p.handler()?);
                }
            }
            "properties" => {
                p.expect(Tok::LBrace)?;
                while !p.eat(Tok::RBrace) {
                    program.properties.push(p.property()?);
                }
            }
            other => {
                return Err(ParseError::at(
                    pos,
                    format!("unknown section `{other}` (expected components/messages/state/init/handlers/properties)"),
                ))
            }
        }
    }
    Ok(program)
}

struct Parser {
    toks: Vec<Spanned>,
    i: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.i >= self.toks.len()
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.i).map(|s| &s.tok)
    }

    fn pos(&self) -> Option<Pos> {
        self.toks.get(self.i).map(|s| s.pos)
    }

    fn next(&mut self) -> Option<Spanned> {
        let t = self.toks.get(self.i).cloned();
        if t.is_some() {
            self.i += 1;
        }
        t
    }

    fn err_here(&self, msg: impl Into<String>) -> ParseError {
        match self.pos() {
            Some(pos) => ParseError::at(pos, msg),
            None => ParseError::eof(msg),
        }
    }

    fn eat(&mut self, tok: Tok) -> bool {
        if self.peek() == Some(&tok) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: Tok) -> Result<(), ParseError> {
        if self.eat(tok.clone()) {
            Ok(())
        } else {
            match self.peek() {
                Some(got) => Err(self.err_here(format!("expected {tok}, found {got}"))),
                None => Err(ParseError::eof(format!("expected {tok}"))),
            }
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<(String, Pos), ParseError> {
        match self.next() {
            Some(Spanned {
                tok: Tok::Ident(s),
                pos,
            }) => Ok((s, pos)),
            Some(Spanned { tok, pos }) => {
                Err(ParseError::at(pos, format!("expected {what}, found {tok}")))
            }
            None => Err(ParseError::eof(format!("expected {what}"))),
        }
    }

    /// Consumes the given contextual keyword.
    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        let (got, pos) = self.expect_ident(&format!("`{kw}`"))?;
        if got == kw {
            Ok(())
        } else {
            Err(ParseError::at(
                pos,
                format!("expected `{kw}`, found `{got}`"),
            ))
        }
    }

    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s == kw)
    }

    fn ty(&mut self) -> Result<Ty, ParseError> {
        let (name, pos) = self.expect_ident("type")?;
        match name.as_str() {
            "bool" => Ok(Ty::Bool),
            "num" => Ok(Ty::Num),
            "str" => Ok(Ty::Str),
            "fdesc" => Ok(Ty::Fdesc),
            "comp" => Ok(Ty::Comp),
            other => Err(ParseError::at(pos, format!("unknown type `{other}`"))),
        }
    }

    // ---- declarations -------------------------------------------------

    fn comp_decl(&mut self) -> Result<CompTypeDecl, ParseError> {
        let (name, _) = self.expect_ident("component type name")?;
        let exe = match self.next() {
            Some(Spanned {
                tok: Tok::Str(s), ..
            }) => s,
            _ => return Err(self.err_here("expected executable string literal")),
        };
        self.expect(Tok::LParen)?;
        let mut config = Vec::new();
        if !self.eat(Tok::RParen) {
            loop {
                let (f, _) = self.expect_ident("configuration field name")?;
                self.expect(Tok::Colon)?;
                let t = self.ty()?;
                config.push((f, t));
                if self.eat(Tok::RParen) {
                    break;
                }
                self.expect(Tok::Comma)?;
            }
        }
        self.expect(Tok::Semi)?;
        Ok(CompTypeDecl { name, exe, config })
    }

    fn msg_decl(&mut self) -> Result<MsgDecl, ParseError> {
        let (name, _) = self.expect_ident("message type name")?;
        self.expect(Tok::LParen)?;
        let mut payload = Vec::new();
        if !self.eat(Tok::RParen) {
            loop {
                payload.push(self.ty()?);
                if self.eat(Tok::RParen) {
                    break;
                }
                self.expect(Tok::Comma)?;
            }
        }
        self.expect(Tok::Semi)?;
        Ok(MsgDecl { name, payload })
    }

    fn state_decl(&mut self) -> Result<StateVarDecl, ParseError> {
        let (name, _) = self.expect_ident("state variable name")?;
        self.expect(Tok::Colon)?;
        let ty = self.ty()?;
        let init = if self.eat(Tok::Assign) {
            Some(self.expr()?)
        } else {
            None
        };
        self.expect(Tok::Semi)?;
        Ok(StateVarDecl { name, ty, init })
    }

    fn handler(&mut self) -> Result<Handler, ParseError> {
        self.expect_kw("when")?;
        let (ctype, _) = self.expect_ident("component type")?;
        self.expect(Tok::Colon)?;
        let (msg, _) = self.expect_ident("message type")?;
        self.expect(Tok::LParen)?;
        let mut params = Vec::new();
        if !self.eat(Tok::RParen) {
            loop {
                let (p, _) = self.expect_ident("parameter name")?;
                params.push(p);
                if self.eat(Tok::RParen) {
                    break;
                }
                self.expect(Tok::Comma)?;
            }
        }
        let body = self.block()?;
        Ok(Handler {
            ctype,
            msg,
            params,
            body,
        })
    }

    // ---- statements ---------------------------------------------------

    fn block(&mut self) -> Result<Cmd, ParseError> {
        self.expect(Tok::LBrace)?;
        let mut cmds = Vec::new();
        while !self.eat(Tok::RBrace) {
            cmds.push(self.stmt()?);
        }
        Ok(Cmd::seq(cmds))
    }

    fn stmt(&mut self) -> Result<Cmd, ParseError> {
        if self.at_kw("if") {
            self.expect_kw("if")?;
            self.expect(Tok::LParen)?;
            let cond = self.expr()?;
            self.expect(Tok::RParen)?;
            let then_branch = self.block()?;
            let else_branch = if self.at_kw("else") {
                self.expect_kw("else")?;
                self.block()?
            } else {
                Cmd::Nop
            };
            return Ok(Cmd::If {
                cond,
                then_branch: Box::new(then_branch),
                else_branch: Box::new(else_branch),
            });
        }
        if self.at_kw("send") {
            self.expect_kw("send")?;
            self.expect(Tok::LParen)?;
            let target = self.expr()?;
            self.expect(Tok::Comma)?;
            let (msg, _) = self.expect_ident("message type")?;
            self.expect(Tok::LParen)?;
            let args = self.expr_list(Tok::RParen)?;
            self.expect(Tok::RParen)?; // closes the message payload
            self.expect(Tok::RParen)?; // closes the send(...) itself
            self.expect(Tok::Semi)?;
            return Ok(Cmd::Send { target, msg, args });
        }
        if self.at_kw("broadcast") {
            self.expect_kw("broadcast")?;
            let (ctype, _) = self.expect_ident("component type")?;
            self.expect(Tok::LParen)?;
            let (binder, _) = self.expect_ident("broadcast binder")?;
            self.expect(Tok::Colon)?;
            let pred = self.expr()?;
            self.expect(Tok::RParen)?;
            self.expect(Tok::Comma)?;
            let (msg, _) = self.expect_ident("message type")?;
            self.expect(Tok::LParen)?;
            let args = self.expr_list(Tok::RParen)?;
            self.expect(Tok::RParen)?;
            self.expect(Tok::Semi)?;
            return Ok(Cmd::Broadcast {
                ctype,
                binder,
                pred,
                msg,
                args,
            });
        }
        if self.at_kw("lookup") {
            self.expect_kw("lookup")?;
            let (ctype, _) = self.expect_ident("component type")?;
            self.expect(Tok::LParen)?;
            let (binder, _) = self.expect_ident("lookup binder")?;
            self.expect(Tok::Colon)?;
            let pred = self.expr()?;
            self.expect(Tok::RParen)?;
            let found = self.block()?;
            let missing = if self.at_kw("else") {
                self.expect_kw("else")?;
                self.block()?
            } else {
                Cmd::Nop
            };
            return Ok(Cmd::Lookup {
                ctype,
                binder,
                pred,
                found: Box::new(found),
                missing: Box::new(missing),
            });
        }
        // Assignment or binder statement.
        let (name, _) = self.expect_ident("statement")?;
        if self.eat(Tok::Assign) {
            let e = self.expr()?;
            self.expect(Tok::Semi)?;
            return Ok(Cmd::Assign(name, e));
        }
        if self.eat(Tok::LArrow) {
            if self.at_kw("spawn") {
                self.expect_kw("spawn")?;
                let (ctype, _) = self.expect_ident("component type")?;
                self.expect(Tok::LParen)?;
                let config = self.expr_list(Tok::RParen)?;
                self.expect(Tok::RParen)?;
                self.expect(Tok::Semi)?;
                return Ok(Cmd::Spawn {
                    binder: name,
                    ctype,
                    config,
                });
            }
            if self.at_kw("call") {
                self.expect_kw("call")?;
                let (func, _) = self.expect_ident("function name")?;
                self.expect(Tok::LParen)?;
                let args = self.expr_list(Tok::RParen)?;
                self.expect(Tok::RParen)?;
                self.expect(Tok::Semi)?;
                return Ok(Cmd::Call {
                    binder: name,
                    func,
                    args,
                });
            }
            return Err(self.err_here("expected `spawn` or `call` after `<-`"));
        }
        Err(self.err_here("expected `=` or `<-` in statement"))
    }

    fn expr_list(&mut self, terminator: Tok) -> Result<Vec<Expr>, ParseError> {
        let mut out = Vec::new();
        if self.peek() == Some(&terminator) {
            return Ok(out);
        }
        loop {
            out.push(self.expr()?);
            if self.peek() == Some(&terminator) {
                return Ok(out);
            }
            self.expect(Tok::Comma)?;
        }
    }

    // ---- expressions --------------------------------------------------

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.expr_or()
    }

    fn expr_or(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.expr_and()?;
        while self.eat(Tok::OrOr) {
            e = e.or(self.expr_and()?);
        }
        Ok(e)
    }

    fn expr_and(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.expr_cmp()?;
        while self.eat(Tok::AndAnd) {
            e = e.and(self.expr_cmp()?);
        }
        Ok(e)
    }

    fn expr_cmp(&mut self) -> Result<Expr, ParseError> {
        let e = self.expr_add()?;
        if self.eat(Tok::EqEq) {
            return Ok(e.eq(self.expr_add()?));
        }
        if self.eat(Tok::NotEq) {
            return Ok(e.ne(self.expr_add()?));
        }
        if self.eat(Tok::Lt) {
            return Ok(e.lt(self.expr_add()?));
        }
        if self.eat(Tok::Le) {
            return Ok(e.le(self.expr_add()?));
        }
        Ok(e)
    }

    fn expr_add(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.expr_unary()?;
        loop {
            if self.eat(Tok::Plus) {
                e = e.add(self.expr_unary()?);
            } else if self.eat(Tok::Minus) {
                e = e.sub(self.expr_unary()?);
            } else if self.eat(Tok::PlusPlus) {
                e = e.cat(self.expr_unary()?);
            } else {
                return Ok(e);
            }
        }
    }

    fn expr_unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat(Tok::Bang) {
            return Ok(self.expr_unary()?.not());
        }
        if self.eat(Tok::Minus) {
            let inner = self.expr_unary()?;
            // Fold unary minus on numeric literals so that `-3` round-trips
            // as the literal -3.
            return Ok(match inner {
                Expr::Lit(Value::Num(n)) => Expr::Lit(Value::Num(-n)),
                other => Expr::Un(UnOp::Neg, Box::new(other)),
            });
        }
        self.expr_postfix()
    }

    fn expr_postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.expr_primary()?;
        while self.eat(Tok::Dot) {
            let (field, _) = self.expect_ident("configuration field")?;
            e = e.cfg(field);
        }
        Ok(e)
    }

    fn expr_primary(&mut self) -> Result<Expr, ParseError> {
        match self.next() {
            Some(Spanned {
                tok: Tok::Num(n), ..
            }) => Ok(Expr::lit(n)),
            Some(Spanned {
                tok: Tok::Str(s), ..
            }) => Ok(Expr::lit(s)),
            Some(Spanned {
                tok: Tok::Ident(id),
                ..
            }) => match id.as_str() {
                "true" => Ok(Expr::lit(true)),
                "false" => Ok(Expr::lit(false)),
                _ => Ok(Expr::var(id)),
            },
            Some(Spanned {
                tok: Tok::LParen, ..
            }) => {
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Some(Spanned { tok, pos }) => Err(ParseError::at(
                pos,
                format!("expected expression, found {tok}"),
            )),
            None => Err(ParseError::eof("expected expression")),
        }
    }

    // ---- properties ---------------------------------------------------

    fn property(&mut self) -> Result<PropertyDecl, ParseError> {
        let (name, _) = self.expect_ident("property name")?;
        self.expect(Tok::Colon)?;
        let mut forall = Vec::new();
        if self.at_kw("forall") {
            self.expect_kw("forall")?;
            loop {
                let (v, _) = self.expect_ident("quantified variable")?;
                self.expect(Tok::Colon)?;
                let t = self.ty()?;
                forall.push((v, t));
                if self.eat(Tok::Dot) {
                    break;
                }
                self.expect(Tok::Comma)?;
            }
        }
        let body = if self.at_kw("noninterference") {
            self.expect_kw("noninterference")?;
            PropBody::NonInterference(self.ni_spec()?)
        } else if self.at_kw("atmostonce") {
            // Sugar anticipated by the paper (§6.1): "future updates to
            // Reflex will include syntax for expressing common patterns
            // such as *at most n of some action*. This syntax will
            // immediately desugar to our existing primitives."
            // `atmostonce [A];` desugars to `[A] Disables [A]`.
            self.expect_kw("atmostonce")?;
            self.expect(Tok::LBracket)?;
            let pat = self.action_pat()?;
            self.expect(Tok::RBracket)?;
            self.expect(Tok::Semi)?;
            PropBody::Trace(TraceProp::new(TracePropKind::Disables, pat.clone(), pat))
        } else {
            self.expect(Tok::LBracket)?;
            let a = self.action_pat()?;
            self.expect(Tok::RBracket)?;
            let (kw, pos) = self.expect_ident("trace property keyword")?;
            let kind = TracePropKind::ALL
                .into_iter()
                .find(|k| k.keyword() == kw)
                .ok_or_else(|| {
                    ParseError::at(pos, format!("unknown trace property keyword `{kw}`"))
                })?;
            self.expect(Tok::LBracket)?;
            let b = self.action_pat()?;
            self.expect(Tok::RBracket)?;
            self.expect(Tok::Semi)?;
            PropBody::Trace(TraceProp::new(kind, a, b))
        };
        Ok(PropertyDecl { name, forall, body })
    }

    fn ni_spec(&mut self) -> Result<NiSpec, ParseError> {
        self.expect(Tok::LBrace)?;
        let mut high_comps = Vec::new();
        let mut high_vars = Vec::new();
        while !self.eat(Tok::RBrace) {
            self.expect_kw("high")?;
            let (what, pos) = self.expect_ident("`components` or `vars`")?;
            self.expect(Tok::Colon)?;
            match what.as_str() {
                "components" => {
                    if !self.eat(Tok::Semi) {
                        loop {
                            high_comps.push(self.comp_pat()?);
                            if self.eat(Tok::Semi) {
                                break;
                            }
                            self.expect(Tok::Comma)?;
                        }
                    }
                }
                "vars" => {
                    if !self.eat(Tok::Semi) {
                        loop {
                            let (v, _) = self.expect_ident("variable name")?;
                            high_vars.push(v);
                            if self.eat(Tok::Semi) {
                                break;
                            }
                            self.expect(Tok::Comma)?;
                        }
                    }
                }
                other => {
                    return Err(ParseError::at(
                        pos,
                        format!("expected `components` or `vars`, found `{other}`"),
                    ))
                }
            }
        }
        Ok(NiSpec {
            high_comps,
            high_vars,
        })
    }

    fn comp_pat(&mut self) -> Result<CompPat, ParseError> {
        if self.eat(Tok::Star) {
            return Ok(CompPat::any());
        }
        let (ctype, _) = self.expect_ident("component type")?;
        if self.peek() == Some(&Tok::LParen) {
            self.expect(Tok::LParen)?;
            let mut fields = Vec::new();
            if !self.eat(Tok::RParen) {
                loop {
                    fields.push(self.pat_field()?);
                    if self.eat(Tok::RParen) {
                        break;
                    }
                    self.expect(Tok::Comma)?;
                }
            }
            Ok(CompPat {
                ctype: Some(ctype),
                config: Some(fields),
            })
        } else {
            Ok(CompPat::of_type(ctype))
        }
    }

    fn pat_field(&mut self) -> Result<PatField, ParseError> {
        match self.next() {
            Some(Spanned {
                tok: Tok::Underscore,
                ..
            }) => Ok(PatField::Any),
            Some(Spanned {
                tok: Tok::Num(n), ..
            }) => Ok(PatField::lit(n)),
            Some(Spanned {
                tok: Tok::Minus, ..
            }) => match self.next() {
                Some(Spanned {
                    tok: Tok::Num(n), ..
                }) => Ok(PatField::lit(-n)),
                _ => Err(self.err_here("expected number after `-` in pattern")),
            },
            Some(Spanned {
                tok: Tok::Str(s), ..
            }) => Ok(PatField::lit(s)),
            Some(Spanned {
                tok: Tok::Ident(id),
                ..
            }) => match id.as_str() {
                "true" => Ok(PatField::lit(true)),
                "false" => Ok(PatField::lit(false)),
                _ => Ok(PatField::var(id)),
            },
            Some(Spanned { tok, pos }) => Err(ParseError::at(
                pos,
                format!("expected pattern field, found {tok}"),
            )),
            None => Err(ParseError::eof("expected pattern field")),
        }
    }

    fn action_pat(&mut self) -> Result<ActionPat, ParseError> {
        let (kind, pos) = self.expect_ident("action pattern")?;
        self.expect(Tok::LParen)?;
        let pat = match kind.as_str() {
            "Select" => ActionPat::Select {
                comp: self.comp_pat()?,
            },
            "Spawn" => ActionPat::Spawn {
                comp: self.comp_pat()?,
            },
            "Recv" | "Send" => {
                let comp = self.comp_pat()?;
                self.expect(Tok::Comma)?;
                let (msg, _) = self.expect_ident("message type")?;
                self.expect(Tok::LParen)?;
                let mut args = Vec::new();
                if !self.eat(Tok::RParen) {
                    loop {
                        args.push(self.pat_field()?);
                        if self.eat(Tok::RParen) {
                            break;
                        }
                        self.expect(Tok::Comma)?;
                    }
                }
                if kind == "Recv" {
                    ActionPat::Recv { comp, msg, args }
                } else {
                    ActionPat::Send { comp, msg, args }
                }
            }
            "Call" => {
                let (func, _) = self.expect_ident("function name")?;
                self.expect(Tok::LParen)?;
                let args = if self.eat(Tok::Ellipsis) {
                    self.expect(Tok::RParen)?;
                    None
                } else {
                    let mut fields = Vec::new();
                    if !self.eat(Tok::RParen) {
                        loop {
                            fields.push(self.pat_field()?);
                            if self.eat(Tok::RParen) {
                                break;
                            }
                            self.expect(Tok::Comma)?;
                        }
                    }
                    Some(fields)
                };
                self.expect(Tok::Comma)?;
                let result = self.pat_field()?;
                ActionPat::Call { func, args, result }
            }
            other => {
                return Err(ParseError::at(
                    pos,
                    format!(
                        "unknown action pattern `{other}` (expected Select/Recv/Send/Spawn/Call)"
                    ),
                ))
            }
        };
        self.expect(Tok::RParen)?;
        Ok(pat)
    }
}
