//! Trace projections for non-interference (paper §4.2).
//!
//! Non-interference is a *relational* property: it compares the
//! high-component projections of two executions. This module provides the
//! projection functions `π_i` (high inputs) and `π_o` (high outputs) over
//! concrete traces; the relational check itself lives in `reflex-runtime`
//! (dynamic, over pairs of runs) and `reflex-verify` (static, via the
//! `NIlo`/`NIhi` sufficient conditions).

use reflex_ast::{NiSpec, Value};

use crate::action::{Action, CompInst, Trace};
use crate::matching::{match_comp, Bindings};

/// Decides whether a component is labeled *high* by `spec`, with the
/// enclosing property's `forall` variables instantiated by `sigma`.
///
/// A component is high iff it matches at least one of the spec's
/// `high_comps` patterns. Pattern variables already bound in `sigma`
/// constrain the match; unbound variables act as wildcards.
pub fn comp_is_high(spec: &NiSpec, sigma: &Bindings, comp: &CompInst) -> bool {
    spec.high_comps.iter().any(|pat| {
        let mut b = sigma.clone();
        match_comp(pat, comp, &mut b)
    })
}

/// `π_i`: the chronological list of `Recv` actions from high components.
///
/// (The full paper definition pairs each high input with the
/// non-deterministic context of its handler; contexts are owned by the
/// runtime, which zips them with this projection.)
pub fn project_high_inputs<'t>(
    trace: &'t Trace,
    spec: &NiSpec,
    sigma: &Bindings,
) -> Vec<&'t Action> {
    trace
        .iter_chrono()
        .filter(|a| match a {
            Action::Recv { comp, .. } => comp_is_high(spec, sigma, comp),
            _ => false,
        })
        .collect()
}

/// `π_o`: the chronological list of `Send` actions to, and `Spawn` actions
/// of, high components.
pub fn project_high_outputs<'t>(
    trace: &'t Trace,
    spec: &NiSpec,
    sigma: &Bindings,
) -> Vec<&'t Action> {
    trace
        .iter_chrono()
        .filter(|a| match a {
            Action::Send { comp, .. } | Action::Spawn { comp } => comp_is_high(spec, sigma, comp),
            _ => false,
        })
        .collect()
}

/// Instantiates the `forall` variables of a non-interference property with
/// concrete values drawn from `domain`, producing one [`Bindings`] per
/// combination.
///
/// Used by the dynamic NI oracle to test, e.g., "for all domains `d`" over
/// the domains actually occurring in a run.
pub fn instantiate_foralls(forall: &[(String, reflex_ast::Ty)], domain: &[Value]) -> Vec<Bindings> {
    let mut envs = vec![Bindings::new()];
    for (var, ty) in forall {
        let mut next = Vec::new();
        for env in &envs {
            for v in domain.iter().filter(|v| v.ty() == *ty) {
                let mut e = env.clone();
                assert!(e.bind(var, v), "fresh variable cannot conflict");
                next.push(e);
            }
        }
        envs = next;
    }
    envs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Msg;
    use reflex_ast::{CompId, CompPat, PatField, Ty};

    fn tab(id: u64, domain: &str) -> CompInst {
        CompInst::new(CompId::new(id), "Tab", [Value::from(domain)])
    }

    fn spec_for_domain() -> NiSpec {
        NiSpec::new(
            [CompPat::with_config("Tab", [PatField::var("d")])],
            Vec::<String>::new(),
        )
    }

    #[test]
    fn high_labeling_respects_bound_variables() {
        let spec = spec_for_domain();
        let sigma = Bindings::from_pairs([("d", Value::from("a.org"))]);
        assert!(comp_is_high(&spec, &sigma, &tab(1, "a.org")));
        assert!(!comp_is_high(&spec, &sigma, &tab(2, "b.org")));
        // Unbound: any Tab is high.
        assert!(comp_is_high(&spec, &Bindings::new(), &tab(2, "b.org")));
    }

    #[test]
    fn projections_filter_by_label_and_kind() {
        let spec = spec_for_domain();
        let sigma = Bindings::from_pairs([("d", Value::from("a.org"))]);
        let t: Trace = [
            Action::Recv {
                comp: tab(1, "a.org"),
                msg: Msg::new("M", []),
            },
            Action::Recv {
                comp: tab(2, "b.org"),
                msg: Msg::new("M", []),
            },
            Action::Send {
                comp: tab(1, "a.org"),
                msg: Msg::new("R", []),
            },
            Action::Spawn {
                comp: tab(3, "a.org"),
            },
            Action::Spawn {
                comp: tab(4, "b.org"),
            },
        ]
        .into_iter()
        .collect();
        assert_eq!(project_high_inputs(&t, &spec, &sigma).len(), 1);
        assert_eq!(project_high_outputs(&t, &spec, &sigma).len(), 2);
    }

    #[test]
    fn forall_instantiation_is_typed_cartesian() {
        let forall = vec![("d".to_owned(), Ty::Str), ("n".to_owned(), Ty::Num)];
        let domain = vec![Value::from("a"), Value::from("b"), Value::Num(1)];
        let envs = instantiate_foralls(&forall, &domain);
        assert_eq!(envs.len(), 2); // 2 strings x 1 num
        assert!(envs
            .iter()
            .all(|e| e.get("d").is_some() && e.get("n").is_some()));
    }
}
