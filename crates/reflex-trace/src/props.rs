//! Decidable checkers for the five trace-property primitives.
//!
//! The definitions follow the paper's Coq formulation exactly (§4.1),
//! re-expressed over chronological indices. Writing `t(i)` for the i-th
//! oldest action and `σ = match(P, t(i))` for the minimal substitution under
//! which pattern `P` matches `t(i)`:
//!
//! * `ImmBefore A B`: ∀ i, σ = match(B, t(i)) ⇒ i > 0 ∧ t(i−1) matches `Aσ`.
//! * `ImmAfter  A B`: ∀ i, σ = match(A, t(i)) ⇒ i+1 < len ∧ t(i+1) matches `Bσ`.
//! * `Enables   A B`: ∀ i, σ = match(B, t(i)) ⇒ ∃ j < i, t(j) matches `Aσ`.
//! * `Ensures   A B`: ∀ i, σ = match(A, t(i)) ⇒ ∃ j > i, t(j) matches `Bσ`.
//! * `Disables  A B`: ∀ i, σ = match(B, t(i)) ⇒ ∄ j < i, t(j) unifies with `Aσ`.
//!
//! Because all pattern variables are universally quantified at the
//! outermost level, a *positive* obligation (the existentially demanded
//! match) must not contain variables absent from the trigger pattern: such
//! a property would demand one witness per value of an infinite domain and
//! is unsatisfiable on finite traces. The type checker rejects this; the
//! checkers here report it as a [`PropError::UnboundObligationVar`].
//! Negative obligations (`Disables`) may mention extra variables — they
//! simply act as wildcards, making the prohibition stronger.

use std::fmt;

use reflex_ast::{ActionPat, TraceProp, TracePropKind};

use crate::action::Trace;
use crate::matching::{match_action, Bindings};

/// Why a trace fails (or cannot be checked against) a property.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PropError {
    /// The trace violates the property.
    Violation(Violation),
    /// A positive obligation pattern contains a variable not bound by the
    /// trigger pattern (ill-formed property; see module docs).
    UnboundObligationVar {
        /// The offending variable.
        var: String,
    },
}

impl fmt::Display for PropError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PropError::Violation(v) => write!(f, "{v}"),
            PropError::UnboundObligationVar { var } => write!(
                f,
                "ill-formed property: obligation variable `{var}` is not bound by the trigger pattern"
            ),
        }
    }
}

impl std::error::Error for PropError {}

/// A concrete counterexample to a trace property.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The primitive that failed.
    pub kind: TracePropKind,
    /// Chronological index of the trigger action.
    pub trigger_index: usize,
    /// Substitution under which the trigger matched.
    pub bindings: Bindings,
    /// Human-readable explanation.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} violated at action #{} under {}: {}",
            self.kind.keyword(),
            self.trigger_index,
            self.bindings,
            self.detail
        )
    }
}

fn ensure_closed(obligation: &ActionPat, sigma: &Bindings) -> Result<(), PropError> {
    for v in obligation.vars() {
        if sigma.get(&v).is_none() {
            return Err(PropError::UnboundObligationVar { var: v });
        }
    }
    Ok(())
}

/// Checks `trace ⊨ prop`, returning the first violation found (scanning
/// triggers chronologically).
pub fn check_trace(trace: &Trace, prop: &TraceProp) -> Result<(), PropError> {
    let actions = trace.actions();
    let empty = Bindings::new();
    match prop.kind {
        TracePropKind::ImmBefore => {
            for (i, act) in actions.iter().enumerate() {
                let Some(sigma) = match_action(&prop.b, act, &empty) else {
                    continue;
                };
                ensure_closed(&prop.a, &sigma)?;
                let ok = i > 0 && match_action(&prop.a, &actions[i - 1], &sigma).is_some();
                if !ok {
                    return Err(PropError::Violation(Violation {
                        kind: prop.kind,
                        trigger_index: i,
                        bindings: sigma,
                        detail: format!(
                            "no action matching [{}] immediately before [{}]",
                            prop.a, actions[i]
                        ),
                    }));
                }
            }
            Ok(())
        }
        TracePropKind::ImmAfter => {
            for (i, act) in actions.iter().enumerate() {
                let Some(sigma) = match_action(&prop.a, act, &empty) else {
                    continue;
                };
                ensure_closed(&prop.b, &sigma)?;
                let ok = i + 1 < actions.len()
                    && match_action(&prop.b, &actions[i + 1], &sigma).is_some();
                if !ok {
                    return Err(PropError::Violation(Violation {
                        kind: prop.kind,
                        trigger_index: i,
                        bindings: sigma,
                        detail: format!(
                            "no action matching [{}] immediately after [{}]",
                            prop.b, actions[i]
                        ),
                    }));
                }
            }
            Ok(())
        }
        TracePropKind::Enables => {
            for (i, act) in actions.iter().enumerate() {
                let Some(sigma) = match_action(&prop.b, act, &empty) else {
                    continue;
                };
                ensure_closed(&prop.a, &sigma)?;
                let ok = actions[..i]
                    .iter()
                    .any(|earlier| match_action(&prop.a, earlier, &sigma).is_some());
                if !ok {
                    return Err(PropError::Violation(Violation {
                        kind: prop.kind,
                        trigger_index: i,
                        bindings: sigma,
                        detail: format!(
                            "no earlier action matching [{}] enables [{}]",
                            prop.a, actions[i]
                        ),
                    }));
                }
            }
            Ok(())
        }
        TracePropKind::Ensures => {
            for (i, act) in actions.iter().enumerate() {
                let Some(sigma) = match_action(&prop.a, act, &empty) else {
                    continue;
                };
                ensure_closed(&prop.b, &sigma)?;
                let ok = actions[i + 1..]
                    .iter()
                    .any(|later| match_action(&prop.b, later, &sigma).is_some());
                if !ok {
                    return Err(PropError::Violation(Violation {
                        kind: prop.kind,
                        trigger_index: i,
                        bindings: sigma,
                        detail: format!(
                            "no later action matching [{}] after [{}]",
                            prop.b, actions[i]
                        ),
                    }));
                }
            }
            Ok(())
        }
        TracePropKind::Disables => {
            for (i, act) in actions.iter().enumerate() {
                let Some(sigma) = match_action(&prop.b, act, &empty) else {
                    continue;
                };
                // Extra variables in A act as wildcards: any extension of σ
                // matching an earlier action is a violation.
                if let Some(j) = actions[..i]
                    .iter()
                    .position(|earlier| match_action(&prop.a, earlier, &sigma).is_some())
                {
                    return Err(PropError::Violation(Violation {
                        kind: prop.kind,
                        trigger_index: i,
                        bindings: sigma,
                        detail: format!(
                            "action #{j} matching [{}] precedes forbidden [{}]",
                            prop.a, actions[i]
                        ),
                    }));
                }
            }
            Ok(())
        }
    }
}

/// Checks a trace against every *trace* property of a list of property
/// declarations, returning `(property name, error)` for the first failure.
///
/// Non-interference properties are relational (they compare pairs of
/// executions) and are not checkable on a single trace; they are skipped.
pub fn check_trace_properties<'p>(
    trace: &Trace,
    properties: impl IntoIterator<Item = &'p reflex_ast::PropertyDecl>,
) -> Result<(), (String, PropError)> {
    for p in properties {
        if let reflex_ast::PropBody::Trace(tp) = &p.body {
            check_trace(trace, tp).map_err(|e| (p.name.clone(), e))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{Action, CompInst, Msg};
    use reflex_ast::{CompId, CompPat, PatField, Value};

    fn comp(ctype: &str, id: u64) -> CompInst {
        CompInst::new(CompId::new(id), ctype, [])
    }

    fn recv(ctype: &str, id: u64, msg: &str, args: Vec<Value>) -> Action {
        Action::Recv {
            comp: comp(ctype, id),
            msg: Msg::new(msg, args),
        }
    }

    fn send(ctype: &str, id: u64, msg: &str, args: Vec<Value>) -> Action {
        Action::Send {
            comp: comp(ctype, id),
            msg: Msg::new(msg, args),
        }
    }

    fn recv_pat(ctype: &str, msg: &str, args: Vec<PatField>) -> ActionPat {
        ActionPat::Recv {
            comp: CompPat::of_type(ctype),
            msg: msg.into(),
            args,
        }
    }

    fn send_pat(ctype: &str, msg: &str, args: Vec<PatField>) -> ActionPat {
        ActionPat::Send {
            comp: CompPat::of_type(ctype),
            msg: msg.into(),
            args,
        }
    }

    fn auth_enables_term() -> TraceProp {
        TraceProp::new(
            TracePropKind::Enables,
            recv_pat("Password", "Auth", vec![PatField::var("u")]),
            send_pat("Terminal", "ReqTerm", vec![PatField::var("u")]),
        )
    }

    #[test]
    fn enables_holds_with_matching_user() {
        let t: Trace = [
            recv("Password", 1, "Auth", vec![Value::from("alice")]),
            send("Terminal", 2, "ReqTerm", vec![Value::from("alice")]),
        ]
        .into_iter()
        .collect();
        assert!(check_trace(&t, &auth_enables_term()).is_ok());
    }

    #[test]
    fn enables_fails_for_wrong_user() {
        // Authentication of bob does not enable a terminal for alice —
        // the quantified variable u must match.
        let t: Trace = [
            recv("Password", 1, "Auth", vec![Value::from("bob")]),
            send("Terminal", 2, "ReqTerm", vec![Value::from("alice")]),
        ]
        .into_iter()
        .collect();
        let err = check_trace(&t, &auth_enables_term()).unwrap_err();
        match err {
            PropError::Violation(v) => {
                assert_eq!(v.trigger_index, 1);
                assert_eq!(v.bindings.get("u"), Some(&Value::from("alice")));
            }
            other => panic!("unexpected: {other}"),
        }
    }

    #[test]
    fn enables_vacuous_on_empty_and_triggerless_traces() {
        let p = auth_enables_term();
        assert!(check_trace(&Trace::new(), &p).is_ok());
        let t: Trace = [recv("Password", 1, "Auth", vec![Value::from("a")])]
            .into_iter()
            .collect();
        assert!(check_trace(&t, &p).is_ok());
    }

    #[test]
    fn immbefore_requires_adjacency() {
        let p = TraceProp::new(
            TracePropKind::ImmBefore,
            recv_pat("Engine", "Crash", vec![]),
            send_pat("Airbag", "Deploy", vec![]),
        );
        let adjacent: Trace = [
            recv("Engine", 1, "Crash", vec![]),
            send("Airbag", 2, "Deploy", vec![]),
        ]
        .into_iter()
        .collect();
        assert!(check_trace(&adjacent, &p).is_ok());

        let separated: Trace = [
            recv("Engine", 1, "Crash", vec![]),
            send("Radio", 3, "Mute", vec![]),
            send("Airbag", 2, "Deploy", vec![]),
        ]
        .into_iter()
        .collect();
        assert!(matches!(
            check_trace(&separated, &p),
            Err(PropError::Violation(v)) if v.trigger_index == 2
        ));

        // A Deploy at the very start has nothing before it.
        let first: Trace = [send("Airbag", 2, "Deploy", vec![])].into_iter().collect();
        assert!(check_trace(&first, &p).is_err());
    }

    #[test]
    fn immafter_fails_on_pending_trigger_at_end() {
        let p = TraceProp::new(
            TracePropKind::ImmAfter,
            recv_pat("Engine", "Crash", vec![]),
            send_pat("Airbag", "Deploy", vec![]),
        );
        let complete: Trace = [
            recv("Engine", 1, "Crash", vec![]),
            send("Airbag", 2, "Deploy", vec![]),
        ]
        .into_iter()
        .collect();
        assert!(check_trace(&complete, &p).is_ok());

        // The crash is the most recent action: ImmAfter is violated because
        // this state is observable (every post-exchange state is reachable).
        let pending: Trace = [recv("Engine", 1, "Crash", vec![])].into_iter().collect();
        assert!(check_trace(&pending, &p).is_err());
    }

    #[test]
    fn ensures_requires_later_match_within_trace() {
        let p = TraceProp::new(
            TracePropKind::Ensures,
            recv_pat("Engine", "Crash", vec![]),
            send_pat("Doors", "Unlock", vec![]),
        );
        let good: Trace = [
            recv("Engine", 1, "Crash", vec![]),
            send("Radio", 3, "Mute", vec![]),
            send("Doors", 2, "Unlock", vec![]),
        ]
        .into_iter()
        .collect();
        assert!(check_trace(&good, &p).is_ok());

        let bad: Trace = [
            send("Doors", 2, "Unlock", vec![]),
            recv("Engine", 1, "Crash", vec![]),
        ]
        .into_iter()
        .collect();
        assert!(check_trace(&bad, &p).is_err());
    }

    #[test]
    fn disables_uniqueness_encoding() {
        // Spawn(Tab(id)) Disables Spawn(Tab(id)): tab ids are unique.
        let spawn_tab = |id: i64| Action::Spawn {
            comp: CompInst::new(CompId::new(id as u64), "Tab", [Value::Num(id)]),
        };
        let pat = ActionPat::Spawn {
            comp: CompPat::with_config("Tab", [PatField::var("id")]),
        };
        let p = TraceProp::new(TracePropKind::Disables, pat.clone(), pat);

        let unique: Trace = [spawn_tab(1), spawn_tab(2), spawn_tab(3)]
            .into_iter()
            .collect();
        assert!(check_trace(&unique, &p).is_ok());

        let dup: Trace = [spawn_tab(1), spawn_tab(2), spawn_tab(1)]
            .into_iter()
            .collect();
        let err = check_trace(&dup, &p).unwrap_err();
        assert!(matches!(err, PropError::Violation(v) if v.trigger_index == 2));
    }

    #[test]
    fn disables_extra_vars_act_as_wildcards() {
        // Once *any* Lock message is sent, no Unlock(u) for any u.
        let p = TraceProp::new(
            TracePropKind::Disables,
            send_pat("Doors", "Lock", vec![PatField::var("w")]),
            send_pat("Doors", "Unlock", vec![]),
        );
        let t: Trace = [
            send("Doors", 1, "Lock", vec![Value::from("x")]),
            send("Doors", 1, "Unlock", vec![]),
        ]
        .into_iter()
        .collect();
        assert!(check_trace(&t, &p).is_err());
    }

    #[test]
    fn unbound_positive_obligation_is_reported() {
        let p = TraceProp::new(
            TracePropKind::Enables,
            recv_pat("Password", "Auth", vec![PatField::var("v")]),
            send_pat("Terminal", "ReqTerm", vec![PatField::var("u")]),
        );
        let t: Trace = [send("Terminal", 2, "ReqTerm", vec![Value::from("a")])]
            .into_iter()
            .collect();
        assert!(matches!(
            check_trace(&t, &p),
            Err(PropError::UnboundObligationVar { var }) if var == "v"
        ));
    }

    #[test]
    fn check_trace_properties_reports_name() {
        let decl = reflex_ast::PropertyDecl::trace(
            "AuthBeforeTerm",
            [("u", reflex_ast::Ty::Str)],
            TracePropKind::Enables,
            recv_pat("Password", "Auth", vec![PatField::var("u")]),
            send_pat("Terminal", "ReqTerm", vec![PatField::var("u")]),
        );
        let bad: Trace = [send("Terminal", 2, "ReqTerm", vec![Value::from("a")])]
            .into_iter()
            .collect();
        let (name, _) = check_trace_properties(&bad, [&decl]).unwrap_err();
        assert_eq!(name, "AuthBeforeTerm");
    }
}
