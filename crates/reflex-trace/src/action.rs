//! Trace actions: the observable interactions between kernel and world.

use std::fmt;

use reflex_ast::{CompId, Value};

/// A concrete component instance, as it appears in trace actions and in the
/// kernel's component list.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CompInst {
    /// Unique runtime identity.
    pub id: CompId,
    /// Component type name.
    pub ctype: String,
    /// Configuration field values, fixed at spawn time.
    pub config: Vec<Value>,
}

impl CompInst {
    /// Creates a component instance.
    pub fn new(
        id: CompId,
        ctype: impl Into<String>,
        config: impl IntoIterator<Item = Value>,
    ) -> Self {
        CompInst {
            id,
            ctype: ctype.into(),
            config: config.into_iter().collect(),
        }
    }
}

impl fmt::Display for CompInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}<{}>(", self.ctype, self.id)?;
        for (i, v) in self.config.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{v}")?;
        }
        f.write_str(")")
    }
}

/// A concrete message: type name plus payload values.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Msg {
    /// Message type name.
    pub name: String,
    /// Payload values.
    pub args: Vec<Value>,
}

impl Msg {
    /// Creates a message.
    pub fn new(name: impl Into<String>, args: impl IntoIterator<Item = Value>) -> Msg {
        Msg {
            name: name.into(),
            args: args.into_iter().collect(),
        }
    }
}

impl fmt::Display for Msg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, v) in self.args.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{v}")?;
        }
        f.write_str(")")
    }
}

/// One observable action performed by the kernel.
///
/// Traces record the kernel's calls to effectful primitives, with their
/// arguments and results (paper §3.2). The five action kinds mirror the five
/// primitives: `select`, `recv`, `send`, `spawn` and custom external `call`s.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Action {
    /// The kernel selected a ready component to service.
    Select {
        /// The selected component.
        comp: CompInst,
    },
    /// The kernel received a message from a component.
    Recv {
        /// The sending component.
        comp: CompInst,
        /// The received message.
        msg: Msg,
    },
    /// The kernel sent a message to a component.
    Send {
        /// The recipient component.
        comp: CompInst,
        /// The sent message.
        msg: Msg,
    },
    /// The kernel spawned a new component.
    Spawn {
        /// The new component.
        comp: CompInst,
    },
    /// The kernel invoked an external function, obtaining a
    /// non-deterministic result from the outside world.
    Call {
        /// Function name.
        func: String,
        /// Argument values.
        args: Vec<Value>,
        /// The (string) result produced by the outside world.
        result: Value,
    },
}

impl Action {
    /// The component this action interacts with, if any.
    pub fn comp(&self) -> Option<&CompInst> {
        match self {
            Action::Select { comp }
            | Action::Recv { comp, .. }
            | Action::Send { comp, .. }
            | Action::Spawn { comp } => Some(comp),
            Action::Call { .. } => None,
        }
    }

    /// The message carried by this action, if it is a `Recv` or `Send`.
    pub fn msg(&self) -> Option<&Msg> {
        match self {
            Action::Recv { msg, .. } | Action::Send { msg, .. } => Some(msg),
            _ => None,
        }
    }

    /// Short tag naming the action kind, for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            Action::Select { .. } => "Select",
            Action::Recv { .. } => "Recv",
            Action::Send { .. } => "Send",
            Action::Spawn { .. } => "Spawn",
            Action::Call { .. } => "Call",
        }
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Select { comp } => write!(f, "Select({comp})"),
            Action::Recv { comp, msg } => write!(f, "Recv({comp}, {msg})"),
            Action::Send { comp, msg } => write!(f, "Send({comp}, {msg})"),
            Action::Spawn { comp } => write!(f, "Spawn({comp})"),
            Action::Call { func, args, result } => {
                write!(f, "Call({func}(")?;
                for (i, v) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ") = {result})")
            }
        }
    }
}

/// A trace of observable actions.
///
/// The paper stores traces as Coq lists in *reverse chronological* order
/// (most recent action at the head). We store actions in chronological
/// order internally — `actions()[0]` is the **oldest** action — and expose
/// both views; every property definition in [`crate::props`] is written
/// against chronological positions and proven (in tests) equivalent to the
/// paper's list formulation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    actions: Vec<Action>,
}

impl Trace {
    /// The empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Appends an action (which becomes the most recent).
    pub fn push(&mut self, action: Action) {
        self.actions.push(action);
    }

    /// Appends several actions in chronological order.
    pub fn extend(&mut self, actions: impl IntoIterator<Item = Action>) {
        self.actions.extend(actions);
    }

    /// The actions in chronological order (oldest first).
    pub fn actions(&self) -> &[Action] {
        &self.actions
    }

    /// Number of actions.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Iterates in chronological order (oldest first).
    pub fn iter_chrono(&self) -> impl DoubleEndedIterator<Item = &Action> {
        self.actions.iter()
    }

    /// Iterates in the paper's list order (most recent first).
    pub fn iter_rev(&self) -> impl DoubleEndedIterator<Item = &Action> {
        self.actions.iter().rev()
    }

    /// The most recent action, if any (the head of the paper's list).
    pub fn most_recent(&self) -> Option<&Action> {
        self.actions.last()
    }

    /// Discards every action after the first `len` (no-op if the trace is
    /// already that short). Used to roll back an uncommitted exchange.
    pub fn truncate(&mut self, len: usize) {
        self.actions.truncate(len);
    }
}

impl FromIterator<Action> for Trace {
    /// Builds a trace from actions given in chronological order.
    fn from_iter<I: IntoIterator<Item = Action>>(iter: I) -> Self {
        Trace {
            actions: iter.into_iter().collect(),
        }
    }
}

impl Extend<Action> for Trace {
    fn extend<I: IntoIterator<Item = Action>>(&mut self, iter: I) {
        self.actions.extend(iter);
    }
}

impl fmt::Display for Trace {
    /// Prints the trace in chronological order, one action per line.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, a) in self.actions.iter().enumerate() {
            writeln!(f, "{i:4}: {a}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comp(id: u64) -> CompInst {
        CompInst::new(CompId::new(id), "C", [])
    }

    #[test]
    fn trace_orders_are_consistent() {
        let mut t = Trace::new();
        t.push(Action::Select { comp: comp(0) });
        t.push(Action::Spawn { comp: comp(1) });
        assert_eq!(t.len(), 2);
        assert_eq!(t.most_recent(), Some(&Action::Spawn { comp: comp(1) }));
        let chrono: Vec<_> = t.iter_chrono().map(Action::kind).collect();
        assert_eq!(chrono, vec!["Select", "Spawn"]);
        let rev: Vec<_> = t.iter_rev().map(Action::kind).collect();
        assert_eq!(rev, vec!["Spawn", "Select"]);
    }

    #[test]
    fn accessors() {
        let a = Action::Recv {
            comp: comp(3),
            msg: Msg::new("M", [Value::Num(1)]),
        };
        assert_eq!(a.comp().map(|c| c.id), Some(CompId::new(3)));
        assert_eq!(a.msg().map(|m| m.name.as_str()), Some("M"));
        let c = Action::Call {
            func: "wget".into(),
            args: vec![Value::from("url")],
            result: Value::from("body"),
        };
        assert!(c.comp().is_none());
        assert!(c.msg().is_none());
    }

    #[test]
    fn display_forms() {
        let a = Action::Send {
            comp: CompInst::new(CompId::new(7), "Tab", [Value::from("a.org")]),
            msg: Msg::new("Render", []),
        };
        assert_eq!(a.to_string(), "Send(Tab<comp#7>(\"a.org\"), Render())");
    }
}
