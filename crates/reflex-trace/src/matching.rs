//! Matching action patterns against concrete actions.
//!
//! All property variables are universally quantified at the outermost level
//! of a property; matching a pattern against a concrete action produces the
//! *minimal substitution* (bindings) under which they agree. Repeated
//! variables encode equality constraints, exactly as in the paper's
//! `AMatch`.

use std::collections::BTreeMap;
use std::fmt;

use reflex_ast::{ActionPat, CompPat, PatField, Value};

use crate::action::{Action, CompInst};

/// A substitution from property variables to concrete values.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bindings {
    map: BTreeMap<String, Value>,
}

impl Bindings {
    /// The empty substitution.
    pub fn new() -> Bindings {
        Bindings::default()
    }

    /// Creates a substitution from (variable, value) pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (impl Into<String>, Value)>) -> Bindings {
        Bindings {
            map: pairs.into_iter().map(|(k, v)| (k.into(), v)).collect(),
        }
    }

    /// The value bound to `var`, if any.
    pub fn get(&self, var: &str) -> Option<&Value> {
        self.map.get(var)
    }

    /// Binds `var` to `value`, or — if already bound — checks consistency.
    /// Returns `false` on conflict (the match fails).
    pub fn bind(&mut self, var: &str, value: &Value) -> bool {
        match self.map.get(var) {
            Some(existing) => existing == value,
            None => {
                self.map.insert(var.to_owned(), value.clone());
                true
            }
        }
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no variables are bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over (variable, value) pairs in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.map.iter().map(|(k, v)| (k.as_str(), v))
    }
}

impl fmt::Display for Bindings {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{")?;
        for (i, (k, v)) in self.map.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{k} := {v}")?;
        }
        f.write_str("}")
    }
}

fn match_field(pat: &PatField, value: &Value, bindings: &mut Bindings) -> bool {
    match pat {
        PatField::Any => true,
        PatField::Lit(v) => v == value,
        PatField::Var(x) => bindings.bind(x, value),
    }
}

fn match_fields(pats: &[PatField], values: &[Value], bindings: &mut Bindings) -> bool {
    pats.len() == values.len()
        && pats
            .iter()
            .zip(values)
            .all(|(p, v)| match_field(p, v, bindings))
}

/// Matches a component pattern against a component instance, extending
/// `bindings`. Returns `false` (leaving `bindings` possibly partially
/// extended) on mismatch; callers that need rollback should clone first —
/// [`match_action`] does this for you.
pub fn match_comp(pat: &CompPat, comp: &CompInst, bindings: &mut Bindings) -> bool {
    if let Some(ct) = &pat.ctype {
        if *ct != comp.ctype {
            return false;
        }
    }
    match &pat.config {
        None => true,
        Some(fields) => match_fields(fields, &comp.config, bindings),
    }
}

/// Attempts to match `pat` against `action` under the partial substitution
/// `bindings`.
///
/// On success returns the minimal extension of `bindings` under which the
/// pattern matches; on failure returns `None` (and `bindings` is not
/// consumed conceptually — pass a clone-by-value).
pub fn match_action(pat: &ActionPat, action: &Action, bindings: &Bindings) -> Option<Bindings> {
    let mut b = bindings.clone();
    let ok = match (pat, action) {
        (ActionPat::Select { comp: cp }, Action::Select { comp }) => match_comp(cp, comp, &mut b),
        (ActionPat::Spawn { comp: cp }, Action::Spawn { comp }) => match_comp(cp, comp, &mut b),
        (
            ActionPat::Recv {
                comp: cp,
                msg,
                args,
            },
            Action::Recv { comp, msg: m },
        )
        | (
            ActionPat::Send {
                comp: cp,
                msg,
                args,
            },
            Action::Send { comp, msg: m },
        ) => *msg == m.name && match_comp(cp, comp, &mut b) && match_fields(args, &m.args, &mut b),
        (
            ActionPat::Call { func, args, result },
            Action::Call {
                func: f,
                args: a,
                result: r,
            },
        ) => {
            *func == *f
                && match args {
                    None => true,
                    Some(fields) => match_fields(fields, a, &mut b),
                }
                && match_field(result, r, &mut b)
        }
        _ => false,
    };
    ok.then_some(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use reflex_ast::CompId;

    fn tab(id: u64, domain: &str) -> CompInst {
        CompInst::new(CompId::new(id), "Tab", [Value::from(domain)])
    }

    fn send(comp: CompInst, msg: &str, args: Vec<Value>) -> Action {
        Action::Send {
            comp,
            msg: crate::action::Msg::new(msg, args),
        }
    }

    #[test]
    fn literal_and_wildcard_fields() {
        let pat = ActionPat::Send {
            comp: CompPat::of_type("Tab"),
            msg: "M".into(),
            args: vec![PatField::lit(3i64), PatField::Any],
        };
        let a = send(tab(1, "a.org"), "M", vec![Value::Num(3), Value::from("x")]);
        assert!(match_action(&pat, &a, &Bindings::new()).is_some());

        let b = send(tab(1, "a.org"), "M", vec![Value::Num(4), Value::from("x")]);
        assert!(match_action(&pat, &b, &Bindings::new()).is_none());
    }

    #[test]
    fn variables_bind_and_enforce_equality() {
        // Send(Tab(d), Cookie(d, v)) — the domain in the config must equal
        // the first payload field.
        let pat = ActionPat::Send {
            comp: CompPat::with_config("Tab", [PatField::var("d")]),
            msg: "Cookie".into(),
            args: vec![PatField::var("d"), PatField::var("v")],
        };
        let good = send(
            tab(1, "a.org"),
            "Cookie",
            vec![Value::from("a.org"), Value::from("k=1")],
        );
        let got = match_action(&pat, &good, &Bindings::new()).expect("should match");
        assert_eq!(got.get("d"), Some(&Value::from("a.org")));
        assert_eq!(got.get("v"), Some(&Value::from("k=1")));

        let bad = send(
            tab(1, "a.org"),
            "Cookie",
            vec![Value::from("b.org"), Value::from("k=1")],
        );
        assert!(match_action(&pat, &bad, &Bindings::new()).is_none());
    }

    #[test]
    fn pre_bound_variables_constrain_the_match() {
        let pat = ActionPat::Spawn {
            comp: CompPat::with_config("Tab", [PatField::var("d")]),
        };
        let a = Action::Spawn {
            comp: tab(2, "a.org"),
        };
        let pre = Bindings::from_pairs([("d", Value::from("b.org"))]);
        assert!(match_action(&pat, &a, &pre).is_none());
        let pre_ok = Bindings::from_pairs([("d", Value::from("a.org"))]);
        assert!(match_action(&pat, &a, &pre_ok).is_some());
    }

    #[test]
    fn kind_and_message_mismatches() {
        let pat = ActionPat::Recv {
            comp: CompPat::any(),
            msg: "M".into(),
            args: vec![],
        };
        let s = send(tab(1, "a.org"), "M", vec![]);
        assert!(match_action(&pat, &s, &Bindings::new()).is_none()); // Recv vs Send
        let r = Action::Recv {
            comp: tab(1, "a.org"),
            msg: crate::action::Msg::new("N", vec![]),
        };
        assert!(match_action(&pat, &r, &Bindings::new()).is_none()); // M vs N
    }

    #[test]
    fn call_patterns() {
        let a = Action::Call {
            func: "wget".into(),
            args: vec![Value::from("http://x")],
            result: Value::from("body"),
        };
        let p_any_args = ActionPat::Call {
            func: "wget".into(),
            args: None,
            result: PatField::var("r"),
        };
        let got = match_action(&p_any_args, &a, &Bindings::new()).expect("matches");
        assert_eq!(got.get("r"), Some(&Value::from("body")));

        let p_wrong_arity = ActionPat::Call {
            func: "wget".into(),
            args: Some(vec![]),
            result: PatField::Any,
        };
        assert!(match_action(&p_wrong_arity, &a, &Bindings::new()).is_none());
    }

    #[test]
    fn arity_mismatch_fails_not_panics() {
        let pat = ActionPat::Send {
            comp: CompPat::with_config("Tab", [PatField::Any, PatField::Any]),
            msg: "M".into(),
            args: vec![],
        };
        let a = send(tab(1, "a.org"), "M", vec![]);
        assert!(match_action(&pat, &a, &Bindings::new()).is_none());
    }
}
