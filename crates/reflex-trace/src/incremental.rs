//! Incremental (online) checking of the five trace-property primitives.
//!
//! The batch checkers in [`crate::props`] rescan the whole trace per
//! trigger — fine for tests, quadratic for a runtime monitor that watches
//! a kernel execute hundreds of thousands of exchanges. This module keeps
//! per-property *indices* so each new action is checked in O(1) amortized
//! time:
//!
//! * `ImmBefore` / `ImmAfter` only ever look at the adjacent action;
//! * `Enables` keeps a hash set of the ground instantiations of past
//!   `A`-matches (the positive obligation of an `Enables` must be closed
//!   under the trigger's variables, so the lookup key is fully ground);
//! * `Ensures` keeps a hash map of grounded pending obligations, cleared
//!   when a matching action arrives;
//! * `Disables` keeps a hash map of past `A`-matches projected onto the
//!   variables shared with the trigger pattern (extra variables act as
//!   wildcards, so only the shared projection constrains the lookup),
//!   remembering the earliest witness index for error reporting.
//!
//! The verdicts are *identical* — including the violation's trigger index,
//! bindings, and detail text — to running [`crate::props::check_trace`] on
//! every exchange-aligned prefix of the trace: calling
//! [`IncrementalChecker::end_of_exchange`] after each committed exchange
//! reports the pending-trigger violations (`ImmAfter` / `Ensures` whose
//! obligation has not arrived) that the batch checker reports on a trace
//! ending there. Equivalence is enforced by randomized tests in
//! `tests/incremental_props.rs`.

use std::collections::{HashMap, HashSet};

use reflex_ast::{ActionPat, PropBody, PropertyDecl, TraceProp, TracePropKind, Value};

use crate::action::Action;
use crate::matching::{match_action, Bindings};
use crate::props::{PropError, Violation};

/// A fully ground projection of a substitution onto a fixed variable set —
/// the hash key of the witness / obligation indices.
type Key = Vec<(String, Value)>;

fn project(sigma: &Bindings, vars: &[String]) -> Key {
    vars.iter()
        .filter_map(|v| sigma.get(v).map(|val| (v.clone(), val.clone())))
        .collect()
}

fn ensure_closed(obligation: &ActionPat, sigma: &Bindings) -> Result<(), PropError> {
    for v in obligation.vars() {
        if sigma.get(&v).is_none() {
            return Err(PropError::UnboundObligationVar { var: v });
        }
    }
    Ok(())
}

/// Per-property incremental state.
#[derive(Debug, Clone)]
struct PropState {
    name: String,
    prop: TraceProp,
    /// Variables of the `A` pattern.
    a_vars: Vec<String>,
    /// Variables of the `B` pattern.
    b_vars: Vec<String>,
    /// `vars(A) ∩ vars(B)` — the only variables that constrain a
    /// `Disables` witness lookup (extra `A`-variables are wildcards).
    shared_vars: Vec<String>,
    /// `Enables`: ground `A`-instantiations seen so far.
    enables_witnesses: HashSet<Key>,
    /// `Disables`: past `A`-matches projected onto `shared_vars`, with the
    /// earliest witness index (what the batch checker's scan reports).
    disables_witnesses: HashMap<Key, usize>,
    /// `ImmAfter`: the trigger matched at the previous action, awaiting its
    /// obligation at the current one: `(index, σ, rendered trigger)`.
    pending_imm_after: Option<(usize, Bindings, String)>,
    /// `Ensures`: grounded obligations keyed by their projection onto
    /// `vars(B)`, with the earliest unsatisfied trigger
    /// `(index, σ, rendered trigger)`.
    pending_ensures: HashMap<Key, (usize, Bindings, String)>,
}

impl PropState {
    fn new(name: String, prop: TraceProp) -> PropState {
        let a_vars = prop.a.vars();
        let b_vars = prop.b.vars();
        let shared_vars = a_vars
            .iter()
            .filter(|v| b_vars.contains(v))
            .cloned()
            .collect();
        PropState {
            name,
            prop,
            a_vars,
            b_vars,
            shared_vars,
            enables_witnesses: HashSet::new(),
            disables_witnesses: HashMap::new(),
            pending_imm_after: None,
            pending_ensures: HashMap::new(),
        }
    }

    fn violation(&self, trigger_index: usize, bindings: Bindings, detail: String) -> PropError {
        PropError::Violation(Violation {
            kind: self.prop.kind,
            trigger_index,
            bindings,
            detail,
        })
    }

    /// Feeds action `act` at chronological index `i`; `prev` is the action
    /// at `i - 1`, if any.
    fn on_action(
        &mut self,
        i: usize,
        act: &Action,
        prev: Option<&Action>,
    ) -> Result<(), PropError> {
        let empty = Bindings::new();
        match self.prop.kind {
            TracePropKind::ImmBefore => {
                if let Some(sigma) = match_action(&self.prop.b, act, &empty) {
                    ensure_closed(&self.prop.a, &sigma)?;
                    let ok = prev.is_some_and(|p| match_action(&self.prop.a, p, &sigma).is_some());
                    if !ok {
                        return Err(self.violation(
                            i,
                            sigma,
                            format!(
                                "no action matching [{}] immediately before [{act}]",
                                self.prop.a
                            ),
                        ));
                    }
                }
            }
            TracePropKind::ImmAfter => {
                if let Some((t, sigma, trigger)) = self.pending_imm_after.take() {
                    if match_action(&self.prop.b, act, &sigma).is_none() {
                        return Err(self.violation(
                            t,
                            sigma,
                            format!(
                                "no action matching [{}] immediately after [{trigger}]",
                                self.prop.b
                            ),
                        ));
                    }
                }
                if let Some(sigma) = match_action(&self.prop.a, act, &empty) {
                    ensure_closed(&self.prop.b, &sigma)?;
                    self.pending_imm_after = Some((i, sigma, act.to_string()));
                }
            }
            TracePropKind::Enables => {
                if let Some(sigma) = match_action(&self.prop.b, act, &empty) {
                    ensure_closed(&self.prop.a, &sigma)?;
                    let key = project(&sigma, &self.a_vars);
                    if !self.enables_witnesses.contains(&key) {
                        return Err(self.violation(
                            i,
                            sigma,
                            format!(
                                "no earlier action matching [{}] enables [{act}]",
                                self.prop.a
                            ),
                        ));
                    }
                }
                if let Some(sigma_a) = match_action(&self.prop.a, act, &empty) {
                    self.enables_witnesses
                        .insert(project(&sigma_a, &self.a_vars));
                }
            }
            TracePropKind::Ensures => {
                // Clear obligations satisfied by this action *before*
                // registering this action's own trigger: the obligation
                // must come strictly later than its trigger.
                if let Some(sigma_b) = match_action(&self.prop.b, act, &empty) {
                    self.pending_ensures
                        .remove(&project(&sigma_b, &self.b_vars));
                }
                if let Some(sigma) = match_action(&self.prop.a, act, &empty) {
                    ensure_closed(&self.prop.b, &sigma)?;
                    let key = project(&sigma, &self.b_vars);
                    self.pending_ensures
                        .entry(key)
                        .or_insert((i, sigma, act.to_string()));
                }
            }
            TracePropKind::Disables => {
                if let Some(sigma) = match_action(&self.prop.b, act, &empty) {
                    let key = project(&sigma, &self.shared_vars);
                    if let Some(&j) = self.disables_witnesses.get(&key) {
                        return Err(self.violation(
                            i,
                            sigma,
                            format!(
                                "action #{j} matching [{}] precedes forbidden [{act}]",
                                self.prop.a
                            ),
                        ));
                    }
                }
                if let Some(sigma_a) = match_action(&self.prop.a, act, &empty) {
                    self.disables_witnesses
                        .entry(project(&sigma_a, &self.shared_vars))
                        .or_insert(i);
                }
            }
        }
        Ok(())
    }

    /// Checks the pending-trigger obligations that the batch checker
    /// reports on a trace ending here.
    fn end_of_exchange(&self) -> Result<(), PropError> {
        if let Some((t, sigma, trigger)) = &self.pending_imm_after {
            return Err(self.violation(
                *t,
                sigma.clone(),
                format!(
                    "no action matching [{}] immediately after [{trigger}]",
                    self.prop.b
                ),
            ));
        }
        if let Some((t, sigma, trigger)) = self.pending_ensures.values().min_by_key(|(i, _, _)| *i)
        {
            return Err(self.violation(
                *t,
                sigma.clone(),
                format!(
                    "no later action matching [{}] after [{trigger}]",
                    self.prop.b
                ),
            ));
        }
        Ok(())
    }
}

/// An online checker for a set of named trace properties.
///
/// Feed each committed action with [`on_action`](Self::on_action); call
/// [`end_of_exchange`](Self::end_of_exchange) at every exchange boundary
/// (every point where the kernel could stop) to catch pending-obligation
/// violations. Both return the name of the first violated property.
///
/// Non-trace (relational) properties in the input are skipped, exactly as
/// in [`crate::props::check_trace_properties`].
///
/// When several properties are violated, the checker reports the one whose
/// violation is *detected* first (i.e. at the earliest action) — the right
/// semantics for a runtime monitor that halts at the offending action —
/// whereas the batch [`check_trace_properties`](crate::check_trace_properties)
/// reports failures in property-declaration order. Per individual property
/// the verdicts coincide exactly.
#[derive(Debug, Clone)]
pub struct IncrementalChecker {
    props: Vec<PropState>,
    last: Option<Action>,
    next_index: usize,
}

impl IncrementalChecker {
    /// Builds a checker over the *trace* properties of `properties`
    /// (relational properties are skipped).
    pub fn new<'p>(properties: impl IntoIterator<Item = &'p PropertyDecl>) -> IncrementalChecker {
        let props = properties
            .into_iter()
            .filter_map(|p| match &p.body {
                PropBody::Trace(tp) => Some(PropState::new(p.name.clone(), tp.clone())),
                _ => None,
            })
            .collect();
        IncrementalChecker {
            props,
            last: None,
            next_index: 0,
        }
    }

    /// Builds a checker for a single property.
    pub fn for_prop(name: impl Into<String>, prop: &TraceProp) -> IncrementalChecker {
        IncrementalChecker {
            props: vec![PropState::new(name.into(), prop.clone())],
            last: None,
            next_index: 0,
        }
    }

    /// The chronological index the next fed action will get.
    pub fn next_index(&self) -> usize {
        self.next_index
    }

    /// Feeds the next committed action. On a violation, returns the
    /// property name and the error; the checker must not be fed further.
    pub fn on_action(&mut self, act: &Action) -> Result<(), (String, PropError)> {
        let i = self.next_index;
        for p in &mut self.props {
            p.on_action(i, act, self.last.as_ref())
                .map_err(|e| (p.name.clone(), e))?;
        }
        self.last = Some(act.clone());
        self.next_index += 1;
        Ok(())
    }

    /// Checks pending obligations at an exchange boundary: a trace ending
    /// here must satisfy every property, so an outstanding `ImmAfter` or
    /// `Ensures` trigger is a violation.
    pub fn end_of_exchange(&self) -> Result<(), (String, PropError)> {
        for p in &self.props {
            p.end_of_exchange().map_err(|e| (p.name.clone(), e))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{CompInst, Msg, Trace};
    use crate::props::check_trace;
    use reflex_ast::{CompId, CompPat, PatField};

    fn recv(ctype: &str, id: u64, msg: &str, args: Vec<Value>) -> Action {
        Action::Recv {
            comp: CompInst::new(CompId::new(id), ctype, []),
            msg: Msg::new(msg, args),
        }
    }

    fn send(ctype: &str, id: u64, msg: &str, args: Vec<Value>) -> Action {
        Action::Send {
            comp: CompInst::new(CompId::new(id), ctype, []),
            msg: Msg::new(msg, args),
        }
    }

    fn feed_all(
        checker: &mut IncrementalChecker,
        trace: &Trace,
    ) -> Result<(), (String, PropError)> {
        for a in trace.iter_chrono() {
            checker.on_action(a)?;
        }
        checker.end_of_exchange()
    }

    #[test]
    fn enables_agrees_with_batch_checker() {
        let prop = TraceProp::new(
            TracePropKind::Enables,
            ActionPat::Recv {
                comp: CompPat::of_type("P"),
                msg: "Auth".into(),
                args: vec![PatField::var("u")],
            },
            ActionPat::Send {
                comp: CompPat::of_type("T"),
                msg: "Req".into(),
                args: vec![PatField::var("u")],
            },
        );
        let good: Trace = [
            recv("P", 1, "Auth", vec![Value::from("a")]),
            send("T", 2, "Req", vec![Value::from("a")]),
        ]
        .into_iter()
        .collect();
        let mut c = IncrementalChecker::for_prop("p", &prop);
        assert!(feed_all(&mut c, &good).is_ok());
        assert!(check_trace(&good, &prop).is_ok());

        let bad: Trace = [
            recv("P", 1, "Auth", vec![Value::from("b")]),
            send("T", 2, "Req", vec![Value::from("a")]),
        ]
        .into_iter()
        .collect();
        let mut c = IncrementalChecker::for_prop("p", &prop);
        let (_, got) = feed_all(&mut c, &bad).unwrap_err();
        let want = check_trace(&bad, &prop).unwrap_err();
        assert_eq!(got, want);
    }

    #[test]
    fn ensures_pending_reported_at_boundary_only() {
        let prop = TraceProp::new(
            TracePropKind::Ensures,
            ActionPat::Recv {
                comp: CompPat::of_type("E"),
                msg: "Crash".into(),
                args: vec![],
            },
            ActionPat::Send {
                comp: CompPat::of_type("D"),
                msg: "Unlock".into(),
                args: vec![],
            },
        );
        let mut c = IncrementalChecker::for_prop("p", &prop);
        c.on_action(&recv("E", 1, "Crash", vec![])).unwrap();
        // Mid-exchange the obligation is merely pending...
        assert!(c.end_of_exchange().is_err());
        // ...until the handler emits it.
        c.on_action(&send("D", 2, "Unlock", vec![])).unwrap();
        assert!(c.end_of_exchange().is_ok());
    }

    #[test]
    fn disables_reports_earliest_witness_like_batch() {
        let prop = TraceProp::new(
            TracePropKind::Disables,
            ActionPat::Send {
                comp: CompPat::of_type("D"),
                msg: "Lock".into(),
                args: vec![PatField::var("w")],
            },
            ActionPat::Send {
                comp: CompPat::of_type("D"),
                msg: "Unlock".into(),
                args: vec![],
            },
        );
        let t: Trace = [
            send("D", 1, "Lock", vec![Value::from("x")]),
            send("D", 1, "Lock", vec![Value::from("y")]),
            send("D", 1, "Unlock", vec![]),
        ]
        .into_iter()
        .collect();
        let mut c = IncrementalChecker::for_prop("p", &prop);
        let (_, got) = feed_all(&mut c, &t).unwrap_err();
        let want = check_trace(&t, &prop).unwrap_err();
        assert_eq!(got, want);
    }

    #[test]
    fn unbound_obligation_var_is_reported() {
        let prop = TraceProp::new(
            TracePropKind::Enables,
            ActionPat::Recv {
                comp: CompPat::of_type("P"),
                msg: "Auth".into(),
                args: vec![PatField::var("v")],
            },
            ActionPat::Send {
                comp: CompPat::of_type("T"),
                msg: "Req".into(),
                args: vec![PatField::var("u")],
            },
        );
        let mut c = IncrementalChecker::for_prop("p", &prop);
        let (_, e) = c
            .on_action(&send("T", 2, "Req", vec![Value::from("a")]))
            .unwrap_err();
        assert!(matches!(e, PropError::UnboundObligationVar { var } if var == "v"));
    }
}
