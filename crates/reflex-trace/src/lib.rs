//! Concrete traces and the Reflex property semantics.
//!
//! A Reflex kernel's observable behavior is its *trace*: the sequence of
//! `Select` / `Recv` / `Send` / `Spawn` / `Call` actions it performs
//! (paper §3.2). This crate defines:
//!
//! * [`Action`], [`Trace`], [`CompInst`], [`Msg`] — the trace model;
//! * [`matching`] — matching action patterns against concrete actions,
//!   producing minimal substitutions for the universally quantified
//!   property variables;
//! * [`props`] — decidable checkers for the five trace-property primitives
//!   (`ImmBefore`, `ImmAfter`, `Enables`, `Ensures`, `Disables`), used both
//!   as the ground-truth semantics in tests and by the runtime oracle;
//! * [`ni`] — the `π_i` / `π_o` projections underlying non-interference.
//!
//! # Example
//!
//! ```
//! use reflex_ast::{ActionPat, CompPat, PatField, TraceProp, TracePropKind, Value, CompId};
//! use reflex_trace::{Action, CompInst, Msg, Trace, props::check_trace};
//!
//! let pw = CompInst::new(CompId::new(1), "Password", []);
//! let term = CompInst::new(CompId::new(2), "Terminal", []);
//! let trace: Trace = [
//!     Action::Recv { comp: pw, msg: Msg::new("Auth", [Value::from("alice")]) },
//!     Action::Send { comp: term, msg: Msg::new("ReqTerm", [Value::from("alice")]) },
//! ].into_iter().collect();
//!
//! let prop = TraceProp::new(
//!     TracePropKind::Enables,
//!     ActionPat::Recv {
//!         comp: CompPat::of_type("Password"),
//!         msg: "Auth".into(),
//!         args: vec![PatField::var("u")],
//!     },
//!     ActionPat::Send {
//!         comp: CompPat::of_type("Terminal"),
//!         msg: "ReqTerm".into(),
//!         args: vec![PatField::var("u")],
//!     },
//! );
//! assert!(check_trace(&trace, &prop).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod action;
pub mod incremental;
pub mod matching;
pub mod ni;
pub mod props;

pub use action::{Action, CompInst, Msg, Trace};
pub use incremental::IncrementalChecker;
pub use matching::Bindings;
pub use props::{check_trace, check_trace_properties, PropError, Violation};
