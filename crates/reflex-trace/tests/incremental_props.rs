//! Equivalence of the incremental checker with the batch semantics.
//!
//! For every randomly generated (trace, property) pair and every prefix of
//! the trace, feeding the prefix into [`IncrementalChecker`] and calling
//! `end_of_exchange` must produce *exactly* the verdict of
//! [`check_trace`] on that prefix — same `Ok`/`Err`, same trigger index,
//! same bindings, same detail text.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use reflex_ast::{ActionPat, CompId, CompPat, PatField, TraceProp, TracePropKind, Value};
use reflex_trace::props::PropError;
use reflex_trace::{check_trace, Action, CompInst, IncrementalChecker, Msg, Trace};

const CTYPES: [&str; 2] = ["C", "D"];
const MSGS: [&str; 3] = ["A", "B", "M"];
const STRS: [&str; 2] = ["x", "y"];

fn rand_value(rng: &mut StdRng) -> Value {
    match rng.random_range(0..3u32) {
        0 => Value::from(STRS[rng.random_range(0..STRS.len())]),
        1 => Value::Num(rng.random_range(0..3i64)),
        _ => Value::Bool(rng.random_bool(0.5)),
    }
}

fn rand_comp(rng: &mut StdRng) -> CompInst {
    let ctype = CTYPES[rng.random_range(0..CTYPES.len())];
    let id = rng.random_range(0..4u64);
    let config = if rng.random_bool(0.5) {
        vec![rand_value(rng)]
    } else {
        vec![]
    };
    CompInst::new(CompId::new(id), ctype, config)
}

fn rand_action(rng: &mut StdRng) -> Action {
    let comp = rand_comp(rng);
    match rng.random_range(0..6u32) {
        0 => Action::Select { comp },
        1 => Action::Spawn { comp },
        2 => Action::Call {
            func: "f".into(),
            args: vec![rand_value(rng)],
            result: rand_value(rng),
        },
        3 => Action::Recv {
            comp,
            msg: Msg::new(MSGS[rng.random_range(0..MSGS.len())], vec![rand_value(rng)]),
        },
        4 => Action::Send {
            comp,
            msg: Msg::new(MSGS[rng.random_range(0..MSGS.len())], vec![rand_value(rng)]),
        },
        _ => Action::Recv {
            comp,
            msg: Msg::new(MSGS[rng.random_range(0..MSGS.len())], vec![]),
        },
    }
}

fn rand_field(rng: &mut StdRng, vars: &[&str]) -> PatField {
    match rng.random_range(0..3u32) {
        0 => PatField::Any,
        1 => PatField::lit(STRS[rng.random_range(0..STRS.len())]),
        _ => PatField::var(vars[rng.random_range(0..vars.len())]),
    }
}

fn rand_comp_pat(rng: &mut StdRng, vars: &[&str]) -> CompPat {
    let ctype = CTYPES[rng.random_range(0..CTYPES.len())];
    if rng.random_bool(0.4) {
        CompPat::with_config(ctype, [rand_field(rng, vars)])
    } else {
        CompPat::of_type(ctype)
    }
}

fn rand_pat(rng: &mut StdRng, vars: &[&str]) -> ActionPat {
    match rng.random_range(0..4u32) {
        0 => ActionPat::Select {
            comp: rand_comp_pat(rng, vars),
        },
        1 => ActionPat::Spawn {
            comp: rand_comp_pat(rng, vars),
        },
        2 => ActionPat::Recv {
            comp: rand_comp_pat(rng, vars),
            msg: MSGS[rng.random_range(0..MSGS.len())].into(),
            args: vec![rand_field(rng, vars)],
        },
        _ => ActionPat::Send {
            comp: rand_comp_pat(rng, vars),
            msg: MSGS[rng.random_range(0..MSGS.len())].into(),
            args: vec![rand_field(rng, vars)],
        },
    }
}

fn rand_prop(rng: &mut StdRng) -> TraceProp {
    let kind = match rng.random_range(0..5u32) {
        0 => TracePropKind::ImmBefore,
        1 => TracePropKind::ImmAfter,
        2 => TracePropKind::Enables,
        3 => TracePropKind::Ensures,
        _ => TracePropKind::Disables,
    };
    // Two variables maximize the interplay of shared and wildcard vars.
    let vars = ["u", "v"];
    TraceProp::new(kind, rand_pat(rng, &vars), rand_pat(rng, &vars))
}

fn incremental_verdict(prefix: &[Action], prop: &TraceProp) -> Result<(), PropError> {
    let mut c = IncrementalChecker::for_prop("p", prop);
    for a in prefix {
        c.on_action(a).map_err(|(_, e)| e)?;
    }
    c.end_of_exchange().map_err(|(_, e)| e)
}

#[test]
fn incremental_matches_batch_on_every_prefix() {
    let mut rng = StdRng::seed_from_u64(0xfee1);
    let mut checked = 0usize;
    let mut violations = 0usize;
    for _case in 0..300 {
        let prop = rand_prop(&mut rng);
        let len = rng.random_range(0..24usize);
        let actions: Vec<Action> = (0..len).map(|_| rand_action(&mut rng)).collect();
        for k in 0..=actions.len() {
            let prefix: Trace = actions[..k].iter().cloned().collect();
            let batch = check_trace(&prefix, &prop);
            let inc = incremental_verdict(&actions[..k], &prop);
            assert_eq!(
                inc, batch,
                "divergence on prefix of length {k} for {prop}\ntrace:\n{prefix}"
            );
            checked += 1;
            if batch.is_err() {
                violations += 1;
            }
        }
    }
    // Sanity: the generator must exercise both verdicts heavily.
    assert!(checked > 3000, "too few prefixes checked: {checked}");
    assert!(
        violations > 100,
        "generator too tame: {violations} violations"
    );
}

#[test]
fn incremental_is_streaming_not_prefix_restarted() {
    // One long trace fed once, with end_of_exchange probed at every step,
    // agrees with the batch checker on every prefix — as long as no
    // violation has occurred yet (after the first violation the batch
    // checker keeps reporting it; the incremental one stops).
    let mut rng = StdRng::seed_from_u64(0xcafe);
    for _case in 0..200 {
        let prop = rand_prop(&mut rng);
        let len = rng.random_range(0..32usize);
        let actions: Vec<Action> = (0..len).map(|_| rand_action(&mut rng)).collect();
        let mut c = IncrementalChecker::for_prop("p", &prop);
        for k in 0..=actions.len() {
            let prefix: Trace = actions[..k].iter().cloned().collect();
            let batch = check_trace(&prefix, &prop);
            let boundary = c.end_of_exchange().map_err(|(_, e)| e);
            assert_eq!(boundary, batch, "boundary divergence at {k} for {prop}");
            if k < actions.len() {
                match c.on_action(&actions[k]) {
                    Ok(()) => {}
                    Err((_, e)) => {
                        // Feeding must only fail where the batch checker
                        // fails on the extended prefix.
                        let extended: Trace = actions[..k + 1].iter().cloned().collect();
                        assert_eq!(check_trace(&extended, &prop), Err(e));
                        break;
                    }
                }
            }
        }
    }
}
