//! Equivalence of our indexed trace-property checkers with the paper's
//! *literal* Coq definitions.
//!
//! The paper defines the five primitives over reverse-chronological lists
//! by decomposition (`tr = suf ++ b :: pre`). This test file implements
//! those definitions verbatim (quantifying over all decompositions and a
//! finite value universe for the property variables) and checks, by
//! property-based testing over random traces and patterns, that
//! `reflex_trace::check_trace` decides exactly the same relation.

use proptest::prelude::*;
use reflex_ast::{ActionPat, CompPat, PatField, TraceProp, TracePropKind, Value};
use reflex_trace::matching::{match_action, Bindings};
use reflex_trace::{check_trace, Action, CompInst, Msg, PropError, Trace};

/// The finite universe the quantified variables range over in the oracle.
/// It must cover every value occurring in generated traces *plus* one
/// fresh value (quantifiers range over the infinite `str`/`num` domains;
/// a fresh value witnesses the "any other value" cases).
fn universe() -> Vec<Value> {
    vec![
        Value::from("a"),
        Value::from("b"),
        Value::from("c"),
        Value::from("fresh-not-in-traces"),
        Value::Num(0),
        Value::Num(1),
        Value::Num(2),
        Value::Num(999),
    ]
}

/// All substitutions for the given variables over the universe.
fn all_substitutions(vars: &[String]) -> Vec<Bindings> {
    let mut envs = vec![Bindings::new()];
    for v in vars {
        let mut next = Vec::new();
        for env in &envs {
            for value in universe() {
                let mut e = env.clone();
                e.bind(v, &value);
                next.push(e);
            }
        }
        envs = next;
    }
    envs
}

/// `AMatch P a` under a *closing* substitution: the pattern must match
/// with no leftover variable freedom (σ binds every variable).
fn amatch(pat: &ActionPat, action: &Action, sigma: &Bindings) -> bool {
    match match_action(pat, action, sigma) {
        Some(extended) => extended.len() == sigma.len(),
        None => false,
    }
}

/// The paper's list-decomposition definitions, evaluated over the
/// reverse-chronological list `tr` (index 0 = most recent) under a fully
/// closing substitution σ.
mod coq {
    use super::*;

    /// `immbefore A B tr := ∀ b pre suf, AMatch B b → tr = suf ++ b::pre →
    ///  ∃ a pre', AMatch A a ∧ pre = a :: pre'`.
    pub fn immbefore(a: &ActionPat, b: &ActionPat, tr: &[&Action], sigma: &Bindings) -> bool {
        for i in 0..tr.len() {
            // tr = suf ++ b :: pre  with  b = tr[i], pre = tr[i+1..].
            if amatch(b, tr[i], sigma) {
                let pre = &tr[i + 1..];
                let ok = !pre.is_empty() && amatch(a, pre[0], sigma);
                if !ok {
                    return false;
                }
            }
        }
        true
    }

    /// `enables A B tr := ∀ b pre suf, AMatch B b → tr = suf ++ b::pre →
    ///  ∃ a pre' suf', AMatch A a ∧ pre = suf' ++ a :: pre'`.
    pub fn enables(a: &ActionPat, b: &ActionPat, tr: &[&Action], sigma: &Bindings) -> bool {
        for i in 0..tr.len() {
            if amatch(b, tr[i], sigma) {
                let pre = &tr[i + 1..];
                if !pre.iter().any(|x| amatch(a, x, sigma)) {
                    return false;
                }
            }
        }
        true
    }

    /// `disables A B tr`: no action matching `A` occurs strictly earlier
    /// than an action matching `B` (§4.1 prose; the Coq snippet is the
    /// suffix formulation of the same relation).
    pub fn disables(a: &ActionPat, b: &ActionPat, tr: &[&Action], sigma: &Bindings) -> bool {
        for i in 0..tr.len() {
            if amatch(b, tr[i], sigma) {
                let pre = &tr[i + 1..];
                if pre.iter().any(|x| amatch(a, x, sigma)) {
                    return false;
                }
            }
        }
        true
    }

    /// `immafter A B tr := immbefore B A (rev tr)`.
    pub fn immafter(a: &ActionPat, b: &ActionPat, tr: &[&Action], sigma: &Bindings) -> bool {
        let rev: Vec<&Action> = tr.iter().rev().copied().collect();
        immbefore(b, a, &rev, sigma)
    }

    /// `ensures A B tr := enables B A (rev tr)`.
    pub fn ensures(a: &ActionPat, b: &ActionPat, tr: &[&Action], sigma: &Bindings) -> bool {
        let rev: Vec<&Action> = tr.iter().rev().copied().collect();
        enables(b, a, &rev, sigma)
    }
}

/// Decides `trace ⊨ prop` by brute force: the property holds iff it holds
/// under every closing substitution of its variables over the universe.
fn oracle(trace: &Trace, prop: &TraceProp) -> bool {
    // Reverse-chronological list, as in the Coq development.
    let tr: Vec<&Action> = trace.iter_rev().collect();
    let mut vars = prop.a.vars();
    for v in prop.b.vars() {
        if !vars.contains(&v) {
            vars.push(v);
        }
    }
    all_substitutions(&vars)
        .into_iter()
        .all(|sigma| match prop.kind {
            TracePropKind::ImmBefore => coq::immbefore(&prop.a, &prop.b, &tr, &sigma),
            TracePropKind::ImmAfter => coq::immafter(&prop.a, &prop.b, &tr, &sigma),
            TracePropKind::Enables => coq::enables(&prop.a, &prop.b, &tr, &sigma),
            TracePropKind::Ensures => coq::ensures(&prop.a, &prop.b, &tr, &sigma),
            TracePropKind::Disables => coq::disables(&prop.a, &prop.b, &tr, &sigma),
        })
}

// ---- generators ----------------------------------------------------------

fn gen_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        prop_oneof![Just("a"), Just("b"), Just("c")].prop_map(Value::from),
        (0i64..3).prop_map(Value::Num),
    ]
}

fn gen_comp() -> impl Strategy<Value = CompInst> {
    (
        0u64..4,
        prop_oneof![Just("T"), Just("U")],
        proptest::collection::vec(gen_value(), 0..2),
    )
        .prop_map(|(id, ctype, config)| CompInst::new(reflex_ast::CompId::new(id), ctype, config))
}

fn gen_msg() -> impl Strategy<Value = Msg> {
    (
        prop_oneof![Just("M"), Just("N")],
        proptest::collection::vec(gen_value(), 0..2),
    )
        .prop_map(|(name, args)| Msg::new(name, args))
}

fn gen_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        gen_comp().prop_map(|comp| Action::Select { comp }),
        (gen_comp(), gen_msg()).prop_map(|(comp, msg)| Action::Recv { comp, msg }),
        (gen_comp(), gen_msg()).prop_map(|(comp, msg)| Action::Send { comp, msg }),
        gen_comp().prop_map(|comp| Action::Spawn { comp }),
    ]
}

fn gen_pat_field() -> impl Strategy<Value = PatField> {
    prop_oneof![
        Just(PatField::Any),
        gen_value().prop_map(PatField::Lit),
        prop_oneof![Just("x"), Just("y")].prop_map(PatField::var),
    ]
}

fn gen_comp_pat() -> impl Strategy<Value = CompPat> {
    prop_oneof![
        Just(CompPat::any()),
        prop_oneof![Just("T"), Just("U")].prop_map(CompPat::of_type),
        (
            prop_oneof![Just("T"), Just("U")],
            proptest::collection::vec(gen_pat_field(), 0..2)
        )
            .prop_map(|(t, cfg)| CompPat::with_config(t, cfg)),
    ]
}

fn gen_payload_pat() -> impl Strategy<Value = Vec<PatField>> {
    proptest::collection::vec(gen_pat_field(), 0..2)
}

fn gen_action_pat() -> impl Strategy<Value = ActionPat> {
    prop_oneof![
        gen_comp_pat().prop_map(|comp| ActionPat::Select { comp }),
        (
            gen_comp_pat(),
            prop_oneof![Just("M"), Just("N")],
            gen_payload_pat()
        )
            .prop_map(|(comp, msg, args)| ActionPat::Recv {
                comp,
                msg: msg.into(),
                args
            }),
        (
            gen_comp_pat(),
            prop_oneof![Just("M"), Just("N")],
            gen_payload_pat()
        )
            .prop_map(|(comp, msg, args)| ActionPat::Send {
                comp,
                msg: msg.into(),
                args
            }),
        gen_comp_pat().prop_map(|comp| ActionPat::Spawn { comp }),
    ]
}

fn gen_kind() -> impl Strategy<Value = TracePropKind> {
    prop_oneof![
        Just(TracePropKind::ImmBefore),
        Just(TracePropKind::ImmAfter),
        Just(TracePropKind::Enables),
        Just(TracePropKind::Ensures),
        Just(TracePropKind::Disables),
    ]
}

/// Well-formedness filter: positive obligations must not introduce
/// variables beyond the trigger (the type checker's rule — outside it the
/// indexed checker reports `UnboundObligationVar` rather than deciding).
fn well_formed(prop: &TraceProp) -> bool {
    if prop.kind == TracePropKind::Disables {
        return true;
    }
    let trigger = prop.trigger().vars();
    prop.obligation().vars().iter().all(|v| trigger.contains(v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn indexed_checker_equals_coq_list_semantics(
        actions in proptest::collection::vec(gen_action(), 0..7),
        a in gen_action_pat(),
        b in gen_action_pat(),
        kind in gen_kind(),
    ) {
        let prop = TraceProp::new(kind, a, b);
        prop_assume!(well_formed(&prop));
        let trace: Trace = actions.into_iter().collect();
        let ours = match check_trace(&trace, &prop) {
            Ok(()) => true,
            Err(PropError::Violation(_)) => false,
            Err(PropError::UnboundObligationVar { .. }) => {
                unreachable!("filtered by well_formed")
            }
        };
        let reference = oracle(&trace, &prop);
        prop_assert_eq!(
            ours,
            reference,
            "disagreement on {} over trace:\n{}",
            prop,
            trace
        );
    }
}

#[test]
fn oracle_sanity_on_known_cases() {
    // A quick non-random calibration of the oracle itself.
    let pw = CompInst::new(reflex_ast::CompId::new(1), "T", []);
    let t: Trace = [
        Action::Recv {
            comp: pw.clone(),
            msg: Msg::new("M", [Value::from("a")]),
        },
        Action::Send {
            comp: pw,
            msg: Msg::new("N", [Value::from("a")]),
        },
    ]
    .into_iter()
    .collect();
    let p = TraceProp::new(
        TracePropKind::Enables,
        ActionPat::Recv {
            comp: CompPat::of_type("T"),
            msg: "M".into(),
            args: vec![PatField::var("x")],
        },
        ActionPat::Send {
            comp: CompPat::of_type("T"),
            msg: "N".into(),
            args: vec![PatField::var("x")],
        },
    );
    assert!(oracle(&t, &p));
    assert!(check_trace(&t, &p).is_ok());

    let q = TraceProp::new(TracePropKind::Ensures, p.a.clone(), p.b.clone());
    assert!(oracle(&t, &q));
    assert!(check_trace(&t, &q).is_ok());
}
