//! Whole-program structure: declarations, init code, handlers, properties.

use crate::cmd::Cmd;
use crate::expr::Expr;
use crate::prop::PropertyDecl;
use crate::value::Ty;

/// A component *type* declaration (the `Components` section).
///
/// A component type names a kind of sandboxed process the kernel talks to,
/// the executable implementing it, and the signature of its read-only
/// configuration record (set at spawn time).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompTypeDecl {
    /// Component type name, e.g. `"Connection"`.
    pub name: String,
    /// Executable on disk implementing this component, e.g. `"client.py"`.
    /// In this reproduction the executable name keys into a registry of
    /// simulated component behaviors.
    pub exe: String,
    /// Configuration signature: named, typed, read-only fields.
    pub config: Vec<(String, Ty)>,
}

impl CompTypeDecl {
    /// The index and type of configuration field `field`, if declared.
    pub fn config_field(&self, field: &str) -> Option<(usize, Ty)> {
        self.config
            .iter()
            .position(|(n, _)| n == field)
            .map(|i| (i, self.config[i].1))
    }
}

/// A message type declaration (the `Messages` section).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MsgDecl {
    /// Message type name, e.g. `"ReqAuth"`.
    pub name: String,
    /// Payload types, in order.
    pub payload: Vec<Ty>,
}

/// A global state variable declaration (the `State` section).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateVarDecl {
    /// Variable name.
    pub name: String,
    /// Variable type.
    pub ty: Ty,
    /// Initial value expression (must be a closed literal expression for
    /// data-typed variables; component-typed variables are instead bound by
    /// `spawn` commands in the init section).
    pub init: Option<Expr>,
}

/// A message handler (one rule of the `Handlers` section).
///
/// The rule fires whenever the kernel receives a message of type `msg` from
/// *any* component of type `ctype`. Inside `body`, the payload is bound to
/// `params` and the sending component is bound to the implicit variable
/// [`Handler::SENDER`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Handler {
    /// Component type whose messages this handler services.
    pub ctype: String,
    /// Message type this handler services.
    pub msg: String,
    /// Names binding the message payload, matching the message signature.
    pub params: Vec<String>,
    /// Handler body.
    pub body: Cmd,
}

impl Handler {
    /// The implicit variable bound to the component that sent the message.
    pub const SENDER: &'static str = "sender";
}

/// A complete Reflex program: a reactive-system kernel together with the
/// properties it must satisfy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Program name (used in diagnostics and reports).
    pub name: String,
    /// Declared component types.
    pub components: Vec<CompTypeDecl>,
    /// Declared message types.
    pub messages: Vec<MsgDecl>,
    /// Declared global state variables.
    pub state: Vec<StateVarDecl>,
    /// Initialization code, run once at startup. `spawn` binders introduced
    /// here become global component-typed variables.
    pub init: Cmd,
    /// Message handlers. At most one handler per (component type, message
    /// type) pair; pairs without a handler behave as `Nop`.
    pub handlers: Vec<Handler>,
    /// Properties to verify.
    pub properties: Vec<PropertyDecl>,
}

impl Program {
    /// Creates an empty program with the given name.
    pub fn new(name: impl Into<String>) -> Program {
        Program {
            name: name.into(),
            components: Vec::new(),
            messages: Vec::new(),
            state: Vec::new(),
            init: Cmd::Nop,
            handlers: Vec::new(),
            properties: Vec::new(),
        }
    }

    /// Looks up a component type declaration by name.
    pub fn comp_type(&self, name: &str) -> Option<&CompTypeDecl> {
        self.components.iter().find(|c| c.name == name)
    }

    /// Looks up a message declaration by name.
    pub fn msg_decl(&self, name: &str) -> Option<&MsgDecl> {
        self.messages.iter().find(|m| m.name == name)
    }

    /// Looks up a state variable declaration by name.
    pub fn state_var(&self, name: &str) -> Option<&StateVarDecl> {
        self.state.iter().find(|v| v.name == name)
    }

    /// Looks up a property by name.
    pub fn property(&self, name: &str) -> Option<&PropertyDecl> {
        self.properties.iter().find(|p| p.name == name)
    }

    /// The explicit handler for `(ctype, msg)`, if one was declared.
    pub fn handler(&self, ctype: &str, msg: &str) -> Option<&Handler> {
        self.handlers
            .iter()
            .find(|h| h.ctype == ctype && h.msg == msg)
    }

    /// The global component-typed variables bound by `spawn` commands in the
    /// init section, with their component types, in order.
    pub fn init_comp_vars(&self) -> Vec<(String, String)> {
        let mut out = Vec::new();
        self.init.visit(&mut |c| {
            if let Cmd::Spawn { binder, ctype, .. } = c {
                out.push((binder.clone(), ctype.clone()));
            }
        });
        out
    }

    /// Enumerates every `(component type, message type)` exchange case of
    /// the behavioral abstraction: all pairs of declared component type and
    /// declared message type, each with either its declared handler body or
    /// `Nop`.
    ///
    /// This is exactly the case split performed by the induction over
    /// `BehAbs` — untrusted components may send *any* declared message at
    /// any time, so every pair is a reachable exchange.
    pub fn exchange_cases(&self) -> Vec<ExchangeCase<'_>> {
        static NOP: Cmd = Cmd::Nop;
        let mut cases = Vec::new();
        for c in &self.components {
            for m in &self.messages {
                let handler = self.handler(&c.name, &m.name);
                cases.push(ExchangeCase {
                    ctype: &c.name,
                    msg: &m.name,
                    params: handler.map(|h| h.params.as_slice()).unwrap_or(&[]),
                    body: handler.map(|h| &h.body).unwrap_or(&NOP),
                    explicit: handler.is_some(),
                });
            }
        }
        cases
    }
}

/// One case of the exchange relation: a component type, a message type, and
/// the (possibly implicit `Nop`) handler servicing it.
#[derive(Debug, Clone, Copy)]
pub struct ExchangeCase<'p> {
    /// Component type of the sender.
    pub ctype: &'p str,
    /// Message type received.
    pub msg: &'p str,
    /// Payload binder names (empty for implicit handlers).
    pub params: &'p [String],
    /// Handler body (`Nop` for implicit handlers).
    pub body: &'p Cmd,
    /// Whether this case has an explicitly declared handler.
    pub explicit: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Program {
        let mut p = Program::new("toy");
        p.components.push(CompTypeDecl {
            name: "A".into(),
            exe: "a.py".into(),
            config: vec![("id".into(), Ty::Num)],
        });
        p.components.push(CompTypeDecl {
            name: "B".into(),
            exe: "b.py".into(),
            config: vec![],
        });
        p.messages.push(MsgDecl {
            name: "M".into(),
            payload: vec![Ty::Str],
        });
        p.messages.push(MsgDecl {
            name: "N".into(),
            payload: vec![],
        });
        p.handlers.push(Handler {
            ctype: "A".into(),
            msg: "M".into(),
            params: vec!["s".into()],
            body: Cmd::Nop,
        });
        p.init = Cmd::seq([
            Cmd::Spawn {
                binder: "a0".into(),
                ctype: "A".into(),
                config: vec![Expr::lit(0i64)],
            },
            Cmd::Spawn {
                binder: "b0".into(),
                ctype: "B".into(),
                config: vec![],
            },
        ]);
        p
    }

    #[test]
    fn lookups_find_declarations() {
        let p = toy();
        assert!(p.comp_type("A").is_some());
        assert!(p.comp_type("C").is_none());
        assert_eq!(p.msg_decl("M").map(|m| m.payload.len()), Some(1));
        assert!(p.handler("A", "M").is_some());
        assert!(p.handler("A", "N").is_none());
        assert_eq!(
            p.comp_type("A").and_then(|c| c.config_field("id")),
            Some((0, Ty::Num))
        );
    }

    #[test]
    fn exchange_cases_cover_all_pairs() {
        let p = toy();
        let cases = p.exchange_cases();
        assert_eq!(cases.len(), 4); // 2 comp types x 2 msg types
        let explicit: Vec<_> = cases.iter().filter(|c| c.explicit).collect();
        assert_eq!(explicit.len(), 1);
        assert_eq!(explicit[0].ctype, "A");
        assert_eq!(explicit[0].msg, "M");
        assert!(cases
            .iter()
            .filter(|c| !c.explicit)
            .all(|c| matches!(c.body, Cmd::Nop)));
    }

    #[test]
    fn init_comp_vars_in_order() {
        let p = toy();
        assert_eq!(
            p.init_comp_vars(),
            vec![
                ("a0".to_owned(), "A".to_owned()),
                ("b0".to_owned(), "B".to_owned())
            ]
        );
    }
}
