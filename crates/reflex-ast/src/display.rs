//! Pretty-printing of Reflex programs back to concrete `.rx` syntax.
//!
//! The printer and `reflex-parser` are kept in sync: for every well-formed
//! program `p`, `parse(p.to_string())` structurally equals `p` (this
//! round-trip is exercised by the parser's test suite).

use std::fmt::{self, Write as _};

use crate::cmd::Cmd;
use crate::expr::{BinOp, Expr, UnOp};
use crate::pattern::{ActionPat, CompPat, PatField};
use crate::program::Program;
use crate::prop::{PropBody, PropertyDecl, TraceProp};

fn indent(f: &mut fmt::Formatter<'_>, level: usize) -> fmt::Result {
    for _ in 0..level {
        f.write_str("  ")?;
    }
    Ok(())
}

/// Binding strength of each operator, for minimal parenthesization.
fn binop_prec(op: BinOp) -> u8 {
    match op {
        BinOp::Or => 1,
        BinOp::And => 2,
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le => 3,
        BinOp::Add | BinOp::Sub | BinOp::Cat => 4,
    }
}

fn binop_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::And => "&&",
        BinOp::Or => "||",
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Cat => "++",
    }
}

fn fmt_expr(e: &Expr, parent_prec: u8, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match e {
        Expr::Lit(v) => write!(f, "{v}"),
        Expr::Var(x) => f.write_str(x),
        Expr::Cfg(inner, field) => {
            fmt_expr(inner, 6, f)?;
            write!(f, ".{field}")
        }
        Expr::Un(op, inner) => {
            f.write_str(match op {
                UnOp::Not => "!",
                UnOp::Neg => "-",
            })?;
            fmt_expr(inner, 5, f)
        }
        Expr::Bin(op, l, r) => {
            let prec = binop_prec(*op);
            let need_parens = prec < parent_prec;
            if need_parens {
                f.write_char('(')?;
            }
            fmt_expr(l, prec, f)?;
            write!(f, " {} ", binop_str(*op))?;
            // Left-associative: right operand binds one tighter.
            fmt_expr(r, prec + 1, f)?;
            if need_parens {
                f.write_char(')')?;
            }
            Ok(())
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_expr(self, 0, f)
    }
}

fn fmt_args(args: &[Expr], f: &mut fmt::Formatter<'_>) -> fmt::Result {
    for (i, a) in args.iter().enumerate() {
        if i > 0 {
            f.write_str(", ")?;
        }
        fmt_expr(a, 0, f)?;
    }
    Ok(())
}

fn fmt_cmd(c: &Cmd, level: usize, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match c {
        Cmd::Nop => Ok(()),
        Cmd::Block(cs) => {
            for inner in cs {
                fmt_cmd(inner, level, f)?;
            }
            Ok(())
        }
        Cmd::Assign(x, e) => {
            indent(f, level)?;
            writeln!(f, "{x} = {e};")
        }
        Cmd::If {
            cond,
            then_branch,
            else_branch,
        } => {
            indent(f, level)?;
            writeln!(f, "if ({cond}) {{")?;
            fmt_cmd(then_branch, level + 1, f)?;
            if **else_branch == Cmd::Nop {
                indent(f, level)?;
                writeln!(f, "}}")
            } else {
                indent(f, level)?;
                writeln!(f, "}} else {{")?;
                fmt_cmd(else_branch, level + 1, f)?;
                indent(f, level)?;
                writeln!(f, "}}")
            }
        }
        Cmd::Send { target, msg, args } => {
            indent(f, level)?;
            write!(f, "send({target}, {msg}(")?;
            fmt_args(args, f)?;
            writeln!(f, "));")
        }
        Cmd::Spawn {
            binder,
            ctype,
            config,
        } => {
            indent(f, level)?;
            write!(f, "{binder} <- spawn {ctype}(")?;
            fmt_args(config, f)?;
            writeln!(f, ");")
        }
        Cmd::Call { binder, func, args } => {
            indent(f, level)?;
            write!(f, "{binder} <- call {func}(")?;
            fmt_args(args, f)?;
            writeln!(f, ");")
        }
        Cmd::Broadcast {
            ctype,
            binder,
            pred,
            msg,
            args,
        } => {
            indent(f, level)?;
            write!(f, "broadcast {ctype}({binder} : {pred}), {msg}(")?;
            fmt_args(args, f)?;
            writeln!(f, ");")
        }
        Cmd::Lookup {
            ctype,
            binder,
            pred,
            found,
            missing,
        } => {
            indent(f, level)?;
            writeln!(f, "lookup {ctype}({binder} : {pred}) {{")?;
            fmt_cmd(found, level + 1, f)?;
            if **missing == Cmd::Nop {
                indent(f, level)?;
                writeln!(f, "}}")
            } else {
                indent(f, level)?;
                writeln!(f, "}} else {{")?;
                fmt_cmd(missing, level + 1, f)?;
                indent(f, level)?;
                writeln!(f, "}}")
            }
        }
    }
}

impl fmt::Display for Cmd {
    /// Prints the command in `.rx` statement syntax at indentation level 0.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_cmd(self, 0, f)
    }
}

impl fmt::Display for PatField {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatField::Lit(v) => write!(f, "{v}"),
            PatField::Var(x) => f.write_str(x),
            PatField::Any => f.write_char('_'),
        }
    }
}

impl fmt::Display for CompPat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.ctype, &self.config) {
            (None, _) => f.write_char('*'),
            (Some(t), None) => f.write_str(t),
            (Some(t), Some(cfg)) => {
                write!(f, "{t}(")?;
                for (i, p) in cfg.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{p}")?;
                }
                f.write_char(')')
            }
        }
    }
}

fn fmt_pat_fields(fields: &[PatField], f: &mut fmt::Formatter<'_>) -> fmt::Result {
    for (i, p) in fields.iter().enumerate() {
        if i > 0 {
            f.write_str(", ")?;
        }
        write!(f, "{p}")?;
    }
    Ok(())
}

impl fmt::Display for ActionPat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ActionPat::Select { comp } => write!(f, "Select({comp})"),
            ActionPat::Spawn { comp } => write!(f, "Spawn({comp})"),
            ActionPat::Recv { comp, msg, args } => {
                write!(f, "Recv({comp}, {msg}(")?;
                fmt_pat_fields(args, f)?;
                f.write_str("))")
            }
            ActionPat::Send { comp, msg, args } => {
                write!(f, "Send({comp}, {msg}(")?;
                fmt_pat_fields(args, f)?;
                f.write_str("))")
            }
            ActionPat::Call { func, args, result } => {
                write!(f, "Call({func}(")?;
                match args {
                    None => f.write_str("...")?,
                    Some(fields) => fmt_pat_fields(fields, f)?,
                }
                write!(f, "), {result})")
            }
        }
    }
}

impl fmt::Display for TraceProp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {} [{}]", self.a, self.kind.keyword(), self.b)
    }
}

impl fmt::Display for PropertyDecl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "  {}:", self.name)?;
        if !self.forall.is_empty() {
            f.write_str(" forall ")?;
            for (i, (v, t)) in self.forall.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{v}: {t}")?;
            }
            f.write_char('.')?;
        }
        match &self.body {
            PropBody::Trace(tp) => writeln!(f, "\n    {tp};"),
            PropBody::NonInterference(spec) => {
                writeln!(f, " noninterference {{")?;
                write!(f, "    high components:")?;
                for (i, cp) in spec.high_comps.iter().enumerate() {
                    write!(f, "{}{cp}", if i > 0 { ", " } else { " " })?;
                }
                writeln!(f, ";")?;
                write!(f, "    high vars:")?;
                for (i, v) in spec.high_vars.iter().enumerate() {
                    write!(f, "{}{v}", if i > 0 { ", " } else { " " })?;
                }
                writeln!(f, ";")?;
                writeln!(f, "  }}")
            }
        }
    }
}

impl fmt::Display for Program {
    /// Prints the whole program in concrete `.rx` syntax.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "components {{")?;
        for c in &self.components {
            write!(f, "  {} {:?} (", c.name, c.exe)?;
            for (i, (n, t)) in c.config.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{n}: {t}")?;
            }
            writeln!(f, ");")?;
        }
        writeln!(f, "}}\n")?;

        writeln!(f, "messages {{")?;
        for m in &self.messages {
            write!(f, "  {}(", m.name)?;
            for (i, t) in m.payload.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{t}")?;
            }
            writeln!(f, ");")?;
        }
        writeln!(f, "}}\n")?;

        if !self.state.is_empty() {
            writeln!(f, "state {{")?;
            for v in &self.state {
                match &v.init {
                    Some(e) => writeln!(f, "  {}: {} = {};", v.name, v.ty, e)?,
                    None => writeln!(f, "  {}: {};", v.name, v.ty)?,
                }
            }
            writeln!(f, "}}\n")?;
        }

        writeln!(f, "init {{")?;
        fmt_cmd(&self.init, 1, f)?;
        writeln!(f, "}}\n")?;

        writeln!(f, "handlers {{")?;
        for h in &self.handlers {
            write!(f, "  when {}:{}(", h.ctype, h.msg)?;
            for (i, p) in h.params.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                f.write_str(p)?;
            }
            writeln!(f, ") {{")?;
            fmt_cmd(&h.body, 2, f)?;
            writeln!(f, "  }}")?;
        }
        writeln!(f, "}}\n")?;

        if !self.properties.is_empty() {
            writeln!(f, "properties {{")?;
            for p in &self.properties {
                write!(f, "{p}")?;
            }
            writeln!(f, "}}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::ProgramBuilder;
    use crate::value::Ty;

    #[test]
    fn expr_precedence_minimal_parens() {
        let e = Expr::var("a")
            .eq(Expr::lit(1i64))
            .and(Expr::var("b").or(Expr::var("c")));
        assert_eq!(e.to_string(), "a == 1 && (b || c)");

        let n = Expr::var("x").add(Expr::lit(1i64)).eq(Expr::lit(2i64));
        assert_eq!(n.to_string(), "x + 1 == 2");

        let s = Expr::var("x").sub(Expr::var("y").sub(Expr::var("z")));
        assert_eq!(s.to_string(), "x - (y - z)");

        let not = Expr::var("p").and(Expr::var("q")).not();
        assert_eq!(not.to_string(), "!(p && q)");
    }

    #[test]
    fn cfg_and_literals() {
        let e = Expr::var("t").cfg("domain").eq(Expr::lit("a.org"));
        assert_eq!(e.to_string(), "t.domain == \"a.org\"");
    }

    #[test]
    fn cmd_statements_render() {
        let c = Cmd::Send {
            target: Expr::var("P"),
            msg: "ReqAuth".into(),
            args: vec![Expr::var("user"), Expr::var("pass")],
        };
        assert_eq!(c.to_string(), "send(P, ReqAuth(user, pass));\n");
    }

    #[test]
    fn pattern_rendering_matches_paper_notation() {
        let p = ActionPat::Send {
            comp: CompPat::with_config("C", []),
            msg: "M".into(),
            args: vec![PatField::lit(3i64), PatField::Any, PatField::var("s")],
        };
        assert_eq!(p.to_string(), "Send(C(), M(3, _, s))");
        let q = ActionPat::Call {
            func: "wget".into(),
            args: None,
            result: PatField::var("r"),
        };
        assert_eq!(q.to_string(), "Call(wget(...), r)");
    }

    #[test]
    fn whole_program_prints_all_sections() {
        let p = ProgramBuilder::new("t")
            .component("C", "c.py", [("d", Ty::Str)])
            .message("M", [Ty::Str])
            .state("x", Ty::Num, Expr::lit(0i64))
            .init_spawn("c0", "C", [Expr::lit("init")])
            .handler("C", "M", ["s"], |h| {
                h.assign("x", Expr::var("x").add(Expr::lit(1i64)));
            })
            .finish();
        let text = p.to_string();
        for needle in [
            "components {",
            "messages {",
            "state {",
            "init {",
            "handlers {",
            "C \"c.py\" (d: str);",
            "M(str);",
            "x: num = 0;",
            "c0 <- spawn C(\"init\");",
            "when C:M(s) {",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }
}
