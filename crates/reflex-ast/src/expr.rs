//! Pure expressions of the Reflex command language.

use crate::value::Value;

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum UnOp {
    /// Boolean negation.
    Not,
    /// Numeric negation.
    Neg,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BinOp {
    /// Equality (any type; both operands must have the same type).
    Eq,
    /// Disequality.
    Ne,
    /// Boolean conjunction.
    And,
    /// Boolean disjunction.
    Or,
    /// Numeric addition.
    Add,
    /// Numeric subtraction.
    Sub,
    /// Numeric strictly-less-than.
    Lt,
    /// Numeric less-than-or-equal.
    Le,
    /// String concatenation.
    Cat,
}

impl BinOp {
    /// Whether this operator produces a boolean.
    pub fn is_predicate(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::And | BinOp::Or | BinOp::Lt | BinOp::Le
        )
    }
}

/// A pure expression.
///
/// Expressions appear in handler bodies (assignments, branch conditions,
/// message payloads, spawn configurations) and in `lookup` predicates. They
/// may read global state variables, handler parameters and local binders, and
/// the configuration fields of component values — but they have no side
/// effects, which is essential for symbolic evaluation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A literal value.
    Lit(Value),
    /// A variable reference: a global state variable, a message parameter, a
    /// handler-local binder (from `spawn` / `call` / `lookup`), or the
    /// implicit handler variable `sender`.
    Var(String),
    /// A read of a configuration field of a component-valued expression.
    ///
    /// Configurations are read-only records fixed at spawn time (a LAC
    /// decision that aids proof automation), so `Cfg` is pure.
    Cfg(Box<Expr>, String),
    /// A unary operation.
    Un(UnOp, Box<Expr>),
    /// A binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// A literal expression.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Lit(v.into())
    }

    /// A variable reference.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// Reads configuration field `field` of component expression `self`.
    pub fn cfg(self, field: impl Into<String>) -> Expr {
        Expr::Cfg(Box::new(self), field.into())
    }

    /// Boolean negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Un(UnOp::Not, Box::new(self))
    }

    /// Equality test.
    pub fn eq(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Eq, Box::new(self), Box::new(rhs))
    }

    /// Disequality test.
    pub fn ne(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Ne, Box::new(self), Box::new(rhs))
    }

    /// Conjunction.
    pub fn and(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::And, Box::new(self), Box::new(rhs))
    }

    /// Disjunction.
    pub fn or(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Or, Box::new(self), Box::new(rhs))
    }

    /// Numeric addition.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Add, Box::new(self), Box::new(rhs))
    }

    /// Numeric subtraction.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Sub, Box::new(self), Box::new(rhs))
    }

    /// Numeric strictly-less-than.
    pub fn lt(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Lt, Box::new(self), Box::new(rhs))
    }

    /// Numeric less-than-or-equal.
    pub fn le(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Le, Box::new(self), Box::new(rhs))
    }

    /// String concatenation.
    pub fn cat(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Cat, Box::new(self), Box::new(rhs))
    }

    /// Collects the names of all variables read by this expression into
    /// `out`, in left-to-right order (with duplicates).
    pub fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            Expr::Lit(_) => {}
            Expr::Var(x) => out.push(x.clone()),
            Expr::Cfg(e, _) => e.collect_vars(out),
            Expr::Un(_, e) => e.collect_vars(out),
            Expr::Bin(_, l, r) => {
                l.collect_vars(out);
                r.collect_vars(out);
            }
        }
    }

    /// Returns the set-like list (deduplicated, first-occurrence order) of
    /// variables read by this expression.
    pub fn free_vars(&self) -> Vec<String> {
        let mut all = Vec::new();
        self.collect_vars(&mut all);
        let mut seen = std::collections::HashSet::new();
        all.retain(|v| seen.insert(v.clone()));
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_produce_expected_shapes() {
        let e = Expr::var("x").eq(Expr::lit(3i64)).and(Expr::var("ok"));
        match &e {
            Expr::Bin(BinOp::And, l, r) => {
                assert!(matches!(**l, Expr::Bin(BinOp::Eq, _, _)));
                assert!(matches!(**r, Expr::Var(ref n) if n == "ok"));
            }
            other => panic!("unexpected shape: {other:?}"),
        }
    }

    #[test]
    fn free_vars_deduplicates_in_order() {
        let e = Expr::var("b")
            .cat(Expr::var("a"))
            .cat(Expr::var("b"))
            .cat(Expr::var("c"));
        assert_eq!(e.free_vars(), vec!["b", "a", "c"]);
    }

    #[test]
    fn cfg_reads_inner_vars() {
        let e = Expr::var("t").cfg("domain").eq(Expr::lit("d.org"));
        assert_eq!(e.free_vars(), vec!["t"]);
    }

    #[test]
    fn predicate_classification() {
        assert!(BinOp::Eq.is_predicate());
        assert!(BinOp::Le.is_predicate());
        assert!(!BinOp::Add.is_predicate());
        assert!(!BinOp::Cat.is_predicate());
    }
}
