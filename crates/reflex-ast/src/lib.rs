//! Abstract syntax for the Reflex DSL.
//!
//! Reflex (PLDI 2014, "Automating Formal Proofs for Reactive Systems") is a
//! domain-specific language for implementing reactive-system *kernels*: small
//! programs that orchestrate message traffic between sandboxed components and
//! whose safety and security properties can be verified *fully automatically*.
//!
//! This crate defines the shared syntax used by every other crate in the
//! workspace:
//!
//! * [`Value`], [`Ty`] — the base value domain (booleans, numbers, strings,
//!   file descriptors, component handles);
//! * [`Expr`] — pure expressions appearing in handler code;
//! * [`Cmd`] — the loop-free command language of handlers (assignment,
//!   branching, `send`, `spawn`, `call`, `lookup`);
//! * [`Program`] — a complete kernel: component types, message signatures,
//!   state variables, init code, handlers and properties;
//! * [`ActionPat`], [`TraceProp`], [`NiSpec`] — the property language: the
//!   five trace-pattern primitives (`ImmBefore`, `ImmAfter`, `Enables`,
//!   `Ensures`, `Disables`) and non-interference specifications.
//!
//! The concrete `.rx` syntax is parsed by `reflex-parser`; programs can also
//! be constructed directly through [`build::ProgramBuilder`].
//!
//! # Example
//!
//! ```
//! use reflex_ast::build::ProgramBuilder;
//! use reflex_ast::{Expr, Ty};
//!
//! let program = ProgramBuilder::new("ping")
//!     .component("Echo", "echo.py", [])
//!     .message("Ping", [Ty::Str])
//!     .message("Pong", [Ty::Str])
//!     .init_spawn("E", "Echo", [])
//!     .handler("Echo", "Ping", ["s"], |h| {
//!         h.send(Expr::var("E"), "Pong", [Expr::var("s")]);
//!     })
//!     .finish();
//! assert_eq!(program.handlers.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod build;
mod cmd;
mod display;
mod expr;
pub mod fingerprint;
mod pattern;
mod program;
mod prop;
mod value;

pub use cmd::Cmd;
pub use expr::{BinOp, Expr, UnOp};
pub use fingerprint::{Fp, ProgramFingerprints};
pub use pattern::{ActionPat, CompPat, PatField};
pub use program::{CompTypeDecl, Handler, MsgDecl, Program, StateVarDecl};
pub use prop::{NiSpec, PropBody, PropertyDecl, TraceProp, TracePropKind};
pub use value::{CompId, Fdesc, Ty, Value};
