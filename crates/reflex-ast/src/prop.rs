//! The Reflex property language: trace properties and non-interference.

use crate::pattern::{ActionPat, CompPat};
use crate::value::Ty;

/// The five primitive trace-pattern combinators (paper §4.1).
///
/// Each primitive relates two action patterns `A` and `B`; all pattern
/// variables are universally quantified at the outermost level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TracePropKind {
    /// `ImmBefore A B`: every action matching `B` is *immediately* preceded
    /// (chronologically) by an action matching `A`.
    ImmBefore,
    /// `ImmAfter A B`: every action matching `A` is *immediately* followed
    /// by an action matching `B`.
    ImmAfter,
    /// `Enables A B`: every action matching `B` is preceded, somewhere
    /// earlier in the trace, by an action matching `A`.
    Enables,
    /// `Ensures A B`: every action matching `A` is followed, somewhere later
    /// in the trace, by an action matching `B`.
    Ensures,
    /// `Disables A B`: no action matching `B` is preceded by an action
    /// matching `A` (equivalently: once `A` happens, `B` never happens).
    Disables,
}

impl TracePropKind {
    /// All five primitives.
    pub const ALL: [TracePropKind; 5] = [
        TracePropKind::ImmBefore,
        TracePropKind::ImmAfter,
        TracePropKind::Enables,
        TracePropKind::Ensures,
        TracePropKind::Disables,
    ];

    /// The surface keyword of this primitive.
    pub fn keyword(self) -> &'static str {
        match self {
            TracePropKind::ImmBefore => "ImmBefore",
            TracePropKind::ImmAfter => "ImmAfter",
            TracePropKind::Enables => "Enables",
            TracePropKind::Ensures => "Ensures",
            TracePropKind::Disables => "Disables",
        }
    }

    /// Which of the two patterns is the *trigger*: the pattern whose matches
    /// generate proof obligations.
    ///
    /// For `ImmBefore`, `Enables` and `Disables` the trigger is `B` (each
    /// `B`-match demands something about earlier actions); for `ImmAfter`
    /// and `Ensures` it is `A` (each `A`-match demands a later action).
    pub fn trigger_is_b(self) -> bool {
        matches!(
            self,
            TracePropKind::ImmBefore | TracePropKind::Enables | TracePropKind::Disables
        )
    }
}

/// A trace property: one primitive applied to two action patterns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceProp {
    /// The primitive combinator.
    pub kind: TracePropKind,
    /// The left pattern (`A`).
    pub a: ActionPat,
    /// The right pattern (`B`).
    pub b: ActionPat,
}

impl TraceProp {
    /// Creates `a kind b`.
    pub fn new(kind: TracePropKind, a: ActionPat, b: ActionPat) -> TraceProp {
        TraceProp { kind, a, b }
    }

    /// The trigger pattern (see [`TracePropKind::trigger_is_b`]).
    pub fn trigger(&self) -> &ActionPat {
        if self.kind.trigger_is_b() {
            &self.b
        } else {
            &self.a
        }
    }

    /// The non-trigger ("obligation") pattern.
    pub fn obligation(&self) -> &ActionPat {
        if self.kind.trigger_is_b() {
            &self.a
        } else {
            &self.b
        }
    }
}

/// A non-interference specification (paper §4.2).
///
/// The user provides a labeling of components (`high_comps`: a component is
/// *high* iff it matches one of the patterns, with the property's `forall`
/// variables bound) and of global state variables (`high_vars`). The
/// property states that the sequence of outputs sent to high components is a
/// function of the sequence of inputs received from high components together
/// with the non-deterministic contexts of their handlers — i.e. low
/// components cannot influence what high components observe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NiSpec {
    /// Component patterns labeled *high*; everything else is *low*.
    pub high_comps: Vec<CompPat>,
    /// Global state variables labeled *high*.
    pub high_vars: Vec<String>,
}

impl NiSpec {
    /// Creates a specification with the given high component patterns and
    /// high variables.
    pub fn new(
        high_comps: impl IntoIterator<Item = CompPat>,
        high_vars: impl IntoIterator<Item = impl Into<String>>,
    ) -> NiSpec {
        NiSpec {
            high_comps: high_comps.into_iter().collect(),
            high_vars: high_vars.into_iter().map(Into::into).collect(),
        }
    }
}

/// The body of a property declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PropBody {
    /// A trace property.
    Trace(TraceProp),
    /// A non-interference property.
    NonInterference(NiSpec),
}

/// A named, universally quantified property of a Reflex program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropertyDecl {
    /// Property name (unique within the program).
    pub name: String,
    /// Outermost universally quantified variables with their types.
    pub forall: Vec<(String, Ty)>,
    /// The property body.
    pub body: PropBody,
}

impl PropertyDecl {
    /// Creates a trace property declaration.
    pub fn trace(
        name: impl Into<String>,
        forall: impl IntoIterator<Item = (&'static str, Ty)>,
        kind: TracePropKind,
        a: ActionPat,
        b: ActionPat,
    ) -> PropertyDecl {
        PropertyDecl {
            name: name.into(),
            forall: forall.into_iter().map(|(n, t)| (n.to_owned(), t)).collect(),
            body: PropBody::Trace(TraceProp::new(kind, a, b)),
        }
    }

    /// Creates a non-interference property declaration.
    pub fn non_interference(
        name: impl Into<String>,
        forall: impl IntoIterator<Item = (&'static str, Ty)>,
        spec: NiSpec,
    ) -> PropertyDecl {
        PropertyDecl {
            name: name.into(),
            forall: forall.into_iter().map(|(n, t)| (n.to_owned(), t)).collect(),
            body: PropBody::NonInterference(spec),
        }
    }

    /// The declared type of quantified variable `v`, if any.
    pub fn forall_ty(&self, v: &str) -> Option<Ty> {
        self.forall.iter().find(|(n, _)| n == v).map(|(_, t)| *t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{CompPat, PatField};

    fn recv_auth() -> ActionPat {
        ActionPat::Recv {
            comp: CompPat::of_type("Password"),
            msg: "Auth".into(),
            args: vec![PatField::var("u")],
        }
    }

    fn send_reqterm() -> ActionPat {
        ActionPat::Send {
            comp: CompPat::of_type("Terminal"),
            msg: "ReqTerm".into(),
            args: vec![PatField::var("u")],
        }
    }

    #[test]
    fn trigger_selection_matches_paper_semantics() {
        let p = TraceProp::new(TracePropKind::Enables, recv_auth(), send_reqterm());
        // For Enables, each B-match (the ReqTerm send) generates the
        // obligation that an A-match happened earlier.
        assert_eq!(p.trigger(), &send_reqterm());
        assert_eq!(p.obligation(), &recv_auth());

        let q = TraceProp::new(TracePropKind::Ensures, recv_auth(), send_reqterm());
        assert_eq!(q.trigger(), &recv_auth());
        assert_eq!(q.obligation(), &send_reqterm());
    }

    #[test]
    fn keywords_are_distinct() {
        let mut kws: Vec<&str> = TracePropKind::ALL.iter().map(|k| k.keyword()).collect();
        kws.sort_unstable();
        kws.dedup();
        assert_eq!(kws.len(), 5);
    }

    #[test]
    fn property_decl_accessors() {
        let p = PropertyDecl::trace(
            "AuthBeforeTerm",
            [("u", Ty::Str)],
            TracePropKind::Enables,
            recv_auth(),
            send_reqterm(),
        );
        assert_eq!(p.forall_ty("u"), Some(Ty::Str));
        assert_eq!(p.forall_ty("v"), None);
        assert!(matches!(p.body, PropBody::Trace(_)));
    }

    #[test]
    fn ni_spec_construction() {
        let spec = NiSpec::new([CompPat::of_type("Engine")], ["mode"]);
        assert_eq!(spec.high_comps.len(), 1);
        assert_eq!(spec.high_vars, vec!["mode"]);
    }
}
