//! Runtime values and base types of the Reflex value domain.

use std::fmt;

/// A runtime file descriptor, as handed out by the (simulated) operating
/// system when a component or pseudo-terminal is created.
///
/// File descriptors are opaque: Reflex programs can store and forward them
/// but never inspect or fabricate them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fdesc(u64);

impl Fdesc {
    /// Creates a file descriptor with the given raw index.
    pub fn new(raw: u64) -> Self {
        Fdesc(raw)
    }

    /// Returns the raw index of this descriptor.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Fdesc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fd#{}", self.0)
    }
}

/// A runtime component identity.
///
/// Every spawned component instance receives a fresh `CompId`; ids are never
/// reused within a run. Like [`Fdesc`], component ids are opaque to Reflex
/// programs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CompId(u64);

impl CompId {
    /// Creates a component id with the given raw index.
    pub fn new(raw: u64) -> Self {
        CompId(raw)
    }

    /// Returns the raw index of this id.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for CompId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "comp#{}", self.0)
    }
}

/// The base types of the Reflex value domain.
///
/// Reflex deliberately has a small, flat type universe: this is one of the
/// Language and Automation Co-design (LAC) restrictions that keeps proof
/// automation tractable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Ty {
    /// Booleans.
    Bool,
    /// 64-bit signed integers.
    Num,
    /// Strings.
    Str,
    /// Opaque file descriptors.
    Fdesc,
    /// Component handles.
    Comp,
}

impl Ty {
    /// All base types, in declaration order.
    pub const ALL: [Ty; 5] = [Ty::Bool, Ty::Num, Ty::Str, Ty::Fdesc, Ty::Comp];

    /// Returns the default value of this type, used when a state variable is
    /// declared without an initializer.
    ///
    /// `Fdesc` and `Comp` have no closed default; those variables must be
    /// explicitly initialized, which the type checker enforces, so this
    /// returns `None` for them.
    pub fn default_value(self) -> Option<Value> {
        match self {
            Ty::Bool => Some(Value::Bool(false)),
            Ty::Num => Some(Value::Num(0)),
            Ty::Str => Some(Value::Str(String::new())),
            Ty::Fdesc | Ty::Comp => None,
        }
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Ty::Bool => "bool",
            Ty::Num => "num",
            Ty::Str => "str",
            Ty::Fdesc => "fdesc",
            Ty::Comp => "comp",
        };
        f.write_str(s)
    }
}

/// A closed runtime value.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// A boolean.
    Bool(bool),
    /// A 64-bit signed integer.
    Num(i64),
    /// A string.
    Str(String),
    /// A file descriptor.
    Fdesc(Fdesc),
    /// A component handle.
    Comp(CompId),
}

impl Value {
    /// The type of this value.
    pub fn ty(&self) -> Ty {
        match self {
            Value::Bool(_) => Ty::Bool,
            Value::Num(_) => Ty::Num,
            Value::Str(_) => Ty::Str,
            Value::Fdesc(_) => Ty::Fdesc,
            Value::Comp(_) => Ty::Comp,
        }
    }

    /// Returns the boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the numeric payload, if this is a `Num`.
    pub fn as_num(&self) -> Option<i64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Returns the string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the component handle, if this is a `Comp`.
    pub fn as_comp(&self) -> Option<CompId> {
        match self {
            Value::Comp(c) => Some(*c),
            _ => None,
        }
    }

    /// Returns the file descriptor, if this is an `Fdesc`.
    pub fn as_fdesc(&self) -> Option<Fdesc> {
        match self {
            Value::Fdesc(fd) => Some(*fd),
            _ => None,
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Num(n)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<Fdesc> for Value {
    fn from(fd: Fdesc) -> Self {
        Value::Fdesc(fd)
    }
}

impl From<CompId> for Value {
    fn from(c: CompId) -> Self {
        Value::Comp(c)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::Num(n) => write!(f, "{n}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Fdesc(fd) => write!(f, "{fd}"),
            Value::Comp(c) => write!(f, "{c}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_types_roundtrip() {
        assert_eq!(Value::Bool(true).ty(), Ty::Bool);
        assert_eq!(Value::Num(7).ty(), Ty::Num);
        assert_eq!(Value::from("x").ty(), Ty::Str);
        assert_eq!(Value::Fdesc(Fdesc::new(3)).ty(), Ty::Fdesc);
        assert_eq!(Value::Comp(CompId::new(1)).ty(), Ty::Comp);
    }

    #[test]
    fn accessors_match_variants() {
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Num(4).as_bool(), None);
        assert_eq!(Value::Num(4).as_num(), Some(4));
        assert_eq!(Value::from("hi").as_str(), Some("hi"));
        assert_eq!(Value::Comp(CompId::new(9)).as_comp(), Some(CompId::new(9)));
        assert_eq!(Value::Fdesc(Fdesc::new(2)).as_fdesc(), Some(Fdesc::new(2)));
    }

    #[test]
    fn defaults_exist_only_for_data_types() {
        assert_eq!(Ty::Bool.default_value(), Some(Value::Bool(false)));
        assert_eq!(Ty::Num.default_value(), Some(Value::Num(0)));
        assert_eq!(Ty::Str.default_value(), Some(Value::Str(String::new())));
        assert_eq!(Ty::Fdesc.default_value(), None);
        assert_eq!(Ty::Comp.default_value(), None);
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(Value::Bool(false).to_string(), "false");
        assert_eq!(Value::Num(-3).to_string(), "-3");
        assert_eq!(Value::from("a\"b").to_string(), "\"a\\\"b\"");
        assert_eq!(Fdesc::new(5).to_string(), "fd#5");
        assert_eq!(CompId::new(5).to_string(), "comp#5");
        assert_eq!(Ty::Fdesc.to_string(), "fdesc");
    }
}
