//! Action patterns: the atoms of the Reflex property language.

use crate::value::Value;

/// A single field of an action pattern.
///
/// Pattern fields match one payload value, configuration field, call
/// argument or call result. All pattern variables are universally
/// quantified at the outermost level of the enclosing property.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PatField {
    /// Matches exactly this literal value.
    Lit(Value),
    /// Matches any value and binds (or constrains, on repeated occurrence)
    /// the named property variable.
    Var(String),
    /// Matches any value (the paper's `_` wildcard).
    Any,
}

impl PatField {
    /// A literal pattern field.
    pub fn lit(v: impl Into<Value>) -> PatField {
        PatField::Lit(v.into())
    }

    /// A variable pattern field.
    pub fn var(name: impl Into<String>) -> PatField {
        PatField::Var(name.into())
    }

    /// The property variable bound by this field, if any.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            PatField::Var(v) => Some(v),
            _ => None,
        }
    }
}

/// A pattern over component instances.
///
/// `CompPat { ctype: Some("C"), config: Some(vec![...]) }` corresponds to the
/// paper's `C(...)` notation. A `None` component type matches components of
/// any type; a `None` config matches any configuration.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CompPat {
    /// Required component type, or `None` for any type.
    pub ctype: Option<String>,
    /// Patterns over the configuration fields (must match the configuration
    /// signature's arity), or `None` to accept any configuration.
    pub config: Option<Vec<PatField>>,
}

impl CompPat {
    /// Matches any component of the given type, with any configuration.
    pub fn of_type(ctype: impl Into<String>) -> CompPat {
        CompPat {
            ctype: Some(ctype.into()),
            config: None,
        }
    }

    /// Matches a component of the given type whose configuration matches the
    /// given field patterns.
    pub fn with_config(
        ctype: impl Into<String>,
        config: impl IntoIterator<Item = PatField>,
    ) -> CompPat {
        CompPat {
            ctype: Some(ctype.into()),
            config: Some(config.into_iter().collect()),
        }
    }

    /// Matches any component whatsoever.
    pub fn any() -> CompPat {
        CompPat {
            ctype: None,
            config: None,
        }
    }

    /// Collects the property variables occurring in this pattern.
    pub fn collect_vars(&self, out: &mut Vec<String>) {
        if let Some(cfg) = &self.config {
            for f in cfg {
                if let PatField::Var(v) = f {
                    out.push(v.clone());
                }
            }
        }
    }
}

/// A pattern over trace actions.
///
/// Each variant matches the correspondingly-named runtime action. For
/// example the paper's `Send(C(), M(3, _, s))` is
/// `ActionPat::Send { comp: CompPat::with_config("C", []), msg: "M", args:
/// [lit(3), Any, var("s")] }`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ActionPat {
    /// Matches the kernel selecting a ready component.
    Select {
        /// Pattern over the selected component.
        comp: CompPat,
    },
    /// Matches the kernel receiving message `msg` from a component.
    Recv {
        /// Pattern over the sending component.
        comp: CompPat,
        /// Message type name.
        msg: String,
        /// Patterns over the message payload.
        args: Vec<PatField>,
    },
    /// Matches the kernel sending message `msg` to a component.
    Send {
        /// Pattern over the recipient component.
        comp: CompPat,
        /// Message type name.
        msg: String,
        /// Patterns over the message payload.
        args: Vec<PatField>,
    },
    /// Matches the kernel spawning a component.
    Spawn {
        /// Pattern over the spawned component.
        comp: CompPat,
    },
    /// Matches an invocation of an external function.
    Call {
        /// External function name.
        func: String,
        /// Patterns over the arguments, or `None` to accept any argument
        /// list.
        args: Option<Vec<PatField>>,
        /// Pattern over the (string) result.
        result: PatField,
    },
}

impl ActionPat {
    /// Collects the property variables occurring in this pattern, in
    /// syntactic order (with duplicates, which encode equality constraints).
    pub fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            ActionPat::Select { comp } | ActionPat::Spawn { comp } => comp.collect_vars(out),
            ActionPat::Recv { comp, args, .. } | ActionPat::Send { comp, args, .. } => {
                comp.collect_vars(out);
                for f in args {
                    if let PatField::Var(v) = f {
                        out.push(v.clone());
                    }
                }
            }
            ActionPat::Call { args, result, .. } => {
                if let Some(args) = args {
                    for f in args {
                        if let PatField::Var(v) = f {
                            out.push(v.clone());
                        }
                    }
                }
                if let PatField::Var(v) = result {
                    out.push(v.clone());
                }
            }
        }
    }

    /// The deduplicated list of property variables in this pattern.
    pub fn vars(&self) -> Vec<String> {
        let mut all = Vec::new();
        self.collect_vars(&mut all);
        let mut seen = std::collections::HashSet::new();
        all.retain(|v| seen.insert(v.clone()));
        all
    }

    /// The message type this pattern is specific to, if it is a `Recv` or
    /// `Send` pattern.
    pub fn msg_type(&self) -> Option<&str> {
        match self {
            ActionPat::Recv { msg, .. } | ActionPat::Send { msg, .. } => Some(msg),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vars_dedup_in_order() {
        let p = ActionPat::Send {
            comp: CompPat::with_config("C", [PatField::var("d")]),
            msg: "M".into(),
            args: vec![
                PatField::lit(3i64),
                PatField::Any,
                PatField::var("s"),
                PatField::var("d"),
            ],
        };
        assert_eq!(p.vars(), vec!["d", "s"]);
        assert_eq!(p.msg_type(), Some("M"));
    }

    #[test]
    fn spawn_pattern_vars_come_from_config() {
        let p = ActionPat::Spawn {
            comp: CompPat::with_config("Tab", [PatField::var("id"), PatField::Any]),
        };
        assert_eq!(p.vars(), vec!["id"]);
        assert_eq!(p.msg_type(), None);
    }

    #[test]
    fn call_pattern_vars() {
        let p = ActionPat::Call {
            func: "wget".into(),
            args: Some(vec![PatField::var("u")]),
            result: PatField::var("r"),
        };
        assert_eq!(p.vars(), vec!["u", "r"]);
    }

    #[test]
    fn comp_pat_constructors() {
        assert_eq!(
            CompPat::any(),
            CompPat {
                ctype: None,
                config: None
            }
        );
        let t = CompPat::of_type("Engine");
        assert_eq!(t.ctype.as_deref(), Some("Engine"));
        assert!(t.config.is_none());
    }
}
