//! Stable, canonical content fingerprints for program parts.
//!
//! The incremental verification pipeline keys proof artifacts by *what the
//! proof consulted*: the declaration group (components, messages, state,
//! init), individual `(component type, message type)` handlers, and
//! individual properties. Each part is fingerprinted by hashing its
//! **canonical rendering** — the pretty-printer output that the parser
//! round-trips — so whitespace, comments and other formatting-irrelevant
//! edits never invalidate a fingerprint, while any structural change does.
//!
//! The hash is FNV-1a (64-bit), implemented here rather than via
//! [`std::collections::hash_map::DefaultHasher`] because fingerprints are
//! persisted across processes and releases: `DefaultHasher`'s algorithm is
//! explicitly unspecified and may change between Rust versions, while
//! FNV-1a is fixed forever (and plenty for content addressing — these are
//! cache keys, not security boundaries; the certificate checker, not the
//! fingerprint, is what soundness rests on).

use std::collections::BTreeMap;
use std::fmt;

use crate::program::Program;

/// A 64-bit content fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Fp(pub u64);

impl fmt::Display for Fp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Incremental FNV-1a (64-bit) hasher over byte strings.
#[derive(Debug, Clone)]
pub struct FpHasher(u64);

impl FpHasher {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Starts a fresh hash.
    pub fn new() -> FpHasher {
        FpHasher(Self::OFFSET)
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Absorbs a string, terminated so adjacent fields cannot alias
    /// (`"ab" + "c"` hashes differently from `"a" + "bc"`).
    pub fn write_str(&mut self, s: &str) {
        self.write(s.as_bytes());
        self.write(&[0xff]);
    }

    /// The finished fingerprint.
    pub fn finish(&self) -> Fp {
        Fp(self.0)
    }
}

impl Default for FpHasher {
    fn default() -> Self {
        FpHasher::new()
    }
}

/// Fingerprints a single string.
pub fn fp_str(s: &str) -> Fp {
    let mut h = FpHasher::new();
    h.write_str(s);
    h.finish()
}

/// The canonical fingerprints of one program, computed once (typically at
/// type-check time) and consulted by the incremental planner and the proof
/// store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramFingerprints {
    /// Fingerprint of the declaration group: components, messages, state
    /// variables and the init section. These jointly shape the induction's
    /// case split and base cases, so every proof depends on them.
    pub decls: Fp,
    /// One fingerprint per `(component type, message type)` exchange case —
    /// *every* pair, with implicit (`Nop`) handlers fingerprinted as such,
    /// mirroring [`Program::exchange_cases`].
    pub handlers: BTreeMap<(String, String), Fp>,
    /// One fingerprint per property, by name.
    pub properties: BTreeMap<String, Fp>,
    /// Fingerprint of the verified subject as a whole: declarations plus
    /// all handlers (properties excluded, so editing one property does not
    /// invalidate proof-store entries for the others).
    pub program: Fp,
}

impl ProgramFingerprints {
    /// Computes the fingerprints of `program`.
    pub fn compute(program: &Program) -> ProgramFingerprints {
        let decls = decl_group_fp(program);
        let mut handlers = BTreeMap::new();
        for case in program.exchange_cases() {
            handlers.insert(
                (case.ctype.to_owned(), case.msg.to_owned()),
                handler_fp(program, case.ctype, case.msg),
            );
        }
        let mut properties = BTreeMap::new();
        for prop in &program.properties {
            properties.insert(prop.name.clone(), fp_str(&prop.to_string()));
        }
        let mut h = FpHasher::new();
        h.write_str("program");
        h.write(&decls.0.to_le_bytes());
        for ((ctype, msg), fp) in &handlers {
            h.write_str(ctype);
            h.write_str(msg);
            h.write(&fp.0.to_le_bytes());
        }
        ProgramFingerprints {
            decls,
            handlers,
            properties,
            program: h.finish(),
        }
    }

    /// The fingerprint of the `(ctype, msg)` handler case, if the pair is
    /// declared.
    pub fn handler(&self, ctype: &str, msg: &str) -> Option<Fp> {
        self.handlers
            .get(&(ctype.to_owned(), msg.to_owned()))
            .copied()
    }

    /// The fingerprint of the named property, if declared.
    pub fn property(&self, name: &str) -> Option<Fp> {
        self.properties.get(name).copied()
    }
}

/// Fingerprints the declaration group of `program`.
pub fn decl_group_fp(program: &Program) -> Fp {
    let mut h = FpHasher::new();
    h.write_str("decls");
    for c in &program.components {
        h.write_str("component");
        h.write_str(&c.name);
        h.write_str(&c.exe);
        for (field, ty) in &c.config {
            h.write_str(field);
            h.write_str(&ty.to_string());
        }
    }
    for m in &program.messages {
        h.write_str("message");
        h.write_str(&m.name);
        for ty in &m.payload {
            h.write_str(&ty.to_string());
        }
    }
    for v in &program.state {
        h.write_str("state");
        h.write_str(&v.name);
        h.write_str(&v.ty.to_string());
        match &v.init {
            Some(e) => h.write_str(&e.to_string()),
            None => h.write_str("<none>"),
        }
    }
    h.write_str("init");
    h.write_str(&program.init.to_string());
    h.finish()
}

/// Fingerprints the `(ctype, msg)` handler case of `program`.
///
/// Implicit (undeclared) handlers fingerprint as a distinguished `Nop`
/// rendering: adding an explicit handler to a pair, or removing one,
/// changes the pair's fingerprint, while edits to unrelated handlers never
/// do.
pub fn handler_fp(program: &Program, ctype: &str, msg: &str) -> Fp {
    let mut h = FpHasher::new();
    h.write_str("handler");
    h.write_str(ctype);
    h.write_str(msg);
    match program.handler(ctype, msg) {
        Some(decl) => {
            h.write_str("explicit");
            for p in &decl.params {
                h.write_str(p);
            }
            h.write_str(&decl.body.to_string());
        }
        None => h.write_str("implicit"),
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::ProgramBuilder;
    use crate::{Expr, Ty};

    fn sample() -> Program {
        ProgramBuilder::new("fp")
            .component("A", "a.py", [("id", Ty::Num)])
            .message("M", [Ty::Str])
            .state("x", Ty::Num, Expr::lit(0i64))
            .init_spawn("a0", "A", [Expr::lit(1i64)])
            .handler("A", "M", ["s"], |h| {
                h.assign("x", Expr::var("x").add(Expr::lit(1i64)));
            })
            .finish()
    }

    #[test]
    fn fingerprints_are_stable_across_computations() {
        let p = sample();
        assert_eq!(
            ProgramFingerprints::compute(&p),
            ProgramFingerprints::compute(&p)
        );
    }

    #[test]
    fn handler_edit_changes_only_that_handler() {
        let p = sample();
        let fps = ProgramFingerprints::compute(&p);
        let mut q = p.clone();
        q.handlers[0].body = crate::Cmd::Nop;
        let qfps = ProgramFingerprints::compute(&q);
        assert_eq!(fps.decls, qfps.decls);
        assert_ne!(fps.handler("A", "M"), qfps.handler("A", "M"));
        assert_ne!(fps.program, qfps.program);
    }

    #[test]
    fn decl_edit_changes_decl_group() {
        let p = sample();
        let fps = ProgramFingerprints::compute(&p);
        let mut q = p.clone();
        q.state[0].init = Some(Expr::lit(7i64));
        let qfps = ProgramFingerprints::compute(&q);
        assert_ne!(fps.decls, qfps.decls);
        assert_eq!(fps.handler("A", "M"), qfps.handler("A", "M"));
    }

    #[test]
    fn implicit_and_explicit_nop_handlers_differ() {
        let p = sample();
        let mut q = p.clone();
        q.handlers.clear();
        assert_ne!(handler_fp(&p, "A", "M"), handler_fp(&q, "A", "M"));
    }

    #[test]
    fn fnv_vector() {
        // Standard FNV-1a test vector: the empty string hashes to the
        // offset basis; "a" to the published constant.
        assert_eq!(FpHasher::new().finish(), Fp(0xcbf2_9ce4_8422_2325));
        let mut h = FpHasher::new();
        h.write(b"a");
        assert_eq!(h.finish(), Fp(0xaf63_dc4c_8601_ec8c));
    }
}
