//! Fluent builders for constructing Reflex programs directly in Rust.
//!
//! The concrete `.rx` syntax (see `reflex-parser`) is the primary frontend,
//! but tests, examples and generated workloads frequently want to build
//! [`Program`]s programmatically. [`ProgramBuilder`] and [`CmdBuilder`]
//! provide that without sacrificing readability:
//!
//! ```
//! use reflex_ast::build::ProgramBuilder;
//! use reflex_ast::{Expr, Ty};
//!
//! let p = ProgramBuilder::new("counter")
//!     .component("Client", "client.py", [])
//!     .message("Bump", [])
//!     .state("count", Ty::Num, Expr::lit(0i64))
//!     .init_spawn("c", "Client", [])
//!     .handler("Client", "Bump", [], |h| {
//!         h.assign("count", Expr::var("count").add(Expr::lit(1i64)));
//!     })
//!     .finish();
//! assert_eq!(p.state.len(), 1);
//! ```

use crate::cmd::Cmd;
use crate::expr::Expr;
use crate::program::{CompTypeDecl, Handler, MsgDecl, Program, StateVarDecl};
use crate::prop::PropertyDecl;
use crate::value::Ty;

/// Builds a handler or init body command-by-command.
#[derive(Debug, Default)]
pub struct CmdBuilder {
    cmds: Vec<Cmd>,
}

impl CmdBuilder {
    /// Creates an empty body.
    pub fn new() -> CmdBuilder {
        CmdBuilder::default()
    }

    /// Appends a raw command.
    pub fn push(&mut self, cmd: Cmd) -> &mut Self {
        self.cmds.push(cmd);
        self
    }

    /// Appends `var = expr`.
    pub fn assign(&mut self, var: impl Into<String>, expr: Expr) -> &mut Self {
        self.cmds.push(Cmd::Assign(var.into(), expr));
        self
    }

    /// Appends `send(target, msg(args…))`.
    pub fn send(
        &mut self,
        target: Expr,
        msg: impl Into<String>,
        args: impl IntoIterator<Item = Expr>,
    ) -> &mut Self {
        self.cmds.push(Cmd::Send {
            target,
            msg: msg.into(),
            args: args.into_iter().collect(),
        });
        self
    }

    /// Appends `binder <- spawn ctype(config…)`.
    pub fn spawn(
        &mut self,
        binder: impl Into<String>,
        ctype: impl Into<String>,
        config: impl IntoIterator<Item = Expr>,
    ) -> &mut Self {
        self.cmds.push(Cmd::Spawn {
            binder: binder.into(),
            ctype: ctype.into(),
            config: config.into_iter().collect(),
        });
        self
    }

    /// Appends `binder <- call func(args…)`.
    pub fn call(
        &mut self,
        binder: impl Into<String>,
        func: impl Into<String>,
        args: impl IntoIterator<Item = Expr>,
    ) -> &mut Self {
        self.cmds.push(Cmd::Call {
            binder: binder.into(),
            func: func.into(),
            args: args.into_iter().collect(),
        });
        self
    }

    /// Appends `if cond { then } else { else }`, with both branches built by
    /// closures.
    pub fn if_else(
        &mut self,
        cond: Expr,
        then_branch: impl FnOnce(&mut CmdBuilder),
        else_branch: impl FnOnce(&mut CmdBuilder),
    ) -> &mut Self {
        let mut t = CmdBuilder::new();
        then_branch(&mut t);
        let mut e = CmdBuilder::new();
        else_branch(&mut e);
        self.cmds.push(Cmd::If {
            cond,
            then_branch: Box::new(t.finish()),
            else_branch: Box::new(e.finish()),
        });
        self
    }

    /// Appends `if cond { then }` with an empty else branch.
    pub fn when(&mut self, cond: Expr, then_branch: impl FnOnce(&mut CmdBuilder)) -> &mut Self {
        self.if_else(cond, then_branch, |_| {})
    }

    /// Appends a `lookup` over components of `ctype` whose configuration
    /// (visible through `binder`) satisfies `pred`.
    pub fn lookup(
        &mut self,
        ctype: impl Into<String>,
        binder: impl Into<String>,
        pred: Expr,
        found: impl FnOnce(&mut CmdBuilder),
        missing: impl FnOnce(&mut CmdBuilder),
    ) -> &mut Self {
        let mut f = CmdBuilder::new();
        found(&mut f);
        let mut m = CmdBuilder::new();
        missing(&mut m);
        self.cmds.push(Cmd::Lookup {
            ctype: ctype.into(),
            binder: binder.into(),
            pred,
            found: Box::new(f.finish()),
            missing: Box::new(m.finish()),
        });
        self
    }

    /// Finishes the body, producing a single command.
    pub fn finish(self) -> Cmd {
        Cmd::seq(self.cmds)
    }
}

/// Builds a [`Program`] section by section.
#[derive(Debug)]
pub struct ProgramBuilder {
    program: Program,
    init: CmdBuilder,
}

impl ProgramBuilder {
    /// Starts building a program with the given name.
    pub fn new(name: impl Into<String>) -> ProgramBuilder {
        ProgramBuilder {
            program: Program::new(name),
            init: CmdBuilder::new(),
        }
    }

    /// Declares a component type.
    pub fn component(
        mut self,
        name: impl Into<String>,
        exe: impl Into<String>,
        config: impl IntoIterator<Item = (&'static str, Ty)>,
    ) -> Self {
        self.program.components.push(CompTypeDecl {
            name: name.into(),
            exe: exe.into(),
            config: config.into_iter().map(|(n, t)| (n.to_owned(), t)).collect(),
        });
        self
    }

    /// Declares a message type.
    pub fn message(
        mut self,
        name: impl Into<String>,
        payload: impl IntoIterator<Item = Ty>,
    ) -> Self {
        self.program.messages.push(MsgDecl {
            name: name.into(),
            payload: payload.into_iter().collect(),
        });
        self
    }

    /// Declares a global state variable with an initializer.
    pub fn state(mut self, name: impl Into<String>, ty: Ty, init: Expr) -> Self {
        self.program.state.push(StateVarDecl {
            name: name.into(),
            ty,
            init: Some(init),
        });
        self
    }

    /// Declares a global state variable initialized to its type's default.
    pub fn state_default(mut self, name: impl Into<String>, ty: Ty) -> Self {
        self.program.state.push(StateVarDecl {
            name: name.into(),
            ty,
            init: None,
        });
        self
    }

    /// Appends a `spawn` to the init section, binding a global
    /// component-typed variable.
    pub fn init_spawn(
        mut self,
        binder: impl Into<String>,
        ctype: impl Into<String>,
        config: impl IntoIterator<Item = Expr>,
    ) -> Self {
        self.init.spawn(binder, ctype, config);
        self
    }

    /// Appends arbitrary commands to the init section.
    pub fn init_with(mut self, f: impl FnOnce(&mut CmdBuilder)) -> Self {
        f(&mut self.init);
        self
    }

    /// Declares a handler for messages of type `msg` from components of
    /// type `ctype`, with the payload bound to `params`.
    pub fn handler(
        mut self,
        ctype: impl Into<String>,
        msg: impl Into<String>,
        params: impl IntoIterator<Item = &'static str>,
        body: impl FnOnce(&mut CmdBuilder),
    ) -> Self {
        let mut b = CmdBuilder::new();
        body(&mut b);
        self.program.handlers.push(Handler {
            ctype: ctype.into(),
            msg: msg.into(),
            params: params.into_iter().map(str::to_owned).collect(),
            body: b.finish(),
        });
        self
    }

    /// Like [`ProgramBuilder::handler`], but with owned parameter names —
    /// convenient for generated programs.
    pub fn handler_owned(
        mut self,
        ctype: impl Into<String>,
        msg: impl Into<String>,
        params: impl IntoIterator<Item = String>,
        body: impl FnOnce(&mut CmdBuilder),
    ) -> Self {
        let mut b = CmdBuilder::new();
        body(&mut b);
        self.program.handlers.push(Handler {
            ctype: ctype.into(),
            msg: msg.into(),
            params: params.into_iter().collect(),
            body: b.finish(),
        });
        self
    }

    /// Adds a property declaration.
    pub fn property(mut self, prop: PropertyDecl) -> Self {
        self.program.properties.push(prop);
        self
    }

    /// Finishes the program.
    pub fn finish(mut self) -> Program {
        self.program.init = self.init.finish();
        self.program
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assembles_all_sections() {
        let p = ProgramBuilder::new("t")
            .component("C", "c.py", [("id", Ty::Num)])
            .message("M", [Ty::Str])
            .state("x", Ty::Num, Expr::lit(0i64))
            .state_default("s", Ty::Str)
            .init_spawn("c0", "C", [Expr::lit(1i64)])
            .handler("C", "M", ["p"], |h| {
                h.when(Expr::var("x").le(Expr::lit(3i64)), |h| {
                    h.assign("x", Expr::var("x").add(Expr::lit(1i64)));
                    h.send(Expr::var("c0"), "M", [Expr::var("p")]);
                });
            })
            .finish();
        assert_eq!(p.components.len(), 1);
        assert_eq!(p.messages.len(), 1);
        assert_eq!(p.state.len(), 2);
        assert_eq!(p.handlers.len(), 1);
        assert_eq!(p.init_comp_vars(), vec![("c0".to_owned(), "C".to_owned())]);
        assert_eq!(p.handlers[0].body.max_actions(), 1);
    }

    #[test]
    fn lookup_builder_produces_both_branches() {
        let mut b = CmdBuilder::new();
        b.lookup(
            "Cookie",
            "k",
            Expr::var("k").cfg("domain").eq(Expr::var("d")),
            |f| {
                f.send(Expr::var("k"), "Set", []);
            },
            |m| {
                m.spawn("n", "Cookie", [Expr::var("d")]);
            },
        );
        match b.finish() {
            Cmd::Lookup { found, missing, .. } => {
                assert!(matches!(*found, Cmd::Send { .. }));
                assert!(matches!(*missing, Cmd::Spawn { .. }));
            }
            other => panic!("expected lookup, got {other:?}"),
        }
    }
}
