//! The loop-free command language of Reflex handlers.

use crate::expr::Expr;

/// A handler command.
///
/// Handlers are deliberately **loop-free** — the central Language and
/// Automation Co-design restriction. It guarantees that every handler has a
/// statically bounded set of execution paths, each emitting a statically
/// bounded list of actions, which is what makes it possible to compute the
/// behavioral abstraction `BehAbs` by total symbolic evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Cmd {
    /// Does nothing. The handler of every (component-type, message-type)
    /// pair without an explicit rule is `Nop`.
    Nop,
    /// Runs commands in sequence.
    Block(Vec<Cmd>),
    /// Assigns the value of an expression to a global state variable.
    Assign(String, Expr),
    /// Branches on a boolean expression.
    If {
        /// Branch condition.
        cond: Expr,
        /// Command run when `cond` evaluates to `true`.
        then_branch: Box<Cmd>,
        /// Command run when `cond` evaluates to `false`.
        else_branch: Box<Cmd>,
    },
    /// Sends message `msg(args…)` to the component denoted by `target`.
    Send {
        /// Component-typed expression naming the recipient.
        target: Expr,
        /// Message type name.
        msg: String,
        /// Payload expressions, matching the message signature.
        args: Vec<Expr>,
    },
    /// Spawns a new component of type `ctype` with the given configuration
    /// and binds the new component handle to `binder`.
    Spawn {
        /// Local variable bound to the new component.
        binder: String,
        /// Component type to instantiate.
        ctype: String,
        /// Configuration field values, matching the component type's
        /// configuration signature.
        config: Vec<Expr>,
    },
    /// Invokes the external (non-deterministic) string function `func` and
    /// binds its result to `binder`.
    ///
    /// In the paper these are custom OCaml functions; their results are
    /// modelled as inputs from the non-deterministic outside world (the
    /// "non-deterministic context tree" of Section 4.2).
    Call {
        /// Local variable bound to the call result (a string).
        binder: String,
        /// External function name.
        func: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// Sends `msg(args…)` to **every** component of type `ctype` whose
    /// configuration (visible through `binder`) satisfies `pred`.
    ///
    /// This is the primitive the paper *removed* (§7): "a single broadcast
    /// command could generate an unbounded number of send actions; handling
    /// this unbounded behavior proved extraordinarily difficult. We instead
    /// use lookup." It is retained here exactly to reproduce that design
    /// lesson: the interpreter executes it, but the proof automation
    /// rejects programs that use it (see `reflex-verify`).
    Broadcast {
        /// Component type addressed.
        ctype: String,
        /// Variable bound to each candidate inside `pred`.
        binder: String,
        /// Predicate over the candidate's configuration.
        pred: Expr,
        /// Message type name.
        msg: String,
        /// Payload expressions (may mention `binder`).
        args: Vec<Expr>,
    },
    /// Searches the current component list for a component of type `ctype`
    /// whose configuration satisfies `pred` (with `binder` in scope denoting
    /// the candidate); runs `found` with `binder` bound if one exists,
    /// otherwise runs `missing`.
    ///
    /// `lookup` replaced the earlier `broadcast` primitive precisely because
    /// it emits a statically bounded number of actions (paper §7).
    Lookup {
        /// Component type searched.
        ctype: String,
        /// Variable bound to the found component (in `pred` and `found`).
        binder: String,
        /// Predicate over the candidate component's configuration.
        pred: Expr,
        /// Branch taken when a matching component exists.
        found: Box<Cmd>,
        /// Branch taken when no component matches.
        missing: Box<Cmd>,
    },
}

impl Cmd {
    /// Sequences commands, flattening nested blocks.
    pub fn seq(cmds: impl IntoIterator<Item = Cmd>) -> Cmd {
        let mut flat = Vec::new();
        for c in cmds {
            match c {
                Cmd::Nop => {}
                Cmd::Block(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Cmd::Nop,
            1 => flat.pop().expect("len checked"),
            _ => Cmd::Block(flat),
        }
    }

    /// Collects the global state variables this command may assign,
    /// in syntactic order, with duplicates removed.
    pub fn assigned_vars(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.visit(&mut |c| {
            if let Cmd::Assign(x, _) = c {
                if !out.contains(x) {
                    out.push(x.clone());
                }
            }
        });
        out
    }

    /// Collects the local binders introduced by `spawn`, `call` and `lookup`
    /// anywhere in this command, in syntactic order.
    pub fn binders(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.visit(&mut |c| match c {
            Cmd::Spawn { binder, .. } | Cmd::Call { binder, .. } | Cmd::Lookup { binder, .. } => {
                out.push(binder.clone());
            }
            _ => {}
        });
        out
    }

    /// Returns `true` if this command contains no `Send`, `Spawn` or `Call`
    /// (i.e. it can emit no trace actions beyond the implicit `Recv`/`Select`
    /// of the exchange).
    pub fn is_silent(&self) -> bool {
        let mut silent = true;
        self.visit(&mut |c| {
            if matches!(
                c,
                Cmd::Send { .. } | Cmd::Spawn { .. } | Cmd::Call { .. } | Cmd::Broadcast { .. }
            ) {
                silent = false;
            }
        });
        silent
    }

    /// Collects the message types this command may send, deduplicated.
    pub fn sent_message_types(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.visit(&mut |c| {
            if let Cmd::Send { msg, .. } | Cmd::Broadcast { msg, .. } = c {
                if !out.contains(msg) {
                    out.push(msg.clone());
                }
            }
        });
        out
    }

    /// Collects the component types this command may spawn, deduplicated.
    pub fn spawned_comp_types(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.visit(&mut |c| {
            if let Cmd::Spawn { ctype, .. } = c {
                if !out.contains(ctype) {
                    out.push(ctype.clone());
                }
            }
        });
        out
    }

    /// Rebuilds the command in canonical form: nested/singleton/empty
    /// blocks are flattened the way [`Cmd::seq`] builds them, so two
    /// commands with the same semantics and statement sequence compare
    /// equal. The pretty-printer's output always reparses to the canonical
    /// form.
    pub fn normalize(&self) -> Cmd {
        match self {
            Cmd::Block(cs) => Cmd::seq(cs.iter().map(Cmd::normalize)),
            Cmd::If {
                cond,
                then_branch,
                else_branch,
            } => Cmd::If {
                cond: cond.clone(),
                then_branch: Box::new(then_branch.normalize()),
                else_branch: Box::new(else_branch.normalize()),
            },
            Cmd::Lookup {
                ctype,
                binder,
                pred,
                found,
                missing,
            } => Cmd::Lookup {
                ctype: ctype.clone(),
                binder: binder.clone(),
                pred: pred.clone(),
                found: Box::new(found.normalize()),
                missing: Box::new(missing.normalize()),
            },
            other => other.clone(),
        }
    }

    /// Applies `f` to this command and, recursively, every sub-command, in
    /// pre-order.
    pub fn visit(&self, f: &mut impl FnMut(&Cmd)) {
        f(self);
        match self {
            Cmd::Block(cs) => {
                for c in cs {
                    c.visit(f);
                }
            }
            Cmd::If {
                then_branch,
                else_branch,
                ..
            } => {
                then_branch.visit(f);
                else_branch.visit(f);
            }
            Cmd::Lookup { found, missing, .. } => {
                found.visit(f);
                missing.visit(f);
            }
            Cmd::Nop
            | Cmd::Assign(..)
            | Cmd::Send { .. }
            | Cmd::Spawn { .. }
            | Cmd::Call { .. }
            | Cmd::Broadcast { .. } => {}
        }
    }

    /// The maximum number of trace actions a single run of this command can
    /// emit (sends, spawns and calls each emit exactly one action).
    ///
    /// This is finite by construction — the static bound that `lookup`
    /// preserves and `broadcast` would have broken.
    pub fn max_actions(&self) -> usize {
        match self {
            Cmd::Nop | Cmd::Assign(..) => 0,
            Cmd::Send { .. } | Cmd::Spawn { .. } | Cmd::Call { .. } => 1,
            // The whole point of the §7 lesson: no static bound exists.
            // We report the best lower bound (it may send to any number of
            // components, including zero).
            Cmd::Broadcast { .. } => usize::MAX,
            Cmd::Block(cs) => cs
                .iter()
                .map(Cmd::max_actions)
                .fold(0usize, usize::saturating_add),
            Cmd::If {
                then_branch,
                else_branch,
                ..
            } => then_branch.max_actions().max(else_branch.max_actions()),
            Cmd::Lookup { found, missing, .. } => found.max_actions().max(missing.max_actions()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn send(msg: &str) -> Cmd {
        Cmd::Send {
            target: Expr::var("c"),
            msg: msg.into(),
            args: vec![],
        }
    }

    #[test]
    fn seq_flattens_and_drops_nops() {
        let c = Cmd::seq([
            Cmd::Nop,
            Cmd::Block(vec![send("A"), send("B")]),
            Cmd::Nop,
            send("C"),
        ]);
        match c {
            Cmd::Block(cs) => assert_eq!(cs.len(), 3),
            other => panic!("expected block, got {other:?}"),
        }
        assert_eq!(Cmd::seq([]), Cmd::Nop);
        assert_eq!(Cmd::seq([send("A")]), send("A"));
    }

    #[test]
    fn assigned_vars_dedup() {
        let c = Cmd::Block(vec![
            Cmd::Assign("x".into(), Expr::lit(1i64)),
            Cmd::If {
                cond: Expr::lit(true),
                then_branch: Box::new(Cmd::Assign("y".into(), Expr::lit(2i64))),
                else_branch: Box::new(Cmd::Assign("x".into(), Expr::lit(3i64))),
            },
        ]);
        assert_eq!(c.assigned_vars(), vec!["x", "y"]);
    }

    #[test]
    fn silence_and_action_bounds() {
        let silent = Cmd::Block(vec![Cmd::Assign("x".into(), Expr::lit(1i64)), Cmd::Nop]);
        assert!(silent.is_silent());
        assert_eq!(silent.max_actions(), 0);

        let branchy = Cmd::If {
            cond: Expr::var("b"),
            then_branch: Box::new(Cmd::Block(vec![send("A"), send("B")])),
            else_branch: Box::new(send("C")),
        };
        assert!(!branchy.is_silent());
        assert_eq!(branchy.max_actions(), 2);
    }

    #[test]
    fn collectors_find_nested_uses() {
        let c = Cmd::Lookup {
            ctype: "Tab".into(),
            binder: "t".into(),
            pred: Expr::lit(true),
            found: Box::new(send("Render")),
            missing: Box::new(Cmd::Spawn {
                binder: "n".into(),
                ctype: "Tab".into(),
                config: vec![],
            }),
        };
        assert_eq!(c.binders(), vec!["t", "n"]);
        assert_eq!(c.sent_message_types(), vec!["Render"]);
        assert_eq!(c.spawned_comp_types(), vec!["Tab"]);
    }
}
