//! A small, sound-for-UNSAT constraint solver over symbolic terms.
//!
//! The verifier needs two judgments about conjunctions of boolean literals
//! (path conditions, guards, match side-conditions):
//!
//! * **infeasibility** — `Φ ⊢ ⊥`, used to prune unreachable paths and to
//!   discharge "the guard contradicts the branch condition" cases;
//! * **entailment** — `Φ ⊨ ℓ`, implemented as `Φ ∧ ¬ℓ ⊢ ⊥`.
//!
//! Soundness contract: [`Solver::is_unsat`] returns `true` only for truly
//! unsatisfiable assumption sets. The converse is incomplete — `false`
//! means *unknown* — which costs only verification power, never soundness.
//!
//! The procedure keeps asserted equalities in a persistent store (`eqs`),
//! builds equality classes over them, substitutes literal/canonical
//! representatives into all other facts and re-simplifies (a cheap form of
//! congruence closure), performs interval reasoning for numeric bounds, and
//! unit-propagates the clauses produced by negated conjunctions and
//! asserted disjunctions.

use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

use reflex_ast::{BinOp, Ty, UnOp, Value};

use crate::term::Term;

/// Maximum saturation rounds; a safety net — each productive round shrinks
/// or grounds some fact.
const MAX_ROUNDS: usize = 16;

/// A conjunction of assumptions with saturation-based UNSAT detection.
#[derive(Debug, Clone, Default)]
pub struct Solver {
    /// Asserted equalities `a == b` (the union-find substrate).
    eqs: Vec<(Term, Term)>,
    /// Other atomic literals: `(term, polarity)` where `term` is an
    /// `Eq`-disequality, `Lt`/`Le` atom or opaque boolean term.
    lits: Vec<(Term, bool)>,
    /// Disjunctions awaiting unit propagation.
    clauses: Vec<Vec<(Term, bool)>>,
    /// The exact `assert_term` call sequence: the solver's semantic state
    /// is a pure function of this log, which makes it the memoization key
    /// for entailment queries (see [`crate::memo`]).
    log: Vec<(Term, bool)>,
    /// Rolling FNV fingerprint of `log`, folded incrementally at each
    /// `assert_term` from the asserted term's cached structural hash. Lets
    /// the entailment memo hash a query in O(1) instead of re-hashing the
    /// whole log (see [`crate::memo`]).
    log_fp: u64,
    /// Lazily materialized shared snapshot of `log`, so repeated entailment
    /// queries at the same solver state share one allocation as their memo
    /// key. Invalidated (replaced by an empty cell) on every `assert_term`.
    log_snapshot: OnceLock<Arc<[(Term, bool)]>>,
    /// Lazily built decision index over the saturated state (see
    /// [`ProbeIndex`]); answers most entailment queries by lookup without
    /// touching the memo. Invalidated on every `assert_term`.
    probe: OnceLock<Arc<ProbeIndex>>,
    unsat: bool,
    saturated: bool,
}

impl Solver {
    /// An empty (trivially satisfiable) solver.
    pub fn new() -> Solver {
        Solver::default()
    }

    /// Creates a solver from a set of assumptions.
    pub fn with_assumptions<'a>(assumptions: impl IntoIterator<Item = &'a (Term, bool)>) -> Solver {
        let mut s = Solver::new();
        for (t, pol) in assumptions {
            s.assert_term(t.clone(), *pol);
        }
        s
    }

    /// Asserts `term == polarity`.
    pub fn assert_term(&mut self, term: Term, polarity: bool) {
        self.saturated = false;
        self.log_fp = crate::intern::fp_fold(self.log_fp, &term, polarity);
        self.log_snapshot = OnceLock::new();
        self.probe = OnceLock::new();
        self.log.push((term.clone(), polarity));
        self.push(term, polarity);
    }

    /// The rolling fingerprint of the assertion log (a pure function of
    /// the `assert_term` sequence).
    pub(crate) fn log_fp(&self) -> u64 {
        self.log_fp
    }

    /// A shared snapshot of the assertion log, materialized at most once
    /// per solver state.
    pub(crate) fn log_snapshot(&self) -> Arc<[(Term, bool)]> {
        self.log_snapshot
            .get_or_init(|| self.log.as_slice().into())
            .clone()
    }

    fn push(&mut self, term: Term, polarity: bool) {
        if self.unsat {
            return;
        }
        match (&term, polarity) {
            (Term::Lit(Value::Bool(b)), _) => {
                if *b != polarity {
                    self.unsat = true;
                }
            }
            (Term::Un(UnOp::Not, inner), _) => self.push((**inner).clone(), !polarity),
            (Term::Bin(BinOp::And, l, r), true) => {
                self.push((**l).clone(), true);
                self.push((**r).clone(), true);
            }
            (Term::Bin(BinOp::And, l, r), false) => {
                self.clauses
                    .push(vec![((**l).clone(), false), ((**r).clone(), false)]);
            }
            (Term::Bin(BinOp::Or, l, r), true) => {
                self.clauses
                    .push(vec![((**l).clone(), true), ((**r).clone(), true)]);
            }
            (Term::Bin(BinOp::Or, l, r), false) => {
                self.push((**l).clone(), false);
                self.push((**r).clone(), false);
            }
            (Term::Bin(BinOp::Eq, l, r), true) => {
                self.eqs.push(((**l).clone(), (**r).clone()));
            }
            // Asserting a bare boolean variable b is the equality b == pol,
            // which lets substitution ground other occurrences of b.
            (Term::Sym(s), _) if s.ty == Ty::Bool => {
                self.eqs
                    .push((term.clone(), Term::Lit(Value::Bool(polarity))));
            }
            _ => self.lits.push((term, polarity)),
        }
    }

    /// Whether the assumptions are (provably) unsatisfiable.
    pub fn is_unsat(&mut self) -> bool {
        self.saturate();
        self.unsat
    }

    /// Whether the assumptions entail `term == polarity`.
    ///
    /// Sound but incomplete: `true` is a proof, `false` is "unknown".
    ///
    /// Two tiers. If this solver is already saturated, its [`ProbeIndex`]
    /// is consulted first: atoms that are established consequences of the
    /// state answer `true` by lookup — the dominant case when a prover
    /// walks every conjunct of a synthesized guard against one state.
    /// Undecided queries fall through to the global memo, keyed on
    /// (assertion log, query) and computed on a miss by replaying the log.
    /// Both tiers are deterministic: the index is a pure function of this
    /// solver's assertion history and the memo of its key, so no answer
    /// ever depends on thread interleaving. See [`crate::memo`].
    pub fn entails(&self, term: &Term, polarity: bool) -> bool {
        if self.saturated && self.probe_index().decides_true(term, polarity) {
            // Index answers count as query + hit: they are answered from a
            // cache, just a per-solver one instead of the global table.
            crate::stats::note_memo_query();
            crate::stats::note_memo_hit();
            return true;
        }
        crate::memo::entails_memoized(self, term, polarity)
    }

    /// The uncached reference implementation of [`Solver::entails`]:
    /// clone, assert the negation, saturate. Exposed so tests can check
    /// memoized answers against it.
    pub fn entails_uncached(&self, term: &Term, polarity: bool) -> bool {
        let mut probe = self.clone();
        probe.assert_term(term.clone(), !polarity);
        probe.is_unsat()
    }

    /// Whether the assumptions entail `a == b`.
    pub fn entails_equal(&self, a: &Term, b: &Term) -> bool {
        self.entails(&Term::bin(BinOp::Eq, a.clone(), b.clone()), true)
    }

    /// Whether the assumptions entail `a != b`.
    pub fn entails_disequal(&self, a: &Term, b: &Term) -> bool {
        self.entails(&Term::bin(BinOp::Eq, a.clone(), b.clone()), false)
    }

    /// The concrete value of `t` implied by the assumptions, if saturation
    /// has pinned it to a literal.
    pub fn implied_value(&mut self, t: &Term) -> Option<Value> {
        self.saturate();
        if self.unsat {
            return None;
        }
        let subst = self.substitution();
        match t.rewrite_leaves(&|leaf| subst.get(leaf).cloned()) {
            Term::Lit(v) => Some(v),
            _ => None,
        }
    }

    /// The current leaf substitution (symbolic variable → representative).
    fn substitution(&self) -> BTreeMap<Term, Term> {
        let mut uf = UnionFind::new();
        for (a, b) in &self.eqs {
            uf.union(a.clone(), b.clone());
        }
        uf.leaf_substitution()
    }

    // ---- saturation -----------------------------------------------------

    fn saturate(&mut self) {
        if self.saturated || self.unsat {
            self.saturated = true;
            return;
        }
        for _ in 0..MAX_ROUNDS {
            if self.unsat {
                break;
            }
            let mut changed = false;

            // (1) Equality classes and the induced substitution.
            let mut uf = UnionFind::new();
            for (a, b) in &self.eqs {
                uf.union(a.clone(), b.clone());
            }
            if uf.conflict {
                self.unsat = true;
                break;
            }
            let subst = uf.leaf_substitution();

            // (2) Substitute representatives everywhere and re-simplify.
            if !subst.is_empty() {
                let rewrite = |t: &Term| t.rewrite_leaves(&|leaf| subst.get(leaf).cloned());
                let mut new_eqs = Vec::with_capacity(self.eqs.len());
                for (a, b) in std::mem::take(&mut self.eqs) {
                    let (na, nb) = (rewrite(&a), rewrite(&b));
                    match Term::bin(BinOp::Eq, na.clone(), nb.clone()) {
                        Term::Lit(Value::Bool(true)) => {
                            // Redundant — but keep leaf↦rep pairs so the
                            // substitution itself stays derivable. The
                            // stored eq is unchanged, so this must NOT
                            // count as progress: marking it `changed`
                            // would re-run an identical round (and did —
                            // every saturation used to spin to MAX_ROUNDS
                            // on these self-rewrites).
                            new_eqs.push((a, b));
                        }
                        Term::Lit(Value::Bool(false)) => {
                            self.unsat = true;
                            break;
                        }
                        _ => {
                            if na != a || nb != b {
                                changed = true;
                            }
                            new_eqs.push((na, nb));
                        }
                    }
                }
                self.eqs = new_eqs;
                if self.unsat {
                    break;
                }
                for (t, _) in self.lits.iter_mut() {
                    let nt = rewrite(t);
                    if nt != *t {
                        *t = nt;
                        changed = true;
                    }
                }
                for clause in self.clauses.iter_mut() {
                    for (t, _) in clause.iter_mut() {
                        let nt = rewrite(t);
                        if nt != *t {
                            *t = nt;
                            changed = true;
                        }
                    }
                }
            }

            // (3) Re-decompose literals that folded into structure
            // (e.g. a disequality that became Lit(false), or an And).
            let lits = std::mem::take(&mut self.lits);
            for (t, pol) in lits {
                self.push(t, pol);
            }
            if self.unsat {
                break;
            }

            // (4) Conflicts among atomic literals and against equalities.
            if self.detect_conflicts(&mut uf) {
                break;
            }

            // (5) Numeric bounds.
            match self.bound_analysis() {
                BoundOutcome::Conflict => {
                    self.unsat = true;
                    break;
                }
                BoundOutcome::NewFacts(facts) => {
                    for (t, pol) in facts {
                        self.push(t, pol);
                        changed = true;
                    }
                }
                BoundOutcome::Quiet => {}
            }

            // (6) Unit propagation over clauses.
            changed |= self.propagate_clauses();
            if self.unsat || !changed {
                break;
            }
        }
        self.saturated = true;
    }

    /// The [`ProbeIndex`] over the current saturated state: a read-only
    /// decision table that answers "is this atom already an established
    /// consequence?" in O(|atom|), without cloning or re-saturating.
    ///
    /// Built at most once per solver state (invalidated by `assert_term`).
    /// Requires `self.saturated`; callers check before use.
    fn probe_index(&self) -> Arc<ProbeIndex> {
        debug_assert!(self.saturated);
        self.probe
            .get_or_init(|| {
                let mut facts =
                    std::collections::HashSet::with_capacity(self.lits.len() + self.eqs.len() + 1);
                for (t, pol) in &self.lits {
                    facts.insert((t.clone(), *pol));
                }
                for (a, b) in &self.eqs {
                    facts.insert((Term::bin(BinOp::Eq, a.clone(), b.clone()), true));
                }
                Arc::new(ProbeIndex {
                    unsat: self.unsat,
                    subst: self.substitution(),
                    facts,
                })
            })
            .clone()
    }

    fn detect_conflicts(&mut self, uf: &mut UnionFind) -> bool {
        // Opposite polarities of the same atom.
        let mut polarity: BTreeMap<&Term, bool> = BTreeMap::new();
        for (t, pol) in &self.lits {
            match polarity.get(t) {
                Some(prev) if *prev != *pol => {
                    self.unsat = true;
                    return true;
                }
                _ => {
                    polarity.insert(t, *pol);
                }
            }
        }
        // Disequality refuted by the equality classes.
        for (t, pol) in &self.lits {
            if let (Term::Bin(BinOp::Eq, a, b), false) = (t, *pol) {
                if uf.same((**a).clone(), (**b).clone()) {
                    self.unsat = true;
                    return true;
                }
            }
        }
        false
    }

    /// Extracts interval bounds `atom ∈ [lo, hi]` from numeric facts of the
    /// shape `±atom + c ⋈ 0`, detecting empty intervals and pinning
    /// `atom == c` when the interval collapses.
    fn bound_analysis(&self) -> BoundOutcome {
        #[derive(Default, Clone)]
        struct Interval {
            lo: Option<i64>,
            hi: Option<i64>,
            not: Vec<i64>,
        }
        let mut intervals: BTreeMap<Term, Interval> = BTreeMap::new();

        // Decompose `l - r` into `sign*(key) + constant`, where `key` is a
        // canonical non-constant linear term (a single variable, or a
        // difference like `x - y`). `sign` is +1 unless the normalized
        // leading coefficient was negative, in which case the key is the
        // negation and `sign` is -1. This gives sound difference-bound
        // reasoning: `x + 1 < y` and `y <= x` meet on the same key.
        let decompose = |l: &Term, r: &Term| -> Option<(Term, i64, i64)> {
            let diff = Term::bin(BinOp::Sub, l.clone(), r.clone());
            // Split off the trailing constant of the normalized form.
            let (key_raw, c): (Term, i64) = match &diff {
                Term::Lit(_) => return None,
                Term::Bin(BinOp::Add, a, k) => match &**k {
                    Term::Lit(Value::Num(n)) => ((**a).clone(), *n),
                    _ => (diff.clone(), 0),
                },
                Term::Bin(BinOp::Sub, a, k) => match &**k {
                    Term::Lit(Value::Num(n)) => ((**a).clone(), -*n),
                    _ => (diff.clone(), 0),
                },
                other => (other.clone(), 0),
            };
            // Canonical sign: the normalized linear form leads with a
            // negated atom iff its leftmost leaf is a negation.
            fn leading_neg(t: &Term) -> bool {
                match t {
                    Term::Un(UnOp::Neg, _) => true,
                    Term::Bin(BinOp::Add | BinOp::Sub, a, _) => leading_neg(a),
                    _ => false,
                }
            }
            if leading_neg(&key_raw) {
                let key = Term::bin(BinOp::Sub, Term::lit(0i64), key_raw);
                Some((key, -1, c))
            } else {
                Some((key_raw, 1, c))
            }
        };

        // All numeric facts: Lt/Le/diseq literals plus the stored
        // equalities (treated as Eq-true).
        let mut facts: Vec<(BinOp, Term, Term, bool)> = Vec::new();
        for (t, pol) in &self.lits {
            if let Term::Bin(op @ (BinOp::Lt | BinOp::Le | BinOp::Eq), l, r) = t {
                facts.push((*op, (**l).clone(), (**r).clone(), *pol));
            }
        }
        for (a, b) in &self.eqs {
            facts.push((BinOp::Eq, a.clone(), b.clone(), true));
        }

        for (op, l, r, pol) in facts {
            if l.ty() != Ty::Num {
                continue;
            }
            let Some((atom, sign, c)) = decompose(&l, &r) else {
                continue;
            };
            let entry = intervals.entry(atom).or_default();
            let set_hi = |e: &mut Interval, v: i64| {
                e.hi = Some(e.hi.map_or(v, |h| h.min(v)));
            };
            let set_lo = |e: &mut Interval, v: i64| {
                e.lo = Some(e.lo.map_or(v, |l| l.max(v)));
            };
            // l - r = sign*atom + c; the fact is (l op r) == pol.
            match (op, pol, sign) {
                (BinOp::Lt, true, 1) => set_hi(entry, -c - 1),
                (BinOp::Lt, true, -1) => set_lo(entry, c + 1),
                (BinOp::Lt, false, 1) => set_lo(entry, -c),
                (BinOp::Lt, false, -1) => set_hi(entry, c),
                (BinOp::Le, true, 1) => set_hi(entry, -c),
                (BinOp::Le, true, -1) => set_lo(entry, c),
                (BinOp::Le, false, 1) => set_lo(entry, -c + 1),
                (BinOp::Le, false, -1) => set_hi(entry, c - 1),
                (BinOp::Eq, true, 1) => {
                    set_lo(entry, -c);
                    set_hi(entry, -c);
                }
                (BinOp::Eq, true, -1) => {
                    set_lo(entry, c);
                    set_hi(entry, c);
                }
                (BinOp::Eq, false, 1) => entry.not.push(-c),
                (BinOp::Eq, false, -1) => entry.not.push(c),
                _ => unreachable!("sign is ±1"),
            }
        }

        let mut new_facts = Vec::new();
        for (atom, iv) in intervals {
            if let (Some(mut lo), Some(mut hi)) = (iv.lo, iv.hi) {
                if lo > hi {
                    return BoundOutcome::Conflict;
                }
                // Shrink around excluded points at the edges.
                loop {
                    if iv.not.contains(&lo) {
                        lo += 1;
                    } else if iv.not.contains(&hi) {
                        hi -= 1;
                    } else {
                        break;
                    }
                    if lo > hi {
                        return BoundOutcome::Conflict;
                    }
                }
                if lo == hi {
                    let eq = Term::bin(BinOp::Eq, atom.clone(), Term::lit(lo));
                    match eq {
                        Term::Lit(Value::Bool(true)) => {}
                        Term::Lit(Value::Bool(false)) => return BoundOutcome::Conflict,
                        other => {
                            if !self
                                .eqs
                                .iter()
                                .any(|(a, b)| Term::bin(BinOp::Eq, a.clone(), b.clone()) == other)
                            {
                                new_facts.push((other, true));
                            }
                        }
                    }
                }
            }
        }
        if new_facts.is_empty() {
            BoundOutcome::Quiet
        } else {
            BoundOutcome::NewFacts(new_facts)
        }
    }

    fn propagate_clauses(&mut self) -> bool {
        let mut changed = false;
        let lits = self.lits.clone();
        let eq_terms: Vec<Term> = self
            .eqs
            .iter()
            .map(|(a, b)| Term::bin(BinOp::Eq, a.clone(), b.clone()))
            .collect();
        let established = |t: &Term, pol: bool| -> bool {
            matches!(t, Term::Lit(Value::Bool(b)) if *b == pol)
                || lits.contains(&(t.clone(), pol))
                || (pol && eq_terms.contains(t))
        };
        let refuted = |t: &Term, pol: bool| -> bool {
            matches!(t, Term::Lit(Value::Bool(b)) if *b != pol)
                || lits.contains(&(t.clone(), !pol))
                || (!pol && eq_terms.contains(t))
        };
        let mut remaining = Vec::new();
        let mut to_assert = Vec::new();
        for mut clause in std::mem::take(&mut self.clauses) {
            if clause.iter().any(|(t, pol)| established(t, *pol)) {
                changed = true;
                continue; // satisfied
            }
            let before = clause.len();
            clause.retain(|(t, pol)| !refuted(t, *pol));
            if clause.len() != before {
                changed = true;
            }
            match clause.len() {
                0 => {
                    self.unsat = true;
                    return true;
                }
                1 => {
                    let (t, pol) = clause.pop().expect("len checked");
                    to_assert.push((t, pol));
                    changed = true;
                }
                _ => remaining.push(clause),
            }
        }
        self.clauses = remaining;
        for (t, pol) in to_assert {
            self.push(t, pol);
        }
        changed
    }
}

enum BoundOutcome {
    Conflict,
    NewFacts(Vec<(Term, bool)>),
    Quiet,
}

/// A read-only decision index over one *saturated* solver state.
///
/// The prover's hot loop asks many single-atom entailments against the
/// same assumption set (every conjunct of a synthesized guard, every match
/// side-condition). Almost all of them are answerable by inspection of the
/// saturated state: rewrite the atom through the equality substitution and
/// check whether the result is a recorded fact (or folded to a literal).
/// The index caches exactly that — substitution plus fact set — so each
/// query costs a small rewrite and a hash lookup instead of a full
/// clone + assert + saturate probe.
///
/// [`ProbeIndex::decides_true`] is *sound for `true`* only: the facts and
/// the substitution are consequences of the assumptions, so a positive
/// answer is a proof of entailment. A negative answer means "not decided
/// here" and the caller must fall back to the memoized replay probe.
/// The index is a deterministic function of the owning solver's
/// `assert_term`/`saturate` history, which the provers drive identically
/// regardless of scheduling — so, like the memo, it can never make an
/// answer depend on thread interleaving.
#[derive(Debug)]
pub(crate) struct ProbeIndex {
    unsat: bool,
    subst: BTreeMap<Term, Term>,
    facts: std::collections::HashSet<(Term, bool)>,
}

impl ProbeIndex {
    /// Whether the indexed assumptions provably entail `query == polarity`.
    /// `false` means *undecided*, not refuted.
    pub(crate) fn decides_true(&self, query: &Term, polarity: bool) -> bool {
        if self.unsat {
            // Ex falso: an unsatisfiable base entails everything.
            return true;
        }
        let (t, pol) = match query {
            // Negations are asserted decomposed, so flip before lookup.
            Term::Un(UnOp::Not, inner) => ((**inner).clone(), !polarity),
            _ => (query.clone(), polarity),
        };
        let t = if self.subst.is_empty() {
            t
        } else {
            t.rewrite_leaves(&|leaf| self.subst.get(leaf).cloned())
        };
        match &t {
            Term::Lit(Value::Bool(b)) => *b == pol,
            _ => self.facts.contains(&(t, pol)),
        }
    }
}

/// Union-find over terms, used for equality classes.
#[derive(Debug, Default)]
struct UnionFind {
    parent: BTreeMap<Term, Term>,
    /// Set when two distinct literals were merged — an immediate conflict.
    conflict: bool,
}

impl UnionFind {
    fn new() -> UnionFind {
        UnionFind::default()
    }

    fn find(&mut self, t: Term) -> Term {
        match self.parent.get(&t) {
            None => t,
            Some(p) => {
                let root = self.find(p.clone());
                self.parent.insert(t, root.clone());
                root
            }
        }
    }

    /// Preference order for representatives: literals first, then symbolic
    /// leaves, then compound terms; ties broken by `Ord`.
    fn rank(t: &Term) -> (u8, &Term) {
        let class = match t {
            Term::Lit(_) => 0,
            Term::Sym(_) => 1,
            _ => 2,
        };
        (class, t)
    }

    fn union(&mut self, a: Term, b: Term) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return;
        }
        if let (Term::Lit(x), Term::Lit(y)) = (&ra, &rb) {
            if x != y {
                self.conflict = true;
            }
        }
        if Self::rank(&ra) <= Self::rank(&rb) {
            self.parent.insert(rb, ra);
        } else {
            self.parent.insert(ra, rb);
        }
    }

    fn same(&mut self, a: Term, b: Term) -> bool {
        self.find(a) == self.find(b)
    }

    /// The substitution mapping each *leaf* (symbolic variable) to its
    /// class representative, when the representative is a literal or a
    /// different symbolic leaf.
    fn leaf_substitution(&mut self) -> BTreeMap<Term, Term> {
        let keys: Vec<Term> = self.parent.keys().cloned().collect();
        let mut subst = BTreeMap::new();
        for k in keys {
            if !matches!(k, Term::Sym(_)) {
                continue;
            }
            let rep = self.find(k.clone());
            if rep != k && matches!(rep, Term::Lit(_) | Term::Sym(_)) {
                subst.insert(k, rep);
            }
        }
        subst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{SymCtx, SymKind};

    fn ctx() -> SymCtx {
        SymCtx::new()
    }

    fn num(c: &mut SymCtx) -> Term {
        c.fresh_term(Ty::Num, SymKind::Fresh)
    }

    fn string(c: &mut SymCtx) -> Term {
        c.fresh_term(Ty::Str, SymKind::Fresh)
    }

    fn boolean(c: &mut SymCtx) -> Term {
        c.fresh_term(Ty::Bool, SymKind::Fresh)
    }

    fn eq(a: &Term, b: &Term) -> Term {
        Term::bin(BinOp::Eq, a.clone(), b.clone())
    }

    #[test]
    fn empty_is_sat() {
        assert!(!Solver::new().is_unsat());
    }

    #[test]
    fn direct_contradiction() {
        let mut c = ctx();
        let b = boolean(&mut c);
        let mut s = Solver::new();
        s.assert_term(b.clone(), true);
        s.assert_term(b.clone(), false);
        assert!(s.is_unsat());
    }

    #[test]
    fn equality_chains_propagate_constants() {
        let mut c = ctx();
        let x = string(&mut c);
        let y = string(&mut c);
        let mut s = Solver::new();
        s.assert_term(eq(&x, &y), true);
        s.assert_term(eq(&y, &Term::lit("alice")), true);
        s.assert_term(eq(&x, &Term::lit("bob")), true);
        assert!(s.is_unsat());

        let mut s2 = Solver::new();
        s2.assert_term(eq(&x, &y), true);
        s2.assert_term(eq(&y, &Term::lit("alice")), true);
        assert!(!s2.is_unsat());
        assert!(s2.entails_equal(&x, &Term::lit("alice")));
        assert!(s2.entails_disequal(&x, &Term::lit("bob")));
        assert_eq!(s2.implied_value(&x), Some(Value::from("alice")));
    }

    #[test]
    fn disequality_with_merge_conflicts() {
        let mut c = ctx();
        let x = string(&mut c);
        let y = string(&mut c);
        let mut s = Solver::new();
        s.assert_term(eq(&x, &y), false);
        s.assert_term(eq(&x, &y), true);
        assert!(s.is_unsat());
    }

    #[test]
    fn arithmetic_through_equalities() {
        let mut c = ctx();
        let x = num(&mut c);
        // x == 0 && x + 1 == 0 → unsat
        let mut s = Solver::new();
        s.assert_term(eq(&x, &Term::lit(0i64)), true);
        s.assert_term(
            eq(
                &Term::bin(BinOp::Add, x.clone(), Term::lit(1i64)),
                &Term::lit(0i64),
            ),
            true,
        );
        assert!(s.is_unsat());

        // x == 2 ⊨ x + 1 == 3
        let mut s = Solver::new();
        s.assert_term(eq(&x, &Term::lit(2i64)), true);
        assert!(s.entails(
            &eq(
                &Term::bin(BinOp::Add, x.clone(), Term::lit(1i64)),
                &Term::lit(3i64)
            ),
            true
        ));
    }

    #[test]
    fn interval_conflicts() {
        let mut c = ctx();
        let x = num(&mut c);
        // x <= 2 && 3 <= x → unsat
        let mut s = Solver::new();
        s.assert_term(Term::bin(BinOp::Le, x.clone(), Term::lit(2i64)), true);
        s.assert_term(Term::bin(BinOp::Le, Term::lit(3i64), x.clone()), true);
        assert!(s.is_unsat());

        // x < 3 && x != 0 && x != 1 && x != 2 && 0 <= x → unsat
        let mut s = Solver::new();
        s.assert_term(Term::bin(BinOp::Lt, x.clone(), Term::lit(3i64)), true);
        s.assert_term(Term::bin(BinOp::Le, Term::lit(0i64), x.clone()), true);
        for k in 0..3i64 {
            s.assert_term(eq(&x, &Term::lit(k)), false);
        }
        assert!(s.is_unsat());
    }

    #[test]
    fn interval_collapse_pins_value() {
        let mut c = ctx();
        let x = num(&mut c);
        // 2 <= x <= 2 ⊨ x == 2, and then x+1 == 3.
        let mut s = Solver::new();
        s.assert_term(Term::bin(BinOp::Le, Term::lit(2i64), x.clone()), true);
        s.assert_term(Term::bin(BinOp::Le, x.clone(), Term::lit(2i64)), true);
        assert!(!s.is_unsat());
        assert_eq!(s.implied_value(&x), Some(Value::Num(2)));
    }

    #[test]
    fn negated_lt_flips() {
        let mut c = ctx();
        let x = num(&mut c);
        // !(x < 3) && x <= 2 → unsat
        let mut s = Solver::new();
        s.assert_term(Term::bin(BinOp::Lt, x.clone(), Term::lit(3i64)), false);
        s.assert_term(Term::bin(BinOp::Le, x.clone(), Term::lit(2i64)), true);
        assert!(s.is_unsat());
    }

    #[test]
    fn difference_bounds() {
        let mut c = ctx();
        let x = num(&mut c);
        let y = num(&mut c);
        // x + 1 < y ⊨ x < y
        let mut s = Solver::new();
        s.assert_term(
            Term::bin(
                BinOp::Lt,
                Term::bin(BinOp::Add, x.clone(), Term::lit(1i64)),
                y.clone(),
            ),
            true,
        );
        assert!(s.entails(&Term::bin(BinOp::Lt, x.clone(), y.clone()), true));
        assert!(!s.is_unsat());

        // x < y && y < x → unsat (keys canonicalize to the same difference)
        let mut s = Solver::new();
        s.assert_term(Term::bin(BinOp::Lt, x.clone(), y.clone()), true);
        s.assert_term(Term::bin(BinOp::Lt, y.clone(), x.clone()), true);
        assert!(s.is_unsat());

        // x <= y && y <= x is satisfiable (x == y)
        let mut s = Solver::new();
        s.assert_term(Term::bin(BinOp::Le, x.clone(), y.clone()), true);
        s.assert_term(Term::bin(BinOp::Le, y.clone(), x.clone()), true);
        assert!(!s.is_unsat());

        // x < y && x == y + 1 → unsat
        let mut s = Solver::new();
        s.assert_term(Term::bin(BinOp::Lt, x.clone(), y.clone()), true);
        s.assert_term(
            Term::bin(
                BinOp::Eq,
                x.clone(),
                Term::bin(BinOp::Add, y.clone(), Term::lit(1i64)),
            ),
            true,
        );
        assert!(s.is_unsat());
    }

    #[test]
    fn clause_unit_propagation() {
        let mut c = ctx();
        let a = boolean(&mut c);
        let b = boolean(&mut c);
        // (a || b) && !a ⊨ b
        let mut s = Solver::new();
        s.assert_term(Term::bin(BinOp::Or, a.clone(), b.clone()), true);
        s.assert_term(a.clone(), false);
        assert!(!s.is_unsat());
        assert!(s.entails(&b, true));

        // !(a && b) && a && b → unsat
        let mut s = Solver::new();
        s.assert_term(Term::bin(BinOp::And, a.clone(), b.clone()), false);
        s.assert_term(a.clone(), true);
        s.assert_term(b.clone(), true);
        assert!(s.is_unsat());
    }

    #[test]
    fn entailment_is_conservative() {
        let mut c = ctx();
        let x = string(&mut c);
        let y = string(&mut c);
        let s = Solver::new();
        // Nothing is known: neither x == y nor x != y is entailed.
        assert!(!s.entails_equal(&x, &y));
        assert!(!s.entails_disequal(&x, &y));
    }

    #[test]
    fn variable_variable_substitution() {
        let mut c = ctx();
        let x = num(&mut c);
        let y = num(&mut c);
        // x == y ⊨ x + 1 == y + 1
        let mut s = Solver::new();
        s.assert_term(eq(&x, &y), true);
        assert!(s.entails(
            &eq(
                &Term::bin(BinOp::Add, x.clone(), Term::lit(1i64)),
                &Term::bin(BinOp::Add, y.clone(), Term::lit(1i64)),
            ),
            true
        ));
        assert!(!s.is_unsat());
    }

    #[test]
    fn string_concat_congruence() {
        let mut c = ctx();
        let x = string(&mut c);
        // x == "a" ⊨ x ++ "b" == "ab"
        let mut s = Solver::new();
        s.assert_term(eq(&x, &Term::lit("a")), true);
        assert!(s.entails(
            &eq(
                &Term::bin(BinOp::Cat, x.clone(), Term::lit("b")),
                &Term::lit("ab")
            ),
            true
        ));
    }
}
