//! A thread-local scratch cache in front of the global term interner —
//! the "term arena" a proof task allocates through.
//!
//! Proof search interns the same handful of nodes over and over within
//! one obligation (every path re-builds the same guards, substitutions
//! re-produce the same subterms). Each of those `TermRef::new` calls pays
//! a shard lock plus a `HashMap` probe in the global table. The scratch
//! is a small fixed-size, open-addressed, thread-local cache keyed by the
//! node's structural hash that answers those repeats without touching the
//! global table at all.
//!
//! **Uniqueness is preserved** because the scratch is strictly
//! *write-through*: every handle it stores came out of the global
//! interner, so a scratch hit returns the same canonical `Arc` the global
//! table would have — `Arc::ptr_eq` equality stays sound *and* complete.
//! Eviction (slots are overwritten on collision) or skipping the scratch
//! entirely only costs a trip to the global table.
//!
//! A task opts in with [`with_scratch`]; the cache dies with the scope,
//! so terms interned by one proof task add no thread-local footprint to
//! the next. Without an active scope, lookups and records are no-ops.

use std::cell::RefCell;

use crate::intern::TermRef;
use crate::term::Term;

/// Slots in the scratch table (power of two; direct-mapped with one
/// probe step).
const SCRATCH_SLOTS: usize = 1 << 12;

struct Scratch {
    slots: Vec<Option<(u64, TermRef)>>,
}

impl Scratch {
    fn new() -> Scratch {
        Scratch {
            slots: vec![None; SCRATCH_SLOTS],
        }
    }

    fn lookup(&self, hash: u64, node: &Term) -> Option<TermRef> {
        let mask = SCRATCH_SLOTS - 1;
        for probe in 0..2 {
            if let Some((h, handle)) = &self.slots[(hash as usize + probe) & mask] {
                // Shallow structural equality: children are canonical
                // handles, so this is O(node).
                if *h == hash && handle.as_term() == node {
                    return Some(handle.clone());
                }
            }
        }
        None
    }

    fn record(&mut self, hash: u64, handle: &TermRef) {
        let mask = SCRATCH_SLOTS - 1;
        // Prefer an empty slot of the two; otherwise evict the first.
        let first = hash as usize & mask;
        let second = (hash as usize + 1) & mask;
        let slot = if self.slots[first].is_none() || self.slots[second].is_some() {
            first
        } else {
            second
        };
        self.slots[slot] = Some((hash, handle.clone()));
    }
}

thread_local! {
    static SCRATCH: RefCell<Option<Scratch>> = const { RefCell::new(None) };
    static DEPTH: RefCell<usize> = const { RefCell::new(0) };
}

/// Runs `f` with a scratch intern cache installed on this thread. Nested
/// calls share the outermost scope's cache; the cache is dropped when the
/// outermost scope exits (also on unwind).
pub fn with_scratch<R>(f: impl FnOnce() -> R) -> R {
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            let depth = DEPTH.with(|d| {
                let mut d = d.borrow_mut();
                *d -= 1;
                *d
            });
            if depth == 0 {
                SCRATCH.with(|s| *s.borrow_mut() = None);
            }
        }
    }
    DEPTH.with(|d| {
        let mut d = d.borrow_mut();
        if *d == 0 {
            SCRATCH.with(|s| *s.borrow_mut() = Some(Scratch::new()));
        }
        *d += 1;
    });
    let _guard = Guard;
    f()
}

/// Scratch lookup for an interned node; `None` when no scope is active or
/// the node is not cached.
pub(crate) fn lookup(hash: u64, node: &Term) -> Option<TermRef> {
    SCRATCH.with(|s| s.borrow().as_ref().and_then(|sc| sc.lookup(hash, node)))
}

/// Write-through record of a canonical handle obtained from the global
/// interner. No-op without an active scope.
pub(crate) fn record(hash: u64, handle: &TermRef) {
    SCRATCH.with(|s| {
        if let Some(sc) = s.borrow_mut().as_mut() {
            sc.record(hash, handle);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{SymCtx, SymKind};
    use reflex_ast::{BinOp, Ty};

    /// The left child handle of `x + n`, built fresh each call.
    fn handle(x: &Term, n: i64) -> TermRef {
        let Term::Bin(_, l, _) = Term::bin(BinOp::Add, x.clone(), Term::lit(n)) else {
            panic!("expected Bin");
        };
        l
    }

    #[test]
    fn scratch_returns_the_canonical_global_handle() {
        let mut ctx = SymCtx::new();
        let x = ctx.fresh_term(Ty::Num, SymKind::Fresh);
        let outside = handle(&x, 17);
        let inside = with_scratch(|| {
            let a = handle(&x, 17);
            let b = handle(&x, 17);
            assert!(a == b);
            a
        });
        assert!(
            inside == outside,
            "write-through preserves the uniqueness invariant"
        );
        // After the scope, interning still yields the same canonical Arc.
        assert!(handle(&x, 17) == outside);
    }

    #[test]
    fn nested_scopes_share_and_then_tear_down() {
        let mut ctx = SymCtx::new();
        let x = ctx.fresh_term(Ty::Num, SymKind::Fresh);
        with_scratch(|| {
            let a = handle(&x, 5);
            with_scratch(|| {
                assert!(handle(&x, 5) == a);
            });
            // Inner exit must not tear down the outer scope's cache.
            assert!(handle(&x, 5) == a);
        });
        SCRATCH.with(|s| assert!(s.borrow().is_none(), "cache freed at outermost exit"));
    }
}
