//! Symbolic component instances.

use std::fmt;

use crate::term::Term;

/// Where a symbolic component came from, within the exchange under
/// analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompOrigin {
    /// Bound by a `spawn` in the init section (a global component
    /// variable). Its configuration is the init-evaluated one — often fully
    /// concrete.
    Init {
        /// The init binder name.
        binder: String,
    },
    /// The component that sent the message triggering the current handler.
    /// Its configuration fields are opaque.
    Sender,
    /// Spawned by the current handler run (`index`-th spawn on this path).
    Spawned {
        /// Zero-based spawn counter within the path.
        index: usize,
    },
    /// Found by a `lookup` in the current handler run. Opaque, except that
    /// the lookup predicate holds of its configuration (recorded in the
    /// path condition).
    Lookup {
        /// Zero-based lookup counter within the path.
        index: usize,
    },
}

/// A symbolic component instance.
///
/// The component *type* is always statically known (enforced by
/// `reflex-typeck`), which is what lets pattern unification decide
/// component-type matches definitely rather than conditionally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymComp {
    /// Component type name.
    pub ctype: String,
    /// Configuration field terms.
    pub config: Vec<Term>,
    /// Identity term (opaque).
    pub id: Term,
    /// Provenance.
    pub origin: CompOrigin,
}

impl fmt::Display for SymComp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}⟨{}⟩(", self.ctype, self.id)?;
        for (i, t) in self.config.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{t}")?;
        }
        f.write_str(")")
    }
}
