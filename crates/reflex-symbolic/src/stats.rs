//! Per-session statistics for the symbolic engine.
//!
//! The interner and the entailment memo are process-global (that is what
//! makes them effective), but their *counters* must not be: a long-lived
//! process running several verification sessions (`rx watch`, the
//! benchmark harness, the test binary) would otherwise report hit/miss
//! counts polluted by every session that came before. [`SymSessionStats`]
//! is an explicitly owned counter block that a session scopes onto a
//! thread with [`with_session_stats`]; while scoped, every interner and
//! memo event bumps the innermost session's counters (in addition to the
//! legacy process-global ones, which remain for whole-process reporting).
//!
//! The scope is thread-local, so a job pool must wrap each *task* — the
//! driver's `Session` does exactly that, giving `rx verify --stats` counts
//! that belong to that run alone.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Counters for one verification session. Shareable across worker threads
/// (each wraps its tasks in [`with_session_stats`] with a clone of the
/// same `Arc`).
#[derive(Debug, Default)]
pub struct SymSessionStats {
    /// `TermRef::new` calls answered from the interner (or its scratch).
    pub intern_hits: AtomicU64,
    /// `TermRef::new` calls that allocated a new node.
    pub intern_misses: AtomicU64,
    /// `Solver::entails` queries issued.
    pub memo_queries: AtomicU64,
    /// Queries answered from the entailment memo.
    pub memo_hits: AtomicU64,
}

impl SymSessionStats {
    /// A fresh zeroed counter block.
    pub fn new() -> Arc<SymSessionStats> {
        Arc::new(SymSessionStats::default())
    }

    /// Interner hits so far.
    pub fn intern_hits(&self) -> u64 {
        self.intern_hits.load(Ordering::Relaxed)
    }

    /// Interner misses (new nodes) so far.
    pub fn intern_misses(&self) -> u64 {
        self.intern_misses.load(Ordering::Relaxed)
    }

    /// Entailment queries so far.
    pub fn memo_queries(&self) -> u64 {
        self.memo_queries.load(Ordering::Relaxed)
    }

    /// Entailment memo hits so far.
    pub fn memo_hits(&self) -> u64 {
        self.memo_hits.load(Ordering::Relaxed)
    }
}

thread_local! {
    static ACTIVE: RefCell<Vec<Arc<SymSessionStats>>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` with `stats` as this thread's innermost session counter
/// block. Nestable; panic-safe (the scope pops on unwind).
pub fn with_session_stats<R>(stats: Arc<SymSessionStats>, f: impl FnOnce() -> R) -> R {
    ACTIVE.with(|a| a.borrow_mut().push(stats));
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            ACTIVE.with(|a| {
                a.borrow_mut().pop();
            });
        }
    }
    let _guard = Guard;
    f()
}

/// This thread's innermost session counter block, if one is scoped. Job
/// pools use this to inherit the spawning thread's scope onto their
/// workers (the scope itself is thread-local).
pub fn current_session_stats() -> Option<Arc<SymSessionStats>> {
    ACTIVE.with(|a| a.borrow().last().map(Arc::clone))
}

fn bump(field: impl Fn(&SymSessionStats) -> &AtomicU64) {
    ACTIVE.with(|a| {
        if let Some(stats) = a.borrow().last() {
            field(stats).fetch_add(1, Ordering::Relaxed);
        }
    });
}

pub(crate) fn note_intern_hit() {
    bump(|s| &s.intern_hits);
}

pub(crate) fn note_intern_miss() {
    bump(|s| &s.intern_misses);
}

pub(crate) fn note_memo_query() {
    bump(|s| &s.memo_queries);
}

pub(crate) fn note_memo_hit() {
    bump(|s| &s.memo_hits);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{SymCtx, SymKind, Term};
    use reflex_ast::{BinOp, Ty};

    #[test]
    fn scoped_counters_see_only_their_own_session() {
        let first = SymSessionStats::new();
        let second = SymSessionStats::new();
        let probe = |n: i64| {
            let mut ctx = SymCtx::new();
            let x = ctx.fresh_term(Ty::Num, SymKind::Fresh);
            let mut s = crate::Solver::new();
            s.assert_term(Term::bin(BinOp::Eq, x.clone(), Term::lit(n)), true);
            s.entails(&Term::bin(BinOp::Eq, x, Term::lit(n)), true);
        };
        with_session_stats(Arc::clone(&first), || probe(11));
        with_session_stats(Arc::clone(&second), || {
            probe(12);
            probe(13);
        });
        assert!(first.memo_queries() >= 1);
        assert!(second.memo_queries() >= 2);
        assert!(
            second.memo_queries() > first.memo_queries(),
            "sessions do not leak into each other: {} vs {}",
            first.memo_queries(),
            second.memo_queries()
        );
        // Outside any scope, nothing is counted against either session.
        let before = first.memo_queries();
        probe(14);
        assert_eq!(first.memo_queries(), before);
    }
}
