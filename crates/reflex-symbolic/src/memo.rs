//! Global memoization of solver entailment queries.
//!
//! [`Solver::entails`] is the hot path of proof search: the provers issue
//! the same `Φ ⊨ ℓ` judgments over and over — across obligations, across
//! inductive cases, and (with the shared proof cache) across properties.
//! Each query clones the solver and re-saturates, so answering from a table
//! is a large constant-factor win.
//!
//! The memo key is the solver's **assertion log** (the exact sequence of
//! `assert_term` calls) plus the queried literal — but neither is hashed
//! nor copied per query. The solver maintains a *rolling fingerprint* of
//! its log (folded incrementally at each `assert_term` from cached
//! structural hashes) and a lazily-materialized `Arc` snapshot shared by
//! every query at the same state, so building and hashing a key is O(1) in
//! the log length. The full log still participates in key *equality*
//! (with an `Arc::ptr_eq` fast path), so a fingerprint collision degrades
//! to a slower compare, never a wrong answer. Shards are `RwLock`s: the
//! dominant hit path takes only a read lock.
//!
//! Determinism: on a miss the answer is computed by *replaying the log*
//! into a fresh solver, never from the caller's (possibly pre-saturated)
//! state. The cached bit is therefore a pure function of the key, so
//! concurrent provers can never observe timing-dependent answers, and a
//! memoized run agrees with itself regardless of thread interleaving.
//! Soundness is unaffected either way: `is_unsat` is sound-for-UNSAT and
//! every certificate is still replayed by the independent checker.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

use crate::solver::Solver;
use crate::term::Term;

const SHARD_COUNT: usize = 64;
/// Per-shard entry cap; a full shard is cleared wholesale. Bounds memory
/// without LRU bookkeeping on the hot path.
const SHARD_CAPACITY: usize = 8_192;

static QUERIES: AtomicU64 = AtomicU64::new(0);
static HITS: AtomicU64 = AtomicU64::new(0);

struct Key {
    /// Rolling fingerprint of `log` (see [`Solver`]); pre-computed, so
    /// hashing a key never walks the log.
    fp: u64,
    query: Term,
    polarity: bool,
    /// The assertion log itself, shared with the issuing solver (and with
    /// every other query at the same solver state). Participates in
    /// equality only — a fingerprint collision is a slow compare, not a
    /// wrong answer.
    log: Arc<[(Term, bool)]>,
}

impl PartialEq for Key {
    fn eq(&self, other: &Self) -> bool {
        self.fp == other.fp
            && self.polarity == other.polarity
            && self.query == other.query
            && (Arc::ptr_eq(&self.log, &other.log)
                || (self.log.len() == other.log.len() && self.log == other.log))
    }
}

impl Eq for Key {}

impl Hash for Key {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // O(1): the log contributes through `fp`; the query node hashes
        // shallowly (its children contribute cached hashes).
        state.write_u64(self.fp);
        self.query.hash(state);
        self.polarity.hash(state);
    }
}

struct MemoTable {
    shards: Vec<RwLock<HashMap<Key, bool>>>,
}

fn table() -> &'static MemoTable {
    static TABLE: OnceLock<MemoTable> = OnceLock::new();
    TABLE.get_or_init(|| MemoTable {
        shards: (0..SHARD_COUNT)
            .map(|_| RwLock::new(HashMap::new()))
            .collect(),
    })
}

/// Memoized `Φ ⊨ (query == polarity)` where `Φ` is `solver`'s assertion
/// log.
pub(crate) fn entails_memoized(solver: &Solver, query: &Term, polarity: bool) -> bool {
    QUERIES.fetch_add(1, Ordering::Relaxed);
    crate::stats::note_memo_query();
    let key = Key {
        fp: solver.log_fp(),
        query: query.clone(),
        polarity,
        log: solver.log_snapshot(),
    };
    let shard_hash = key.fp ^ crate::intern::stable_term_hash(&key.query);
    let shard = &table().shards[(shard_hash as usize) % SHARD_COUNT];
    if let Some(&answer) = shard.read().expect("memo shard poisoned").get(&key) {
        HITS.fetch_add(1, Ordering::Relaxed);
        crate::stats::note_memo_hit();
        return answer;
    }
    // Compute by replaying the log so the result is a pure function of
    // the key (see module docs), then publish.
    let answer = {
        let mut probe = Solver::with_assumptions(key.log.iter());
        probe.assert_term(query.clone(), !polarity);
        probe.is_unsat()
    };
    let mut map = shard.write().expect("memo shard poisoned");
    if map.len() >= SHARD_CAPACITY {
        map.clear();
    }
    map.insert(key, answer);
    answer
}

/// Counters for the entailment memo table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EntailmentMemoStats {
    /// Total `Solver::entails` queries since the last reset.
    pub queries: u64,
    /// Queries answered from the table.
    pub hits: u64,
}

/// A snapshot of the global entailment-memo counters.
///
/// Process-global: counts every session's work since the last reset. For
/// per-session counts, scope a [`crate::SymSessionStats`] instead.
pub fn entailment_memo_stats() -> EntailmentMemoStats {
    EntailmentMemoStats {
        queries: QUERIES.load(Ordering::Relaxed),
        hits: HITS.load(Ordering::Relaxed),
    }
}

/// Resets the counters (the cached answers are kept — they are pure).
pub fn reset_entailment_memo_stats() {
    QUERIES.store(0, Ordering::Relaxed);
    HITS.store(0, Ordering::Relaxed);
}

/// Drops every cached answer (the counters are kept).
///
/// Answers are pure functions of their keys, so clearing can never change
/// a result — only make the next query recompute it. Benchmarks use this
/// to simulate a fresh process (e.g. a cold `rx verify` run, as opposed to
/// a long-lived `rx watch` session whose memo stays warm).
pub fn clear_entailment_memo() {
    for shard in &table().shards {
        shard.write().expect("memo shard poisoned").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{SymCtx, SymKind};
    use reflex_ast::{BinOp, Ty};

    #[test]
    fn memoized_agrees_with_uncached() {
        let mut c = SymCtx::new();
        let x = c.fresh_term(Ty::Num, SymKind::Fresh);
        let mut s = Solver::new();
        s.assert_term(Term::bin(BinOp::Eq, x.clone(), Term::lit(2i64)), true);
        let probe = Term::bin(
            BinOp::Eq,
            Term::bin(BinOp::Add, x.clone(), Term::lit(1i64)),
            Term::lit(3i64),
        );
        for _ in 0..3 {
            assert_eq!(s.entails(&probe, true), s.entails_uncached(&probe, true));
            assert_eq!(s.entails(&probe, false), s.entails_uncached(&probe, false));
        }
    }

    #[test]
    fn fingerprint_tracks_assertion_order_and_content() {
        let mut c = SymCtx::new();
        let x = c.fresh_term(Ty::Num, SymKind::Fresh);
        let y = c.fresh_term(Ty::Num, SymKind::Fresh);
        let a = Term::bin(BinOp::Eq, x.clone(), Term::lit(1i64));
        let b = Term::bin(BinOp::Eq, y.clone(), Term::lit(2i64));

        let mut s1 = Solver::new();
        s1.assert_term(a.clone(), true);
        s1.assert_term(b.clone(), true);
        let mut s2 = Solver::new();
        s2.assert_term(a.clone(), true);
        s2.assert_term(b.clone(), true);
        assert_eq!(s1.log_fp(), s2.log_fp(), "same log, same fingerprint");

        let mut s3 = Solver::new();
        s3.assert_term(b, true);
        s3.assert_term(a.clone(), true);
        assert_ne!(s1.log_fp(), s3.log_fp(), "order is part of the log");

        let mut s4 = Solver::new();
        s4.assert_term(a, false);
        let mut s5 = Solver::new();
        assert_ne!(s4.log_fp(), s5.log_fp(), "polarity is part of the log");
        s5.assert_term(Term::lit(true), true);
        assert_ne!(s4.log_fp(), s5.log_fp());
    }

    #[test]
    fn snapshot_is_shared_until_the_next_assert() {
        let mut c = SymCtx::new();
        let x = c.fresh_term(Ty::Num, SymKind::Fresh);
        let mut s = Solver::new();
        s.assert_term(Term::bin(BinOp::Eq, x.clone(), Term::lit(2i64)), true);
        let snap1 = s.log_snapshot();
        let snap2 = s.log_snapshot();
        assert!(Arc::ptr_eq(&snap1, &snap2), "one allocation per state");
        s.assert_term(Term::bin(BinOp::Eq, x, Term::lit(2i64)), true);
        let snap3 = s.log_snapshot();
        assert_eq!(snap3.len(), 2, "snapshot reflects the extended log");
    }
}
