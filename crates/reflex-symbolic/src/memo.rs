//! Global memoization of solver entailment queries.
//!
//! [`Solver::entails`] is the hot path of proof search: the provers issue
//! the same `Φ ⊨ ℓ` judgments over and over — across obligations, across
//! inductive cases, and (with the shared proof cache) across properties.
//! Each query clones the solver and re-saturates, so answering from a table
//! is a large constant-factor win.
//!
//! The memo key is the solver's **assertion log** (the exact sequence of
//! `assert_term` calls) plus the queried literal. Interned terms make the
//! key cheap: hashing uses the cached structural hashes and equality is a
//! shallow node comparison with pointer-equal children.
//!
//! Determinism: on a miss the answer is computed by *replaying the log*
//! into a fresh solver, never from the caller's (possibly pre-saturated)
//! state. The cached bit is therefore a pure function of the key, so
//! concurrent provers can never observe timing-dependent answers, and a
//! memoized run agrees with itself regardless of thread interleaving.
//! Soundness is unaffected either way: `is_unsat` is sound-for-UNSAT and
//! every certificate is still replayed by the independent checker.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::solver::Solver;
use crate::term::Term;

const SHARD_COUNT: usize = 64;
/// Per-shard entry cap; a full shard is cleared wholesale. Bounds memory
/// without LRU bookkeeping on the hot path.
const SHARD_CAPACITY: usize = 8_192;

static QUERIES: AtomicU64 = AtomicU64::new(0);
static HITS: AtomicU64 = AtomicU64::new(0);

#[derive(PartialEq, Eq, Hash)]
struct Key {
    log: Vec<(Term, bool)>,
    query: Term,
    polarity: bool,
}

struct MemoTable {
    shards: Vec<Mutex<HashMap<Key, bool>>>,
}

fn table() -> &'static MemoTable {
    static TABLE: OnceLock<MemoTable> = OnceLock::new();
    TABLE.get_or_init(|| MemoTable {
        shards: (0..SHARD_COUNT)
            .map(|_| Mutex::new(HashMap::new()))
            .collect(),
    })
}

/// Memoized `Φ ⊨ (query == polarity)` where `Φ` is the assertion log.
pub(crate) fn entails_memoized(log: &[(Term, bool)], query: &Term, polarity: bool) -> bool {
    QUERIES.fetch_add(1, Ordering::Relaxed);
    let key = Key {
        log: log.to_vec(),
        query: query.clone(),
        polarity,
    };
    let mut hasher = DefaultHasher::new();
    key.hash(&mut hasher);
    let shard = &table().shards[(hasher.finish() as usize) % SHARD_COUNT];
    if let Some(&answer) = shard.lock().expect("memo shard poisoned").get(&key) {
        HITS.fetch_add(1, Ordering::Relaxed);
        return answer;
    }
    // Compute from a replay of the log so the result is a pure function of
    // the key (see module docs), then publish.
    let mut probe = Solver::with_assumptions(key.log.iter());
    probe.assert_term(query.clone(), !polarity);
    let answer = probe.is_unsat();
    let mut map = shard.lock().expect("memo shard poisoned");
    if map.len() >= SHARD_CAPACITY {
        map.clear();
    }
    map.insert(key, answer);
    answer
}

/// Counters for the entailment memo table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EntailmentMemoStats {
    /// Total `Solver::entails` queries since the last reset.
    pub queries: u64,
    /// Queries answered from the table.
    pub hits: u64,
}

/// A snapshot of the global entailment-memo counters.
pub fn entailment_memo_stats() -> EntailmentMemoStats {
    EntailmentMemoStats {
        queries: QUERIES.load(Ordering::Relaxed),
        hits: HITS.load(Ordering::Relaxed),
    }
}

/// Resets the counters (the cached answers are kept — they are pure).
pub fn reset_entailment_memo_stats() {
    QUERIES.store(0, Ordering::Relaxed);
    HITS.store(0, Ordering::Relaxed);
}

/// Drops every cached answer (the counters are kept).
///
/// Answers are pure functions of their keys, so clearing can never change
/// a result — only make the next query recompute it. Benchmarks use this
/// to simulate a fresh process (e.g. a cold `rx verify` run, as opposed to
/// a long-lived `rx watch` session whose memo stays warm).
pub fn clear_entailment_memo() {
    for shard in &table().shards {
        shard.lock().expect("memo shard poisoned").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{SymCtx, SymKind};
    use reflex_ast::{BinOp, Ty};

    #[test]
    fn memoized_agrees_with_uncached() {
        let mut c = SymCtx::new();
        let x = c.fresh_term(Ty::Num, SymKind::Fresh);
        let mut s = Solver::new();
        s.assert_term(Term::bin(BinOp::Eq, x.clone(), Term::lit(2i64)), true);
        let probe = Term::bin(
            BinOp::Eq,
            Term::bin(BinOp::Add, x.clone(), Term::lit(1i64)),
            Term::lit(3i64),
        );
        for _ in 0..3 {
            assert_eq!(s.entails(&probe, true), s.entails_uncached(&probe, true));
            assert_eq!(s.entails(&probe, false), s.entails_uncached(&probe, false));
        }
    }
}
