//! Symbolic terms: the value language of symbolic evaluation.

use std::fmt;

use reflex_ast::{BinOp, Ty, UnOp, Value};

use crate::intern::TermRef;

/// What a symbolic variable stands for. Used for diagnostics and — in the
/// verifier — to recognize which opaque values denote pre-state variables,
/// message parameters, etc.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SymKind {
    /// The value of a global state variable in the pre-state of the
    /// exchange under analysis.
    StateVar(String),
    /// A message payload parameter of the handler under analysis.
    Param(String),
    /// A configuration field of the triggering component (`sender`).
    SenderCfg(usize),
    /// A configuration field of a component found by `lookup`.
    LookupCfg(usize),
    /// The result of an external `call` (non-deterministic world input).
    CallResult(String),
    /// The identity of a component.
    CompId,
    /// A universally quantified property variable.
    PropVar(String),
    /// Anything else.
    Fresh,
}

/// An opaque symbolic variable.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SymVar {
    /// Unique id within a [`SymCtx`].
    pub id: u32,
    /// The variable's type.
    pub ty: Ty,
    /// What it denotes.
    pub kind: SymKind,
}

impl fmt::Display for SymVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            SymKind::StateVar(n) => write!(f, "{n}₀"),
            SymKind::Param(n) => write!(f, "m.{n}"),
            SymKind::SenderCfg(i) => write!(f, "sender.cfg{i}"),
            SymKind::LookupCfg(i) => write!(f, "lk{}.cfg{i}", self.id),
            SymKind::CallResult(fun) => write!(f, "{fun}#{}", self.id),
            SymKind::CompId => write!(f, "id#{}", self.id),
            SymKind::PropVar(n) => write!(f, "?{n}"),
            SymKind::Fresh => write!(f, "ν{}", self.id),
        }
    }
}

/// Allocator for fresh symbolic variables.
#[derive(Debug, Clone, Default)]
pub struct SymCtx {
    next: u32,
}

impl SymCtx {
    /// A fresh context.
    pub fn new() -> SymCtx {
        SymCtx::default()
    }

    /// Allocates a fresh symbolic variable.
    pub fn fresh(&mut self, ty: Ty, kind: SymKind) -> SymVar {
        let id = self.next;
        self.next += 1;
        SymVar { id, ty, kind }
    }

    /// Allocates a fresh variable and wraps it as a term.
    pub fn fresh_term(&mut self, ty: Ty, kind: SymKind) -> Term {
        Term::Sym(self.fresh(ty, kind))
    }
}

/// A symbolic term.
///
/// Terms are immutable trees whose compound nodes are hash-consed through
/// the global interner ([`TermRef`]): structurally equal subtrees share one
/// allocation, so cloning is a refcount bump and subterm equality is a
/// pointer comparison. Construction via [`Term::bin`]/[`Term::un`] applies
/// bottom-up simplification (constant folding, neutral elements, canonical
/// ordering of commutative operators and linear normalization of
/// arithmetic), so syntactic equality of built terms is a useful — though
/// incomplete — semantic equality check.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Term {
    /// A literal value.
    Lit(Value),
    /// An opaque symbolic variable.
    Sym(SymVar),
    /// A unary operation.
    Un(UnOp, TermRef),
    /// A binary operation.
    Bin(BinOp, TermRef, TermRef),
}

impl Term {
    /// The boolean literal `true`.
    pub fn tt() -> Term {
        Term::Lit(Value::Bool(true))
    }

    /// The boolean literal `false`.
    pub fn ff() -> Term {
        Term::Lit(Value::Bool(false))
    }

    /// A literal term.
    pub fn lit(v: impl Into<Value>) -> Term {
        Term::Lit(v.into())
    }

    /// The term's type.
    pub fn ty(&self) -> Ty {
        match self {
            Term::Lit(v) => v.ty(),
            Term::Sym(s) => s.ty,
            Term::Un(UnOp::Not, _) => Ty::Bool,
            Term::Un(UnOp::Neg, _) => Ty::Num,
            Term::Bin(op, l, _) => match op {
                BinOp::Eq | BinOp::Ne | BinOp::And | BinOp::Or | BinOp::Lt | BinOp::Le => Ty::Bool,
                BinOp::Add | BinOp::Sub => Ty::Num,
                BinOp::Cat => {
                    debug_assert_eq!(l.ty(), Ty::Str);
                    Ty::Str
                }
            },
        }
    }

    /// The literal value, if this term is a literal.
    pub fn as_lit(&self) -> Option<&Value> {
        match self {
            Term::Lit(v) => Some(v),
            _ => None,
        }
    }

    /// The boolean constant, if this term is a boolean literal.
    pub fn as_bool(&self) -> Option<bool> {
        self.as_lit().and_then(Value::as_bool)
    }

    /// Builds a simplified unary operation.
    pub fn un(op: UnOp, t: Term) -> Term {
        match (op, &t) {
            (UnOp::Not, Term::Lit(Value::Bool(b))) => Term::Lit(Value::Bool(!b)),
            (UnOp::Not, Term::Un(UnOp::Not, inner)) => (**inner).clone(),
            (UnOp::Neg, Term::Lit(Value::Num(n))) => Term::Lit(Value::Num(n.wrapping_neg())),
            (UnOp::Neg, Term::Un(UnOp::Neg, inner)) => (**inner).clone(),
            _ => Term::Un(op, TermRef::new(t)),
        }
    }

    /// Builds a simplified binary operation.
    pub fn bin(op: BinOp, l: Term, r: Term) -> Term {
        use BinOp::*;
        // Constant folding.
        if let (Term::Lit(a), Term::Lit(b)) = (&l, &r) {
            if let Some(v) = eval_bin(op, a, b) {
                return Term::Lit(v);
            }
        }
        match op {
            And => match (l.as_bool(), r.as_bool()) {
                (Some(true), _) => return r,
                (_, Some(true)) => return l,
                (Some(false), _) | (_, Some(false)) => return Term::ff(),
                _ => {}
            },
            Or => match (l.as_bool(), r.as_bool()) {
                (Some(false), _) => return r,
                (_, Some(false)) => return l,
                (Some(true), _) | (_, Some(true)) => return Term::tt(),
                _ => {}
            },
            Eq => {
                if l == r {
                    return Term::tt();
                }
                // Two distinct literals are unequal (folded above), two
                // syntactically distinct terms are unknown — except when
                // linear arithmetic settles it.
                if l.ty() == Ty::Num {
                    if let Some(b) = linear_compare(&l, &r).map(|d| d == 0) {
                        return Term::Lit(Value::Bool(b));
                    }
                }
            }
            Ne => {
                return Term::un(UnOp::Not, Term::bin(Eq, l, r));
            }
            Lt => {
                if let Some(d) = linear_compare(&l, &r) {
                    return Term::Lit(Value::Bool(d < 0));
                }
            }
            Le => {
                if let Some(d) = linear_compare(&l, &r) {
                    return Term::Lit(Value::Bool(d <= 0));
                }
            }
            Add | Sub => {
                return normalize_linear(op, l, r);
            }
            Cat => {
                if let Term::Lit(Value::Str(a)) = &l {
                    if a.is_empty() {
                        return r;
                    }
                }
                if let Term::Lit(Value::Str(b)) = &r {
                    if b.is_empty() {
                        return l;
                    }
                }
            }
        }
        // Canonical operand order for commutative operators.
        let (l, r) = match op {
            Eq | And | Or if l > r => (r, l),
            _ => (l, r),
        };
        Term::Bin(op, TermRef::new(l), TermRef::new(r))
    }

    /// Shorthand: `self == other`.
    pub fn eq(self, other: Term) -> Term {
        Term::bin(BinOp::Eq, self, other)
    }

    /// Shorthand: `self && other`.
    pub fn and(self, other: Term) -> Term {
        Term::bin(BinOp::And, self, other)
    }

    /// Shorthand: `!self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Term {
        Term::un(UnOp::Not, self)
    }

    /// Rewrites the term bottom-up: `f` maps leaves (literals and symbolic
    /// variables) to replacement terms; operations are rebuilt with
    /// simplification.
    pub fn rewrite_leaves(&self, f: &impl Fn(&Term) -> Option<Term>) -> Term {
        match self {
            Term::Lit(_) | Term::Sym(_) => f(self).unwrap_or_else(|| self.clone()),
            Term::Un(op, t) => Term::un(*op, t.rewrite_leaves(f)),
            Term::Bin(op, l, r) => Term::bin(*op, l.rewrite_leaves(f), r.rewrite_leaves(f)),
        }
    }

    /// Collects all symbolic variables in the term.
    pub fn collect_syms(&self, out: &mut Vec<SymVar>) {
        match self {
            Term::Lit(_) => {}
            Term::Sym(s) => out.push(s.clone()),
            Term::Un(_, t) => t.collect_syms(out),
            Term::Bin(_, l, r) => {
                l.collect_syms(out);
                r.collect_syms(out);
            }
        }
    }

    /// Whether the term mentions the given symbolic variable.
    pub fn mentions(&self, sym: &SymVar) -> bool {
        match self {
            Term::Lit(_) => false,
            Term::Sym(s) => s == sym,
            Term::Un(_, t) => t.mentions(sym),
            Term::Bin(_, l, r) => l.mentions(sym) || r.mentions(sym),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Lit(v) => write!(f, "{v}"),
            Term::Sym(s) => write!(f, "{s}"),
            Term::Un(UnOp::Not, t) => write!(f, "!({t})"),
            Term::Un(UnOp::Neg, t) => write!(f, "-({t})"),
            Term::Bin(op, l, r) => {
                let sym = match op {
                    BinOp::Eq => "==",
                    BinOp::Ne => "!=",
                    BinOp::And => "&&",
                    BinOp::Or => "||",
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::Lt => "<",
                    BinOp::Le => "<=",
                    BinOp::Cat => "++",
                };
                write!(f, "({l} {sym} {r})")
            }
        }
    }
}

fn eval_bin(op: BinOp, a: &Value, b: &Value) -> Option<Value> {
    use BinOp::*;
    Some(match (op, a, b) {
        (Eq, _, _) => Value::Bool(a == b),
        (Ne, _, _) => Value::Bool(a != b),
        (And, Value::Bool(x), Value::Bool(y)) => Value::Bool(*x && *y),
        (Or, Value::Bool(x), Value::Bool(y)) => Value::Bool(*x || *y),
        (Add, Value::Num(x), Value::Num(y)) => Value::Num(x.wrapping_add(*y)),
        (Sub, Value::Num(x), Value::Num(y)) => Value::Num(x.wrapping_sub(*y)),
        (Lt, Value::Num(x), Value::Num(y)) => Value::Bool(x < y),
        (Le, Value::Num(x), Value::Num(y)) => Value::Bool(x <= y),
        (Cat, Value::Str(x), Value::Str(y)) => Value::Str(format!("{x}{y}")),
        _ => return None,
    })
}

/// Decomposes a numeric term into `(atoms with signs, constant)` where the
/// term equals `Σ ±atom + constant`. Atoms are non-literal subterms that
/// are not themselves `Add`/`Sub`/`Neg`.
fn linearize(t: &Term, sign: i64, atoms: &mut Vec<(Term, i64)>, constant: &mut i64) {
    match t {
        Term::Lit(Value::Num(n)) => *constant = constant.wrapping_add(sign.wrapping_mul(*n)),
        Term::Un(UnOp::Neg, inner) => linearize(inner, -sign, atoms, constant),
        Term::Bin(BinOp::Add, l, r) => {
            linearize(l, sign, atoms, constant);
            linearize(r, sign, atoms, constant);
        }
        Term::Bin(BinOp::Sub, l, r) => {
            linearize(l, sign, atoms, constant);
            linearize(r, -sign, atoms, constant);
        }
        other => atoms.push((other.clone(), sign)),
    }
}

/// Rebuilds a canonical linear form: atoms sorted, cancelled, constant last.
fn normalize_linear(op: BinOp, l: Term, r: Term) -> Term {
    let probe = Term::Bin(op, TermRef::new(l), TermRef::new(r));
    let mut atoms = Vec::new();
    let mut constant = 0i64;
    linearize(&probe, 1, &mut atoms, &mut constant);
    // Combine coefficients of identical atoms.
    atoms.sort_by(|a, b| a.0.cmp(&b.0));
    let mut combined: Vec<(Term, i64)> = Vec::new();
    for (t, c) in atoms {
        match combined.last_mut() {
            Some((prev, pc)) if *prev == t => *pc += c,
            _ => combined.push((t, c)),
        }
    }
    combined.retain(|(_, c)| *c != 0);

    let mut acc: Option<Term> = None;
    for (t, c) in combined {
        let (abs, neg) = if c < 0 { (-c, true) } else { (c, false) };
        // Materialize |c| copies (coefficients are tiny in practice:
        // handlers are loop-free, so they are bounded by handler size).
        for _ in 0..abs {
            acc = Some(match (acc, neg) {
                (None, false) => t.clone(),
                (None, true) => Term::Un(UnOp::Neg, TermRef::new(t.clone())),
                (Some(a), false) => Term::Bin(BinOp::Add, TermRef::new(a), TermRef::new(t.clone())),
                (Some(a), true) => Term::Bin(BinOp::Sub, TermRef::new(a), TermRef::new(t.clone())),
            });
        }
    }
    match (acc, constant) {
        (None, c) => Term::Lit(Value::Num(c)),
        (Some(a), 0) => a,
        (Some(a), c) if c > 0 => Term::Bin(
            BinOp::Add,
            TermRef::new(a),
            TermRef::new(Term::Lit(Value::Num(c))),
        ),
        (Some(a), c) => Term::Bin(
            BinOp::Sub,
            TermRef::new(a),
            TermRef::new(Term::Lit(Value::Num(-c))),
        ),
    }
}

/// If `l - r` is a known constant (identical atom parts), returns it.
fn linear_compare(l: &Term, r: &Term) -> Option<i64> {
    if l.ty() != Ty::Num || r.ty() != Ty::Num {
        return None;
    }
    let mut atoms = Vec::new();
    let mut constant = 0i64;
    linearize(l, 1, &mut atoms, &mut constant);
    linearize(r, -1, &mut atoms, &mut constant);
    atoms.sort_by(|a, b| a.0.cmp(&b.0));
    let mut sum: std::collections::BTreeMap<Term, i64> = std::collections::BTreeMap::new();
    for (t, c) in atoms {
        *sum.entry(t).or_insert(0) += c;
    }
    if sum.values().all(|c| *c == 0) {
        Some(constant)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(ctx: &mut SymCtx, ty: Ty) -> Term {
        ctx.fresh_term(ty, SymKind::Fresh)
    }

    #[test]
    fn constant_folding() {
        assert_eq!(
            Term::bin(BinOp::Add, Term::lit(2i64), Term::lit(3i64)),
            Term::lit(5i64)
        );
        assert_eq!(
            Term::bin(BinOp::Eq, Term::lit("a"), Term::lit("a")),
            Term::tt()
        );
        assert_eq!(
            Term::bin(BinOp::Eq, Term::lit("a"), Term::lit("b")),
            Term::ff()
        );
        assert_eq!(
            Term::bin(BinOp::Cat, Term::lit("a"), Term::lit("b")),
            Term::lit("ab")
        );
        assert_eq!(Term::un(UnOp::Not, Term::tt()), Term::ff());
    }

    #[test]
    fn boolean_identities() {
        let mut ctx = SymCtx::new();
        let b = sym(&mut ctx, Ty::Bool);
        assert_eq!(Term::bin(BinOp::And, Term::tt(), b.clone()), b);
        assert_eq!(Term::bin(BinOp::And, Term::ff(), b.clone()), Term::ff());
        assert_eq!(Term::bin(BinOp::Or, Term::ff(), b.clone()), b);
        assert_eq!(Term::bin(BinOp::Or, b.clone(), Term::tt()), Term::tt());
        assert_eq!(Term::un(UnOp::Not, Term::un(UnOp::Not, b.clone())), b);
    }

    #[test]
    fn reflexive_equality_and_ne_desugar() {
        let mut ctx = SymCtx::new();
        let x = sym(&mut ctx, Ty::Num);
        assert_eq!(Term::bin(BinOp::Eq, x.clone(), x.clone()), Term::tt());
        let y = sym(&mut ctx, Ty::Num);
        let ne = Term::bin(BinOp::Ne, x.clone(), y.clone());
        assert!(matches!(ne, Term::Un(UnOp::Not, _)));
    }

    #[test]
    fn linear_normalization() {
        let mut ctx = SymCtx::new();
        let x = sym(&mut ctx, Ty::Num);
        // (x + 1) + 1 == x + 2
        let a = Term::bin(
            BinOp::Add,
            Term::bin(BinOp::Add, x.clone(), Term::lit(1i64)),
            Term::lit(1i64),
        );
        let b = Term::bin(BinOp::Add, x.clone(), Term::lit(2i64));
        assert_eq!(a, b);
        // x - x == 0
        assert_eq!(Term::bin(BinOp::Sub, x.clone(), x.clone()), Term::lit(0i64));
        // x + 1 == x + 2 is false; x + 1 <= x + 2 is true.
        assert_eq!(
            Term::bin(
                BinOp::Eq,
                Term::bin(BinOp::Add, x.clone(), Term::lit(1i64)),
                Term::bin(BinOp::Add, x.clone(), Term::lit(2i64))
            ),
            Term::ff()
        );
        assert_eq!(
            Term::bin(
                BinOp::Le,
                Term::bin(BinOp::Add, x.clone(), Term::lit(1i64)),
                Term::bin(BinOp::Add, x.clone(), Term::lit(2i64))
            ),
            Term::tt()
        );
        // x + 1 == 0 stays symbolic.
        let open = Term::bin(
            BinOp::Eq,
            Term::bin(BinOp::Add, x.clone(), Term::lit(1i64)),
            Term::lit(0i64),
        );
        assert!(open.as_bool().is_none());
    }

    #[test]
    fn commutative_canonical_order() {
        let mut ctx = SymCtx::new();
        let x = sym(&mut ctx, Ty::Str);
        let y = sym(&mut ctx, Ty::Str);
        assert_eq!(
            Term::bin(BinOp::Eq, x.clone(), y.clone()),
            Term::bin(BinOp::Eq, y.clone(), x.clone())
        );
    }

    #[test]
    fn rewrite_leaves_substitutes_and_refolds() {
        let mut ctx = SymCtx::new();
        let x = sym(&mut ctx, Ty::Num);
        let t = Term::bin(BinOp::Add, x.clone(), Term::lit(1i64));
        let rewritten = t.rewrite_leaves(&|leaf| (leaf == &x).then(|| Term::lit(4i64)));
        assert_eq!(rewritten, Term::lit(5i64));
    }

    #[test]
    fn types_are_computed() {
        let mut ctx = SymCtx::new();
        let x = sym(&mut ctx, Ty::Num);
        assert_eq!(
            Term::bin(BinOp::Le, x.clone(), Term::lit(3i64)).ty(),
            Ty::Bool
        );
        assert_eq!(
            Term::bin(BinOp::Add, x.clone(), Term::lit(3i64)).ty(),
            Ty::Num
        );
        let s = sym(&mut ctx, Ty::Str);
        assert_eq!(
            Term::bin(BinOp::Cat, s.clone(), Term::lit("x")).ty(),
            Ty::Str
        );
    }

    #[test]
    fn mentions_and_collect() {
        let mut ctx = SymCtx::new();
        let x = ctx.fresh(Ty::Num, SymKind::StateVar("count".into()));
        let y = ctx.fresh(Ty::Num, SymKind::Fresh);
        let t = Term::bin(BinOp::Add, Term::Sym(x.clone()), Term::Sym(y.clone()));
        assert!(t.mentions(&x));
        let mut syms = Vec::new();
        t.collect_syms(&mut syms);
        assert_eq!(syms.len(), 2);
    }
}
