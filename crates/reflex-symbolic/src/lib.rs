//! Symbolic terms, a constraint solver, and symbolic evaluation of Reflex
//! handlers.
//!
//! This crate is the substrate of the proof automation in `reflex-verify`:
//!
//! * [`Term`] — the symbolic value language, with aggressive bottom-up
//!   simplification (constant folding, linear arithmetic normalization,
//!   canonical ordering);
//! * [`Solver`] — a sound-for-UNSAT decision procedure over conjunctions of
//!   boolean literals (equality classes + constant propagation + interval
//!   reasoning + unit propagation), used for path feasibility and
//!   entailment;
//! * [`SymComp`], [`SymAction`], [`unify_action`] — symbolic components and
//!   actions, with pattern unification producing bindings and equality
//!   side-conditions;
//! * [`Evaluator`] — total symbolic evaluation of loop-free handlers: the
//!   `Exchange` relation of the behavioral abstraction `BehAbs` (paper §3.3).
//!
//! # Example
//!
//! ```
//! use reflex_ast::build::ProgramBuilder;
//! use reflex_ast::{Expr, Ty};
//! use reflex_symbolic::{Evaluator, SymCtx};
//!
//! let program = ProgramBuilder::new("gate")
//!     .component("C", "c.py", [])
//!     .message("Go", [Ty::Num])
//!     .state("armed", Ty::Bool, Expr::lit(false))
//!     .init_spawn("c0", "C", [])
//!     .handler("C", "Go", ["n"], |h| {
//!         h.when(Expr::var("armed"), |t| {
//!             t.send(Expr::var("c0"), "Go", [Expr::var("n")]);
//!         });
//!     })
//!     .finish();
//! let checked = reflex_typeck::check(&program).unwrap();
//! let eval = Evaluator::new(&checked);
//! let mut ctx = SymCtx::new();
//! let init = eval.eval_init(&mut ctx);
//! assert_eq!(init.len(), 1);
//! let pre = eval.generic_pre_state(&mut ctx, &init[0].state);
//! let exchange = eval.eval_exchange(&mut ctx, &pre, "C", "Go");
//! // Two paths: guard true (one send) and guard false (silent).
//! assert_eq!(exchange.paths.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod action;
pub mod arena;
mod comp;
mod eval;
mod intern;
mod memo;
mod solver;
mod stats;
mod term;

pub use action::{binding_literal, unify_action, SymAction, SymBindings, Unify};
pub use arena::with_scratch;
pub use comp::{CompOrigin, SymComp};
pub use eval::{CondKind, Evaluator, Exchange, MissedLookup, Path, SymState};
pub use intern::{intern_stats, InternStats, TermRef};
pub use memo::{
    clear_entailment_memo, entailment_memo_stats, reset_entailment_memo_stats, EntailmentMemoStats,
};
pub use solver::Solver;
pub use stats::{current_session_stats, with_session_stats, SymSessionStats};
pub use term::{SymCtx, SymKind, SymVar, Term};
