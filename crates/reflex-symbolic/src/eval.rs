//! Symbolic evaluation of Reflex commands: the `Exchange` relation.
//!
//! Handlers are loop-free (a core LAC restriction), so a handler body has a
//! statically bounded set of execution paths, each emitting a bounded list
//! of actions. [`Evaluator::eval_exchange`] enumerates those paths for one
//! `(component type, message type)` case of the behavioral abstraction
//! `BehAbs`: it runs the handler on a *generic* pre-state (opaque state
//! variables, opaque sender and payload) and returns every path with its
//! path condition, emitted symbolic actions and final symbolic state.
//!
//! The induction performed by `reflex-verify` is exactly the paper's (§5):
//! base case over [`Evaluator::eval_init`], inductive step over
//! `eval_exchange` for every case in
//! [`Program::exchange_cases`](reflex_ast::Program::exchange_cases).

use std::collections::BTreeMap;

use reflex_ast::{Cmd, Expr, Handler, Ty, UnOp};
use reflex_typeck::CheckedProgram;

use crate::action::SymAction;
use crate::comp::{CompOrigin, SymComp};
use crate::solver::Solver;
use crate::term::{SymCtx, SymKind, Term};

/// A symbolic program state: data variables and component variables in
/// scope.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SymState {
    /// Data-typed variables (state variables, parameters, call binders).
    pub data: BTreeMap<String, Term>,
    /// Component-typed variables (init binders, `sender`, spawn/lookup
    /// binders).
    pub comps: BTreeMap<String, SymComp>,
}

/// Provenance of one path-condition literal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CondKind {
    /// An `if` branch condition.
    Branch,
    /// A `lookup` predicate, asserted of the found component.
    LookupPred {
        /// The opaque component the lookup found.
        comp: SymComp,
    },
}

/// A `lookup` that took its `missing` branch on this path: no component of
/// `ctype` satisfied `pred` at that point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MissedLookup {
    /// Component type searched.
    pub ctype: String,
    /// Binder name used in the predicate.
    pub binder: String,
    /// The predicate expression (unevaluated; the captured `state` gives
    /// meaning to its free variables).
    pub pred: Expr,
    /// Symbolic state at the lookup point.
    pub state: SymState,
    /// The predicate evaluated against a hypothetical candidate component
    /// with opaque configuration (used by the non-interference analysis to
    /// decide whether the search was restricted to high components).
    pub pred_term: Term,
    /// The hypothetical candidate component `pred_term` refers to.
    pub candidate: SymComp,
    /// How many path-condition literals preceded this lookup.
    pub cond_index: usize,
}

/// One symbolic execution path through a command.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Path {
    /// Path condition: conjunction of `(boolean term, polarity)` literals.
    pub condition: Vec<(Term, bool)>,
    /// Provenance of each path-condition literal (parallel to
    /// [`Path::condition`]).
    pub cond_kinds: Vec<CondKind>,
    /// Actions emitted along the path, in chronological order.
    pub actions: Vec<SymAction>,
    /// Final symbolic state.
    pub state: SymState,
    /// Lookups that missed on this path.
    pub missed_lookups: Vec<MissedLookup>,
    /// Number of spawns performed (used to index [`CompOrigin::Spawned`]).
    pub spawn_count: usize,
    /// Number of successful lookups (used to index [`CompOrigin::Lookup`]).
    pub lookup_count: usize,
    /// Number of `broadcast` commands executed on this path. Non-zero
    /// counts mark the path as outside the automatable fragment (§7); the
    /// verifier refuses such programs.
    pub broadcast_count: usize,
}

impl Path {
    /// A path starting from `state` with empty condition and no actions.
    pub fn start(state: SymState) -> Path {
        Path {
            state,
            ..Path::default()
        }
    }

    /// A solver primed with this path's condition.
    pub fn solver(&self) -> Solver {
        Solver::with_assumptions(&self.condition)
    }
}

/// One case of the symbolic exchange relation.
#[derive(Debug, Clone)]
pub struct Exchange {
    /// Component type of the sender.
    pub ctype: String,
    /// Message type received.
    pub msg: String,
    /// The symbolic sender (opaque configuration).
    pub sender: SymComp,
    /// Payload parameter names and their opaque terms.
    pub params: Vec<(String, Term)>,
    /// The `Select` and `Recv` actions that precede the handler's own
    /// actions, in chronological order.
    pub prefix: Vec<SymAction>,
    /// All execution paths of the handler.
    pub paths: Vec<Path>,
    /// Whether the case has an explicitly declared handler.
    pub explicit: bool,
}

impl Exchange {
    /// All actions appended to the trace by this exchange on `path`, in
    /// chronological order: `Select`, `Recv`, then the handler's actions.
    pub fn appended_actions<'a>(&'a self, path: &'a Path) -> Vec<&'a SymAction> {
        self.prefix.iter().chain(path.actions.iter()).collect()
    }
}

/// Symbolic evaluator over a checked program.
#[derive(Debug, Clone, Copy)]
pub struct Evaluator<'p> {
    checked: &'p CheckedProgram,
    /// Whether to prune infeasible branches with the solver and collapse
    /// branches whose condition is entailed. This is one of the §6.4
    /// optimizations ("domain-specific reduction strategies"); disabling it
    /// only grows the path set, never changes soundness.
    pub prune: bool,
}

impl<'p> Evaluator<'p> {
    /// Creates an evaluator with pruning enabled.
    pub fn new(checked: &'p CheckedProgram) -> Evaluator<'p> {
        Evaluator {
            checked,
            prune: true,
        }
    }

    /// The checked program.
    pub fn checked(&self) -> &'p CheckedProgram {
        self.checked
    }

    /// Evaluates a data-typed expression to a term.
    ///
    /// Component-typed variables evaluate to their identity term, so `==`
    /// on components compares identities.
    pub fn eval_expr(&self, state: &SymState, e: &Expr) -> Term {
        match e {
            Expr::Lit(v) => Term::Lit(v.clone()),
            Expr::Var(x) => {
                if let Some(t) = state.data.get(x) {
                    t.clone()
                } else if let Some(c) = state.comps.get(x) {
                    c.id.clone()
                } else {
                    unreachable!("typeck guarantees `{x}` is in scope")
                }
            }
            Expr::Cfg(inner, field) => {
                let comp = self.eval_comp_expr(state, inner);
                let decl = self
                    .checked
                    .program()
                    .comp_type(&comp.ctype)
                    .expect("typeck: component type declared");
                let (idx, _) = decl
                    .config_field(field)
                    .expect("typeck: configuration field exists");
                comp.config[idx].clone()
            }
            Expr::Un(op, inner) => Term::un(*op, self.eval_expr(state, inner)),
            Expr::Bin(op, l, r) => {
                Term::bin(*op, self.eval_expr(state, l), self.eval_expr(state, r))
            }
        }
    }

    /// Resolves a component-typed expression to its symbolic component.
    ///
    /// Component-typed expressions are always variables (typeck enforces
    /// statically known component types, and no operator produces a
    /// component).
    pub fn eval_comp_expr(&self, state: &SymState, e: &Expr) -> SymComp {
        match e {
            Expr::Var(x) => state
                .comps
                .get(x)
                .unwrap_or_else(|| unreachable!("typeck guarantees component `{x}` in scope"))
                .clone(),
            other => {
                unreachable!("typeck guarantees component expressions are variables: {other:?}")
            }
        }
    }

    /// Evaluates a command from `start`, returning all resulting paths.
    pub fn eval_cmd(&self, ctx: &mut SymCtx, start: Path, cmd: &Cmd) -> Vec<Path> {
        match cmd {
            Cmd::Nop => vec![start],
            Cmd::Block(cs) => {
                let mut paths = vec![start];
                for c in cs {
                    let mut next = Vec::new();
                    for p in paths {
                        next.extend(self.eval_cmd(ctx, p, c));
                    }
                    paths = next;
                }
                paths
            }
            Cmd::Assign(x, e) => {
                let mut p = start;
                let t = self.eval_expr(&p.state, e);
                p.state.data.insert(x.clone(), t);
                vec![p]
            }
            Cmd::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let cond_term = self.eval_expr(&start.state, cond);
                match cond_term.as_bool() {
                    Some(true) => return self.eval_cmd(ctx, start, then_branch),
                    Some(false) => return self.eval_cmd(ctx, start, else_branch),
                    None => {}
                }
                if self.prune {
                    let solver = start.solver();
                    if solver.entails(&cond_term, true) {
                        return self.eval_cmd(ctx, start, then_branch);
                    }
                    if solver.entails(&cond_term, false) {
                        return self.eval_cmd(ctx, start, else_branch);
                    }
                }
                let mut out = Vec::new();
                let mut then_path = start.clone();
                then_path.condition.push((cond_term.clone(), true));
                then_path.cond_kinds.push(CondKind::Branch);
                if !(self.prune && then_path.solver().is_unsat()) {
                    out.extend(self.eval_cmd(ctx, then_path, then_branch));
                }
                let mut else_path = start;
                else_path.condition.push((cond_term, false));
                else_path.cond_kinds.push(CondKind::Branch);
                if !(self.prune && else_path.solver().is_unsat()) {
                    out.extend(self.eval_cmd(ctx, else_path, else_branch));
                }
                out
            }
            Cmd::Send { target, msg, args } => {
                let mut p = start;
                let comp = self.eval_comp_expr(&p.state, target);
                let terms = args.iter().map(|a| self.eval_expr(&p.state, a)).collect();
                p.actions.push(SymAction::Send {
                    comp,
                    msg: msg.clone(),
                    args: terms,
                });
                vec![p]
            }
            Cmd::Spawn {
                binder,
                ctype,
                config,
            } => {
                let mut p = start;
                let terms: Vec<Term> = config.iter().map(|a| self.eval_expr(&p.state, a)).collect();
                let comp = SymComp {
                    ctype: ctype.clone(),
                    config: terms,
                    id: ctx.fresh_term(Ty::Num, SymKind::CompId),
                    origin: CompOrigin::Spawned {
                        index: p.spawn_count,
                    },
                };
                p.spawn_count += 1;
                p.actions.push(SymAction::Spawn { comp: comp.clone() });
                p.state.comps.insert(binder.clone(), comp);
                vec![p]
            }
            Cmd::Call { binder, func, args } => {
                let mut p = start;
                let terms: Vec<Term> = args.iter().map(|a| self.eval_expr(&p.state, a)).collect();
                let result = ctx.fresh_term(Ty::Str, SymKind::CallResult(func.clone()));
                p.actions.push(SymAction::Call {
                    func: func.clone(),
                    args: terms,
                    result: result.clone(),
                });
                p.state.data.insert(binder.clone(), result);
                vec![p]
            }
            Cmd::Broadcast {
                ctype,
                binder,
                pred,
                msg,
                args,
            } => {
                // The §7 design lesson: a broadcast emits an *unbounded*
                // number of sends, which total symbolic evaluation cannot
                // represent. We record a single summary send to an opaque
                // recipient and count the broadcast; the verifier refuses
                // programs whose handlers contain broadcasts, so this
                // under-approximation never reaches a certificate.
                let mut p = start;
                let decl = self
                    .checked
                    .program()
                    .comp_type(ctype)
                    .expect("typeck: component type declared");
                let comp = SymComp {
                    ctype: ctype.clone(),
                    config: decl
                        .config
                        .iter()
                        .enumerate()
                        .map(|(i, (_, ty))| ctx.fresh_term(*ty, SymKind::LookupCfg(i)))
                        .collect(),
                    id: ctx.fresh_term(Ty::Num, SymKind::CompId),
                    origin: CompOrigin::Lookup {
                        index: p.lookup_count,
                    },
                };
                p.lookup_count += 1;
                let mut probe_state = p.state.clone();
                probe_state.comps.insert(binder.clone(), comp.clone());
                let _pred_term = self.eval_expr(&probe_state, pred);
                let terms: Vec<Term> = args
                    .iter()
                    .map(|a| self.eval_expr(&probe_state, a))
                    .collect();
                p.actions.push(SymAction::Send {
                    comp,
                    msg: msg.clone(),
                    args: terms,
                });
                p.broadcast_count += 1;
                vec![p]
            }
            Cmd::Lookup {
                ctype,
                binder,
                pred,
                found,
                missing,
            } => {
                let mut out = Vec::new();

                // Found branch: an opaque component of `ctype` whose
                // configuration satisfies the predicate.
                let decl = self
                    .checked
                    .program()
                    .comp_type(ctype)
                    .expect("typeck: component type declared");
                let mut found_path = start.clone();
                let comp = SymComp {
                    ctype: ctype.clone(),
                    config: decl
                        .config
                        .iter()
                        .enumerate()
                        .map(|(i, (_, ty))| ctx.fresh_term(*ty, SymKind::LookupCfg(i)))
                        .collect(),
                    id: ctx.fresh_term(Ty::Num, SymKind::CompId),
                    origin: CompOrigin::Lookup {
                        index: found_path.lookup_count,
                    },
                };
                found_path.lookup_count += 1;
                found_path.state.comps.insert(binder.clone(), comp.clone());
                let pred_term = self.eval_expr(&found_path.state, pred);
                match pred_term.as_bool() {
                    Some(false) => {} // predicate can never hold: no found branch
                    Some(true) => out.extend(self.eval_cmd(ctx, found_path, found)),
                    None => {
                        found_path.condition.push((pred_term, true));
                        found_path
                            .cond_kinds
                            .push(CondKind::LookupPred { comp: comp.clone() });
                        if !(self.prune && found_path.solver().is_unsat()) {
                            out.extend(self.eval_cmd(ctx, found_path, found));
                        }
                    }
                }

                // Missing branch: no such component exists. Record the
                // predicate over a hypothetical candidate so downstream
                // analyses can reason about what was searched for.
                let mut missing_path = start;
                let candidate = SymComp {
                    ctype: ctype.clone(),
                    config: decl
                        .config
                        .iter()
                        .enumerate()
                        .map(|(i, (_, ty))| ctx.fresh_term(*ty, SymKind::LookupCfg(i)))
                        .collect(),
                    id: ctx.fresh_term(Ty::Num, SymKind::CompId),
                    origin: CompOrigin::Lookup {
                        index: missing_path.lookup_count,
                    },
                };
                let mut probe_state = missing_path.state.clone();
                probe_state.comps.insert(binder.clone(), candidate.clone());
                let missed_pred_term = self.eval_expr(&probe_state, pred);
                missing_path.missed_lookups.push(MissedLookup {
                    ctype: ctype.clone(),
                    binder: binder.clone(),
                    pred: pred.clone(),
                    state: missing_path.state.clone(),
                    pred_term: missed_pred_term,
                    candidate,
                    cond_index: missing_path.condition.len(),
                });
                out.extend(self.eval_cmd(ctx, missing_path, missing));
                out
            }
        }
    }

    /// Evaluates the init section from the concrete initial state.
    ///
    /// The returned paths' actions are the init-time `Spawn`/`Send`/`Call`
    /// actions; their final states are the possible post-init states, which
    /// are the base cases of the `BehAbs` induction.
    pub fn eval_init(&self, ctx: &mut SymCtx) -> Vec<Path> {
        let mut state = SymState::default();
        for (name, value) in self.checked.state_initial_values() {
            state.data.insert(name, Term::Lit(value));
        }
        self.eval_cmd(ctx, Path::start(state), &self.checked.program().init)
    }

    /// Builds the *generic* pre-state for the inductive step from a
    /// post-init state: mutable state variables become fresh opaque values
    /// (they may have been modified by earlier exchanges), while immutable
    /// globals — component handles and init `call` results — keep their
    /// init-time values (they cannot change).
    pub fn generic_pre_state(&self, ctx: &mut SymCtx, init_state: &SymState) -> SymState {
        let mut pre = SymState::default();
        for (name, term) in &init_state.data {
            let fresh = match self.checked.global(name) {
                Some(info) if info.mutable => {
                    ctx.fresh_term(info.ty, SymKind::StateVar(name.clone()))
                }
                _ => term.clone(),
            };
            pre.data.insert(name.clone(), fresh);
        }
        for (name, comp) in &init_state.comps {
            let mut c = comp.clone();
            c.origin = CompOrigin::Init {
                binder: name.clone(),
            };
            pre.comps.insert(name.clone(), c);
        }
        pre
    }

    /// Evaluates one case of the exchange relation: a component of type
    /// `ctype` sends a message of type `msg` with arbitrary payload to the
    /// kernel in pre-state `pre`.
    pub fn eval_exchange(
        &self,
        ctx: &mut SymCtx,
        pre: &SymState,
        ctype: &str,
        msg: &str,
    ) -> Exchange {
        let program = self.checked.program();
        let comp_decl = program.comp_type(ctype).expect("component type declared");
        let msg_decl = program.msg_decl(msg).expect("message type declared");
        let handler = program.handler(ctype, msg);

        let sender = SymComp {
            ctype: ctype.to_owned(),
            config: comp_decl
                .config
                .iter()
                .enumerate()
                .map(|(i, (_, ty))| ctx.fresh_term(*ty, SymKind::SenderCfg(i)))
                .collect(),
            id: ctx.fresh_term(Ty::Num, SymKind::CompId),
            origin: CompOrigin::Sender,
        };

        let param_names: Vec<String> = match handler {
            Some(h) => h.params.clone(),
            None => (0..msg_decl.payload.len())
                .map(|i| format!("_p{i}"))
                .collect(),
        };
        let params: Vec<(String, Term)> = param_names
            .iter()
            .zip(&msg_decl.payload)
            .map(|(name, ty)| {
                (
                    name.clone(),
                    ctx.fresh_term(*ty, SymKind::Param(name.clone())),
                )
            })
            .collect();

        let mut state = pre.clone();
        state
            .comps
            .insert(Handler::SENDER.to_owned(), sender.clone());
        for (name, term) in &params {
            state.data.insert(name.clone(), term.clone());
        }

        let prefix = vec![
            SymAction::Select {
                comp: sender.clone(),
            },
            SymAction::Recv {
                comp: sender.clone(),
                msg: msg.to_owned(),
                args: params.iter().map(|(_, t)| t.clone()).collect(),
            },
        ];

        static NOP: Cmd = Cmd::Nop;
        let body = handler.map(|h| &h.body).unwrap_or(&NOP);
        let paths = self.eval_cmd(ctx, Path::start(state), body);

        Exchange {
            ctype: ctype.to_owned(),
            msg: msg.to_owned(),
            sender,
            params,
            prefix,
            paths,
            explicit: handler.is_some(),
        }
    }

    /// Negation helper: evaluates `!e` (used for recording branch guards).
    pub fn eval_not(&self, state: &SymState, e: &Expr) -> Term {
        Term::un(UnOp::Not, self.eval_expr(state, e))
    }
}
