//! Symbolic trace actions and their unification with action patterns.

use std::collections::BTreeMap;
use std::fmt;

use reflex_ast::{ActionPat, BinOp, CompPat, PatField, Value};

use crate::comp::SymComp;
use crate::term::Term;

/// A symbolic trace action: the symbolic counterpart of
/// `reflex_trace::Action`, emitted by symbolic evaluation of a handler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymAction {
    /// The kernel selected a component.
    Select {
        /// The selected component.
        comp: SymComp,
    },
    /// The kernel received a message.
    Recv {
        /// The sending component.
        comp: SymComp,
        /// Message type.
        msg: String,
        /// Payload terms.
        args: Vec<Term>,
    },
    /// The kernel sent a message.
    Send {
        /// The recipient component.
        comp: SymComp,
        /// Message type.
        msg: String,
        /// Payload terms.
        args: Vec<Term>,
    },
    /// The kernel spawned a component.
    Spawn {
        /// The new component.
        comp: SymComp,
    },
    /// The kernel invoked an external function.
    Call {
        /// Function name.
        func: String,
        /// Argument terms.
        args: Vec<Term>,
        /// Result term (opaque world input).
        result: Term,
    },
}

impl SymAction {
    /// The component involved, if any.
    pub fn comp(&self) -> Option<&SymComp> {
        match self {
            SymAction::Select { comp }
            | SymAction::Recv { comp, .. }
            | SymAction::Send { comp, .. }
            | SymAction::Spawn { comp } => Some(comp),
            SymAction::Call { .. } => None,
        }
    }

    /// Short tag naming the action kind.
    pub fn kind(&self) -> &'static str {
        match self {
            SymAction::Select { .. } => "Select",
            SymAction::Recv { .. } => "Recv",
            SymAction::Send { .. } => "Send",
            SymAction::Spawn { .. } => "Spawn",
            SymAction::Call { .. } => "Call",
        }
    }
}

impl fmt::Display for SymAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn args(f: &mut fmt::Formatter<'_>, ts: &[Term]) -> fmt::Result {
            for (i, t) in ts.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{t}")?;
            }
            Ok(())
        }
        match self {
            SymAction::Select { comp } => write!(f, "Select({comp})"),
            SymAction::Recv { comp, msg, args: a } => {
                write!(f, "Recv({comp}, {msg}(")?;
                args(f, a)?;
                f.write_str("))")
            }
            SymAction::Send { comp, msg, args: a } => {
                write!(f, "Send({comp}, {msg}(")?;
                args(f, a)?;
                f.write_str("))")
            }
            SymAction::Spawn { comp } => write!(f, "Spawn({comp})"),
            SymAction::Call {
                func,
                args: a,
                result,
            } => {
                write!(f, "Call({func}(")?;
                args(f, a)?;
                write!(f, ") = {result})")
            }
        }
    }
}

/// A substitution from property variables to symbolic terms.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SymBindings {
    map: BTreeMap<String, Term>,
}

impl SymBindings {
    /// The empty substitution.
    pub fn new() -> SymBindings {
        SymBindings::default()
    }

    /// The term bound to `var`.
    pub fn get(&self, var: &str) -> Option<&Term> {
        self.map.get(var)
    }

    /// Binds `var` to `term` (caller ensures freshness or handles the
    /// returned previous binding).
    pub fn insert(&mut self, var: impl Into<String>, term: Term) -> Option<Term> {
        self.map.insert(var.into(), term)
    }

    /// Iterates over bindings in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Term)> {
        self.map.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no variables are bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl fmt::Display for SymBindings {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{")?;
        for (i, (k, v)) in self.map.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{k} := {v}")?;
        }
        f.write_str("}")
    }
}

/// The result of unifying a pattern with a symbolic action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Unify {
    /// The pattern can never match the action (kind, message type or
    /// component type differ, or literal fields are definitely unequal).
    Never,
    /// The pattern matches exactly when `conditions` hold, with property
    /// variables bound as in `bindings`. Empty `conditions` means a
    /// definite match.
    Match {
        /// Extended substitution.
        bindings: SymBindings,
        /// Equality side-conditions (term, polarity) that must hold.
        conditions: Vec<(Term, bool)>,
    },
}

impl Unify {
    /// Whether this is a definite (unconditional) match.
    pub fn is_definite(&self) -> bool {
        matches!(self, Unify::Match { conditions, .. } if conditions.is_empty())
    }
}

fn unify_field(
    pat: &PatField,
    term: &Term,
    bindings: &mut SymBindings,
    conditions: &mut Vec<(Term, bool)>,
) -> bool {
    match pat {
        PatField::Any => true,
        PatField::Lit(v) => match term {
            Term::Lit(actual) => actual == v,
            _ => {
                conditions.push((
                    Term::bin(BinOp::Eq, term.clone(), Term::Lit(v.clone())),
                    true,
                ));
                true
            }
        },
        PatField::Var(x) => match bindings.get(x).cloned() {
            None => {
                bindings.insert(x.clone(), term.clone());
                true
            }
            Some(prev) => {
                if prev == *term {
                    true
                } else if let (Term::Lit(a), Term::Lit(b)) = (&prev, term) {
                    a == b
                } else {
                    conditions.push((Term::bin(BinOp::Eq, prev, term.clone()), true));
                    true
                }
            }
        },
    }
}

fn unify_comp(
    pat: &CompPat,
    comp: &SymComp,
    bindings: &mut SymBindings,
    conditions: &mut Vec<(Term, bool)>,
) -> bool {
    if let Some(ct) = &pat.ctype {
        if *ct != comp.ctype {
            return false;
        }
    }
    if let Some(fields) = &pat.config {
        if fields.len() != comp.config.len() {
            return false;
        }
        for (f, t) in fields.iter().zip(&comp.config) {
            if !unify_field(f, t, bindings, conditions) {
                return false;
            }
        }
    }
    true
}

/// Unifies an action pattern with a symbolic action under a partial
/// substitution.
///
/// Returns [`Unify::Never`] when the pattern cannot match regardless of how
/// symbolic values are instantiated, and otherwise the minimal extension of
/// `bindings` plus the equality side-conditions under which the match
/// occurs. The caller decides what to do with conditional matches (the
/// prover case-splits on them; the certificate checker re-derives them).
pub fn unify_action(pat: &ActionPat, action: &SymAction, bindings: &SymBindings) -> Unify {
    let mut b = bindings.clone();
    let mut conditions = Vec::new();
    let ok = match (pat, action) {
        (ActionPat::Select { comp: cp }, SymAction::Select { comp }) => {
            unify_comp(cp, comp, &mut b, &mut conditions)
        }
        (ActionPat::Spawn { comp: cp }, SymAction::Spawn { comp }) => {
            unify_comp(cp, comp, &mut b, &mut conditions)
        }
        (
            ActionPat::Recv {
                comp: cp,
                msg,
                args,
            },
            SymAction::Recv {
                comp,
                msg: m,
                args: ts,
            },
        )
        | (
            ActionPat::Send {
                comp: cp,
                msg,
                args,
            },
            SymAction::Send {
                comp,
                msg: m,
                args: ts,
            },
        ) => {
            msg == m
                && args.len() == ts.len()
                && unify_comp(cp, comp, &mut b, &mut conditions)
                && args
                    .iter()
                    .zip(ts)
                    .all(|(p, t)| unify_field(p, t, &mut b, &mut conditions))
        }
        (
            ActionPat::Call { func, args, result },
            SymAction::Call {
                func: f,
                args: ts,
                result: r,
            },
        ) => {
            func == f
                && match args {
                    None => true,
                    Some(fields) => {
                        fields.len() == ts.len()
                            && fields
                                .iter()
                                .zip(ts)
                                .all(|(p, t)| unify_field(p, t, &mut b, &mut conditions))
                    }
                }
                && unify_field(result, r, &mut b, &mut conditions)
        }
        _ => false,
    };
    if ok {
        Unify::Match {
            bindings: b,
            conditions,
        }
    } else {
        Unify::Never
    }
}

/// Substitutes bound property variables into `value`-level pattern checks:
/// returns the literal a variable is pinned to, if its bound term is a
/// literal.
pub fn binding_literal(bindings: &SymBindings, var: &str) -> Option<Value> {
    match bindings.get(var) {
        Some(Term::Lit(v)) => Some(v.clone()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comp::CompOrigin;
    use crate::term::{SymCtx, SymKind};
    use reflex_ast::Ty;

    fn sym_comp(ctx: &mut SymCtx, ctype: &str, config: Vec<Term>) -> SymComp {
        SymComp {
            ctype: ctype.into(),
            config,
            id: ctx.fresh_term(Ty::Num, SymKind::CompId),
            origin: CompOrigin::Sender,
        }
    }

    #[test]
    fn definite_match_on_known_types() {
        let mut ctx = SymCtx::new();
        let user = ctx.fresh_term(Ty::Str, SymKind::Param("user".into()));
        let term = sym_comp(&mut ctx, "Terminal", vec![]);
        let act = SymAction::Send {
            comp: term,
            msg: "ReqTerm".into(),
            args: vec![user.clone()],
        };
        let pat = ActionPat::Send {
            comp: CompPat::of_type("Terminal"),
            msg: "ReqTerm".into(),
            args: vec![PatField::var("u")],
        };
        match unify_action(&pat, &act, &SymBindings::new()) {
            Unify::Match {
                bindings,
                conditions,
            } => {
                assert!(conditions.is_empty());
                assert_eq!(bindings.get("u"), Some(&user));
            }
            other => panic!("expected match, got {other:?}"),
        }
    }

    #[test]
    fn never_on_kind_msg_or_ctype_mismatch() {
        let mut ctx = SymCtx::new();
        let c = sym_comp(&mut ctx, "Password", vec![]);
        let act = SymAction::Send {
            comp: c.clone(),
            msg: "Auth".into(),
            args: vec![],
        };
        let recv_pat = ActionPat::Recv {
            comp: CompPat::of_type("Password"),
            msg: "Auth".into(),
            args: vec![],
        };
        assert_eq!(
            unify_action(&recv_pat, &act, &SymBindings::new()),
            Unify::Never
        );
        let wrong_type = ActionPat::Send {
            comp: CompPat::of_type("Terminal"),
            msg: "Auth".into(),
            args: vec![],
        };
        assert_eq!(
            unify_action(&wrong_type, &act, &SymBindings::new()),
            Unify::Never
        );
        let wrong_msg = ActionPat::Send {
            comp: CompPat::of_type("Password"),
            msg: "Nope".into(),
            args: vec![],
        };
        assert_eq!(
            unify_action(&wrong_msg, &act, &SymBindings::new()),
            Unify::Never
        );
    }

    #[test]
    fn literal_fields_produce_conditions_or_never() {
        let mut ctx = SymCtx::new();
        let n = ctx.fresh_term(Ty::Num, SymKind::Param("n".into()));
        let c = sym_comp(&mut ctx, "P", vec![]);
        let pat = ActionPat::Send {
            comp: CompPat::of_type("P"),
            msg: "M".into(),
            args: vec![PatField::lit(1i64)],
        };
        // Symbolic argument: conditional match.
        let act = SymAction::Send {
            comp: c.clone(),
            msg: "M".into(),
            args: vec![n.clone()],
        };
        match unify_action(&pat, &act, &SymBindings::new()) {
            Unify::Match { conditions, .. } => {
                assert_eq!(conditions.len(), 1);
                assert_eq!(
                    conditions[0],
                    (Term::bin(BinOp::Eq, n.clone(), Term::lit(1i64)), true)
                );
            }
            other => panic!("expected conditional match, got {other:?}"),
        }
        // Concrete unequal argument: never.
        let act2 = SymAction::Send {
            comp: c,
            msg: "M".into(),
            args: vec![Term::lit(2i64)],
        };
        assert_eq!(unify_action(&pat, &act2, &SymBindings::new()), Unify::Never);
    }

    #[test]
    fn repeated_variables_generate_equalities() {
        let mut ctx = SymCtx::new();
        let a = ctx.fresh_term(Ty::Str, SymKind::Fresh);
        let b = ctx.fresh_term(Ty::Str, SymKind::Fresh);
        let c = sym_comp(&mut ctx, "P", vec![]);
        let pat = ActionPat::Send {
            comp: CompPat::of_type("P"),
            msg: "M".into(),
            args: vec![PatField::var("x"), PatField::var("x")],
        };
        let act = SymAction::Send {
            comp: c,
            msg: "M".into(),
            args: vec![a.clone(), b.clone()],
        };
        match unify_action(&pat, &act, &SymBindings::new()) {
            Unify::Match { conditions, .. } => {
                assert_eq!(conditions, vec![(Term::bin(BinOp::Eq, a, b), true)]);
            }
            other => panic!("expected conditional match, got {other:?}"),
        }
    }

    #[test]
    fn prebound_variable_conflicts() {
        let mut ctx = SymCtx::new();
        let c = sym_comp(&mut ctx, "P", vec![Term::lit("a.org")]);
        let pat = ActionPat::Spawn {
            comp: CompPat::with_config("P", [PatField::var("d")]),
        };
        let mut pre = SymBindings::new();
        pre.insert("d", Term::lit("b.org"));
        assert_eq!(
            unify_action(&pat, &SymAction::Spawn { comp: c }, &pre),
            Unify::Never
        );
    }
}
