//! Hash-consed term handles: the thread-safe global term interner.
//!
//! Every compound [`Term`] node ([`Term::Un`] / [`Term::Bin`]) holds its
//! children as [`TermRef`]s, and every `TermRef` is produced by
//! [`TermRef::new`], which uniquifies the node in a global sharded table.
//! This gives the **uniqueness invariant**: two `TermRef`s are structurally
//! equal if and only if they point at the same allocation. Consequently
//!
//! - equality of handles is a pointer comparison (`Arc::ptr_eq`) — sound
//!   *and complete*, because structurally equal nodes are never duplicated;
//! - hashing is a copy of a structural hash cached at intern time (stable
//!   within a process, independent of allocation addresses, so hash-map
//!   iteration orders cannot leak nondeterminism into proofs);
//! - ordering short-circuits on pointer equality and otherwise falls back
//!   to the structural [`Ord`] on [`Term`], preserving the exact total
//!   order the canonicalization passes relied on before interning.
//!
//! Shared subtrees also make deep clones free: cloning a `TermRef` is an
//! `Arc` refcount bump.

use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

use crate::term::Term;

const SHARD_COUNT: usize = 64;

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

/// Read-mostly sharded table: the dominant path (re-interning a node that
/// already exists) takes only a read lock; misses upgrade to a write lock
/// with a double-check.
struct Interner {
    shards: Vec<RwLock<HashMap<Term, TermRef>>>,
}

fn interner() -> &'static Interner {
    static INTERNER: OnceLock<Interner> = OnceLock::new();
    INTERNER.get_or_init(|| Interner {
        shards: (0..SHARD_COUNT)
            .map(|_| RwLock::new(HashMap::new()))
            .collect(),
    })
}

/// A handle to an interned (hash-consed) [`Term`] node.
///
/// Dereferences to [`Term`]; see the module docs for the equality, hashing
/// and ordering contract.
pub struct TermRef {
    node: Arc<Term>,
    /// Structural hash, computed once at intern time.
    hash: u64,
}

impl TermRef {
    /// Interns `node`, returning the canonical handle for its structure.
    ///
    /// `node`'s children are already interned (they are `TermRef`s), so a
    /// shallow hash + shallow equality check suffices to uniquify it.
    pub fn new(node: Term) -> TermRef {
        let hash = stable_term_hash(&node);
        // Fast path: the task-local scratch cache (see `arena.rs`) answers
        // repeats without touching the global table. Strictly
        // write-through, so it can only return the canonical handle.
        if let Some(existing) = crate::arena::lookup(hash, &node) {
            HITS.fetch_add(1, Ordering::Relaxed);
            crate::stats::note_intern_hit();
            return existing;
        }
        let shard = &interner().shards[(hash as usize) % SHARD_COUNT];
        if let Some(existing) = shard.read().expect("interner shard poisoned").get(&node) {
            HITS.fetch_add(1, Ordering::Relaxed);
            crate::stats::note_intern_hit();
            crate::arena::record(hash, existing);
            return existing.clone();
        }
        let mut map = shard.write().expect("interner shard poisoned");
        // Double-check: another thread may have interned the node between
        // the read unlock and the write lock.
        if let Some(existing) = map.get(&node) {
            HITS.fetch_add(1, Ordering::Relaxed);
            crate::stats::note_intern_hit();
            crate::arena::record(hash, existing);
            return existing.clone();
        }
        MISSES.fetch_add(1, Ordering::Relaxed);
        crate::stats::note_intern_miss();
        let handle = TermRef {
            node: Arc::new(node.clone()),
            hash,
        };
        map.insert(node, handle.clone());
        drop(map);
        crate::arena::record(hash, &handle);
        handle
    }

    /// The underlying term node.
    pub fn as_term(&self) -> &Term {
        &self.node
    }

    /// The cached structural hash.
    pub fn cached_hash(&self) -> u64 {
        self.hash
    }
}

impl Clone for TermRef {
    fn clone(&self) -> Self {
        TermRef {
            node: Arc::clone(&self.node),
            hash: self.hash,
        }
    }
}

impl Deref for TermRef {
    type Target = Term;
    fn deref(&self) -> &Term {
        &self.node
    }
}

impl PartialEq for TermRef {
    fn eq(&self, other: &Self) -> bool {
        // Sound and complete by the uniqueness invariant.
        Arc::ptr_eq(&self.node, &other.node)
    }
}

impl Eq for TermRef {}

impl Hash for TermRef {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

impl PartialOrd for TermRef {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TermRef {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if Arc::ptr_eq(&self.node, &other.node) {
            std::cmp::Ordering::Equal
        } else {
            // Structural, so orderings (canonical operand order, BTreeMap
            // iteration) are deterministic across runs and thread counts.
            self.node.cmp(&other.node)
        }
    }
}

impl fmt::Debug for TermRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.node.fmt(f)
    }
}

impl fmt::Display for TermRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&*self.node, f)
    }
}

/// Interner occupancy and hit statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InternStats {
    /// Interned (distinct) nodes currently in the table.
    pub nodes: u64,
    /// `TermRef::new` calls answered from the table.
    pub hits: u64,
    /// `TermRef::new` calls that allocated a new node.
    pub misses: u64,
}

/// A snapshot of the global interner statistics.
///
/// Process-global: counts every session's work since process start. For
/// per-session hit/miss counts, scope a [`crate::SymSessionStats`].
pub fn intern_stats() -> InternStats {
    let nodes = interner()
        .shards
        .iter()
        .map(|s| s.read().expect("interner shard poisoned").len() as u64)
        .sum();
    InternStats {
        nodes,
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
    }
}

/// A deterministic (FNV-1a, little-endian) hasher: the cached structural
/// hashes must not depend on allocation addresses or `RandomState` keys.
pub(crate) struct StableHasher(u64);

impl StableHasher {
    pub(crate) fn new() -> Self {
        StableHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for StableHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_u64(&mut self, i: u64) {
        self.write(&i.to_le_bytes());
    }

    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }
}

/// The stable structural hash of a term node (children contribute their
/// cached hashes, so this is O(node), not O(tree)).
pub(crate) fn stable_term_hash(node: &Term) -> u64 {
    let mut hasher = StableHasher::new();
    node.hash(&mut hasher);
    hasher.finish()
}

/// Folds one `(term, polarity)` assertion into a rolling FNV fingerprint
/// of a solver log — the batch-FNV-over-cached-hashes step that lets the
/// entailment memo key a query in O(1) (see [`crate::memo`]).
pub(crate) fn fp_fold(fp: u64, term: &Term, polarity: bool) -> u64 {
    let mut hasher = StableHasher(fp ^ 0x9e37_79b9_7f4a_7c15);
    hasher.write_u64(stable_term_hash(term));
    hasher.write(&[u8::from(polarity)]);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{SymCtx, SymKind, Term};
    use reflex_ast::{BinOp, Ty};

    #[test]
    fn structurally_equal_terms_share_one_allocation() {
        let mut ctx = SymCtx::new();
        let x = ctx.fresh_term(Ty::Num, SymKind::Fresh);
        let a = Term::bin(BinOp::Add, x.clone(), Term::lit(1i64));
        let b = Term::bin(BinOp::Add, x.clone(), Term::lit(1i64));
        let (Term::Bin(_, al, ar), Term::Bin(_, bl, br)) = (&a, &b) else {
            panic!("expected Bin");
        };
        assert!(al == bl && ar == br, "children are pointer-equal handles");
        assert_eq!(al.cached_hash(), bl.cached_hash());
    }

    #[test]
    fn handle_order_matches_structural_order() {
        let mut ctx = SymCtx::new();
        let x = ctx.fresh_term(Ty::Num, SymKind::Fresh);
        let y = ctx.fresh_term(Ty::Num, SymKind::Fresh);
        let xr = TermRef::new(x.clone());
        let yr = TermRef::new(y.clone());
        assert_eq!(xr.cmp(&yr), x.cmp(&y));
        assert_eq!(xr.cmp(&xr.clone()), std::cmp::Ordering::Equal);
    }

    #[test]
    fn threads_intern_to_the_same_handle() {
        let handles: Vec<TermRef> = std::thread::scope(|s| {
            (0..4)
                .map(|_| {
                    s.spawn(|| {
                        let mut ctx = SymCtx::new();
                        let x = ctx.fresh_term(Ty::Num, SymKind::Fresh);
                        let Term::Bin(_, l, _) = Term::bin(BinOp::Add, x, Term::lit(41i64)) else {
                            panic!("expected Bin");
                        };
                        l
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|j| j.join().expect("thread"))
                .collect()
        });
        for h in &handles[1..] {
            assert!(*h == handles[0]);
        }
    }
}
