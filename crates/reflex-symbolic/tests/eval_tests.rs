//! Unit tests for the symbolic evaluator: path enumeration, branch
//! collapse, lookup semantics and the exchange construction.

use reflex_ast::build::ProgramBuilder;
use reflex_ast::{Expr, Ty};
use reflex_symbolic::{CondKind, Evaluator, SymAction, SymCtx, SymKind, Term};
use reflex_typeck::CheckedProgram;

fn checked(b: ProgramBuilder) -> CheckedProgram {
    reflex_typeck::check(&b.finish()).expect("well-formed")
}

fn base() -> ProgramBuilder {
    ProgramBuilder::new("t")
        .component("C", "c.py", [])
        .component("K", "k.py", [("tag", Ty::Str)])
        .message("M", [Ty::Num])
        .message("N", [Ty::Str])
        .state("x", Ty::Num, Expr::lit(0i64))
        .init_spawn("c0", "C", [])
}

#[test]
fn literal_branches_do_not_split() {
    let c = checked(base().handler("C", "M", ["n"], |h| {
        h.if_else(
            Expr::lit(true),
            |t| {
                t.assign("x", Expr::lit(1i64));
            },
            |e| {
                e.assign("x", Expr::lit(2i64));
            },
        );
    }));
    let eval = Evaluator::new(&c);
    let mut ctx = SymCtx::new();
    let init = eval.eval_init(&mut ctx);
    let pre = eval.generic_pre_state(&mut ctx, &init[0].state);
    let ex = eval.eval_exchange(&mut ctx, &pre, "C", "M");
    assert_eq!(ex.paths.len(), 1);
    assert_eq!(ex.paths[0].state.data["x"], Term::lit(1i64));
}

#[test]
fn entailed_branches_collapse_with_pruning() {
    // Second branch repeats the first condition: with pruning the inner
    // split is collapsed, leaving exactly two paths instead of four.
    let body = |h: &mut reflex_ast::build::CmdBuilder| {
        h.if_else(
            Expr::var("n").lt(Expr::lit(0i64)),
            |t| {
                t.when(Expr::var("n").lt(Expr::lit(0i64)), |tt| {
                    tt.assign("x", Expr::lit(1i64));
                });
            },
            |e| {
                e.when(Expr::var("n").lt(Expr::lit(0i64)), |ee| {
                    ee.assign("x", Expr::lit(2i64));
                });
            },
        );
    };
    let c = checked(base().handler("C", "M", ["n"], body));
    let mut eval = Evaluator::new(&c);
    let mut ctx = SymCtx::new();
    let init = eval.eval_init(&mut ctx);
    let pre = eval.generic_pre_state(&mut ctx, &init[0].state);
    assert_eq!(eval.eval_exchange(&mut ctx, &pre, "C", "M").paths.len(), 2);

    eval.prune = false;
    // Without pruning the inner (infeasible) splits stay: 4 paths, one of
    // which is contradictory — kept but harmless.
    let n = eval.eval_exchange(&mut ctx, &pre, "C", "M").paths.len();
    assert_eq!(n, 4);
}

#[test]
fn lookup_produces_found_and_missing_paths_with_metadata() {
    let c = checked(base().handler("C", "N", ["s"], |h| {
        h.lookup(
            "K",
            "k",
            Expr::var("k").cfg("tag").eq(Expr::var("s")),
            |f| {
                f.send(Expr::var("k"), "N", [Expr::var("s")]);
            },
            |m| {
                m.spawn("fresh", "K", [Expr::var("s")]);
            },
        );
    }));
    let eval = Evaluator::new(&c);
    let mut ctx = SymCtx::new();
    let init = eval.eval_init(&mut ctx);
    let pre = eval.generic_pre_state(&mut ctx, &init[0].state);
    let ex = eval.eval_exchange(&mut ctx, &pre, "C", "N");
    assert_eq!(ex.paths.len(), 2);

    // Found path: one pred condition tagged as a lookup, one send to the
    // opaque component.
    let found = &ex.paths[0];
    assert_eq!(found.condition.len(), 1);
    assert!(matches!(found.cond_kinds[0], CondKind::LookupPred { .. }));
    assert!(matches!(&found.actions[0], SymAction::Send { comp, .. } if comp.ctype == "K"));
    assert!(found.missed_lookups.is_empty());

    // Missing path: no condition, a recorded missed lookup, and the spawn.
    let missing = &ex.paths[1];
    assert!(missing.condition.is_empty());
    assert_eq!(missing.missed_lookups.len(), 1);
    assert_eq!(missing.missed_lookups[0].ctype, "K");
    assert!(matches!(&missing.actions[0], SymAction::Spawn { comp } if comp.ctype == "K"));
}

#[test]
fn exchange_prefix_and_params_are_wired() {
    let c = checked(base().handler("C", "M", ["n"], |h| {
        h.assign("x", Expr::var("n"));
    }));
    let eval = Evaluator::new(&c);
    let mut ctx = SymCtx::new();
    let init = eval.eval_init(&mut ctx);
    let pre = eval.generic_pre_state(&mut ctx, &init[0].state);
    let ex = eval.eval_exchange(&mut ctx, &pre, "C", "M");
    assert!(ex.explicit);
    assert_eq!(ex.prefix.len(), 2);
    assert!(matches!(&ex.prefix[0], SymAction::Select { comp } if comp.ctype == "C"));
    let SymAction::Recv { msg, args, .. } = &ex.prefix[1] else {
        panic!("prefix[1] is Recv");
    };
    assert_eq!(msg, "M");
    assert_eq!(args.len(), 1);
    // The post-state x is exactly the payload parameter.
    assert_eq!(ex.paths[0].state.data["x"], ex.params[0].1);
    // Appended actions = prefix + handler actions.
    assert_eq!(ex.appended_actions(&ex.paths[0]).len(), 2);
}

#[test]
fn implicit_cases_are_silent_single_paths() {
    let c = checked(base());
    let eval = Evaluator::new(&c);
    let mut ctx = SymCtx::new();
    let init = eval.eval_init(&mut ctx);
    let pre = eval.generic_pre_state(&mut ctx, &init[0].state);
    let ex = eval.eval_exchange(&mut ctx, &pre, "C", "M");
    assert!(!ex.explicit);
    assert_eq!(ex.paths.len(), 1);
    assert!(ex.paths[0].actions.is_empty());
}

#[test]
fn init_spawn_actions_and_generic_pre_state() {
    let c = checked(
        base()
            .state("greeting", Ty::Str, Expr::lit("hello"))
            .init_with(|h| {
                h.call("banner", "motd", []);
            }),
    );
    let eval = Evaluator::new(&c);
    let mut ctx = SymCtx::new();
    let init = eval.eval_init(&mut ctx);
    assert_eq!(init.len(), 1);
    let path = &init[0];
    // One spawn + one call action.
    assert_eq!(path.actions.len(), 2);
    assert!(matches!(&path.actions[0], SymAction::Spawn { comp } if comp.ctype == "C"));
    assert!(matches!(&path.actions[1], SymAction::Call { func, .. } if func == "motd"));
    // Init state: concrete literals for state vars, opaque call binder.
    assert_eq!(path.state.data["greeting"], Term::lit("hello"));

    let pre = eval.generic_pre_state(&mut ctx, &path.state);
    // Mutable state vars become opaque; the immutable call binder keeps
    // its init value (an opaque call-result symbol).
    assert!(matches!(
        &pre.data["x"],
        Term::Sym(s) if matches!(&s.kind, SymKind::StateVar(n) if n == "x")
    ));
    assert_eq!(pre.data["banner"], path.state.data["banner"]);
    assert_eq!(pre.comps["c0"].ctype, "C");
}
