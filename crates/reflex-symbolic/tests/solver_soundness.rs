//! Metamorphic soundness tests for the solver.
//!
//! The solver's contract is *sound UNSAT*: it may fail to detect
//! unsatisfiability, but it must never call a satisfiable set
//! unsatisfiable, and everything it claims entailed must actually be
//! entailed. We test this against a concrete model: generate a random
//! assignment σ for the symbolic variables, generate random boolean terms,
//! and assert only literals that are *true under σ* — then σ is a model,
//! so:
//!
//! * `is_unsat()` must be `false`;
//! * any `entails(t, pol)` claim must agree with σ's evaluation of `t`;
//! * `implied_value(t)` must be `None` or exactly σ's value.

use proptest::prelude::*;
use reflex_ast::{BinOp, Ty, UnOp, Value};
use reflex_symbolic::{Solver, SymCtx, SymKind, SymVar, Term};

/// Fixed symbolic variables: three numbers, two strings, two booleans.
fn variables() -> Vec<SymVar> {
    let mut ctx = SymCtx::new();
    vec![
        ctx.fresh(Ty::Num, SymKind::Fresh),
        ctx.fresh(Ty::Num, SymKind::Fresh),
        ctx.fresh(Ty::Num, SymKind::Fresh),
        ctx.fresh(Ty::Str, SymKind::Fresh),
        ctx.fresh(Ty::Str, SymKind::Fresh),
        ctx.fresh(Ty::Bool, SymKind::Fresh),
        ctx.fresh(Ty::Bool, SymKind::Fresh),
    ]
}

/// A concrete assignment for [`variables`].
#[derive(Debug, Clone)]
struct Model {
    values: Vec<Value>,
}

impl Model {
    fn eval(&self, t: &Term, vars: &[SymVar]) -> Value {
        match t {
            Term::Lit(v) => v.clone(),
            Term::Sym(s) => {
                let idx = vars.iter().position(|v| v == s).expect("known var");
                self.values[idx].clone()
            }
            Term::Un(UnOp::Not, inner) => match self.eval(inner, vars) {
                Value::Bool(b) => Value::Bool(!b),
                _ => unreachable!("typing"),
            },
            Term::Un(UnOp::Neg, inner) => match self.eval(inner, vars) {
                Value::Num(n) => Value::Num(n.wrapping_neg()),
                _ => unreachable!("typing"),
            },
            Term::Bin(op, l, r) => {
                let a = self.eval(l, vars);
                let b = self.eval(r, vars);
                match (op, a, b) {
                    (BinOp::Eq, a, b) => Value::Bool(a == b),
                    (BinOp::Ne, a, b) => Value::Bool(a != b),
                    (BinOp::And, Value::Bool(x), Value::Bool(y)) => Value::Bool(x && y),
                    (BinOp::Or, Value::Bool(x), Value::Bool(y)) => Value::Bool(x || y),
                    (BinOp::Add, Value::Num(x), Value::Num(y)) => Value::Num(x.wrapping_add(y)),
                    (BinOp::Sub, Value::Num(x), Value::Num(y)) => Value::Num(x.wrapping_sub(y)),
                    (BinOp::Lt, Value::Num(x), Value::Num(y)) => Value::Bool(x < y),
                    (BinOp::Le, Value::Num(x), Value::Num(y)) => Value::Bool(x <= y),
                    (BinOp::Cat, Value::Str(x), Value::Str(y)) => Value::Str(format!("{x}{y}")),
                    _ => unreachable!("typing"),
                }
            }
        }
    }
}

fn gen_model() -> impl Strategy<Value = Model> {
    (
        proptest::collection::vec(-3i64..4, 3),
        proptest::collection::vec(prop_oneof![Just("a"), Just("b"), Just("c")], 2),
        proptest::collection::vec(any::<bool>(), 2),
    )
        .prop_map(|(nums, strs, bools)| Model {
            values: nums
                .into_iter()
                .map(Value::Num)
                .chain(strs.into_iter().map(Value::from))
                .chain(bools.into_iter().map(Value::Bool))
                .collect(),
        })
}

/// A random term of the requested type over the fixed variables
/// (represented by a recipe so shrinking works well).
fn gen_term(ty: Ty, depth: u32) -> BoxedStrategy<Term> {
    let vars = variables();
    let leaves: Vec<Term> = vars
        .iter()
        .filter(|v| v.ty == ty)
        .map(|v| Term::Sym(v.clone()))
        .collect();
    let lit = match ty {
        Ty::Num => prop_oneof![(-3i64..4).prop_map(Term::lit)].boxed(),
        Ty::Str => prop_oneof![Just("a"), Just("b"), Just("c")]
            .prop_map(Term::lit)
            .boxed(),
        Ty::Bool => any::<bool>().prop_map(Term::lit).boxed(),
        _ => unreachable!("data types only"),
    };
    let leaf = prop_oneof![lit, proptest::sample::select(leaves.clone()),].boxed();
    if depth == 0 {
        return leaf;
    }
    match ty {
        Ty::Num => prop_oneof![
            leaf.clone(),
            (gen_term(Ty::Num, depth - 1), gen_term(Ty::Num, depth - 1))
                .prop_map(|(a, b)| Term::bin(BinOp::Add, a, b)),
            (gen_term(Ty::Num, depth - 1), gen_term(Ty::Num, depth - 1))
                .prop_map(|(a, b)| Term::bin(BinOp::Sub, a, b)),
        ]
        .boxed(),
        Ty::Str => prop_oneof![
            leaf.clone(),
            (gen_term(Ty::Str, depth - 1), gen_term(Ty::Str, depth - 1))
                .prop_map(|(a, b)| Term::bin(BinOp::Cat, a, b)),
        ]
        .boxed(),
        Ty::Bool => prop_oneof![
            leaf.clone(),
            gen_term(Ty::Bool, depth - 1).prop_map(|t| Term::un(UnOp::Not, t)),
            (gen_term(Ty::Bool, depth - 1), gen_term(Ty::Bool, depth - 1))
                .prop_map(|(a, b)| Term::bin(BinOp::And, a, b)),
            (gen_term(Ty::Bool, depth - 1), gen_term(Ty::Bool, depth - 1))
                .prop_map(|(a, b)| Term::bin(BinOp::Or, a, b)),
            (gen_term(Ty::Num, depth - 1), gen_term(Ty::Num, depth - 1))
                .prop_map(|(a, b)| Term::bin(BinOp::Eq, a, b)),
            (gen_term(Ty::Num, depth - 1), gen_term(Ty::Num, depth - 1))
                .prop_map(|(a, b)| Term::bin(BinOp::Lt, a, b)),
            (gen_term(Ty::Num, depth - 1), gen_term(Ty::Num, depth - 1))
                .prop_map(|(a, b)| Term::bin(BinOp::Le, a, b)),
            (gen_term(Ty::Str, depth - 1), gen_term(Ty::Str, depth - 1))
                .prop_map(|(a, b)| Term::bin(BinOp::Eq, a, b)),
        ]
        .boxed(),
        _ => unreachable!(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    /// Term construction is semantics-preserving: the simplified term
    /// evaluates like the unsimplified structure would.
    #[test]
    fn simplification_preserves_models(
        model in gen_model(),
        t in gen_term(Ty::Bool, 3),
    ) {
        let vars = variables();
        // Build an equivalent term through Term::bin (already done by the
        // generator) and evaluate; then substitute the model values as
        // literals and the folded result must equal direct evaluation.
        let expected = model.eval(&t, &vars);
        let substituted = t.rewrite_leaves(&|leaf| match leaf {
            Term::Sym(s) => {
                let idx = vars.iter().position(|v| v == s)?;
                Some(Term::Lit(model.values[idx].clone()))
            }
            _ => None,
        });
        prop_assert_eq!(
            substituted,
            Term::Lit(expected),
            "ground substitution must fully fold"
        );
    }

    /// A satisfiable assumption set is never reported UNSAT, and all
    /// entailment claims hold in the model.
    #[test]
    fn solver_never_refutes_a_model(
        model in gen_model(),
        candidates in proptest::collection::vec(gen_term(Ty::Bool, 2), 1..8),
        probes in proptest::collection::vec(gen_term(Ty::Bool, 2), 1..4),
    ) {
        let vars = variables();
        // Assert each candidate with the polarity the model gives it, so
        // the model satisfies every assumption by construction.
        let mut solver = Solver::new();
        for t in &candidates {
            let Value::Bool(pol) = model.eval(t, &vars) else { unreachable!() };
            solver.assert_term(t.clone(), pol);
        }
        prop_assert!(!solver.is_unsat(), "model satisfies all assumptions");

        for probe in &probes {
            let Value::Bool(actual) = model.eval(probe, &vars) else { unreachable!() };
            // Entailment claims must agree with the model.
            if solver.entails(probe, true) {
                prop_assert!(actual, "claimed ⊨ {probe} but model refutes it");
            }
            if solver.entails(probe, false) {
                prop_assert!(!actual, "claimed ⊨ ¬({probe}) but model satisfies it");
            }
        }

        // Implied values must match the model.
        for v in &vars {
            let t = Term::Sym(v.clone());
            if let Some(implied) = solver.implied_value(&t) {
                let idx = vars.iter().position(|x| x == v).expect("known");
                prop_assert_eq!(implied, model.values[idx].clone());
            }
        }
    }

    /// Monotonicity: adding assumptions can only refine entailment, and an
    /// UNSAT set stays UNSAT under strengthening.
    #[test]
    fn unsat_is_monotone(
        model in gen_model(),
        base in proptest::collection::vec(gen_term(Ty::Bool, 2), 1..5),
        extra in gen_term(Ty::Bool, 2),
    ) {
        let vars = variables();
        // Force a contradiction: assert something and its negation.
        let mut solver = Solver::new();
        for t in &base {
            let Value::Bool(pol) = model.eval(t, &vars) else { unreachable!() };
            solver.assert_term(t.clone(), pol);
        }
        solver.assert_term(base[0].clone(), {
            let Value::Bool(pol) = model.eval(&base[0], &vars) else { unreachable!() };
            !pol
        });
        if solver.clone().is_unsat() {
            solver.assert_term(extra, true);
            prop_assert!(solver.is_unsat(), "UNSAT must be stable under strengthening");
        }
    }
}
