//! Equivalence tests for the two transparent solver optimizations:
//!
//! * **hash-consed terms** — structurally equal terms built through
//!   independent constructor calls must be indistinguishable (equality,
//!   hashing, ordering), because the interner may return either copy;
//! * **memoized entailment** — [`Solver::entails`] answers through a
//!   global replay-keyed memo table; it must agree with
//!   [`Solver::entails_uncached`] (which re-derives from scratch) on every
//!   context and query.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use proptest::prelude::*;
use reflex_ast::{BinOp, Ty, UnOp};
use reflex_symbolic::{Solver, SymCtx, SymKind, SymVar, Term};

/// Fixed symbolic variables: two numbers, one string, one boolean.
fn variables() -> Vec<SymVar> {
    let mut ctx = SymCtx::new();
    vec![
        ctx.fresh(Ty::Num, SymKind::Fresh),
        ctx.fresh(Ty::Num, SymKind::Fresh),
        ctx.fresh(Ty::Str, SymKind::Fresh),
        ctx.fresh(Ty::Bool, SymKind::Fresh),
    ]
}

/// A term "recipe": a seed-driven deterministic construction, so the same
/// recipe can build the term twice through independent constructor calls.
fn build_term(seed: u64, ty: Ty, depth: u32) -> Term {
    let vars = variables();
    let mut s = seed;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    build_term_inner(&mut next, ty, depth, &vars)
}

fn build_term_inner(next: &mut impl FnMut() -> u64, ty: Ty, depth: u32, vars: &[SymVar]) -> Term {
    if depth == 0 || next().is_multiple_of(3) {
        // Leaf: a literal or a variable of the right type.
        let candidates: Vec<Term> = vars
            .iter()
            .filter(|v| v.ty == ty)
            .map(|v| Term::Sym(v.clone()))
            .collect();
        let n = next();
        if n.is_multiple_of(2) && !candidates.is_empty() {
            return candidates[(n / 2) as usize % candidates.len()].clone();
        }
        return match ty {
            Ty::Num => Term::lit((n % 5) as i64 - 2),
            Ty::Str => Term::lit(["a", "b", "c"][(n % 3) as usize]),
            Ty::Bool => Term::lit(n.is_multiple_of(2)),
            _ => unreachable!("data types only"),
        };
    }
    match ty {
        Ty::Num => {
            let op = if next().is_multiple_of(2) {
                BinOp::Add
            } else {
                BinOp::Sub
            };
            Term::bin(
                op,
                build_term_inner(next, Ty::Num, depth - 1, vars),
                build_term_inner(next, Ty::Num, depth - 1, vars),
            )
        }
        Ty::Str => Term::bin(
            BinOp::Cat,
            build_term_inner(next, Ty::Str, depth - 1, vars),
            build_term_inner(next, Ty::Str, depth - 1, vars),
        ),
        Ty::Bool => match next() % 6 {
            0 => Term::un(UnOp::Not, build_term_inner(next, Ty::Bool, depth - 1, vars)),
            1 => Term::bin(
                BinOp::And,
                build_term_inner(next, Ty::Bool, depth - 1, vars),
                build_term_inner(next, Ty::Bool, depth - 1, vars),
            ),
            2 => Term::bin(
                BinOp::Or,
                build_term_inner(next, Ty::Bool, depth - 1, vars),
                build_term_inner(next, Ty::Bool, depth - 1, vars),
            ),
            3 => Term::bin(
                BinOp::Eq,
                build_term_inner(next, Ty::Num, depth - 1, vars),
                build_term_inner(next, Ty::Num, depth - 1, vars),
            ),
            4 => Term::bin(
                BinOp::Lt,
                build_term_inner(next, Ty::Num, depth - 1, vars),
                build_term_inner(next, Ty::Num, depth - 1, vars),
            ),
            _ => Term::bin(
                BinOp::Eq,
                build_term_inner(next, Ty::Str, depth - 1, vars),
                build_term_inner(next, Ty::Str, depth - 1, vars),
            ),
        },
        _ => unreachable!(),
    }
}

fn hash_of(t: &Term) -> u64 {
    let mut h = DefaultHasher::new();
    t.hash(&mut h);
    h.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Two independent constructions from the same recipe must be fully
    /// interchangeable: interning may hand out either copy.
    #[test]
    fn independently_built_terms_are_indistinguishable(seed in any::<u64>()) {
        let a = build_term(seed, Ty::Bool, 3);
        let b = build_term(seed, Ty::Bool, 3);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(hash_of(&a), hash_of(&b));
        prop_assert_eq!(a.cmp(&b), std::cmp::Ordering::Equal);
        prop_assert_eq!(format!("{a}"), format!("{b}"));
    }

    /// The memoized entailment query agrees with the from-scratch one on
    /// every (context, query, polarity) — the memo layer is semantically
    /// invisible.
    #[test]
    fn memoized_entailment_agrees_with_uncached(
        ctx_seed in any::<u64>(),
        query_seed in any::<u64>(),
        polarity in any::<bool>(),
    ) {
        let mut solver = Solver::new();
        for i in 0..3u64 {
            let assumption = build_term(ctx_seed.wrapping_add(i.wrapping_mul(0x9e37)), Ty::Bool, 2);
            solver.assert_term(assumption, i % 2 == 0);
        }
        let query = build_term(query_seed, Ty::Bool, 3);
        let memoized = solver.entails(&query, polarity);
        let uncached = solver.entails_uncached(&query, polarity);
        prop_assert_eq!(
            memoized, uncached,
            "memo diverged on {} (polarity {})", query, polarity
        );
        // Ask again: the (now warm) memo must still agree.
        prop_assert_eq!(solver.entails(&query, polarity), uncached);
    }
}
