//! Contention tests for the sharded, read-mostly interner and entailment
//! memo: 8 threads hammer the same key space concurrently and every
//! thread must still see canonical handles (stable [`TermRef`] identity),
//! no lost inserts, and entailment answers identical to a serial
//! [`Solver::entails_uncached`] oracle. A scratch-arena scope runs on
//! half the threads so the write-through fast path is exercised under the
//! same contention.

use proptest::prelude::*;
use reflex_ast::{BinOp, Ty};
use reflex_symbolic::{with_scratch, Solver, SymCtx, SymKind, Term, TermRef};

/// Deterministic term recipe: the same `(seed, i)` always builds the same
/// structural term, from any thread.
fn recipe(vars: &[Term], seed: u64, i: u64) -> Term {
    let k = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(i);
    let x = vars[(k % vars.len() as u64) as usize].clone();
    let lit = Term::lit((k % 17) as i64 - 8);
    let eq = Term::bin(BinOp::Eq, x.clone(), lit.clone());
    match k % 3 {
        0 => eq,
        1 => Term::bin(BinOp::And, eq, Term::bin(BinOp::Lt, x, lit)),
        _ => Term::bin(BinOp::Or, eq, Term::bin(BinOp::Lt, lit, x)),
    }
}

/// Shared fixed variables (interned once, up front).
fn variables() -> Vec<Term> {
    let mut ctx = SymCtx::new();
    (0..4)
        .map(|_| ctx.fresh_term(Ty::Num, SymKind::Fresh))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// 8 threads intern the same recipes concurrently; every handle for a
    /// structural key must be THE canonical node (`Arc::ptr_eq`), whether
    /// or not the interning thread ran inside a scratch-arena scope.
    #[test]
    fn concurrent_interning_yields_canonical_handles(seed in any::<u64>()) {
        let vars = variables();
        let per_thread: Vec<Vec<TermRef>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|t| {
                    let vars = &vars;
                    scope.spawn(move || {
                        let build = || -> Vec<TermRef> {
                            (0..64)
                                .map(|i| TermRef::new(recipe(vars, seed, i)))
                                .collect()
                        };
                        // Half the threads intern through a scratch scope:
                        // its hits must still return the canonical handle.
                        if t % 2 == 0 {
                            with_scratch(build)
                        } else {
                            build()
                        }
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let reference = &per_thread[0];
        for handles in &per_thread[1..] {
            for (a, b) in reference.iter().zip(handles) {
                prop_assert_eq!(a.as_term(), b.as_term());
                prop_assert!(
                    std::ptr::eq(a.as_term(), b.as_term()),
                    "same structural key must intern to one canonical node"
                );
            }
        }
    }

    /// 8 threads fire the same entailment queries through the sharded
    /// memo; every answer must equal the serial uncached oracle's, and
    /// re-asking afterwards (all hits) must not change anything.
    #[test]
    fn concurrent_memoized_entailment_matches_serial_oracle(seed in any::<u64>()) {
        let vars = variables();
        let assumption = Term::bin(BinOp::Lt, Term::lit(0), vars[0].clone());
        let queries: Vec<Term> = (0..48).map(|i| recipe(&vars, seed, i)).collect();

        // Serial oracle, computed before any concurrent memoization.
        let oracle: Vec<bool> = {
            let mut s = Solver::new();
            s.assert_term(assumption.clone(), true);
            queries.iter().map(|q| s.entails_uncached(q, true)).collect()
        };

        let answers: Vec<Vec<bool>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let (assumption, queries) = (&assumption, &queries);
                    scope.spawn(move || {
                        let mut s = Solver::new();
                        s.assert_term(assumption.clone(), true);
                        queries.iter().map(|q| s.entails(q, true)).collect::<Vec<bool>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for thread_answers in &answers {
            prop_assert_eq!(thread_answers, &oracle);
        }

        // Every entry is now memoized; a fresh pass must agree again.
        let mut s = Solver::new();
        s.assert_term(assumption.clone(), true);
        let again: Vec<bool> = queries.iter().map(|q| s.entails(q, true)).collect();
        prop_assert_eq!(again, oracle);
    }
}
