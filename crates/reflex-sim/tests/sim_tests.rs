//! Integration tests for the deterministic simulator: byte-identical
//! traces, jobs-independence of the swarm, scenario smoke coverage, and
//! the inject → shrink → repro.json → replay pipeline.

use reflex_sim::{repro, shrink, swarm, Scenario, Sim, SimConfig, ViolationKind};

/// Every scenario, same seed, run twice: the traces must be
/// byte-identical (this is the simulator's core contract).
#[test]
fn same_seed_reproduces_a_byte_identical_trace() {
    for scenario in Scenario::ALL {
        let mut config = SimConfig::new(scenario, 7);
        // Keep runs quick; determinism does not need many steps.
        config.steps = config.steps.min(4);
        if scenario == Scenario::Soak {
            config.steps = 40;
        }
        let first = Sim::run(&config);
        let second = Sim::run(&config);
        assert_eq!(
            first.trace_text(),
            second.trace_text(),
            "{scenario}: traces must be byte-identical"
        );
        assert_eq!(first.trace_fingerprint, second.trace_fingerprint);
        assert_eq!(first.violation, second.violation);
    }
}

/// The default configurations must run clean: the stack's robustness
/// invariants hold under the seeded fault schedules.
#[test]
fn default_scenarios_run_clean() {
    for scenario in [Scenario::Chaos, Scenario::Watch, Scenario::ScaleEdits] {
        let mut config = SimConfig::new(scenario, 3);
        config.steps = 3;
        let outcome = Sim::run(&config);
        assert_eq!(
            outcome.violation,
            None,
            "{scenario}: expected a clean run, got: {:?}\ntrace:\n{}",
            outcome.violation,
            outcome.trace_text()
        );
        assert_eq!(outcome.steps_run, 3, "{scenario}");
    }
    let mut config = SimConfig::new(Scenario::Soak, 3);
    config.steps = 40;
    let outcome = Sim::run(&config);
    assert_eq!(outcome.violation, None, "soak: {}", outcome.trace_text());
}

/// The swarm's report must be identical at one worker and at eight —
/// parallelism across seeds must never leak into the results.
#[test]
fn swarm_results_are_identical_across_job_counts() {
    let run = |jobs: usize| {
        let cfg = swarm::SwarmConfig {
            scenarios: vec![Scenario::Watch, Scenario::ScaleEdits],
            seeds: (0..4).collect(),
            steps: Some(2),
            jobs,
            ..swarm::SwarmConfig::default()
        };
        swarm::run_swarm(&cfg)
    };
    let serial = run(1);
    let parallel = run(8);
    assert_eq!(serial.swarm_fingerprint(), parallel.swarm_fingerprint());
    assert_eq!(serial.runs.len(), parallel.runs.len());
    for (a, b) in serial.runs.iter().zip(&parallel.runs) {
        assert_eq!(a.scenario, b.scenario);
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.trace_fingerprint, b.trace_fingerprint);
        assert_eq!(a.violation, b.violation);
    }
    assert_eq!(
        swarm::render_swarm_json(&serial),
        swarm::render_swarm_json(&parallel),
        "the rendered bench document must be jobs-independent"
    );
}

/// A seeded injected violation must be detected, shrunk to the minimal
/// step prefix, serialized as repro.json, and replayed bit-identically.
#[test]
fn injected_violation_shrinks_and_replays() {
    let mut config = SimConfig::new(Scenario::ScaleEdits, 11);
    config.steps = 5;
    config.inject_violation_at = Some(2);

    let outcome = Sim::run(&config);
    let violation = outcome.violation.clone().expect("the injection must fire");
    assert_eq!(violation.kind, ViolationKind::Injected);
    assert_eq!(violation.step, 2);
    assert_eq!(outcome.steps_run, 2, "the run stops at the violation");

    // Shrink: steps 5 -> 3 (the minimal prefix reaching step 2), and
    // no fault stream is needed to reproduce an injected violation.
    let shrunk = shrink::shrink(&config, &violation);
    assert_eq!(shrunk.minimized.steps, 3);
    assert_eq!(shrunk.violation.kind, ViolationKind::Injected);
    assert!(
        !shrunk.minimized.stream_enabled("fs")
            && !shrunk.minimized.stream_enabled("world")
            && !shrunk.minimized.stream_enabled("panic"),
        "an injected violation needs no fault stream: {:?}",
        shrunk.minimized.disabled
    );

    // Repro: render -> parse round-trips, and the replay reproduces the
    // minimized run bit for bit.
    let minimized_outcome = Sim::run(&shrunk.minimized);
    let record = repro::Repro::of(&minimized_outcome);
    let text = repro::render(&record);
    let parsed = repro::parse(&text).expect("repro.json parses");
    assert_eq!(parsed, record);
    let verdict = parsed.replay();
    assert!(verdict.violation_matches, "violation must replay");
    assert!(verdict.trace_matches, "trace must replay bit-identically");
    assert!(verdict.reproduced());

    // And through a file, as `rx sim replay FILE` does it.
    let path = std::env::temp_dir().join(format!("rx-sim-test-repro-{}.json", std::process::id()));
    std::fs::write(&path, &text).expect("repro file writes");
    let verdict = repro::replay_file(&path).expect("repro file replays");
    assert!(verdict.reproduced());
    let _ = std::fs::remove_file(&path);
}

/// Disabling a fault stream changes the run (the trace head records
/// it) but a clean scenario stays clean.
#[test]
fn disabled_streams_zero_their_faults() {
    let mut config = SimConfig::new(Scenario::Chaos, 5);
    config.steps = 2;
    config.disabled = vec!["fs".to_owned(), "panic".to_owned()];
    let outcome = Sim::run(&config);
    assert_eq!(outcome.violation, None, "{}", outcome.trace_text());
    assert!(
        outcome.trace[0].contains("fs_ppm=0") && outcome.trace[0].contains("panic_ppm=0"),
        "{}",
        outcome.trace[0]
    );
    for line in &outcome.trace {
        if line.contains("faults=") {
            assert!(line.contains("faults=0"), "no fs faults may fire: {line}");
        }
    }
}

/// Scenario and violation labels round-trip through their parsers (the
/// repro format depends on this).
#[test]
fn labels_round_trip() {
    for scenario in Scenario::ALL {
        assert_eq!(Scenario::parse(scenario.label()), Some(scenario));
    }
    for kind in [
        ViolationKind::Abort,
        ViolationKind::CertMismatch,
        ViolationKind::QuarantineEscape,
        ViolationKind::Unrecovered,
        ViolationKind::MonitorAlarm,
        ViolationKind::CompactionLoss,
        ViolationKind::Starvation,
        ViolationKind::RestartLoss,
        ViolationKind::LostReply,
        ViolationKind::DuplicateWork,
        ViolationKind::Stall,
        ViolationKind::Injected,
    ] {
        assert_eq!(ViolationKind::parse(kind.label()), Some(kind));
    }
}
