//! FaultyNet robustness property: whatever the seeded fault plan does
//! to the byte stream — drop, delay, duplicate, truncate, bit-flip,
//! mid-stream disconnect — every client operation returns `Ok` or a
//! typed [`ClientError`]; nothing panics, nothing hangs (watchdog read
//! timeouts bound every wait), and the server keeps serving clean
//! clients afterwards.

use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use proptest::prelude::*;
use reflex_service::{
    serve, Client, ClientError, Endpoint, ServerConfig, ServerHandle, ServiceConfig, ServiceCore,
};
use reflex_sim::net::{FaultyNet, NetPlan};

/// One server shared by every proptest case: the property includes
/// "hostile case N does not poison case N+1".
struct Fixture {
    socket: PathBuf,
    core: Arc<ServiceCore>,
    _handle: ServerHandle,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let socket = std::env::temp_dir().join(format!("rx-net-prop-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&socket);
        let core = Arc::new(
            ServiceCore::start(ServiceConfig {
                jobs: 1,
                workers: 2,
                ..ServiceConfig::default()
            })
            .expect("core starts"),
        );
        let handle = serve(
            Arc::clone(&core),
            &ServerConfig {
                unix: Some(socket.clone()),
                ..ServerConfig::default()
            },
        )
        .expect("server binds");
        Fixture {
            socket,
            core,
            _handle: handle,
        }
    })
}

/// Runs one hostile session under `plan` and asserts the contract: the
/// outcome of every step is `Ok` or a typed error, never a panic and
/// never an unbounded wait (the socket watchdog converts a lost reply
/// into a typed `Io` timeout).
fn hostile_session(fixture: &Fixture, plan: Arc<NetPlan>) {
    let stream = match UnixStream::connect(&fixture.socket) {
        Ok(s) => s,
        Err(e) => panic!("the shared server must accept: {e}"),
    };
    stream
        .set_read_timeout(Some(Duration::from_secs(2)))
        .expect("watchdog set");
    let faulty = FaultyNet::new(stream, plan);
    let mut client = match Client::over(Box::new(faulty)) {
        Ok(client) => client,
        // A fault hit the handshake: a typed failure is the contract.
        Err(ClientError::Io(_) | ClientError::Protocol(_) | ClientError::Remote { .. }) => return,
    };
    for _ in 0..3 {
        match client.ping() {
            Ok(()) => {}
            // Any typed error ends the session cleanly; the stream is
            // in an unknown state, as it would be for a real client.
            Err(ClientError::Io(_) | ClientError::Protocol(_) | ClientError::Remote { .. }) => {
                return
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    /// Any seeded mutation plan (corruption included, at rates from
    /// occasional to nearly-every-frame) yields typed errors or clean
    /// completions, and a well-behaved client is served right after.
    #[test]
    fn any_fault_plan_yields_typed_errors_and_the_server_survives(
        seed in any::<u64>(),
        rate_ppm in 100_000u64..900_001,
    ) {
        let fixture = fixture();
        hostile_session(fixture, NetPlan::new(seed, rate_ppm, true));

        // The server shrugged it off: a clean client works immediately.
        let mut clean = Client::connect(&Endpoint::Unix(fixture.socket.clone()))
            .expect("server accepts after hostile traffic");
        clean.ping().expect("server serves after hostile traffic");
    }
}

/// The fixture's core never records a crash-shaped state: after the
/// proptest battering, a full request still round-trips. (Plain test so
/// it also runs when the proptest filter is off.)
#[test]
fn the_shared_server_answers_a_real_request_after_abuse() {
    let fixture = fixture();
    let mut client = Client::connect(&Endpoint::Unix(fixture.socket.clone())).expect("connects");
    let reply = client
        .check("car", reflex_kernels::car::SOURCE)
        .expect("check round-trips");
    assert!(reply.properties > 0);
    // Sanity: replies imply the core is processing, not just accepting.
    let stats = client.stats().expect("stats round-trip");
    assert!(stats.requests_served > 0 || stats.connections > 0);
    // And the core agrees from the inside: whatever the fault plans
    // did, none of it registered as a server-side panic or wedged
    // worker — the counters are still moving.
    assert!(
        fixture
            .core
            .stats()
            .requests_served
            .load(std::sync::atomic::Ordering::Relaxed)
            > 0
    );
}
