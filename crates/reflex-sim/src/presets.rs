//! The pre-simulator robustness suites as presets.
//!
//! `rx chaos` and `rx soak` predate the simulator and have committed
//! bench artifacts (`BENCH_chaos.json`, `BENCH_soak.json`) with CI
//! guards over their invariant fields. They now route through this
//! module: the simulator is the one front door for seeded whole-stack
//! runs, and these presets delegate to the original `reflex-bench`
//! engines so every recorded seed and every JSON field keeps its exact
//! meaning. New work should prefer `rx sim run` / `rx sim swarm`,
//! which add virtual time, scenario traces and automatic shrinking.

pub use reflex_bench::chaos::{render_chaos, render_chaos_json, ChaosBench, ChaosConfig};
pub use reflex_bench::soak::{render_soak, render_soak_json, SoakBench, SoakConfig, SoakOutcome};

/// Runs the chaos preset: the scripted (or generated) watch replay
/// under seeded store faults, exactly `reflex_bench::chaos::run_chaos`.
///
/// # Errors
///
/// Harness-level failures only (a scripted edit failing to apply, the
/// clean baseline failing to verify) — fault-induced behavior is
/// recorded in the bench, never an error.
pub fn run_chaos_preset(config: &ChaosConfig) -> Result<ChaosBench, reflex_bench::BenchError> {
    reflex_bench::chaos::run_chaos(config)
}

/// Runs the soak preset over every bundled kernel, exactly
/// `reflex_bench::soak::run_soak`.
pub fn run_soak_preset(config: &SoakConfig) -> Vec<SoakOutcome> {
    reflex_bench::soak::run_soak(config)
}

/// Runs the monitored-vs-unmonitored soak measurement, exactly
/// `reflex_bench::soak::run_soak_bench` (the `BENCH_soak.json`
/// producer).
pub fn run_soak_bench_preset(config: &SoakConfig) -> SoakBench {
    reflex_bench::soak::run_soak_bench(config)
}
