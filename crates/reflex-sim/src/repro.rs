//! `repro.json` — serialized minimal reproductions.
//!
//! A repro file records everything [`Sim::run`] needs to re-execute a
//! violating run bit for bit: the (minimized) configuration, the
//! violation it produces and the trace fingerprint of the violating
//! run. `rx sim replay FILE` parses the file, re-runs the scenario and
//! checks that the same violation and the same trace come back.
//!
//! The format is a flat JSON object written and parsed by hand (the
//! repository builds against no external crates); the parser accepts
//! exactly what [`render`] emits.

use std::fmt::Write as _;

use crate::{Scenario, Sim, SimConfig, SimOutcome, Violation, ViolationKind};

/// The schema tag [`render`] stamps into every repro file.
pub const SCHEMA: &str = "rx-sim-repro-v1";

/// A parsed repro file: the run to replay and what it must reproduce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Repro {
    /// The minimized configuration to re-execute.
    pub config: SimConfig,
    /// The violation the run must reproduce.
    pub violation: Violation,
    /// The violating run's trace fingerprint.
    pub trace_fingerprint: u64,
}

impl Repro {
    /// Builds the repro record for a violating outcome.
    ///
    /// # Panics
    ///
    /// If the outcome has no violation — clean runs have nothing to
    /// reproduce.
    pub fn of(outcome: &SimOutcome) -> Repro {
        Repro {
            config: outcome.config.clone(),
            violation: outcome
                .violation
                .clone()
                .expect("a repro needs a violation"),
            trace_fingerprint: outcome.trace_fingerprint,
        }
    }

    /// Re-runs the recorded configuration and reports the replay
    /// verdict.
    pub fn replay(&self) -> ReplayVerdict {
        let outcome = Sim::run(&self.config);
        let violation_matches = outcome.violation.as_ref() == Some(&self.violation);
        let trace_matches = outcome.trace_fingerprint == self.trace_fingerprint;
        ReplayVerdict {
            outcome,
            violation_matches,
            trace_matches,
        }
    }
}

/// What replaying a repro produced, against what it recorded.
#[derive(Debug)]
pub struct ReplayVerdict {
    /// The replayed run.
    pub outcome: SimOutcome,
    /// Whether the recorded violation came back identically.
    pub violation_matches: bool,
    /// Whether the trace fingerprint came back identically.
    pub trace_matches: bool,
}

impl ReplayVerdict {
    /// Whether the replay reproduced the recorded run bit for bit.
    pub fn reproduced(&self) -> bool {
        self.violation_matches && self.trace_matches
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a repro as its `repro.json` document.
pub fn render(repro: &Repro) -> String {
    let c = &repro.config;
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"{SCHEMA}\",");
    let _ = writeln!(out, "  \"scenario\": \"{}\",", c.scenario);
    let _ = writeln!(out, "  \"seed\": {},", c.seed);
    let _ = writeln!(out, "  \"steps\": {},", c.steps);
    let _ = writeln!(out, "  \"fs_rate_ppm\": {},", c.fs_rate_ppm);
    let _ = writeln!(out, "  \"panic_rate_ppm\": {},", c.panic_rate_ppm);
    match c.inject_violation_at {
        Some(k) => {
            let _ = writeln!(out, "  \"inject_violation_at\": {k},");
        }
        None => out.push_str("  \"inject_violation_at\": null,\n"),
    }
    let streams: Vec<String> = c
        .disabled
        .iter()
        .map(|s| format!("\"{}\"", escape(s)))
        .collect();
    let _ = writeln!(out, "  \"disabled\": [{}],", streams.join(", "));
    out.push_str("  \"violation\": {\n");
    let _ = writeln!(out, "    \"step\": {},", repro.violation.step);
    let _ = writeln!(out, "    \"kind\": \"{}\",", repro.violation.kind);
    let _ = writeln!(
        out,
        "    \"detail\": \"{}\"",
        escape(&repro.violation.detail)
    );
    out.push_str("  },\n");
    let _ = writeln!(
        out,
        "  \"trace_fingerprint\": \"{:#018x}\"",
        repro.trace_fingerprint
    );
    out.push_str("}\n");
    out
}

/// Parses a `repro.json` document (the format [`render`] emits).
///
/// # Errors
///
/// A message naming the missing or malformed field.
pub fn parse(text: &str) -> Result<Repro, String> {
    let schema = str_field(text, "schema")?;
    if schema != SCHEMA {
        return Err(format!("unsupported repro schema `{schema}`"));
    }
    let scenario_label = str_field(text, "scenario")?;
    let scenario = Scenario::parse(&scenario_label)
        .ok_or_else(|| format!("unknown scenario `{scenario_label}`"))?;
    let kind_label = str_field(text, "kind")?;
    let kind = ViolationKind::parse(&kind_label)
        .ok_or_else(|| format!("unknown violation kind `{kind_label}`"))?;
    let fingerprint_text = str_field(text, "trace_fingerprint")?;
    let trace_fingerprint = parse_hex_u64(&fingerprint_text)?;
    Ok(Repro {
        config: SimConfig {
            scenario,
            seed: num_field(text, "seed")?,
            steps: usize::try_from(num_field(text, "steps")?)
                .map_err(|_| "steps out of range".to_owned())?,
            fs_rate_ppm: u32::try_from(num_field(text, "fs_rate_ppm")?)
                .map_err(|_| "fs_rate_ppm out of range".to_owned())?,
            panic_rate_ppm: u32::try_from(num_field(text, "panic_rate_ppm")?)
                .map_err(|_| "panic_rate_ppm out of range".to_owned())?,
            inject_violation_at: opt_num_field(text, "inject_violation_at")?
                .map(|n| usize::try_from(n).map_err(|_| "inject_violation_at out of range"))
                .transpose()?,
            disabled: str_array_field(text, "disabled")?,
        },
        violation: Violation {
            step: usize::try_from(num_field(text, "step")?)
                .map_err(|_| "step out of range".to_owned())?,
            kind,
            detail: str_field(text, "detail")?,
        },
        trace_fingerprint,
    })
}

/// Reads, parses and replays a repro file.
///
/// # Errors
///
/// I/O or parse failure, with the path in the message.
pub fn replay_file(path: &std::path::Path) -> Result<ReplayVerdict, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let repro = parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(repro.replay())
}

/// The raw text after `"key":`, up to (not including) the value's end,
/// for scalar values. Finds the first occurrence of the quoted key.
fn raw_value<'t>(text: &'t str, key: &str) -> Result<&'t str, String> {
    let marker = format!("\"{key}\"");
    let at = text
        .find(&marker)
        .ok_or_else(|| format!("missing field `{key}`"))?;
    let rest = &text[at + marker.len()..];
    let rest = rest
        .strip_prefix(':')
        .or_else(|| {
            rest.find(':')
                .filter(|i| rest[..*i].trim().is_empty())
                .map(|i| &rest[i + 1..])
        })
        .ok_or_else(|| format!("field `{key}` is not followed by a value"))?;
    Ok(rest.trim_start())
}

fn str_field(text: &str, key: &str) -> Result<String, String> {
    let raw = raw_value(text, key)?;
    let inner = raw
        .strip_prefix('"')
        .ok_or_else(|| format!("field `{key}` is not a string"))?;
    let mut out = String::new();
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Ok(out),
            '\\' => match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('r') => out.push('\r'),
                Some('u') => {
                    let hex: String = chars.by_ref().take(4).collect();
                    let code = u32::from_str_radix(&hex, 16)
                        .map_err(|_| format!("field `{key}`: bad \\u escape"))?;
                    out.push(
                        char::from_u32(code)
                            .ok_or_else(|| format!("field `{key}`: bad \\u escape"))?,
                    );
                }
                Some(other) => out.push(other),
                None => return Err(format!("field `{key}`: unterminated escape")),
            },
            c => out.push(c),
        }
    }
    Err(format!("field `{key}`: unterminated string"))
}

fn num_field(text: &str, key: &str) -> Result<u64, String> {
    let raw = raw_value(text, key)?;
    let digits: String = raw.chars().take_while(char::is_ascii_digit).collect();
    digits
        .parse::<u64>()
        .map_err(|_| format!("field `{key}` is not a number"))
}

fn opt_num_field(text: &str, key: &str) -> Result<Option<u64>, String> {
    let raw = raw_value(text, key)?;
    if raw.starts_with("null") {
        return Ok(None);
    }
    num_field(text, key).map(Some)
}

fn str_array_field(text: &str, key: &str) -> Result<Vec<String>, String> {
    let raw = raw_value(text, key)?;
    let inner = raw
        .strip_prefix('[')
        .ok_or_else(|| format!("field `{key}` is not an array"))?;
    let end = inner
        .find(']')
        .ok_or_else(|| format!("field `{key}`: unterminated array"))?;
    Ok(inner[..end]
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| s.trim_matches('"').to_owned())
        .collect())
}

fn parse_hex_u64(text: &str) -> Result<u64, String> {
    let digits = text.strip_prefix("0x").unwrap_or(text);
    u64::from_str_radix(digits, 16).map_err(|_| format!("bad fingerprint `{text}`"))
}
