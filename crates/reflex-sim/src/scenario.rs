//! The whole-stack scenario drivers.
//!
//! Each driver executes one [`Scenario`](crate::Scenario) step by step,
//! appending deterministic records to the trace and returning the first
//! [`Violation`] it detects (or `None` for a clean run). All prover work
//! runs at `jobs = 1` and on a [`VirtualClock`]: the store's `FaultyFs`
//! decides faults by a *global* operation counter, so a parallel prover
//! fan-out could reorder disk traffic and fork the fault schedule.
//! Parallelism in the simulator lives one level up, across seeds, in
//! [`crate::swarm`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use reflex_driver::{
    BackoffPolicy, Event, Instrument, NullSink, SessionConfig, SessionReport, VerifySession,
    WatchSession,
};
use reflex_rng::{RngExt, SimRng};
use reflex_service::{Reply, Request, ServiceConfig, ServiceCore};
use reflex_verify::{Certificate, FaultyFs, PanicPlan, ProverOptions, VerifyFs, VirtualClock};

use crate::{injected_violation, scratch_dir, SimConfig, Trace, Violation, ViolationKind};

/// The proved certificates of one report, in declaration order.
fn certs_of(report: &SessionReport) -> Vec<(String, Certificate)> {
    report
        .outcomes
        .iter()
        .filter_map(|(name, o)| o.certificate().map(|c| (name.clone(), c.clone())))
        .collect()
}

/// The session configuration every scenario verifies under: one worker
/// (see the module docs) and simulated time.
fn session_config(_config: &SimConfig, dir: Option<&std::path::Path>) -> SessionConfig {
    SessionConfig {
        options: ProverOptions::default(),
        jobs: 1,
        store_dir: dir.map(|d| d.to_string_lossy().into_owned()),
        clock: Some(Arc::new(VirtualClock::new(1_000))),
        ..SessionConfig::default()
    }
}

/// The seeded prover panic plan for this run, if the `panic` stream is
/// active.
fn panic_plan(config: &SimConfig) -> Option<Arc<PanicPlan>> {
    if !config.stream_enabled("panic") || config.panic_rate_ppm == 0 {
        return None;
    }
    Some(Arc::new(PanicPlan::seeded(
        config.stream_seed("panic"),
        config.panic_rate_ppm,
    )))
}

/// The seeded store filesystem for this run; rate zero when the `fs`
/// stream is disabled (the schedule still exists, it just never fires).
fn faulty_fs(config: &SimConfig) -> FaultyFs {
    let rate = if config.stream_enabled("fs") {
        config.fs_rate_ppm
    } else {
        0
    };
    FaultyFs::seeded(config.stream_seed("fs"), rate)
}

/// An event sink counting the store lifecycle events, for the trace.
#[derive(Default)]
struct StoreSink {
    retries: AtomicUsize,
    degraded: AtomicUsize,
    recovered: AtomicUsize,
}

impl StoreSink {
    fn totals(&self) -> (usize, usize, usize) {
        (
            self.retries.load(Ordering::Relaxed),
            self.degraded.load(Ordering::Relaxed),
            self.recovered.load(Ordering::Relaxed),
        )
    }
}

impl Instrument for StoreSink {
    fn event(&self, event: &Event) {
        match event {
            Event::StoreRetry { .. } => self.retries.fetch_add(1, Ordering::Relaxed),
            Event::StoreDegraded { .. } => self.degraded.fetch_add(1, Ordering::Relaxed),
            Event::StoreRecovered => self.recovered.fetch_add(1, Ordering::Relaxed),
            _ => 0,
        };
    }
}

/// Per-report outcome tallies for the trace and invariant checks.
struct Tally {
    proved: usize,
    crashed: usize,
    other: usize,
}

fn tally(report: &SessionReport) -> Tally {
    let proved = report
        .outcomes
        .iter()
        .filter(|(_, o)| o.is_proved())
        .count();
    let crashed = report
        .outcomes
        .iter()
        .filter(|(_, o)| o.is_crashed())
        .count();
    Tally {
        proved,
        crashed,
        other: report.outcomes.len() - proved - crashed,
    }
}

/// Checks one faulted report against the clean baseline for the same
/// step: every non-crashed property must be proved with the exact
/// baseline certificate (crashed ones carry no certificate by
/// construction and are excluded — their isolation is itself the
/// invariant under test).
fn check_against_baseline(
    step: usize,
    report: &SessionReport,
    baseline: &[(String, Certificate)],
    kind: ViolationKind,
) -> Option<Violation> {
    check_outcomes(step, &report.outcomes, baseline, kind)
}

/// [`check_against_baseline`] over a bare outcome list (for runs driven
/// through `verify_with_store` rather than a session).
fn check_outcomes(
    step: usize,
    outcomes: &[(String, reflex_verify::Outcome)],
    baseline: &[(String, Certificate)],
    kind: ViolationKind,
) -> Option<Violation> {
    for (name, outcome) in outcomes {
        if outcome.is_crashed() {
            continue;
        }
        let Some(cert) = outcome.certificate() else {
            return Some(Violation {
                step,
                kind,
                detail: format!("property `{name}` left unproved under faults"),
            });
        };
        let expected = baseline.iter().find(|(n, _)| n == name).map(|(_, c)| c);
        if expected != Some(cert) {
            return Some(Violation {
                step,
                kind,
                detail: format!("certificate for `{name}` differs from the clean baseline"),
            });
        }
    }
    None
}

/// The synthetic-kernel edit ladder for this run: the `small` preset at
/// the `kernel` stream's seed, variants `0..steps`.
fn synth_ladder(config: &SimConfig) -> Vec<reflex_kernels::synth::SynthKernel> {
    let gen = reflex_kernels::synth::SynthConfig::preset("small", config.stream_seed("kernel"))
        .expect("the small preset exists");
    (0..u32::try_from(config.steps).unwrap_or(u32::MAX))
        .map(|v| reflex_kernels::synth::generate_variant(&gen, v))
        .collect()
}

/// Chaos: replay a synthetic edit ladder through a watch session over a
/// seeded faulty store with seeded prover panics; then heal the disk,
/// inflict external bit rot, scrub, and re-verify against the baseline.
pub(crate) fn run_chaos(config: &SimConfig, trace: &mut Trace) -> Option<Violation> {
    let ladder = synth_ladder(config);
    let checked: Vec<_> = ladder
        .iter()
        .map(|k| (k.name.clone(), k.checked()))
        .collect();

    // Clean serial baseline over a healthy store: the ground truth.
    let base_dir = scratch_dir(config, "base");
    let _ = std::fs::remove_dir_all(&base_dir);
    let mut baseline: Vec<Vec<(String, Certificate)>> = Vec::with_capacity(checked.len());
    {
        let mut watch = match WatchSession::new(session_config(config, Some(&base_dir))) {
            Ok(w) => w,
            Err(e) => {
                return Some(Violation {
                    step: 0,
                    kind: ViolationKind::Abort,
                    detail: format!("baseline watch session failed to open: {e}"),
                })
            }
        };
        for (step, (name, program)) in checked.iter().enumerate() {
            match watch.verify(program, &NullSink) {
                Ok(it) => {
                    let t = tally(&it.report);
                    if t.proved != it.report.outcomes.len() {
                        return Some(Violation {
                            step,
                            kind: ViolationKind::Abort,
                            detail: format!("baseline left {} properties unproved", t.other),
                        });
                    }
                    trace.push(format!(
                        "step {step} baseline kernel={name} proved={}",
                        t.proved
                    ));
                    baseline.push(certs_of(&it.report));
                }
                Err(e) => {
                    return Some(Violation {
                        step,
                        kind: ViolationKind::Abort,
                        detail: format!("baseline iteration failed: {e}"),
                    })
                }
            }
        }
    }
    let _ = std::fs::remove_dir_all(&base_dir);

    // The faulted replay: same ladder, seeded disk faults and panics.
    let dir = scratch_dir(config, "store");
    let _ = std::fs::remove_dir_all(&dir);
    let faulty = faulty_fs(config);
    let mut cfg = session_config(config, Some(&dir));
    cfg.store_fs = Some(Arc::new(faulty.clone()) as Arc<dyn VerifyFs>);
    cfg.options.panic_plan = panic_plan(config);
    let sink = StoreSink::default();
    let result = run_chaos_faulted(
        config, trace, &checked, &baseline, cfg, &sink, &faulty, &dir,
    );
    let _ = std::fs::remove_dir_all(&dir);
    result
}

// One parameter block per collaborating harness piece; bundling them
// into a struct would only rename the coupling.
#[allow(clippy::too_many_arguments)]
fn run_chaos_faulted(
    config: &SimConfig,
    trace: &mut Trace,
    checked: &[(String, reflex_typeck::CheckedProgram)],
    baseline: &[Vec<(String, Certificate)>],
    cfg: SessionConfig,
    sink: &StoreSink,
    faulty: &FaultyFs,
    dir: &std::path::Path,
) -> Option<Violation> {
    let panic_plan = cfg.options.panic_plan.clone();
    let mut watch = match WatchSession::new(cfg) {
        Ok(w) => w.with_backoff(BackoffPolicy {
            base_ms: 1,
            cap_ms: 4,
            retries: 2,
        }),
        Err(e) => {
            return Some(Violation {
                step: 0,
                kind: ViolationKind::Abort,
                detail: format!("faulted watch session failed to open: {e}"),
            })
        }
    };
    let mut faults_seen = 0u64;
    for (step, ((name, program), expected)) in checked.iter().zip(baseline).enumerate() {
        if let Some(v) = injected_violation(config, trace, step) {
            return Some(v);
        }
        let it = match watch.verify(program, sink) {
            Ok(it) => it,
            Err(e) => {
                return Some(Violation {
                    step,
                    kind: ViolationKind::Abort,
                    detail: format!("faulted iteration aborted: {e}"),
                })
            }
        };
        let t = tally(&it.report);
        let injected = faulty.injected();
        trace.push(format!(
            "step {step} chaos kernel={name} proved={} crashed={} degraded={} faults={}",
            t.proved,
            t.crashed,
            it.degraded,
            injected - faults_seen
        ));
        faults_seen = injected;
        trace.step_done();
        if let Some(v) =
            check_against_baseline(step, &it.report, expected, ViolationKind::CertMismatch)
        {
            return Some(v);
        }
    }
    let (retries, degraded, recovered) = sink.totals();
    trace.push(format!(
        "chaos store retries={retries} degraded={degraded} recovered={recovered}"
    ));

    // The disk heals; rot one landed entry from outside the store's
    // atomic-rename discipline, then scrub.
    faulty.heal();
    if let Some(plan) = &panic_plan {
        plan.disarm();
    }
    let corrupted = rot_first_cert(dir);
    let scrub = match reflex_verify::ProofStore::open(dir) {
        Ok(store) => match store.scrub(None) {
            Ok(s) => s,
            Err(e) => {
                return Some(Violation {
                    step: config.steps,
                    kind: ViolationKind::Abort,
                    detail: format!("scrub failed: {e}"),
                })
            }
        },
        Err(e) => {
            return Some(Violation {
                step: config.steps,
                kind: ViolationKind::Abort,
                detail: format!("post-heal store open failed: {e}"),
            })
        }
    };
    trace.push(format!(
        "chaos scrub corrupted={corrupted} scanned={} quarantined={} tmp_removed={}",
        scrub.scanned,
        scrub.quarantined.len(),
        scrub.tmp_removed
    ));
    if corrupted > 0 && scrub.quarantined.is_empty() {
        return Some(Violation {
            step: config.steps,
            kind: ViolationKind::QuarantineEscape,
            detail: format!("{corrupted} rotted entries but nothing was quarantined"),
        });
    }

    // Post-scrub: the final kernel re-verified over the scrubbed store
    // must still match the baseline exactly (reuse or re-prove alike).
    let (final_name, final_program) = checked.last().expect("at least one step");
    let expected = baseline.last().expect("baseline matches ladder");
    match VerifySession::new(session_config(config, Some(dir)))
        .and_then(|s| s.verify_checked(final_program, &NullSink))
    {
        Ok(report) => {
            let t = tally(&report);
            trace.push(format!(
                "chaos post-scrub kernel={final_name} proved={}",
                t.proved
            ));
            check_against_baseline(
                config.steps,
                &report,
                expected,
                ViolationKind::QuarantineEscape,
            )
        }
        Err(e) => Some(Violation {
            step: config.steps,
            kind: ViolationKind::Abort,
            detail: format!("post-scrub verification aborted: {e}"),
        }),
    }
}

/// Flips a payload byte in the first frame of the alphabetically first
/// segment log and drops a stale temp file — damage the store's own
/// fsync-gated writer can never produce. The flip lands at offset 50,
/// past the 44-byte frame header and inside the first payload, so the
/// frame's integrity fingerprint provably breaks and the scrub must
/// quarantine the segment tail. Returns how many segments were rotted.
fn rot_first_cert(dir: &std::path::Path) -> usize {
    let mut rotted = 0usize;
    let mut segments: Vec<std::path::PathBuf> = Vec::new();
    if let Ok(rd) = std::fs::read_dir(dir) {
        for shard in rd.filter_map(|e| e.ok().map(|e| e.path())) {
            let is_shard = shard
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("shard-"));
            if !(is_shard && shard.is_dir()) {
                continue;
            }
            if let Ok(rd) = std::fs::read_dir(&shard) {
                segments.extend(
                    rd.filter_map(|e| e.ok().map(|e| e.path()))
                        .filter(|p| p.extension().is_some_and(|x| x == "log")),
                );
            }
        }
    }
    segments.sort();
    if let Some(path) = segments.first() {
        if let Ok(mut bytes) = std::fs::read(path) {
            if bytes.len() > 50 {
                bytes[50] ^= 0x40;
                if std::fs::write(path, &bytes).is_ok() {
                    rotted += 1;
                }
            }
        }
    }
    let _ = std::fs::write(dir.join(".tmp-0-sim-debris.cert"), b"crash debris");
    rotted
}

/// Watch: one fixed kernel re-verified every step while a seeded gate
/// flaps the store's disk; after the last step the disk is force-healed
/// and the store must re-attach.
pub(crate) fn run_watch(config: &SimConfig, trace: &mut Trace) -> Option<Violation> {
    let car = reflex_kernels::car::checked();
    let baseline = match VerifySession::new(session_config(config, None))
        .and_then(|s| s.verify_checked(&car, &NullSink))
    {
        Ok(report) => certs_of(&report),
        Err(e) => {
            return Some(Violation {
                step: 0,
                kind: ViolationKind::Abort,
                detail: format!("clean baseline failed: {e}"),
            })
        }
    };

    let dir = scratch_dir(config, "store");
    let _ = std::fs::remove_dir_all(&dir);
    let faulty = faulty_fs(config);
    faulty.heal();
    let mut cfg = session_config(config, Some(&dir));
    cfg.store_fs = Some(Arc::new(faulty.clone()) as Arc<dyn VerifyFs>);
    let sink = StoreSink::default();
    let mut watch = match WatchSession::new(cfg) {
        Ok(w) => w.with_backoff(BackoffPolicy {
            base_ms: 1,
            cap_ms: 4,
            retries: 2,
        }),
        Err(e) => {
            let _ = std::fs::remove_dir_all(&dir);
            return Some(Violation {
                step: 0,
                kind: ViolationKind::Abort,
                detail: format!("watch session failed to open: {e}"),
            });
        }
    };

    // The disk gate: a dedicated stream decides, step by step, whether
    // the disk is up or down.
    let mut gate = SimRng::new(config.stream_seed("fsgate"));
    let mut healthy = true;
    let mut violation = None;
    for step in 0..config.steps {
        if let Some(v) = injected_violation(config, trace, step) {
            violation = Some(v);
            break;
        }
        let up = !config.stream_enabled("fs") || !gate.random_bool(0.5);
        if up != healthy {
            healthy = up;
            if healthy {
                faulty.heal();
            } else {
                faulty.unheal();
            }
        }
        match watch.verify(&car, &sink) {
            Ok(it) => {
                let t = tally(&it.report);
                trace.push(format!(
                    "step {step} watch disk={} degraded={} proved={}",
                    if healthy { "up" } else { "down" },
                    it.degraded,
                    t.proved
                ));
                trace.step_done();
                if let Some(v) =
                    check_against_baseline(step, &it.report, &baseline, ViolationKind::CertMismatch)
                {
                    violation = Some(v);
                    break;
                }
            }
            Err(e) => {
                violation = Some(Violation {
                    step,
                    kind: ViolationKind::Abort,
                    detail: format!("watch iteration aborted: {e}"),
                });
                break;
            }
        }
    }

    // Force-heal and re-attach: a healthy disk must always win.
    if violation.is_none() {
        faulty.heal();
        violation = match watch.verify(&car, &sink) {
            Ok(it) => {
                let (retries, degraded, recovered) = sink.totals();
                trace.push(format!(
                    "watch final degraded={} retries={retries} degraded_events={degraded} recovered={recovered}",
                    it.degraded
                ));
                if watch.degraded() {
                    Some(Violation {
                        step: config.steps,
                        kind: ViolationKind::Unrecovered,
                        detail: "store still degraded after the disk healed".to_owned(),
                    })
                } else {
                    check_against_baseline(
                        config.steps,
                        &it.report,
                        &baseline,
                        ViolationKind::CertMismatch,
                    )
                }
            }
            Err(e) => Some(Violation {
                step: config.steps,
                kind: ViolationKind::Abort,
                detail: format!("final watch iteration aborted: {e}"),
            }),
        };
    }
    let _ = std::fs::remove_dir_all(&dir);
    violation
}

/// Soak: the supervised runtime under seeded workload and fault plans,
/// certificate monitor on; every component must recover and the monitor
/// must stay silent.
pub(crate) fn run_soak(config: &SimConfig, trace: &mut Trace) -> Option<Violation> {
    if let Some(k) = config.inject_violation_at {
        if k < config.steps {
            return injected_violation(config, trace, k);
        }
    }
    let world_on = config.stream_enabled("world");
    let soak_cfg = reflex_bench::soak::SoakConfig {
        steps: config.steps,
        seed: config.stream_seed("world"),
        fault_rate: if world_on { 0.01 } else { 0.0 },
        world_fault_rate: if world_on { 0.02 } else { 0.0 },
        monitor: true,
        jobs: 1,
    };
    let synth = synth_kernel(config);
    let kernels: Vec<(String, reflex_typeck::CheckedProgram)> = vec![
        ("car".to_owned(), reflex_kernels::car::checked()),
        (synth.name.clone(), synth.checked()),
    ];
    for (index, (name, program)) in kernels.iter().enumerate() {
        let outcome = reflex_bench::soak::soak_program(name, program, &soak_cfg, index);
        trace.push(format!(
            "soak kernel={name} steps={} injected={} incidents={} unrecovered={} trace_fp={:#018x} incident_fp={:#018x}",
            outcome.steps,
            outcome.injected,
            outcome.incidents,
            outcome.unrecovered,
            outcome.trace_fingerprint,
            outcome.incident_fingerprint
        ));
        trace.step_done();
        if let Some(failure) = &outcome.failure {
            return Some(Violation {
                step: index,
                kind: ViolationKind::MonitorAlarm,
                detail: format!("{name}: {failure}"),
            });
        }
        if outcome.unrecovered > 0 {
            return Some(Violation {
                step: index,
                kind: ViolationKind::Unrecovered,
                detail: format!(
                    "{name}: {} component(s) still crashed after cooldown",
                    outcome.unrecovered
                ),
            });
        }
    }
    None
}

/// The soak scenario's synthetic kernel (the `kernel` stream's base
/// variant of the `small` preset).
fn synth_kernel(config: &SimConfig) -> reflex_kernels::synth::SynthKernel {
    let gen = reflex_kernels::synth::SynthConfig::preset("small", config.stream_seed("kernel"))
        .expect("the small preset exists");
    reflex_kernels::synth::generate_variant(&gen, 0)
}

/// Scale-edits: the synthetic edit ladder verified variant by variant,
/// store-backed incremental reuse against a storeless serial baseline.
pub(crate) fn run_scale_edits(config: &SimConfig, trace: &mut Trace) -> Option<Violation> {
    let ladder = synth_ladder(config);
    let dir = scratch_dir(config, "store");
    let _ = std::fs::remove_dir_all(&dir);
    let mut violation = None;
    for (step, kernel) in ladder.iter().enumerate() {
        if let Some(v) = injected_violation(config, trace, step) {
            violation = Some(v);
            break;
        }
        let program = kernel.checked();
        let baseline = match VerifySession::new(session_config(config, None))
            .and_then(|s| s.verify_checked(&program, &NullSink))
        {
            Ok(report) => certs_of(&report),
            Err(e) => {
                violation = Some(Violation {
                    step,
                    kind: ViolationKind::Abort,
                    detail: format!("serial baseline aborted: {e}"),
                });
                break;
            }
        };
        match VerifySession::new(session_config(config, Some(&dir)))
            .and_then(|s| s.verify_checked(&program, &NullSink))
        {
            Ok(report) => {
                let t = tally(&report);
                trace.push(format!(
                    "step {step} scale kernel={} proved={} properties={}",
                    kernel.name,
                    t.proved,
                    report.outcomes.len()
                ));
                trace.step_done();
                if let Some(v) =
                    check_against_baseline(step, &report, &baseline, ViolationKind::CertMismatch)
                {
                    violation = Some(v);
                    break;
                }
            }
            Err(e) => {
                violation = Some(Violation {
                    step,
                    kind: ViolationKind::Abort,
                    detail: format!("store-backed session aborted: {e}"),
                });
                break;
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    violation
}

/// Compaction racing live verification: the synthetic edit ladder runs
/// through one handle of a shared log-structured store while a second
/// handle compacts the same store after every step, all over the seeded
/// faulty disk. Compaction — successful or aborted by an injected fault
/// — must never change the live entry set, and the served certificates
/// must stay bit-identical to the clean baseline. The run ends like the
/// chaos scenario: heal, rot one landed segment externally, scrub
/// through the *live* handle, and re-verify.
pub(crate) fn run_compaction_race(config: &SimConfig, trace: &mut Trace) -> Option<Violation> {
    let ladder = synth_ladder(config);
    let checked: Vec<_> = ladder
        .iter()
        .map(|k| (k.name.clone(), k.checked()))
        .collect();
    let options = ProverOptions::default();

    // Clean storeless baseline per ladder variant: the ground truth.
    let mut baseline: Vec<Vec<(String, Certificate)>> = Vec::with_capacity(checked.len());
    for (step, (_, program)) in checked.iter().enumerate() {
        match VerifySession::new(session_config(config, None))
            .and_then(|s| s.verify_checked(program, &NullSink))
        {
            Ok(report) => baseline.push(certs_of(&report)),
            Err(e) => {
                return Some(Violation {
                    step,
                    kind: ViolationKind::Abort,
                    detail: format!("clean baseline failed: {e}"),
                })
            }
        }
    }

    let dir = scratch_dir(config, "store");
    let _ = std::fs::remove_dir_all(&dir);
    let faulty = faulty_fs(config);
    let store = match reflex_verify::ProofStore::open_with(
        &dir,
        Arc::new(faulty.clone()) as Arc<dyn VerifyFs>,
    ) {
        Ok(s) => s,
        Err(_) => {
            // The schedule faulted the very mkdir: nothing to race over.
            let _ = std::fs::remove_dir_all(&dir);
            trace.push("compaction-race store never opened".to_owned());
            trace.step_done();
            return None;
        }
    };
    // The racing handle: a clone shares the same log, index and hot tier.
    let compactor = store.clone();

    let mut violation = None;
    for (step, ((name, program), expected)) in checked.iter().zip(&baseline).enumerate() {
        if let Some(v) = injected_violation(config, trace, step) {
            violation = Some(v);
            break;
        }
        let sr = match reflex_verify::verify_with_store(program, &options, &store, 1) {
            Ok(sr) => sr,
            Err(e) => {
                violation = Some(Violation {
                    step,
                    kind: ViolationKind::Abort,
                    detail: format!("store-backed verification aborted: {e}"),
                });
                break;
            }
        };
        if let Some(v) = check_outcomes(
            step,
            &sr.report.outcomes,
            expected,
            ViolationKind::CertMismatch,
        ) {
            violation = Some(v);
            break;
        }

        // The race: compact through the second handle while the first
        // keeps its hot tier and index live. Entry-set identity is the
        // invariant — whether the pass commits or an injected fault
        // aborts it mid-way, the store must keep serving the same keys.
        // Odd steps compact over a healed disk so the commit path is
        // exercised too; heal/unheal only gate injection, the operation
        // counter keeps advancing, so the schedule stays deterministic.
        let quiet = step % 2 == 1;
        if quiet {
            faulty.heal();
        }
        let _ = store.flush();
        let before = store.entries();
        let compacted = match compactor.compact(Some((program, &options))) {
            Ok(report) => {
                trace.push(format!(
                    "step {step} race kernel={name} loaded={} saved={} compact: ok={} superseded={} quarantined={}",
                    sr.loaded,
                    sr.saved,
                    report.ok,
                    report.superseded,
                    report.quarantined.len()
                ));
                true
            }
            Err(_) => {
                // The error text carries scratch paths; keep the trace
                // deterministic and record only the fact.
                trace.push(format!(
                    "step {step} race kernel={name} loaded={} saved={} compact: aborted by fault",
                    sr.loaded, sr.saved
                ));
                false
            }
        };
        if quiet {
            faulty.unheal();
        }
        let after = store.entries();
        if after != before {
            violation = Some(Violation {
                step,
                kind: ViolationKind::CompactionLoss,
                detail: format!(
                    "live set changed across {} compaction: {} entries before, {} after",
                    if compacted {
                        "a committed"
                    } else {
                        "an aborted"
                    },
                    before.len(),
                    after.len()
                ),
            });
            break;
        }
        trace.step_done();
    }
    if violation.is_some() {
        let _ = std::fs::remove_dir_all(&dir);
        return violation;
    }

    // Heal, rot one landed segment from outside the append discipline,
    // scrub through the live handle, and the rot must be quarantined.
    faulty.heal();
    let corrupted = rot_first_cert(&dir);
    let scrub = match store.scrub(None) {
        Ok(s) => s,
        Err(e) => {
            let _ = std::fs::remove_dir_all(&dir);
            return Some(Violation {
                step: config.steps,
                kind: ViolationKind::Abort,
                detail: format!("post-heal scrub failed: {e}"),
            });
        }
    };
    trace.push(format!(
        "race scrub corrupted={corrupted} scanned={} quarantined={} migrated={}",
        scrub.scanned,
        scrub.quarantined.len(),
        scrub.migrated
    ));
    if corrupted > 0 && scrub.quarantined.is_empty() {
        let _ = std::fs::remove_dir_all(&dir);
        return Some(Violation {
            step: config.steps,
            kind: ViolationKind::QuarantineEscape,
            detail: format!("{corrupted} rotted segments but nothing was quarantined"),
        });
    }

    // Post-scrub: the final variant re-verified over the scrubbed store
    // must still match the baseline exactly (reuse or re-prove alike).
    let (_, final_program) = checked.last().expect("at least one step");
    let expected = baseline.last().expect("baseline matches ladder");
    let violation = match reflex_verify::verify_with_store(final_program, &options, &store, 1) {
        Ok(sr) => {
            trace.push(format!(
                "race post-scrub loaded={} entries={}",
                sr.loaded,
                store.entries().len()
            ));
            check_outcomes(
                config.steps,
                &sr.report.outcomes,
                expected,
                ViolationKind::QuarantineEscape,
            )
        }
        Err(e) => Some(Violation {
            step: config.steps,
            kind: ViolationKind::Abort,
            detail: format!("post-scrub verification aborted: {e}"),
        }),
    };
    let _ = std::fs::remove_dir_all(&dir);
    violation
}

/// The service configuration the resident-core scenarios run under: one
/// worker so request execution is serial (see the module docs — the
/// concurrency under test is the *scheduler's*, across clients, and
/// its round-robin pick order is only deterministic at one executor),
/// prover `jobs = 1`, simulated time, and a scratch store.
fn storm_config(dir: &std::path::Path, record_schedule: bool) -> ServiceConfig {
    ServiceConfig {
        store_dir: Some(dir.to_string_lossy().into_owned()),
        jobs: 1,
        workers: 1,
        clock: Some(Arc::new(VirtualClock::new(1_000))),
        record_schedule,
        ..ServiceConfig::default()
    }
}

/// A full no-budget verify request for one synthetic kernel.
fn verify_request(kernel: &reflex_kernels::synth::SynthKernel) -> Request {
    Request::Verify {
        name: kernel.name.clone(),
        source: kernel.source.clone(),
        property: None,
        budget_ms: None,
        budget_nodes: None,
        want_events: false,
        deadline_ms: None,
        idempotency_key: None,
    }
}

/// One blocking verify request through a service core, unwrapped to its
/// session report.
fn request_verify(
    core: &ServiceCore,
    client: u64,
    kernel: &reflex_kernels::synth::SynthKernel,
) -> Result<SessionReport, String> {
    match core.request(client, verify_request(kernel), Arc::new(NullSink)) {
        Ok(Reply::Verify(report)) => Ok(*report),
        Ok(other) => Err(format!("unexpected reply to a verify request: {other:?}")),
        Err(e) => Err(e.to_string()),
    }
}

/// Client storm: simulated clients hammer one resident [`ServiceCore`]
/// over a shared warm store — a greedy client bursts three requests per
/// step while two single-shot clients interleave, each wave fully
/// drained before the next. Every served certificate must match the
/// storeless serial baseline (zero cross-client mismatches, store and
/// cache reuse included) and the recorded round-robin schedule must
/// serve every client its whole wave every step (no starved client).
pub(crate) fn run_client_storm(config: &SimConfig, trace: &mut Trace) -> Option<Violation> {
    const CLIENTS: usize = 3;
    const BURST: usize = 3;

    let ladder = synth_ladder(config);
    // Storeless serial baseline per variant: the ground truth.
    let mut baseline: Vec<Vec<(String, Certificate)>> = Vec::with_capacity(ladder.len());
    for (step, kernel) in ladder.iter().enumerate() {
        match VerifySession::new(session_config(config, None))
            .and_then(|s| s.verify_checked(&kernel.checked(), &NullSink))
        {
            Ok(report) => baseline.push(certs_of(&report)),
            Err(e) => {
                return Some(Violation {
                    step,
                    kind: ViolationKind::Abort,
                    detail: format!("clean baseline failed: {e}"),
                })
            }
        }
    }

    let dir = scratch_dir(config, "store");
    let _ = std::fs::remove_dir_all(&dir);
    let core = match ServiceCore::start(storm_config(&dir, true)) {
        Ok(core) => core,
        Err(e) => {
            let _ = std::fs::remove_dir_all(&dir);
            return Some(Violation {
                step: 0,
                kind: ViolationKind::Abort,
                detail: format!("service core failed to start: {e}"),
            });
        }
    };

    let mut violation = None;
    let mut schedule_seen = 0usize;
    'steps: for step in 0..config.steps {
        if let Some(v) = injected_violation(config, trace, step) {
            violation = Some(v);
            break;
        }
        // Submit the step's whole wave, then await every ticket: the
        // schedule decomposes into per-step segments and the next wave
        // never races this one.
        let mut tickets = Vec::new();
        let mut wave_id = 0u64;
        for client in 0..CLIENTS {
            let variant = (step + client) % ladder.len();
            let count = if client == 0 { BURST } else { 1 };
            for _ in 0..count {
                wave_id += 1;
                match core.submit(
                    client as u64,
                    (step as u64) * 100 + wave_id,
                    verify_request(&ladder[variant]),
                    Arc::new(NullSink),
                ) {
                    Ok(ticket) => tickets.push((client, variant, ticket)),
                    Err(e) => {
                        violation = Some(Violation {
                            step,
                            kind: ViolationKind::Abort,
                            detail: format!("client {client} submit refused: {e}"),
                        });
                        break 'steps;
                    }
                }
            }
        }
        let mut proved = 0usize;
        for (client, variant, ticket) in tickets {
            match ticket.wait() {
                Ok(Reply::Verify(report)) => {
                    let t = tally(&report);
                    if t.proved != report.outcomes.len() {
                        violation = Some(Violation {
                            step,
                            kind: ViolationKind::Abort,
                            detail: format!(
                                "client {client} left {} propert(y/ies) unproved",
                                report.outcomes.len() - t.proved
                            ),
                        });
                        break 'steps;
                    }
                    proved += t.proved;
                    if let Some(v) = check_against_baseline(
                        step,
                        &report,
                        &baseline[variant],
                        ViolationKind::CertMismatch,
                    ) {
                        violation = Some(Violation {
                            detail: format!("client {client}: {}", v.detail),
                            ..v
                        });
                        break 'steps;
                    }
                }
                Ok(other) => {
                    violation = Some(Violation {
                        step,
                        kind: ViolationKind::Abort,
                        detail: format!("client {client} got an unexpected reply: {other:?}"),
                    });
                    break 'steps;
                }
                Err(e) => {
                    violation = Some(Violation {
                        step,
                        kind: ViolationKind::Abort,
                        detail: format!("client {client} request failed: {e}"),
                    });
                    break 'steps;
                }
            }
        }
        // Fairness: this step's schedule segment must hold exactly the
        // wave — the burst for the greedy client, one pick for each
        // single-shot client. A short count is a starved client.
        let schedule = core.schedule();
        let mut served = [0usize; CLIENTS];
        for &client in &schedule[schedule_seen..] {
            served[client as usize] += 1;
        }
        schedule_seen = schedule.len();
        for (client, &count) in served.iter().enumerate() {
            let expected = if client == 0 { BURST } else { 1 };
            if count != expected {
                violation = Some(Violation {
                    step,
                    kind: ViolationKind::Starvation,
                    detail: format!(
                        "client {client} was served {count} of its {expected} request(s)"
                    ),
                });
                break 'steps;
            }
        }
        trace.push(format!(
            "step {step} storm served c0={} c1={} c2={} proved={proved}",
            served[0], served[1], served[2]
        ));
        trace.step_done();
    }
    core.shutdown();
    if violation.is_none() {
        let stats = core.stats().snapshot();
        trace.push(format!(
            "storm totals submitted={} served={} busy={}",
            stats.requests_submitted, stats.requests_served, stats.rejected_busy
        ));
    }
    let _ = std::fs::remove_dir_all(&dir);
    violation
}

/// Daemon crash and restart: a resident core verifies the front half of
/// the edit ladder, group-committing after every request, then is
/// [`ServiceCore::abandon`]ed with a request still queued — the crash
/// path, queued work dropped, final flush skipped. A fresh core over
/// the same store directory must serve every committed certificate warm
/// (zero re-proves for the front half), prove the back half fresh, all
/// byte-identical to the storeless baseline, and a closing scrub must
/// quarantine nothing.
pub(crate) fn run_daemon_restart(config: &SimConfig, trace: &mut Trace) -> Option<Violation> {
    let ladder = synth_ladder(config);
    // Storeless serial baseline per variant: the ground truth on both
    // sides of the crash.
    let mut baseline: Vec<Vec<(String, Certificate)>> = Vec::with_capacity(ladder.len());
    for (step, kernel) in ladder.iter().enumerate() {
        match VerifySession::new(session_config(config, None))
            .and_then(|s| s.verify_checked(&kernel.checked(), &NullSink))
        {
            Ok(report) => baseline.push(certs_of(&report)),
            Err(e) => {
                return Some(Violation {
                    step,
                    kind: ViolationKind::Abort,
                    detail: format!("clean baseline failed: {e}"),
                })
            }
        }
    }

    let dir = scratch_dir(config, "store");
    let _ = std::fs::remove_dir_all(&dir);
    let split = config.steps.div_ceil(2);

    // Phase one: the first core serves the ladder's front half.
    let core = match ServiceCore::start(storm_config(&dir, false)) {
        Ok(core) => core,
        Err(e) => {
            let _ = std::fs::remove_dir_all(&dir);
            return Some(Violation {
                step: 0,
                kind: ViolationKind::Abort,
                detail: format!("service core failed to start: {e}"),
            });
        }
    };
    let mut violation = None;
    for (step, kernel) in ladder.iter().take(split).enumerate() {
        if let Some(v) = injected_violation(config, trace, step) {
            violation = Some(v);
            break;
        }
        match request_verify(&core, 0, kernel) {
            Ok(report) => {
                let t = tally(&report);
                if t.proved != report.outcomes.len() {
                    violation = Some(Violation {
                        step,
                        kind: ViolationKind::Abort,
                        detail: format!(
                            "pre-crash core left {} propert(y/ies) unproved",
                            report.outcomes.len() - t.proved
                        ),
                    });
                    break;
                }
                trace.push(format!(
                    "step {step} serve kernel={} proved={} saved={}",
                    kernel.name, t.proved, report.store_saved
                ));
                if let Some(v) = check_against_baseline(
                    step,
                    &report,
                    &baseline[step],
                    ViolationKind::CertMismatch,
                ) {
                    violation = Some(v);
                    break;
                }
                // The daemon's group-commit cadence: flush after every
                // served request, so the crash below only loses work
                // accepted after the last commit.
                if let Some(store) = core.env().store() {
                    let _ = store.flush();
                }
            }
            Err(e) => {
                violation = Some(Violation {
                    step,
                    kind: ViolationKind::Abort,
                    detail: format!("pre-crash request failed: {e}"),
                });
                break;
            }
        }
    }
    if violation.is_some() {
        core.abandon();
        let _ = std::fs::remove_dir_all(&dir);
        return violation;
    }

    // The crash: kill the core with one more request still in flight.
    // The doomed request re-verifies an already-committed variant, so
    // the store's on-disk state is the same whether the worker got to it
    // or the abandon dropped it — the trace stays deterministic.
    let _ = core.submit(0, u64::MAX, verify_request(&ladder[0]), Arc::new(NullSink));
    core.abandon();
    trace.push("crash: core abandoned mid-flight (no final group commit)".to_owned());

    // Phase two: a fresh core over the same directory. The front half
    // must be served warm from the store; the back half proves fresh.
    let core = match ServiceCore::start(storm_config(&dir, false)) {
        Ok(core) => core,
        Err(e) => {
            let _ = std::fs::remove_dir_all(&dir);
            return Some(Violation {
                step: split,
                kind: ViolationKind::RestartLoss,
                detail: format!("restart against the crashed store failed: {e}"),
            });
        }
    };
    for (step, kernel) in ladder.iter().enumerate() {
        if step >= split {
            if let Some(v) = injected_violation(config, trace, step) {
                violation = Some(v);
                break;
            }
        }
        match request_verify(&core, 0, kernel) {
            Ok(report) => {
                let t = tally(&report);
                if t.proved != report.outcomes.len() {
                    violation = Some(Violation {
                        step,
                        kind: ViolationKind::Abort,
                        detail: format!(
                            "post-crash core left {} propert(y/ies) unproved",
                            report.outcomes.len() - t.proved
                        ),
                    });
                    break;
                }
                trace.push(format!(
                    "step {step} restart kernel={} proved={} loaded={}",
                    kernel.name, t.proved, report.store_loaded
                ));
                if step < split && report.store_loaded != report.outcomes.len() {
                    violation = Some(Violation {
                        step,
                        kind: ViolationKind::RestartLoss,
                        detail: format!(
                            "kernel `{}`: only {} of {} certificates served warm after restart",
                            kernel.name,
                            report.store_loaded,
                            report.outcomes.len()
                        ),
                    });
                    break;
                }
                if let Some(v) = check_against_baseline(
                    step,
                    &report,
                    &baseline[step],
                    ViolationKind::CertMismatch,
                ) {
                    violation = Some(v);
                    break;
                }
                trace.step_done();
            }
            Err(e) => {
                violation = Some(Violation {
                    step,
                    kind: ViolationKind::Abort,
                    detail: format!("post-crash request failed: {e}"),
                });
                break;
            }
        }
    }

    // The crash must have left nothing for the scrub to quarantine: the
    // store's append discipline makes a dropped batch invisible, never
    // corrupt.
    if violation.is_none() {
        match core.env().store().map(|s| s.scrub(None)) {
            Some(Ok(scrub)) => {
                trace.push(format!(
                    "restart scrub scanned={} quarantined={} tmp_removed={}",
                    scrub.scanned,
                    scrub.quarantined.len(),
                    scrub.tmp_removed
                ));
                if !scrub.quarantined.is_empty() {
                    violation = Some(Violation {
                        step: config.steps,
                        kind: ViolationKind::QuarantineEscape,
                        detail: format!(
                            "{} entr(y/ies) quarantined after a clean-crash restart",
                            scrub.quarantined.len()
                        ),
                    });
                }
            }
            Some(Err(e)) => {
                violation = Some(Violation {
                    step: config.steps,
                    kind: ViolationKind::Abort,
                    detail: format!("post-restart scrub failed: {e}"),
                });
            }
            None => {
                violation = Some(Violation {
                    step: config.steps,
                    kind: ViolationKind::RestartLoss,
                    detail: "store not attached after restart".to_owned(),
                });
            }
        }
    }
    core.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    violation
}
