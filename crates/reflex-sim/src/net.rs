//! FaultyNet — deterministic network-fault injection — and the two
//! scenarios that drive the full client→daemon path through it.
//!
//! [`FaultyNet`] is the transport-level sibling of the store's
//! `FaultyFs`: it wraps a real socket in a [`Duplex`] the service
//! client speaks frames over, and mutates the client→server byte
//! stream at *frame* granularity — drop-and-cut, duplicate, truncate,
//! cut-after-delivery, bit-flip — with every decision drawn from the
//! `net` stream of the run's seed tree by a global frame counter.
//! Nothing is keyed on time: the same seed injects the same fault into
//! the same frame on every machine, which is what lets a violating run
//! shrink and replay bit for bit.
//!
//! The scenarios boot a real in-process [`serve`] loop on a scratch
//! unix socket, so the path under test is the production one: framed
//! protocol, pipelined reader, waiter threads, admission control, the
//! idempotency window and the retrying SDK.

use std::io::{self, Read, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use reflex_driver::{NullSink, SessionConfig, VerifySession};
use reflex_service::protocol::{
    encode_hello, read_frame, write_frame, Frame, ERROR, ERR_IDLE, HELLO, HELLO_OK, REQUEST,
};
use reflex_service::{
    serve, Client, ClientError, RetryPolicy, RetryingClient, ServerConfig, ServerHandle,
    ServiceConfig, ServiceCore,
};
use reflex_verify::Certificate;

use crate::{injected_violation, scratch_dir, SimConfig, Trace, Violation, ViolationKind};

/// Fault probability per frame, parts per million. Fixed rather than
/// configurable so repro files need no new fields: the `net` stream
/// seed alone decides which frames are hit.
const NET_FAULT_PPM: u64 = 250_000;

/// What FaultyNet does to one outgoing frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NetFault {
    /// Pass the frame through untouched.
    Deliver,
    /// Swallow the frame and cut the connection: a partition before
    /// the request ever reached the server.
    DropCut,
    /// Deliver the frame twice: a retransmission the dedup window must
    /// absorb without doing the work twice.
    Duplicate,
    /// Deliver half the frame, then cut: a mid-frame disconnect the
    /// server must survive without a submit.
    TruncateCut,
    /// Deliver the frame, then cut: the request lands but its reply is
    /// lost — the idempotent-retry path.
    DeliverCut,
    /// Deliver the frame with one byte flipped: hostile corruption the
    /// server must answer with a typed error, never a panic.
    BitFlip,
}

/// The shared, seeded fault schedule. One plan spans every connection a
/// scenario client dials: the frame counter is global, so a retried
/// frame rolls a fresh decision instead of replaying the fault that
/// killed it (which would loop forever), while staying a pure function
/// of `(seed, frames sent so far)`.
pub struct NetPlan {
    seed: u64,
    rate_ppm: u64,
    /// Frames decided so far, across all connections on this plan.
    frames: AtomicU64,
    /// Whether the corruption flavor is in the rotation. The scenarios
    /// leave it out (a corrupt frame draws a non-retryable typed error
    /// by design, which would turn an injected fault into a scenario
    /// failure); the hostile-peer tests switch it on.
    corrupt: bool,
}

impl NetPlan {
    /// A plan firing on `rate_ppm` of frames, seeded from `seed`.
    pub fn new(seed: u64, rate_ppm: u64, corrupt: bool) -> Arc<NetPlan> {
        Arc::new(NetPlan {
            seed,
            rate_ppm,
            frames: AtomicU64::new(0),
            corrupt,
        })
    }

    /// Decides the fate of the next frame of kind `kind`.
    fn roll(&self, kind: u8) -> NetFault {
        let index = self.frames.fetch_add(1, Ordering::Relaxed);
        let draw = reflex_rng::stream_u64(self.seed, index);
        if self.rate_ppm == 0 || draw % 1_000_000 >= self.rate_ppm {
            return NetFault::Deliver;
        }
        let flavors: &[NetFault] = if self.corrupt {
            &[
                NetFault::DropCut,
                NetFault::Duplicate,
                NetFault::TruncateCut,
                NetFault::DeliverCut,
                NetFault::BitFlip,
            ]
        } else {
            &[
                NetFault::DropCut,
                NetFault::Duplicate,
                NetFault::TruncateCut,
                NetFault::DeliverCut,
            ]
        };
        let mut fault = flavors[usize::try_from(draw >> 32).unwrap_or(0) % flavors.len()];
        // Only requests may be duplicated: a doubled handshake or
        // control frame is a protocol error, not a retransmission.
        if fault == NetFault::Duplicate && kind != REQUEST {
            fault = NetFault::DeliverCut;
        }
        fault
    }

    /// The seeded byte position to corrupt inside a frame of `len`
    /// total bytes (past the length prefix, so framing survives and the
    /// *payload* corruption reaches the decoder).
    fn flip_at(&self, index: u64, len: usize) -> usize {
        let body = len.saturating_sub(4).max(1);
        4 + usize::try_from(reflex_rng::stream_u64(
            reflex_rng::derive(self.seed, "flip"),
            index,
        ))
        .unwrap_or(0)
            % body
    }
}

/// A fault-injecting [`reflex_service::Duplex`] over a unix socket.
///
/// Writes are buffered to frame boundaries; each complete frame rolls
/// the plan and is delivered, mutated or swallowed. A cutting fault
/// shuts the socket down both ways, so the client's next read sees a
/// clean EOF (a typed `Io` failure upstream) instead of hanging on a
/// reply that will never come.
pub struct FaultyNet {
    stream: UnixStream,
    plan: Arc<NetPlan>,
    /// Outgoing bytes not yet assembled into a complete frame.
    out: Vec<u8>,
    dead: bool,
}

impl FaultyNet {
    /// Wraps `stream` under `plan`.
    pub fn new(stream: UnixStream, plan: Arc<NetPlan>) -> FaultyNet {
        FaultyNet {
            stream,
            plan,
            out: Vec::new(),
            dead: false,
        }
    }

    fn cut(&mut self) {
        self.dead = true;
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }

    /// Drains every complete frame buffered in `out` through the plan.
    fn pump(&mut self) -> io::Result<()> {
        while !self.dead && self.out.len() >= 4 {
            let len = u32::from_le_bytes([self.out[0], self.out[1], self.out[2], self.out[3]]);
            let total = 4 + usize::try_from(len).unwrap_or(usize::MAX);
            if self.out.len() < total {
                break;
            }
            let frame: Vec<u8> = self.out.drain(..total).collect();
            let kind = frame[4];
            let index = self.plan.frames.load(Ordering::Relaxed);
            match self.plan.roll(kind) {
                NetFault::Deliver => self.stream.write_all(&frame)?,
                NetFault::DropCut => self.cut(),
                NetFault::Duplicate => {
                    self.stream.write_all(&frame)?;
                    self.stream.write_all(&frame)?;
                }
                NetFault::TruncateCut => {
                    self.stream.write_all(&frame[..total / 2])?;
                    self.cut();
                }
                NetFault::DeliverCut => {
                    self.stream.write_all(&frame)?;
                    self.cut();
                }
                NetFault::BitFlip => {
                    let mut mutated = frame;
                    let at = self.plan.flip_at(index, total);
                    mutated[at] ^= 0x20;
                    self.stream.write_all(&mutated)?;
                }
            }
        }
        Ok(())
    }
}

impl Read for FaultyNet {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.dead {
            // EOF: upstream this is `ProtoError::Closed`, a typed,
            // retryable transport failure.
            return Ok(0);
        }
        self.stream.read(buf)
    }
}

impl Write for FaultyNet {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.dead {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "connection cut by injected fault",
            ));
        }
        self.out.extend_from_slice(buf);
        self.pump()?;
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.dead {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "connection cut by injected fault",
            ));
        }
        self.stream.flush()
    }
}

/// A real in-process daemon on a scratch unix socket.
struct ScratchServer {
    dir: PathBuf,
    socket: PathBuf,
    handle: ServerHandle,
    core: Arc<ServiceCore>,
}

impl ScratchServer {
    fn boot(config: &SimConfig, tag: &str, server: ServerConfig) -> Result<ScratchServer, String> {
        let dir = scratch_dir(config, tag);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).map_err(|e| format!("scratch dir: {e}"))?;
        let socket = dir.join("rxd.sock");
        let core = Arc::new(
            ServiceCore::start(ServiceConfig {
                jobs: 1,
                workers: 1,
                ..ServiceConfig::default()
            })
            .map_err(|e| format!("core start: {e}"))?,
        );
        let handle = serve(
            Arc::clone(&core),
            &ServerConfig {
                unix: Some(socket.clone()),
                ..server
            },
        )
        .map_err(|e| format!("serve: {e}"))?;
        Ok(ScratchServer {
            dir,
            socket,
            handle,
            core,
        })
    }

    fn stop(self) {
        self.handle.stop();
        self.core.shutdown();
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// The scenario kernel (the `kernel` stream's base variant of the
/// `small` preset) and its clean storeless baseline certificates.
fn kernel_and_baseline(
    config: &SimConfig,
) -> Result<
    (
        reflex_kernels::synth::SynthKernel,
        Vec<(String, Certificate)>,
    ),
    String,
> {
    let gen = reflex_kernels::synth::SynthConfig::preset("small", config.stream_seed("kernel"))
        .expect("the small preset exists");
    let kernel = reflex_kernels::synth::generate_variant(&gen, 0);
    let report = VerifySession::new(SessionConfig {
        jobs: 1,
        ..SessionConfig::default()
    })
    .and_then(|s| s.verify_checked(&kernel.checked(), &NullSink))
    .map_err(|e| format!("clean baseline failed: {e}"))?;
    let baseline = report
        .outcomes
        .iter()
        .filter_map(|(name, o)| o.certificate().map(|c| (name.clone(), c.clone())))
        .collect();
    Ok((kernel, baseline))
}

fn abort(step: usize, detail: String) -> Option<Violation> {
    Some(Violation {
        step,
        kind: ViolationKind::Abort,
        detail,
    })
}

/// A stable one-word class for a client failure, for the trace.
fn error_class(e: &ClientError) -> String {
    match e {
        ClientError::Io(_) => "io".to_owned(),
        ClientError::Protocol(_) => "protocol".to_owned(),
        ClientError::Remote { code, .. } => format!("remote-{code}"),
    }
}

/// Net-partition: a retrying client pushes one logical verify per step
/// through FaultyNet at a real daemon. Faults cut, drop, duplicate and
/// truncate frames mid-stream; the retry layer (idempotency keys
/// included) must land every request as either a baseline-identical
/// report or a typed error — never a hang, never a protocol error and
/// never duplicated proof work.
pub(crate) fn run_net_partition(config: &SimConfig, trace: &mut Trace) -> Option<Violation> {
    let (kernel, baseline) = match kernel_and_baseline(config) {
        Ok(v) => v,
        Err(e) => return abort(0, e),
    };
    let server = match ScratchServer::boot(config, "net", ServerConfig::default()) {
        Ok(s) => s,
        Err(e) => return abort(0, e),
    };
    let rate = if config.stream_enabled("net") {
        NET_FAULT_PPM
    } else {
        0
    };
    let plan = NetPlan::new(config.stream_seed("net"), rate, false);
    trace.push(format!(
        "net-partition kernel={} rate_ppm={rate}",
        kernel.name
    ));

    let socket = server.socket.clone();
    let dial_plan = Arc::clone(&plan);
    let mut client = RetryingClient::with_dialer(
        Box::new(move || {
            let stream = UnixStream::connect(&socket)
                .map_err(|e| ClientError::Io(format!("connect: {e}")))?;
            // Watchdog only: the fault plan always ends an attempt in a
            // reply or an EOF, so this read deadline never fires on a
            // correct stack — but a buggy one must fail typed, not hang.
            let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
            Client::over(Box::new(FaultyNet::new(stream, Arc::clone(&dial_plan))))
        }),
        RetryPolicy {
            max_attempts: 6,
            base_delay_ms: 1,
            max_delay_ms: 8,
            seed: reflex_rng::derive(config.stream_seed("net"), "client"),
        },
    );
    // Backoff sleeps are part of the *schedule* (seeded, recorded in
    // RetryStats), not of the simulation's wall clock.
    client.set_sleeper(Box::new(|_| {}));

    let mut violation = None;
    for step in 0..config.steps {
        if let Some(v) = injected_violation(config, trace, step) {
            violation = Some(v);
            break;
        }
        let before = client.stats();
        let request = reflex_service::Request::Verify {
            name: kernel.name.clone(),
            source: kernel.source.clone(),
            property: None,
            budget_ms: None,
            budget_nodes: None,
            want_events: false,
            deadline_ms: None,
            idempotency_key: None,
        };
        let result = client.verify(request, &mut |_| {});
        let after = client.stats();
        let attempts = 1 + after.retries - before.retries;
        match result {
            Ok(report) => {
                let served: Vec<(String, Certificate)> = report
                    .outcomes
                    .iter()
                    .filter_map(|(name, o)| o.certificate().map(|c| (name.clone(), c.clone())))
                    .collect();
                let matches = served == baseline;
                trace.push(format!(
                    "step {step} verify attempts={attempts} outcome=ok proved={} certs_match={matches}",
                    served.len()
                ));
                if !matches {
                    violation = Some(Violation {
                        step,
                        kind: ViolationKind::CertMismatch,
                        detail: format!(
                            "retried verify served {} certificate(s) differing from the clean baseline",
                            served.len()
                        ),
                    });
                    break;
                }
            }
            Err(e) if matches!(e, ClientError::Protocol(_)) => {
                trace.push(format!(
                    "step {step} verify attempts={attempts} outcome=error:{}",
                    error_class(&e)
                ));
                violation = Some(Violation {
                    step,
                    kind: ViolationKind::LostReply,
                    detail: format!("client left protocol-confused: {e}"),
                });
                break;
            }
            Err(e) => {
                // Typed and final after a full retry budget: a legal
                // outcome under heavy injected loss.
                trace.push(format!(
                    "step {step} verify attempts={attempts} outcome=error:{}",
                    error_class(&e)
                ));
            }
        }
        trace.step_done();
    }

    let stats = server.core.stats().snapshot();
    if violation.is_none() {
        let requests = config.steps as u64;
        let dedup_ok = stats.requests_executed <= requests;
        trace.push(format!(
            "net-partition done requests={requests} connects={} retries={} dedup_ok={dedup_ok}",
            client.stats().connects,
            client.stats().retries,
        ));
        if !dedup_ok {
            violation = Some(Violation {
                step: config.steps.saturating_sub(1),
                kind: ViolationKind::DuplicateWork,
                detail: format!(
                    "{} executions for {requests} idempotent request(s): the dedup window re-ran retried work",
                    stats.requests_executed
                ),
            });
        }
    }
    server.stop();
    violation
}

/// Slow-client: each step parks a slow-loris peer mid-frame on a daemon
/// with a tight frame deadline, proves the worker pool still serves a
/// well-behaved client underneath it, then collects the slow peer's
/// typed reap. The peer must be answered with [`ERR_IDLE`] before the
/// close — a silent drop or a hang is a violation.
pub(crate) fn run_slow_client(config: &SimConfig, trace: &mut Trace) -> Option<Violation> {
    let (kernel, baseline) = match kernel_and_baseline(config) {
        Ok(v) => v,
        Err(e) => return abort(0, e),
    };
    let server = match ScratchServer::boot(
        config,
        "slow",
        ServerConfig {
            frame_timeout_ms: 60,
            ..ServerConfig::default()
        },
    ) {
        Ok(s) => s,
        Err(e) => return abort(0, e),
    };
    trace.push(format!(
        "slow-client kernel={} frame_timeout_ms=60",
        kernel.name
    ));

    let mut violation = None;
    for step in 0..config.steps {
        if let Some(v) = injected_violation(config, trace, step) {
            violation = Some(v);
            break;
        }
        match slow_client_step(config, &server.socket, &kernel, &baseline, step) {
            Ok(line) => trace.push(line),
            Err(v) => {
                violation = Some(v);
                break;
            }
        }
        trace.step_done();
    }

    if violation.is_none() {
        let stats = server.core.stats().snapshot();
        let reaped_ok = stats.reaped_connections >= trace.steps_run as u64;
        trace.push(format!("slow-client done reaped_ok={reaped_ok}"));
        if !reaped_ok {
            violation = Some(Violation {
                step: config.steps.saturating_sub(1),
                kind: ViolationKind::Stall,
                detail: "reaped-connection counter below the number of slow peers parked"
                    .to_owned(),
            });
        }
    }
    server.stop();
    violation
}

/// One slow-client step. Returns the deterministic trace line, or the
/// violation.
fn slow_client_step(
    _config: &SimConfig,
    socket: &Path,
    kernel: &reflex_kernels::synth::SynthKernel,
    baseline: &[(String, Certificate)],
    step: usize,
) -> Result<String, Violation> {
    let stall = |detail: String| Violation {
        step,
        kind: ViolationKind::Stall,
        detail,
    };

    // Park the hostile peer: a clean handshake, then a frame that
    // starts arriving and never finishes.
    let mut slow = UnixStream::connect(socket).map_err(|e| stall(format!("slow connect: {e}")))?;
    slow.set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| stall(format!("slow socket: {e}")))?;
    write_frame(
        &mut slow,
        &Frame {
            kind: HELLO,
            request_id: 0,
            payload: encode_hello(),
        },
    )
    .map_err(|e| stall(format!("slow hello: {e}")))?;
    let hello_ok = read_frame(&mut slow).map_err(|e| stall(format!("slow hello reply: {e}")))?;
    if hello_ok.kind != HELLO_OK {
        return Err(stall(format!(
            "slow peer handshake answered with frame kind {}",
            hello_ok.kind
        )));
    }
    // Announce a 64-byte frame, deliver 2 bytes of it, go silent.
    slow.write_all(&64u32.to_le_bytes())
        .and_then(|()| slow.write_all(&[REQUEST, 0]))
        .map_err(|e| stall(format!("slow partial frame: {e}")))?;

    // The worker pool must be unbothered: a well-behaved client
    // verifies to completion while the slow peer squats on its reader.
    let mut healthy = Client::connect(&reflex_service::Endpoint::Unix(socket.to_path_buf()))
        .map_err(|e| stall(format!("healthy connect: {e}")))?;
    let report = healthy
        .verify(
            reflex_service::Request::Verify {
                name: kernel.name.clone(),
                source: kernel.source.clone(),
                property: None,
                budget_ms: None,
                budget_nodes: None,
                want_events: false,
                deadline_ms: None,
                idempotency_key: None,
            },
            &mut |_| {},
        )
        .map_err(|e| stall(format!("healthy verify failed under a slow peer: {e}")))?;
    let served: Vec<(String, Certificate)> = report
        .outcomes
        .iter()
        .filter_map(|(name, o)| o.certificate().map(|c| (name.clone(), c.clone())))
        .collect();
    if served != baseline {
        return Err(Violation {
            step,
            kind: ViolationKind::CertMismatch,
            detail: "certificates served under a slow peer differ from the clean baseline"
                .to_owned(),
        });
    }

    // The slow peer's sentence: a typed ERR_IDLE frame, then the close.
    let reap = read_frame(&mut slow).map_err(|e| stall(format!("slow peer never reaped: {e}")))?;
    if reap.kind != ERROR {
        return Err(Violation {
            step,
            kind: ViolationKind::LostReply,
            detail: format!(
                "slow peer got frame kind {} instead of a typed reap error",
                reap.kind
            ),
        });
    }
    let typed_idle = reflex_service::protocol::decode_error(&reap.payload)
        .is_some_and(|(code, _)| code == ERR_IDLE);
    if !typed_idle {
        return Err(Violation {
            step,
            kind: ViolationKind::LostReply,
            detail: "slow peer's reap error was not ERR_IDLE".to_owned(),
        });
    }
    Ok(format!(
        "step {step} slow peer reaped typed=true healthy proved={} certs_match=true",
        served.len()
    ))
}
