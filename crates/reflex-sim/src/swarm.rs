//! The CI seed swarm: a seed range fanned across scenarios.
//!
//! [`run_swarm`] executes every `(scenario, seed)` pair of its
//! configuration as one independent [`Sim::run`]. Runs share nothing —
//! each owns its scratch store and derives all randomness from its own
//! seed — so the swarm parallelizes freely across worker threads while
//! the *results* stay a pure function of the configuration: the report
//! is ordered by `(scenario, seed)`, never by completion time, and a
//! determinism test pins `--jobs 1` against `--jobs 8`.
//!
//! Every violating run is shrunk ([`crate::shrink`]) and written out as
//! a `repro.json` next to the bench report, so a red CI job hands the
//! developer a minimal, replayable reproduction instead of a seed range.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::shrink::shrink;
use crate::{repro, Scenario, Sim, SimConfig, SimOutcome, Violation};

/// One seed-swarm invocation.
#[derive(Debug, Clone)]
pub struct SwarmConfig {
    /// The scenarios to fan each seed across.
    pub scenarios: Vec<Scenario>,
    /// The seeds to run.
    pub seeds: Vec<u64>,
    /// Steps per run (`None`: each scenario's default).
    pub steps: Option<usize>,
    /// Store-filesystem fault rate, parts per million.
    pub fs_rate_ppm: u32,
    /// Prover panic-injection rate, parts per million.
    pub panic_rate_ppm: u32,
    /// Deliberately violate an invariant at this step in every run
    /// (CI uses this on one pinned run to prove the shrink/replay
    /// pipeline works end to end).
    pub inject_violation_at: Option<usize>,
    /// Worker threads (`0`: one per available core). Parallelism is
    /// across runs; each run's prover work stays serial.
    pub jobs: usize,
    /// Where to write `repro-*.json` files for violating runs
    /// (`None`: do not write repros).
    pub repro_dir: Option<PathBuf>,
}

impl Default for SwarmConfig {
    fn default() -> SwarmConfig {
        SwarmConfig {
            scenarios: Scenario::ALL.to_vec(),
            seeds: (0..16).collect(),
            steps: None,
            fs_rate_ppm: 50_000,
            panic_rate_ppm: 20_000,
            inject_violation_at: None,
            jobs: 0,
            repro_dir: None,
        }
    }
}

/// One run's row in the swarm report.
#[derive(Debug, Clone)]
pub struct SwarmRun {
    /// The scenario driven.
    pub scenario: Scenario,
    /// The root seed.
    pub seed: u64,
    /// Steps the configuration asked for.
    pub steps: usize,
    /// Steps actually executed.
    pub steps_run: usize,
    /// The run's deterministic trace fingerprint.
    pub trace_fingerprint: u64,
    /// The violation, if the run found one.
    pub violation: Option<Violation>,
    /// The minimized configuration's step count, for violating runs.
    pub shrunk_steps: Option<usize>,
    /// The repro file written for this violation, if any.
    pub repro_path: Option<String>,
}

/// The whole swarm: configuration echo plus per-run rows in
/// `(scenario, seed)` order.
#[derive(Debug, Clone)]
pub struct SwarmBench {
    /// Scenario labels, as run.
    pub scenarios: Vec<Scenario>,
    /// The seed range, as run.
    pub seeds: Vec<u64>,
    /// Worker threads used (informational; results are
    /// jobs-independent).
    pub jobs: usize,
    /// Per-run rows.
    pub runs: Vec<SwarmRun>,
}

impl SwarmBench {
    /// Rows that violated an invariant.
    pub fn violations(&self) -> usize {
        self.runs.iter().filter(|r| r.violation.is_some()).count()
    }

    /// A fingerprint over every run's trace fingerprint, in report
    /// order — one number that changes iff any run's behavior changes.
    pub fn swarm_fingerprint(&self) -> u64 {
        let mut text = String::new();
        for run in &self.runs {
            let _ = writeln!(
                text,
                "{} {} {:#018x}",
                run.scenario, run.seed, run.trace_fingerprint
            );
        }
        reflex_ast::fingerprint::fp_str(&text).0
    }
}

/// The configuration for one `(scenario, seed)` cell of the swarm.
fn cell_config(cfg: &SwarmConfig, scenario: Scenario, seed: u64) -> SimConfig {
    let mut config = SimConfig::new(scenario, seed);
    if let Some(steps) = cfg.steps {
        config.steps = steps;
    }
    config.fs_rate_ppm = cfg.fs_rate_ppm;
    config.panic_rate_ppm = cfg.panic_rate_ppm;
    config.inject_violation_at = cfg.inject_violation_at;
    config
}

/// Executes one cell: run, and on violation shrink and (optionally)
/// write the repro file.
fn run_cell(cfg: &SwarmConfig, config: &SimConfig, index: usize) -> SwarmRun {
    let outcome: SimOutcome = Sim::run(config);
    let (shrunk_steps, repro_path) = match &outcome.violation {
        None => (None, None),
        Some(violation) => {
            let minimized = shrink(config, violation);
            let path = cfg.repro_dir.as_ref().and_then(|dir| {
                let min_outcome = Sim::run(&minimized.minimized);
                let record = repro::Repro::of(&min_outcome);
                let path = dir.join(format!(
                    "repro-{}-seed{}-{index}.json",
                    config.scenario, config.seed
                ));
                std::fs::create_dir_all(dir).ok()?;
                std::fs::write(&path, repro::render(&record)).ok()?;
                Some(path.to_string_lossy().into_owned())
            });
            (Some(minimized.minimized.steps), path)
        }
    };
    SwarmRun {
        scenario: config.scenario,
        seed: config.seed,
        steps: config.steps,
        steps_run: outcome.steps_run,
        trace_fingerprint: outcome.trace_fingerprint,
        violation: outcome.violation,
        shrunk_steps,
        repro_path,
    }
}

/// Runs the swarm. Results are ordered by `(scenario, seed)` and are
/// identical at every worker count.
pub fn run_swarm(cfg: &SwarmConfig) -> SwarmBench {
    let cells: Vec<SimConfig> = cfg
        .scenarios
        .iter()
        .flat_map(|&scenario| {
            cfg.seeds
                .iter()
                .map(move |&seed| cell_config(cfg, scenario, seed))
        })
        .collect();

    let workers = if cfg.jobs == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        cfg.jobs
    }
    .min(cells.len().max(1));

    let slots: Mutex<Vec<Option<SwarmRun>>> = Mutex::new(vec![None; cells.len()]);
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                let Some(config) = cells.get(index) else {
                    break;
                };
                let run = run_cell(cfg, config, index);
                slots.lock().expect("swarm slots poisoned")[index] = Some(run);
            });
        }
    });

    let runs = slots
        .into_inner()
        .expect("swarm slots poisoned")
        .into_iter()
        .map(|slot| slot.expect("every cell ran"))
        .collect();
    SwarmBench {
        scenarios: cfg.scenarios.clone(),
        seeds: cfg.seeds.clone(),
        jobs: cfg.jobs,
        runs,
    }
}

/// Renders the swarm as a text table.
pub fn render_swarm(bench: &SwarmBench) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "sim swarm: {} scenario(s) x {} seed(s), fingerprint {:#018x}",
        bench.scenarios.len(),
        bench.seeds.len(),
        bench.swarm_fingerprint()
    );
    let _ = writeln!(
        out,
        "{:<12} {:>6} {:>6} {:>20}  violation",
        "scenario", "seed", "steps", "trace"
    );
    for run in &bench.runs {
        let _ = writeln!(
            out,
            "{:<12} {:>6} {:>6} {:>#20x}  {}",
            run.scenario.label(),
            run.seed,
            run.steps_run,
            run.trace_fingerprint,
            match &run.violation {
                None => "-".to_owned(),
                Some(v) => match (&run.shrunk_steps, &run.repro_path) {
                    (Some(steps), Some(path)) => format!("{v} (shrunk to {steps} steps, {path})"),
                    (Some(steps), None) => format!("{v} (shrunk to {steps} steps)"),
                    _ => v.to_string(),
                },
            }
        );
    }
    let _ = writeln!(out, "violations: {}", bench.violations());
    out
}

/// Renders the swarm as the `BENCH_sim.json` document.
pub fn render_swarm_json(bench: &SwarmBench) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"sim-swarm\",\n");
    let scenarios: Vec<String> = bench.scenarios.iter().map(|s| format!("\"{s}\"")).collect();
    let _ = writeln!(out, "  \"scenarios\": [{}],", scenarios.join(", "));
    let _ = writeln!(
        out,
        "  \"seeds\": {},\n  \"runs\": {},\n  \"violations\": {},",
        bench.seeds.len(),
        bench.runs.len(),
        bench.violations()
    );
    let _ = writeln!(
        out,
        "  \"swarm_fingerprint\": \"{:#018x}\",",
        bench.swarm_fingerprint()
    );
    out.push_str("  \"rows\": [\n");
    for (i, run) in bench.runs.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"scenario\": \"{}\", \"seed\": {}, \"steps\": {}, \"trace_fingerprint\": \"{:#018x}\", \"violation\": {}, \"shrunk_steps\": {}}}",
            run.scenario,
            run.seed,
            run.steps_run,
            run.trace_fingerprint,
            match &run.violation {
                None => "null".to_owned(),
                Some(v) => format!("\"{}\"", v.kind),
            },
            match run.shrunk_steps {
                None => "null".to_owned(),
                Some(s) => s.to_string(),
            }
        );
        out.push_str(if i + 1 < bench.runs.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}
