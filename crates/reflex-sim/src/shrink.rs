//! Automatic violation shrinking.
//!
//! A violating run is rarely minimal: the breach detected at step `v`
//! usually needs only the step prefix up to `v`, and often only one of
//! the fault streams that were active. [`shrink`] re-runs the scenario —
//! each re-run is itself fully deterministic — to find the smallest
//! configuration that still reproduces a violation of the same kind:
//!
//! 1. **Step prefix.** Scenario steps are executed in a fixed order and
//!    every stream derives its decisions from per-step positions, so a
//!    run over `k ≥ v+1` steps replays the violating run's first `k`
//!    steps exactly. That monotonicity makes binary search sound: find
//!    the smallest `k` whose run still violates.
//! 2. **Fault streams.** Try disabling each stream in
//!    [`crate::FAULT_STREAMS`]; keep it disabled if the violation
//!    (same kind) survives without it.
//!
//! The result is the configuration written into `repro.json` — the one
//! `rx sim replay` re-executes bit for bit.

use crate::{Sim, SimConfig, Violation};

/// A minimized reproduction: the smallest configuration found that
/// still violates, the violation it produces, and how many candidate
/// re-runs the search spent.
#[derive(Debug, Clone)]
pub struct ShrinkResult {
    /// The original (violating) configuration.
    pub original: SimConfig,
    /// The minimized configuration; running it reproduces `violation`.
    pub minimized: SimConfig,
    /// The violation the minimized configuration produces.
    pub violation: Violation,
    /// Scenario re-runs the search performed.
    pub attempts: usize,
}

/// Whether a candidate run still reproduces the violation being
/// shrunk: same invariant kind (the step and detail may legitimately
/// move as the configuration shrinks).
fn still_violates(config: &SimConfig, original: &Violation) -> Option<Violation> {
    Sim::run(config)
        .violation
        .filter(|v| v.kind == original.kind)
}

/// Shrinks a violating configuration to a minimal reproduction. The
/// `violation` must be the one `Sim::run(config)` produces.
pub fn shrink(config: &SimConfig, violation: &Violation) -> ShrinkResult {
    let mut attempts = 0usize;
    let mut best = config.clone();
    let mut best_violation = violation.clone();

    // Phase 1: binary-search the smallest still-violating step count.
    // The detected step is a sound lower bound: a violation at step v
    // needs at least v+1 steps to be reached.
    let mut lo = (violation.step + 1).min(best.steps); // smallest candidate
    let mut hi = best.steps; // known to violate
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let mut candidate = best.clone();
        candidate.steps = mid;
        attempts += 1;
        match still_violates(&candidate, violation) {
            Some(v) => {
                hi = mid;
                best = candidate;
                best_violation = v;
            }
            None => lo = mid + 1,
        }
    }
    best.steps = hi;

    // Phase 2: drop every fault stream the violation does not need.
    for stream in crate::FAULT_STREAMS {
        if !best.stream_enabled(stream) {
            continue;
        }
        let mut candidate = best.clone();
        candidate.disabled.push(stream.to_owned());
        attempts += 1;
        if let Some(v) = still_violates(&candidate, violation) {
            best = candidate;
            best_violation = v;
        }
    }

    ShrinkResult {
        original: config.clone(),
        minimized: best,
        violation: best_violation,
        attempts,
    }
}
