//! # reflex-sim — one deterministic simulator driving the whole stack
//!
//! A [`Sim`] harness owns a single root seed and derives every source of
//! nondeterminism the stack exposes from it as independent, labelled
//! streams ([`reflex_rng::derive`]): scheduler interleaving, the
//! runtime's `FaultPlan`, the store's `FaultyFs` schedule, the prover's
//! panic-injection sites and the synthetic-kernel edit scripts. Time is
//! simulated too — sessions run on a [`reflex_verify::VirtualClock`], so
//! proof budgets and the watch loop's retry backoff are deterministic
//! functions of the work performed, never of the host's speed.
//!
//! Every run replays one [`Scenario`] for a bounded number of steps and
//! records a replayable trace: a list of plain-text step records with no
//! wall-clock times, paths or process ids in them, so the same
//! `(scenario, seed, steps)` triple produces a byte-identical trace on
//! every machine and at every worker count. The scenarios check the
//! stack's robustness invariants as they go; the first breach is
//! surfaced as a [`Violation`].
//!
//! On a violation, [`shrink::shrink`] re-runs the scenario to find the
//! minimal step prefix (and the minimal set of fault streams) that still
//! reproduces it, and [`repro`] serializes that minimized configuration
//! as a `repro.json` that `rx sim replay FILE` re-executes bit-for-bit.
//! [`swarm::run_swarm`] fans a seed range across scenarios (this is the
//! CI entry point behind `rx sim swarm`), and [`presets`] re-exposes the
//! pre-simulator `rx chaos` / `rx soak` suites as thin presets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod net;
pub mod presets;
pub mod repro;
pub mod scenario;
pub mod shrink;
pub mod swarm;

use std::sync::atomic::{AtomicU64, Ordering};

/// Which whole-stack scenario a simulation run drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Scenario {
    /// The chaos replay: a synthetic-kernel edit script through a watch
    /// session over a seeded faulty store, with seeded prover panics,
    /// then external bit rot, a scrub, and a post-scrub re-verification.
    Chaos,
    /// The watch loop under a flapping disk: one kernel re-verified
    /// every step while a seeded gate heals and unheals the store's
    /// filesystem, ending with a forced heal and re-attach.
    Watch,
    /// The supervised runtime soak: seeded workload and fault plans
    /// driven through crash/recovery with the certificate monitor on.
    Soak,
    /// The scale workload: a synthetic kernel's edit ladder verified
    /// step by step, store-backed reuse against a serial baseline.
    ScaleEdits,
    /// Compaction racing live verification: an edit ladder verified
    /// through one handle of a log-structured store while a second
    /// handle compacts the same store every step, over a seeded faulty
    /// disk; compaction must never lose a live entry or let a corrupt
    /// one escape quarantine.
    CompactionRace,
    /// Simulated clients hammering one resident service core: a greedy
    /// client bursts requests while single-shot clients interleave, all
    /// over the shared warm store. Every served certificate must match
    /// the serial clean baseline and the round-robin scheduler must
    /// serve every client every step.
    ClientStorm,
    /// The resident core killed mid-flight: a service core verifies and
    /// group-commits part of an edit ladder, is abandoned with work
    /// queued (no final flush), and a fresh core over the same store
    /// directory must warm-reuse every committed certificate with
    /// nothing quarantined.
    DaemonRestart,
    /// A retrying client talking to a real daemon through FaultyNet, the
    /// seeded fault-injecting transport: frames are dropped, duplicated,
    /// truncated and cut mid-stream. Every logical request must end in a
    /// report or a typed error (never a hang or protocol confusion), the
    /// idempotency window must prevent duplicate proof work, and every
    /// served certificate must match the one-shot baseline bytes.
    NetPartition,
    /// Hostile slow peers against a daemon with tight read deadlines: a
    /// slow-loris connection trickles a frame byte by byte while a
    /// well-behaved client verifies. The slow peer must be reaped with a
    /// typed error within its deadline and the worker pool must keep
    /// serving throughout.
    SlowClient,
}

impl Scenario {
    /// All scenarios, in the order the swarm runs them.
    pub const ALL: [Scenario; 9] = [
        Scenario::Chaos,
        Scenario::Watch,
        Scenario::Soak,
        Scenario::ScaleEdits,
        Scenario::CompactionRace,
        Scenario::ClientStorm,
        Scenario::DaemonRestart,
        Scenario::NetPartition,
        Scenario::SlowClient,
    ];

    /// The scenario's stable command-line / JSON label.
    pub fn label(&self) -> &'static str {
        match self {
            Scenario::Chaos => "chaos",
            Scenario::Watch => "watch",
            Scenario::Soak => "soak",
            Scenario::ScaleEdits => "scale-edits",
            Scenario::CompactionRace => "compaction-race",
            Scenario::ClientStorm => "client-storm",
            Scenario::DaemonRestart => "daemon-crash-restart",
            Scenario::NetPartition => "net-partition",
            Scenario::SlowClient => "slow-client",
        }
    }

    /// Parses a command-line label.
    pub fn parse(label: &str) -> Option<Scenario> {
        Scenario::ALL.iter().copied().find(|s| s.label() == label)
    }

    /// The default step count: enough work to exercise the scenario's
    /// fault paths while keeping one run comfortably under a second.
    pub fn default_steps(&self) -> usize {
        match self {
            Scenario::Chaos => 5,
            Scenario::Watch => 8,
            Scenario::Soak => 120,
            Scenario::ScaleEdits => 4,
            Scenario::CompactionRace => 4,
            Scenario::ClientStorm => 4,
            Scenario::DaemonRestart => 4,
            Scenario::NetPartition => 8,
            Scenario::SlowClient => 2,
        }
    }
}

impl std::fmt::Display for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The fault streams a scenario derives from the root seed. Disabling
/// one (see [`SimConfig::disabled`]) zeroes that source of injected
/// nondeterminism; the shrinker uses this to report which streams a
/// violation actually needs.
pub const FAULT_STREAMS: [&str; 4] = ["fs", "world", "panic", "net"];

/// One deterministic simulation run: scenario, root seed, step bound and
/// the knobs the shrinker minimizes over.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimConfig {
    /// The scenario to drive.
    pub scenario: Scenario,
    /// The root seed; every per-component stream is derived from it.
    pub seed: u64,
    /// How many scenario steps to execute.
    pub steps: usize,
    /// Store-filesystem fault rate, parts per million (the `fs` stream).
    pub fs_rate_ppm: u32,
    /// Prover panic-injection rate, parts per million (the `panic`
    /// stream).
    pub panic_rate_ppm: u32,
    /// Deliberately violate an invariant at this step — the hook the
    /// shrink/replay pipeline is tested (and CI-demonstrated) with.
    pub inject_violation_at: Option<usize>,
    /// Fault streams (from [`FAULT_STREAMS`]) forced off for this run.
    pub disabled: Vec<String>,
}

impl SimConfig {
    /// The default configuration for `scenario` at `seed`.
    pub fn new(scenario: Scenario, seed: u64) -> SimConfig {
        SimConfig {
            scenario,
            seed,
            steps: scenario.default_steps(),
            fs_rate_ppm: 50_000,
            panic_rate_ppm: 20_000,
            inject_violation_at: None,
            disabled: Vec::new(),
        }
    }

    /// Whether the named fault stream is active in this run.
    pub fn stream_enabled(&self, stream: &str) -> bool {
        !self.disabled.iter().any(|d| d == stream)
    }

    /// The derived seed for the named stream (see [`reflex_rng::derive`]).
    pub fn stream_seed(&self, stream: &str) -> u64 {
        reflex_rng::derive(self.seed, stream)
    }
}

/// Which invariant a simulation run caught being broken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// A session or harness call returned an error instead of a report.
    Abort,
    /// A certificate differed from the serial clean baseline.
    CertMismatch,
    /// A corrupt entry survived the scrub and reached a later session.
    QuarantineEscape,
    /// A component was still crashed after the recovery cooldown.
    Unrecovered,
    /// The runtime certificate monitor raised an alarm.
    MonitorAlarm,
    /// A compaction pass lost (or conjured) a live store entry.
    CompactionLoss,
    /// The service scheduler failed to serve a client its fair share of
    /// a storm step.
    Starvation,
    /// A certificate group-committed before a crash was not served warm
    /// after the restart.
    RestartLoss,
    /// A logical request ended without a reply *and* without a typed
    /// error: the client hung, or was left protocol-confused.
    LostReply,
    /// The service executed the same idempotent request more than once
    /// inside the dedup window.
    DuplicateWork,
    /// The worker pool (or a hostile peer's reaping) stalled: a
    /// well-behaved request or the reap deadline did not complete.
    Stall,
    /// The deliberate violation scheduled by
    /// [`SimConfig::inject_violation_at`].
    Injected,
}

impl ViolationKind {
    /// The kind's stable JSON label.
    pub fn label(&self) -> &'static str {
        match self {
            ViolationKind::Abort => "abort",
            ViolationKind::CertMismatch => "cert-mismatch",
            ViolationKind::QuarantineEscape => "quarantine-escape",
            ViolationKind::Unrecovered => "unrecovered",
            ViolationKind::MonitorAlarm => "monitor-alarm",
            ViolationKind::CompactionLoss => "compaction-loss",
            ViolationKind::Starvation => "starvation",
            ViolationKind::RestartLoss => "restart-loss",
            ViolationKind::LostReply => "lost-reply",
            ViolationKind::DuplicateWork => "duplicate-work",
            ViolationKind::Stall => "stall",
            ViolationKind::Injected => "injected",
        }
    }

    /// Parses a JSON label.
    pub fn parse(label: &str) -> Option<ViolationKind> {
        [
            ViolationKind::Abort,
            ViolationKind::CertMismatch,
            ViolationKind::QuarantineEscape,
            ViolationKind::Unrecovered,
            ViolationKind::MonitorAlarm,
            ViolationKind::CompactionLoss,
            ViolationKind::Starvation,
            ViolationKind::RestartLoss,
            ViolationKind::LostReply,
            ViolationKind::DuplicateWork,
            ViolationKind::Stall,
            ViolationKind::Injected,
        ]
        .into_iter()
        .find(|k| k.label() == label)
    }
}

impl std::fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// An invariant breach: where it happened and what was observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The 0-based scenario step the breach was detected at.
    pub step: usize,
    /// Which invariant broke.
    pub kind: ViolationKind,
    /// A human-readable account of the breach.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "step {}: {}: {}", self.step, self.kind, self.detail)
    }
}

/// What one simulation run did: the deterministic trace and the first
/// invariant breach, if any.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimOutcome {
    /// The configuration that was run.
    pub config: SimConfig,
    /// Scenario steps actually executed (a violation stops the run).
    pub steps_run: usize,
    /// One record per deterministic event — no wall-clock times, paths
    /// or process ids, so equal configurations yield equal traces.
    pub trace: Vec<String>,
    /// FNV-1a fingerprint of the newline-joined trace.
    pub trace_fingerprint: u64,
    /// The first invariant breach, if the run found one.
    pub violation: Option<Violation>,
}

impl SimOutcome {
    /// Renders the trace as the newline-joined text the fingerprint is
    /// computed over.
    pub fn trace_text(&self) -> String {
        self.trace.join("\n")
    }
}

/// The deterministic simulator. Stateless apart from a process-wide
/// nonce that keeps concurrent runs' scratch store directories disjoint;
/// every behavior of a run is a function of its [`SimConfig`].
#[derive(Debug, Default, Clone, Copy)]
pub struct Sim;

impl Sim {
    /// Runs one scenario to completion (or to its first violation) and
    /// returns the outcome. Deterministic: the same configuration yields
    /// a byte-identical trace on every run, machine and worker count.
    ///
    /// # Panics
    ///
    /// If `config.steps` is zero — every scenario needs at least one step.
    pub fn run(config: &SimConfig) -> SimOutcome {
        assert!(config.steps > 0, "a simulation needs at least one step");
        let mut trace = Trace::new(config);
        let violation = match config.scenario {
            Scenario::Chaos => scenario::run_chaos(config, &mut trace),
            Scenario::Watch => scenario::run_watch(config, &mut trace),
            Scenario::Soak => scenario::run_soak(config, &mut trace),
            Scenario::ScaleEdits => scenario::run_scale_edits(config, &mut trace),
            Scenario::CompactionRace => scenario::run_compaction_race(config, &mut trace),
            Scenario::ClientStorm => scenario::run_client_storm(config, &mut trace),
            Scenario::DaemonRestart => scenario::run_daemon_restart(config, &mut trace),
            Scenario::NetPartition => net::run_net_partition(config, &mut trace),
            Scenario::SlowClient => net::run_slow_client(config, &mut trace),
        };
        if let Some(v) = &violation {
            trace.push(format!("violation {} step={} {}", v.kind, v.step, v.detail));
        }
        let fingerprint = reflex_ast::fingerprint::fp_str(&trace.lines.join("\n")).0;
        SimOutcome {
            config: config.clone(),
            steps_run: trace.steps_run,
            trace: trace.lines,
            trace_fingerprint: fingerprint,
            violation,
        }
    }
}

/// The trace under construction: the deterministic record lines plus the
/// step counter the scenarios advance.
#[derive(Debug)]
pub(crate) struct Trace {
    lines: Vec<String>,
    steps_run: usize,
}

impl Trace {
    fn new(config: &SimConfig) -> Trace {
        let mut t = Trace {
            lines: Vec::new(),
            steps_run: 0,
        };
        t.push(format!(
            "sim scenario={} seed={} steps={} fs_ppm={} panic_ppm={} disabled=[{}]",
            config.scenario,
            config.seed,
            config.steps,
            if config.stream_enabled("fs") {
                config.fs_rate_ppm
            } else {
                0
            },
            if config.stream_enabled("panic") {
                config.panic_rate_ppm
            } else {
                0
            },
            config.disabled.join(","),
        ));
        t
    }

    /// Appends one deterministic record line.
    pub(crate) fn push(&mut self, line: String) {
        self.lines.push(line);
    }

    /// Marks one scenario step as executed.
    pub(crate) fn step_done(&mut self) {
        self.steps_run += 1;
    }
}

/// If the configuration schedules an injected violation at `step`,
/// records it in the trace and returns it.
pub(crate) fn injected_violation(
    config: &SimConfig,
    trace: &mut Trace,
    step: usize,
) -> Option<Violation> {
    if config.inject_violation_at != Some(step) {
        return None;
    }
    trace.push(format!("step {step} injecting deliberate violation"));
    Some(Violation {
        step,
        kind: ViolationKind::Injected,
        detail: "deliberate violation scheduled by inject_violation_at".to_owned(),
    })
}

static SCRATCH_NONCE: AtomicU64 = AtomicU64::new(0);

/// A scratch store directory unique to this process *and* this run, so
/// concurrent swarm workers (and repeated runs of the same seed in one
/// process) never share state. Never recorded in the trace.
pub(crate) fn scratch_dir(config: &SimConfig, tag: &str) -> std::path::PathBuf {
    let nonce = SCRATCH_NONCE.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "rx-sim-{}-{}-{tag}-{}-{nonce}",
        config.scenario,
        config.seed,
        std::process::id()
    ))
}
