//! Integration tests for the interpreter and the dynamic oracles.

use proptest::prelude::*;
use reflex_ast::{CompId, Value};
use reflex_runtime::oracle::{check_trace_inclusion, observable_outputs};
use reflex_runtime::{
    EmptyWorld, Interpreter, RandomWorld, Registry, ScriptedBehavior, ScriptedWorld,
};
use reflex_trace::{Action, Msg};
use reflex_typeck::CheckedProgram;

fn checked(name: &str, src: &str) -> CheckedProgram {
    let p = reflex_parser::parse_program(name, src).expect("parses");
    reflex_typeck::check(&p).expect("well-formed")
}

const SSH: &str = r#"
components {
  Connection "client.py" ();
  Password "user-auth.c" ();
  Terminal "pty-alloc.c" ();
}
messages {
  ReqAuth(str, str);
  Auth(str);
  ReqTerm(str);
  Term(str, fdesc);
}
state {
  auth_user: str = "";
  auth_ok: bool = false;
}
init {
  C <- spawn Connection();
  P <- spawn Password();
  T <- spawn Terminal();
}
handlers {
  when Connection:ReqAuth(user, pass) {
    send(P, ReqAuth(user, pass));
  }
  when Password:Auth(user) {
    auth_user = user;
    auth_ok = true;
  }
  when Connection:ReqTerm(user) {
    if (user == auth_user && auth_ok) {
      send(T, ReqTerm(user));
    }
  }
  when Terminal:Term(user, t) {
    if (user == auth_user && auth_ok) {
      send(C, Term(user, t));
    }
  }
}
properties {
  AuthBeforeTerm: forall u: str.
    [Recv(Password(), Auth(u))] Enables [Send(Terminal(), ReqTerm(u))];
}
"#;

/// A full SSH session: the client authenticates, the password component
/// approves, the client requests and receives a terminal.
fn ssh_registry() -> Registry {
    Registry::new()
        .register("client.py", |_| {
            Box::new(
                ScriptedBehavior::new()
                    .starts_with([Msg::new(
                        "ReqAuth",
                        [Value::from("alice"), Value::from("hunter2")],
                    )])
                    // After the password check succeeds the kernel does not
                    // notify the client directly; the scripted client just
                    // asks for a terminal after its auth message.
                    .replies("Term", |_| vec![]),
            )
        })
        .register("user-auth.c", |_| {
            Box::new(ScriptedBehavior::new().replies("ReqAuth", |m| {
                // Approve alice/hunter2 only.
                if m.args == vec![Value::from("alice"), Value::from("hunter2")] {
                    vec![Msg::new("Auth", [m.args[0].clone()])]
                } else {
                    vec![]
                }
            }))
        })
        .register("pty-alloc.c", |_| {
            Box::new(ScriptedBehavior::new().replies("ReqTerm", |m| {
                vec![Msg::new(
                    "Term",
                    [m.args[0].clone(), Value::Fdesc(reflex_ast::Fdesc::new(7))],
                )]
            }))
        })
}

#[test]
fn ssh_session_runs_and_satisfies_properties() {
    let c = checked("ssh", SSH);
    let mut kernel = Interpreter::new(&c, ssh_registry(), Box::new(EmptyWorld), 42).expect("boots");
    kernel.run(10).expect("runs");

    // The password component authenticated alice.
    assert_eq!(kernel.state_var("auth_ok"), Some(&Value::Bool(true)));
    assert_eq!(kernel.state_var("auth_user"), Some(&Value::from("alice")));

    // Now the (authenticated) client asks for a terminal.
    let client = kernel.components_of("Connection")[0].id;
    kernel
        .inject(client, Msg::new("ReqTerm", [Value::from("alice")]))
        .expect("inject");
    kernel.run(10).expect("runs");

    let trace = kernel.trace().clone();
    // The terminal fd was forwarded to the client.
    assert!(trace.iter_chrono().any(|a| matches!(
        a,
        Action::Send { comp, msg } if comp.ctype == "Connection" && msg.name == "Term"
    )));
    // The trace is a possible behavior and satisfies the property.
    check_trace_inclusion(&c, &trace).expect("in BehAbs");
    reflex_trace::check_trace_properties(&trace, &c.program().properties)
        .expect("properties hold on the run");
}

#[test]
fn unauthenticated_terminal_requests_are_dropped() {
    let c = checked("ssh", SSH);
    let registry = Registry::new().register("client.py", |_| {
        Box::new(
            ScriptedBehavior::new().starts_with([Msg::new("ReqTerm", [Value::from("mallory")])]),
        )
    });
    let mut kernel = Interpreter::new(&c, registry, Box::new(EmptyWorld), 1).expect("boots");
    kernel.run(10).expect("runs");
    // No terminal was requested from the Terminal component.
    assert!(!kernel.trace().iter_chrono().any(|a| matches!(
        a,
        Action::Send { comp, .. } if comp.ctype == "Terminal"
    )));
    check_trace_inclusion(&c, kernel.trace()).expect("in BehAbs");
}

#[test]
fn inject_validates_component_and_payload() {
    let c = checked("ssh", SSH);
    let mut kernel = Interpreter::new(&c, Registry::new(), Box::new(EmptyWorld), 0).expect("boots");
    let client = kernel.components_of("Connection")[0].id;
    // Unknown component id.
    assert!(kernel
        .inject(CompId::new(999), Msg::new("Auth", [Value::from("x")]))
        .is_err());
    // Undeclared message.
    assert!(kernel.inject(client, Msg::new("Nope", [])).is_err());
    // Wrong payload type.
    assert!(kernel
        .inject(client, Msg::new("Auth", [Value::Num(3)]))
        .is_err());
    // Correct.
    assert!(kernel
        .inject(client, Msg::new("ReqTerm", [Value::from("alice")]))
        .is_ok());
}

#[test]
fn oracle_rejects_corrupted_traces() {
    let c = checked("ssh", SSH);
    let mut kernel = Interpreter::new(&c, ssh_registry(), Box::new(EmptyWorld), 7).expect("boots");
    kernel.run(10).expect("runs");
    let good = kernel.trace().clone();
    check_trace_inclusion(&c, &good).expect("valid");

    // Corrupt 1: drop the init spawn actions.
    let tampered: reflex_trace::Trace = good.iter_chrono().skip(1).cloned().collect();
    assert!(check_trace_inclusion(&c, &tampered).is_err());

    // Corrupt 2: append a Send the kernel never performed.
    let mut tampered = good.clone();
    let victim = kernel.components_of("Terminal")[0].clone();
    tampered.push(Action::Send {
        comp: victim,
        msg: Msg::new("ReqTerm", [Value::from("mallory")]),
    });
    assert!(check_trace_inclusion(&c, &tampered).is_err());

    // Corrupt 3: a Recv without its Select.
    let mut tampered = good.clone();
    let sender = kernel.components_of("Connection")[0].clone();
    tampered.push(Action::Recv {
        comp: sender,
        msg: Msg::new("ReqTerm", [Value::from("alice")]),
    });
    assert!(check_trace_inclusion(&c, &tampered).is_err());
}

const COOKIES: &str = r#"
components {
  Tab "tab.py" (domain: str);
  Cookie "cookie.py" (domain: str);
}
messages {
  SetCookie(str);
  CookieSet(str);
}
init {
}
handlers {
  when Tab:SetCookie(v) {
    lookup Cookie(k : k.domain == sender.domain) {
      send(k, SetCookie(v));
    } else {
      n <- spawn Cookie(sender.domain);
      send(n, SetCookie(v));
    }
  }
}
properties {
  UniqueCookiePerDomain: forall d: str.
    [Spawn(Cookie(d))] Disables [Spawn(Cookie(d))];
}
"#;

#[test]
fn lookup_reuses_existing_components() {
    // Note: this kernel spawns tabs nowhere — tests drive it by spawning
    // via a bootstrap init. Extend the source with two tabs.
    let src = COOKIES.replace(
        "init {\n}",
        "init {\n  t1 <- spawn Tab(\"a.org\");\n  t2 <- spawn Tab(\"a.org\");\n  t3 <- spawn Tab(\"b.org\");\n}",
    );
    let c = checked("cookies", &src);
    let mut kernel = Interpreter::new(&c, Registry::new(), Box::new(EmptyWorld), 3).expect("boots");
    let tabs: Vec<CompId> = kernel.components_of("Tab").iter().map(|t| t.id).collect();
    for (i, t) in tabs.iter().enumerate() {
        kernel
            .inject(*t, Msg::new("SetCookie", [Value::from(format!("v{i}"))]))
            .expect("inject");
    }
    kernel.run(20).expect("runs");
    // Two cookie processes: one for a.org (shared), one for b.org.
    assert_eq!(kernel.components_of("Cookie").len(), 2);
    check_trace_inclusion(&c, kernel.trace()).expect("in BehAbs");
    reflex_trace::check_trace_properties(kernel.trace(), &c.program().properties)
        .expect("uniqueness holds");
}

#[test]
fn observable_outputs_erase_identities() {
    let c = checked("ssh", SSH);
    let mut kernel = Interpreter::new(&c, ssh_registry(), Box::new(EmptyWorld), 11).expect("boots");
    kernel.run(10).expect("runs");
    let outs = observable_outputs(kernel.trace(), |comp| comp.ctype == "Password");
    // Only the forwarded ReqAuth went to the Password component.
    assert_eq!(outs.len(), 2); // its Spawn + the Send
    assert_eq!(outs[0].kind, "Spawn");
    assert_eq!(outs[1].kind, "Send");
    assert_eq!(outs[1].msg, "ReqAuth");
}

const CALLER: &str = r#"
components {
  Client "c.py" ();
}
messages {
  Fetch(str);
  Page(str);
}
init {
  cl <- spawn Client();
}
handlers {
  when Client:Fetch(url) {
    body <- call wget(url);
    send(cl, Page(body));
  }
}
"#;

#[test]
fn world_results_flow_through_calls() {
    let c = checked("caller", CALLER);
    let world = ScriptedWorld::new().provides("wget", |args| {
        format!("<html>{}</html>", args[0].as_str().unwrap_or(""))
    });
    let registry = Registry::new().register("c.py", |_| {
        Box::new(ScriptedBehavior::new().starts_with([Msg::new("Fetch", [Value::from("x.org")])]))
    });
    let mut kernel = Interpreter::new(&c, registry, Box::new(world), 0).expect("boots");
    kernel.run(5).expect("runs");
    let sent = kernel
        .trace()
        .iter_chrono()
        .find_map(|a| match a {
            Action::Send { msg, .. } if msg.name == "Page" => Some(msg.args[0].clone()),
            _ => None,
        })
        .expect("page sent");
    assert_eq!(sent, Value::from("<html>x.org</html>"));
    check_trace_inclusion(&c, kernel.trace()).expect("in BehAbs");
}

// ---- property-based: every random execution stays inside BehAbs ---------

/// A small kernel exercising every command form, driven by random
/// schedules, worlds and client payloads.
const FUZZ: &str = r#"
components {
  Client "cl.py" (tag: str);
  Worker "wk.py" (kind: str);
}
messages {
  Job(str, num);
  Done(str);
  Report(num);
}
state {
  jobs: num = 0;
  last: str = "";
}
init {
  c1 <- spawn Client("one");
  c2 <- spawn Client("two");
}
handlers {
  when Client:Job(name, weight) {
    jobs = jobs + 1;
    r <- call classify(name);
    if (weight < 10 && r != "reject") {
      lookup Worker(w : w.kind == r) {
        send(w, Job(name, weight));
      } else {
        n <- spawn Worker(r);
        send(n, Job(name, weight));
      }
    } else {
      last = name;
      send(sender, Done(name));
    }
  }
  when Worker:Done(name) {
    last = name;
    send(sender, Report(jobs));
  }
}
"#;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_executions_stay_in_behabs(
        seed in any::<u64>(),
        world_seed in any::<u64>(),
        jobs in proptest::collection::vec((0usize..2, "[a-c]{0,3}", -5i64..15), 0..6),
    ) {
        let c = checked("fuzz", FUZZ);
        let registry = Registry::new().register("wk.py", |_| {
            Box::new(ScriptedBehavior::new().replies("Job", |m| {
                vec![Msg::new("Done", [m.args[0].clone()])]
            }))
        });
        let mut kernel = Interpreter::new(
            &c,
            registry,
            Box::new(RandomWorld::new(world_seed)),
            seed,
        ).expect("boots");
        let clients: Vec<CompId> =
            kernel.components_of("Client").iter().map(|t| t.id).collect();
        for (which, name, weight) in jobs {
            kernel.inject(
                clients[which],
                Msg::new("Job", [Value::from(name), Value::Num(weight)]),
            ).expect("inject");
            // Interleave stepping with injection for schedule diversity.
            kernel.step().expect("steps");
        }
        kernel.run(64).expect("drains");
        check_trace_inclusion(&c, kernel.trace()).expect("trace ⊆ BehAbs");
    }
}
