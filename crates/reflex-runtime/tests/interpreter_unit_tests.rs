//! Unit-level tests of interpreter mechanics: scheduling, mailboxes,
//! handler scoping, lookup order, and error behavior.

use reflex_ast::{CompId, Value};
use reflex_runtime::{
    ComponentBehavior, EmptyWorld, Interpreter, Registry, ScriptedBehavior, SilentBehavior,
};
use reflex_trace::{Action, Msg};
use reflex_typeck::CheckedProgram;

fn checked(src: &str) -> CheckedProgram {
    reflex_typeck::check(&reflex_parser::parse_program("t", src).expect("parses")).expect("checks")
}

const PIPE: &str = r#"
components {
  A "a.py" ();
  B "b.py" ();
}
messages {
  Step(num);
  Done(num);
}
state {
  seen: num = 0;
}
init {
  a0 <- spawn A();
  b0 <- spawn B();
}
handlers {
  when A:Step(n) {
    seen = seen + 1;
    send(b0, Step(n));
  }
  when B:Done(n) {
    seen = seen + n;
  }
}
"#;

#[test]
fn mailbox_is_fifo_per_component() {
    let c = checked(PIPE);
    let mut k = Interpreter::new(&c, Registry::new(), Box::new(EmptyWorld), 0).expect("boots");
    let a = k.components_of("A")[0].id;
    for n in [10, 20, 30] {
        k.inject(a, Msg::new("Step", [Value::Num(n)]))
            .expect("inject");
    }
    k.run(10).expect("runs");
    let received: Vec<i64> = k
        .trace()
        .iter_chrono()
        .filter_map(|act| match act {
            Action::Recv { msg, .. } if msg.name == "Step" => msg.args[0].as_num(),
            _ => None,
        })
        .collect();
    assert_eq!(received, vec![10, 20, 30], "FIFO order per mailbox");
    assert_eq!(k.state_var("seen"), Some(&Value::Num(3)));
}

#[test]
fn scheduler_is_deterministic_per_seed() {
    let c = checked(PIPE);
    let run = |seed: u64| {
        let registry = Registry::new().register("a.py", |_| {
            Box::new(
                ScriptedBehavior::new()
                    .starts_with((0..5).map(|n| Msg::new("Step", [Value::Num(n)]))),
            )
        });
        let mut k = Interpreter::new(&c, registry, Box::new(EmptyWorld), seed).expect("boots");
        k.run(32).expect("runs");
        k.trace().clone()
    };
    assert_eq!(run(42), run(42), "same seed, same schedule");
}

#[test]
fn run_respects_step_budget() {
    let c = checked(PIPE);
    let mut k = Interpreter::new(&c, Registry::new(), Box::new(EmptyWorld), 0).expect("boots");
    let a = k.components_of("A")[0].id;
    for n in 0..6 {
        k.inject(a, Msg::new("Step", [Value::Num(n)]))
            .expect("inject");
    }
    assert_eq!(k.run(2).expect("runs"), 2);
    assert!(k.has_ready());
    assert_eq!(k.run(100).expect("runs"), 4);
    assert!(!k.has_ready());
}

#[test]
fn behavior_replies_are_delivered_on_selection() {
    let c = checked(PIPE);
    let registry = Registry::new().register("b.py", |_| {
        Box::new(
            ScriptedBehavior::new()
                .replies("Step", |m| vec![Msg::new("Done", [m.args[0].clone()])]),
        )
    });
    let mut k = Interpreter::new(&c, registry, Box::new(EmptyWorld), 1).expect("boots");
    let a = k.components_of("A")[0].id;
    k.inject(a, Msg::new("Step", [Value::Num(7)]))
        .expect("inject");
    k.run(10).expect("runs");
    // seen = 1 (A handler) + 7 (B's Done reply).
    assert_eq!(k.state_var("seen"), Some(&Value::Num(8)));
}

#[test]
fn stateful_behaviors_accumulate() {
    // A custom behavior with internal state across deliveries.
    struct Counterer {
        count: i64,
    }
    impl ComponentBehavior for Counterer {
        fn on_message(&mut self, m: &Msg) -> Vec<Msg> {
            self.count += 1;
            if m.name == "Step" && self.count == 3 {
                vec![Msg::new("Done", [Value::Num(self.count)])]
            } else {
                vec![]
            }
        }
    }
    let c = checked(PIPE);
    let registry = Registry::new().register("b.py", |_| Box::new(Counterer { count: 0 }));
    let mut k = Interpreter::new(&c, registry, Box::new(EmptyWorld), 5).expect("boots");
    let a = k.components_of("A")[0].id;
    for n in 0..3 {
        k.inject(a, Msg::new("Step", [Value::Num(n)]))
            .expect("inject");
    }
    k.run(20).expect("runs");
    // Only the third delivery triggered Done(3): seen = 3 + 3.
    assert_eq!(k.state_var("seen"), Some(&Value::Num(6)));
}

#[test]
fn silent_behavior_is_inert_and_fresh_fds_advance() {
    let mut b = SilentBehavior;
    assert!(b.on_start().is_empty());
    assert!(b.on_message(&Msg::new("X", [])).is_empty());

    let c = checked(PIPE);
    let mut k = Interpreter::new(&c, Registry::new(), Box::new(EmptyWorld), 0).expect("boots");
    let f1 = k.fresh_fd();
    let f2 = k.fresh_fd();
    assert_ne!(f1, f2);
}

const LOOKUP_ORDER: &str = r#"
components {
  C "c.py" ();
  K "k.py" (tag: str);
}
messages {
  Find(str);
  Hit(str);
}
init {
  c0 <- spawn C();
  k1 <- spawn K("x");
  k2 <- spawn K("x");
}
handlers {
  when C:Find(t) {
    lookup K(k : k.tag == t) {
      send(k, Hit(t));
    }
  }
}
"#;

#[test]
fn lookup_picks_the_first_match_in_spawn_order() {
    let c = checked(LOOKUP_ORDER);
    let mut k = Interpreter::new(&c, Registry::new(), Box::new(EmptyWorld), 0).expect("boots");
    let c0 = k.components_of("C")[0].id;
    let first_k = k.components_of("K")[0].id;
    k.inject(c0, Msg::new("Find", [Value::from("x")]))
        .expect("inject");
    k.run(4).expect("runs");
    let hit = k
        .trace()
        .iter_chrono()
        .find_map(|a| match a {
            Action::Send { comp, msg } if msg.name == "Hit" => Some(comp.id),
            _ => None,
        })
        .expect("hit sent");
    assert_eq!(hit, first_k);
}

#[test]
fn missing_lookup_takes_else_branch_silently() {
    let c = checked(LOOKUP_ORDER);
    let mut k = Interpreter::new(&c, Registry::new(), Box::new(EmptyWorld), 0).expect("boots");
    let c0 = k.components_of("C")[0].id;
    k.inject(c0, Msg::new("Find", [Value::from("nope")]))
        .expect("inject");
    k.run(4).expect("runs");
    assert!(!k
        .trace()
        .iter_chrono()
        .any(|a| matches!(a, Action::Send { msg, .. } if msg.name == "Hit")));
}

#[test]
fn step_on_quiescent_kernel_returns_none() {
    let c = checked(PIPE);
    let mut k = Interpreter::new(&c, Registry::new(), Box::new(EmptyWorld), 0).expect("boots");
    assert!(k.step().expect("steps").is_none());
    assert_eq!(k.trace().len(), 2, "only the init spawns");
}

#[test]
fn inject_rejects_dead_component_ids() {
    let c = checked(PIPE);
    let mut k = Interpreter::new(&c, Registry::new(), Box::new(EmptyWorld), 0).expect("boots");
    assert!(k
        .inject(CompId::new(77), Msg::new("Step", [Value::Num(1)]))
        .is_err());
}
