//! Deterministic fault injection.
//!
//! The paper models the outside world as fully adversarial (§4.2's
//! non-deterministic context trees): external calls may fail, components
//! may die, and the sockets between them may lose, duplicate or reorder
//! messages. This module schedules such faults *deterministically* — a
//! [`FaultPlan`] names what goes wrong at which exchange index, and a
//! [`FaultyWorld`] decorator makes external calls fail on cue — so every
//! failure scenario is exactly replayable from `(seed, plan)`.
//!
//! All injected faults are refinements of non-determinism the behavioral
//! abstraction already quantifies over: a crash only restricts which
//! components the scheduler may select, and drop/duplicate/reorder only
//! permute which component→kernel messages arrive. Committed traces under
//! fault injection therefore stay inside `BehAbs`, which is what lets the
//! runtime monitor ([`crate::monitor`]) treat any divergence as a real
//! supervision bug rather than an artifact of the injected faults (see
//! DESIGN.md §"Runtime supervision").

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::{Arc, Mutex};

use rand::RngExt;
use reflex_ast::Value;
use reflex_rng::SimRng;

use crate::world::{CallFault, CallFaultKind, World};

/// One scheduled fault operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    /// The next `count` external call attempts fault with `kind`.
    CallFault {
        /// Failure or timeout.
        kind: CallFaultKind,
        /// How many consecutive attempts fault.
        count: usize,
    },
    /// Crash the `nth` (mod population) live component.
    Crash {
        /// Victim index among live components, in spawn order.
        nth: usize,
    },
    /// Drop the oldest pending message of the `nth` (mod population)
    /// component with pending messages.
    Drop {
        /// Victim index among components with pending messages.
        nth: usize,
    },
    /// Duplicate the oldest pending message of the `nth` component with
    /// pending messages.
    Duplicate {
        /// Victim index among components with pending messages.
        nth: usize,
    },
    /// Rotate the pending queue of the `nth` component with pending
    /// messages (delivery reordering).
    Reorder {
        /// Victim index among components with pending messages.
        nth: usize,
    },
}

impl fmt::Display for FaultOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultOp::CallFault { kind, count } => write!(f, "call-{}*{count}", kind.label()),
            FaultOp::Crash { nth } => write!(f, "crash={nth}"),
            FaultOp::Drop { nth } => write!(f, "drop={nth}"),
            FaultOp::Duplicate { nth } => write!(f, "dup={nth}"),
            FaultOp::Reorder { nth } => write!(f, "reorder={nth}"),
        }
    }
}

#[derive(Debug, Clone)]
enum PlanMode {
    /// No faults at all.
    None,
    /// Explicit step → ops table.
    Scripted(BTreeMap<usize, Vec<FaultOp>>),
    /// Seeded pseudo-random ops, derived statelessly per step index.
    Random {
        seed: u64,
        /// Probability that a given exchange gets one fault op.
        rate: f64,
    },
}

/// A deterministic schedule of fault operations, keyed by exchange index.
///
/// The same plan (and, for randomized plans, the same seed) always yields
/// the same operations at the same steps, independent of any other
/// randomness in the run — randomized plans derive a fresh generator from
/// `(seed, step)` for each query, so the schedule does not depend on query
/// order.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    mode: PlanMode,
}

impl FaultPlan {
    /// The empty plan: nothing ever goes wrong.
    pub fn none() -> FaultPlan {
        FaultPlan {
            mode: PlanMode::None,
        }
    }

    /// An empty scripted plan; add operations with [`at`](Self::at).
    pub fn scripted() -> FaultPlan {
        FaultPlan {
            mode: PlanMode::Scripted(BTreeMap::new()),
        }
    }

    /// Schedules `op` at exchange `step` (builder style; only valid on
    /// scripted plans).
    pub fn at(mut self, step: usize, op: FaultOp) -> FaultPlan {
        match &mut self.mode {
            PlanMode::Scripted(map) => map.entry(step).or_default().push(op),
            _ => {
                let mut map = BTreeMap::new();
                map.insert(step, vec![op]);
                self.mode = PlanMode::Scripted(map);
            }
        }
        self
    }

    /// A randomized plan: each exchange suffers one fault op with
    /// probability `rate`, derived deterministically from `seed`.
    pub fn random(seed: u64, rate: f64) -> FaultPlan {
        FaultPlan {
            mode: PlanMode::Random {
                seed,
                rate: rate.clamp(0.0, 1.0),
            },
        }
    }

    /// Re-seeds a randomized plan (no-op for scripted/empty plans).
    pub fn reseeded(mut self, seed: u64) -> FaultPlan {
        if let PlanMode::Random { seed: s, .. } = &mut self.mode {
            *s = seed;
        }
        self
    }

    /// The fault operations scheduled at exchange `step`.
    pub fn ops_for(&self, step: usize) -> Vec<FaultOp> {
        match &self.mode {
            PlanMode::None => Vec::new(),
            PlanMode::Scripted(map) => map.get(&step).cloned().unwrap_or_default(),
            PlanMode::Random { seed, rate } => {
                let mut rng = step_rng(*seed, step);
                if !rng.random_bool(*rate) {
                    return Vec::new();
                }
                let nth = rng.random_range(0..4usize);
                let op = match rng.random_range(0..6u32) {
                    0 => FaultOp::CallFault {
                        kind: CallFaultKind::Failure,
                        count: 1 + rng.random_range(0..2usize),
                    },
                    1 => FaultOp::CallFault {
                        kind: CallFaultKind::Timeout,
                        count: 1,
                    },
                    2 => FaultOp::Crash { nth },
                    3 => FaultOp::Drop { nth },
                    4 => FaultOp::Duplicate { nth },
                    _ => FaultOp::Reorder { nth },
                };
                vec![op]
            }
        }
    }

    /// Parses a `--faults` specification:
    ///
    /// * `none` — the empty plan;
    /// * `random:RATE` — randomized plan with per-exchange fault
    ///   probability `RATE` (seeded from the run's `--seed`);
    /// * a `;`-separated list of `STEP:OP` entries, where `OP` is one of
    ///   `callfail[*N]`, `timeout[*N]`, `crash[=NTH]`, `drop[=NTH]`,
    ///   `dup[=NTH]`, `reorder[=NTH]` — e.g.
    ///   `5:callfail*3;10:crash;20:drop=1`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed entry.
    pub fn parse(spec: &str, seed: u64) -> Result<FaultPlan, String> {
        let spec = spec.trim();
        if spec.is_empty() || spec == "none" {
            return Ok(FaultPlan::none());
        }
        if let Some(rate) = spec.strip_prefix("random:") {
            let rate: f64 = rate
                .parse()
                .map_err(|_| format!("bad fault rate `{rate}` (want e.g. random:0.05)"))?;
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("fault rate {rate} outside [0, 1]"));
            }
            return Ok(FaultPlan::random(seed, rate));
        }
        let mut plan = FaultPlan::scripted();
        for entry in spec.split(';').filter(|e| !e.trim().is_empty()) {
            let entry = entry.trim();
            let (step, op) = entry
                .split_once(':')
                .ok_or_else(|| format!("bad fault entry `{entry}` (want STEP:OP)"))?;
            let step: usize = step
                .trim()
                .parse()
                .map_err(|_| format!("bad step index in `{entry}`"))?;
            plan = plan.at(step, parse_op(op.trim())?);
        }
        Ok(plan)
    }
}

fn parse_op(op: &str) -> Result<FaultOp, String> {
    let (name, arg) = match (op.split_once('*'), op.split_once('=')) {
        (Some((n, c)), _) => (n, Some(('*', c))),
        (None, Some((n, c))) => (n, Some(('=', c))),
        (None, None) => (op, None),
    };
    let num = |what: &str| -> Result<usize, String> {
        match arg {
            None => Ok(1),
            Some((_, c)) => c
                .trim()
                .parse()
                .map_err(|_| format!("bad {what} in fault op `{op}`")),
        }
    };
    match name.trim() {
        "callfail" => Ok(FaultOp::CallFault {
            kind: CallFaultKind::Failure,
            count: num("count")?.max(1),
        }),
        "timeout" => Ok(FaultOp::CallFault {
            kind: CallFaultKind::Timeout,
            count: num("count")?.max(1),
        }),
        "crash" => Ok(FaultOp::Crash {
            nth: num("index")?.saturating_sub(if arg.is_none() { 1 } else { 0 }),
        }),
        "drop" => Ok(FaultOp::Drop {
            nth: num("index")?.saturating_sub(if arg.is_none() { 1 } else { 0 }),
        }),
        "dup" => Ok(FaultOp::Duplicate {
            nth: num("index")?.saturating_sub(if arg.is_none() { 1 } else { 0 }),
        }),
        "reorder" => Ok(FaultOp::Reorder {
            nth: num("index")?.saturating_sub(if arg.is_none() { 1 } else { 0 }),
        }),
        other => Err(format!("unknown fault op `{other}`")),
    }
}

/// Derives the per-step generator of a randomized plan: stateless in the
/// query order, fully determined by `(seed, step)`. The derivation is
/// [`reflex_rng::stream_u64`] — the scramble this module used to inline —
/// so pre-existing seeds keep their schedules (pinned in the tests below).
fn step_rng(seed: u64, step: usize) -> SimRng {
    SimRng::new(reflex_rng::stream_u64(seed, step as u64))
}

/// A queue of scheduled call faults, shared between a [`FaultyWorld`]
/// (boxed away inside the interpreter) and the supervisor that loads it.
#[derive(Debug, Clone, Default)]
pub struct FaultSwitch {
    queue: Arc<Mutex<VecDeque<CallFaultKind>>>,
}

impl FaultSwitch {
    /// A new, empty switch.
    pub fn new() -> FaultSwitch {
        FaultSwitch::default()
    }

    /// Schedules the next call attempt to fault with `kind`.
    pub fn push(&self, kind: CallFaultKind) {
        self.queue.lock().expect("switch poisoned").push_back(kind);
    }

    /// Takes the next scheduled fault, if any.
    pub fn pop(&self) -> Option<CallFaultKind> {
        self.queue.lock().expect("switch poisoned").pop_front()
    }

    /// Number of scheduled faults not yet consumed.
    pub fn pending(&self) -> usize {
        self.queue.lock().expect("switch poisoned").len()
    }

    /// Discards all scheduled faults.
    pub fn clear(&self) {
        self.queue.lock().expect("switch poisoned").clear();
    }
}

/// Burst-bounded spontaneous call faults for soak testing.
#[derive(Debug, Clone)]
struct AutoFaults {
    rng: SimRng,
    rate: f64,
    /// Longest run of consecutive faulted attempts — kept *below* the
    /// supervisor's retry budget so every call eventually succeeds.
    max_burst: usize,
    burst: usize,
}

/// A [`World`] decorator that injects call faults: scripted ones from a
/// shared [`FaultSwitch`] (loaded by the supervisor according to the
/// [`FaultPlan`]) and, optionally, seeded spontaneous faults with bounded
/// bursts ([`with_random`](Self::with_random)).
///
/// Only the fallible path ([`World::try_call`]) faults; the infallible
/// [`World::call`] passes straight through to the inner world, since a
/// caller ignoring faults could not observe them anyway.
pub struct FaultyWorld {
    inner: Box<dyn World>,
    switch: Option<FaultSwitch>,
    auto: Option<AutoFaults>,
}

impl fmt::Debug for FaultyWorld {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultyWorld")
            .field("switch", &self.switch.as_ref().map(FaultSwitch::pending))
            .field("auto", &self.auto)
            .finish()
    }
}

impl FaultyWorld {
    /// Wraps `inner` with no fault sources (add them with the builders).
    pub fn new(inner: Box<dyn World>) -> FaultyWorld {
        FaultyWorld {
            inner,
            switch: None,
            auto: None,
        }
    }

    /// Attaches a shared switch for scripted faults.
    pub fn with_switch(mut self, switch: FaultSwitch) -> FaultyWorld {
        self.switch = Some(switch);
        self
    }

    /// Adds seeded spontaneous faults: each attempt faults with
    /// probability `rate`, but never more than `max_burst` attempts in a
    /// row — keep `max_burst` below the retry budget and every call
    /// eventually succeeds.
    pub fn with_random(mut self, seed: u64, rate: f64, max_burst: usize) -> FaultyWorld {
        self.auto = Some(AutoFaults {
            rng: SimRng::new(seed),
            rate: rate.clamp(0.0, 1.0),
            max_burst,
            burst: 0,
        });
        self
    }
}

impl World for FaultyWorld {
    fn call(&mut self, func: &str, args: &[Value]) -> String {
        self.inner.call(func, args)
    }

    fn try_call(&mut self, func: &str, args: &[Value]) -> Result<String, CallFault> {
        if let Some(kind) = self.switch.as_ref().and_then(FaultSwitch::pop) {
            return Err(CallFault {
                kind,
                message: format!("injected {} of `{func}`", kind.label()),
            });
        }
        if let Some(auto) = &mut self.auto {
            if auto.burst < auto.max_burst && auto.rng.random_bool(auto.rate) {
                auto.burst += 1;
                return Err(CallFault::failure(format!(
                    "spontaneous failure of `{func}` (burst {})",
                    auto.burst
                )));
            }
            auto.burst = 0;
        }
        self.inner.try_call(func, args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::EmptyWorld;

    #[test]
    fn scripted_plan_builder_and_lookup() {
        let plan = FaultPlan::scripted()
            .at(3, FaultOp::Crash { nth: 0 })
            .at(
                3,
                FaultOp::CallFault {
                    kind: CallFaultKind::Timeout,
                    count: 2,
                },
            )
            .at(7, FaultOp::Drop { nth: 1 });
        assert_eq!(plan.ops_for(3).len(), 2);
        assert_eq!(plan.ops_for(7), vec![FaultOp::Drop { nth: 1 }]);
        assert!(plan.ops_for(4).is_empty());
    }

    #[test]
    fn random_plan_is_deterministic_and_order_independent() {
        let a = FaultPlan::random(9, 0.5);
        let b = FaultPlan::random(9, 0.5);
        // Query b in reverse order: per-step derivation must not care.
        let fwd: Vec<_> = (0..50).map(|s| a.ops_for(s)).collect();
        let mut rev: Vec<_> = (0..50).rev().map(|s| b.ops_for(s)).collect();
        rev.reverse();
        assert_eq!(fwd, rev);
        assert!(fwd.iter().any(|ops| !ops.is_empty()), "rate 0.5 fired");
        assert!(fwd.iter().any(|ops| ops.is_empty()));
    }

    #[test]
    fn parse_round_trips_the_readme_examples() {
        let plan = FaultPlan::parse("5:callfail*3;10:crash;20:drop=1", 0).unwrap();
        assert_eq!(
            plan.ops_for(5),
            vec![FaultOp::CallFault {
                kind: CallFaultKind::Failure,
                count: 3
            }]
        );
        assert_eq!(plan.ops_for(10), vec![FaultOp::Crash { nth: 0 }]);
        assert_eq!(plan.ops_for(20), vec![FaultOp::Drop { nth: 1 }]);

        assert!(FaultPlan::parse("none", 0).unwrap().ops_for(0).is_empty());
        assert!(FaultPlan::parse("random:0.1", 1).is_ok());
        assert!(FaultPlan::parse("random:7", 1).is_err());
        assert!(FaultPlan::parse("x:crash", 1).is_err());
        assert!(FaultPlan::parse("3:explode", 1).is_err());
    }

    #[test]
    fn random_plan_stream_is_pinned_to_the_pre_simrng_schedule() {
        // Frozen copy of the original implementation (inline SplitMix64
        // scramble seeding the vendored StdRng): the move to
        // `reflex_rng::SimRng` must not shift any recorded seed's
        // schedule.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        fn frozen_step_rng(seed: u64, step: usize) -> StdRng {
            let mut z = seed ^ (step as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            StdRng::seed_from_u64(z ^ (z >> 31))
        }
        fn frozen_ops_for(seed: u64, rate: f64, step: usize) -> Vec<FaultOp> {
            let mut rng = frozen_step_rng(seed, step);
            if !rng.random_bool(rate) {
                return Vec::new();
            }
            let nth = rng.random_range(0..4usize);
            let op = match rng.random_range(0..6u32) {
                0 => FaultOp::CallFault {
                    kind: CallFaultKind::Failure,
                    count: 1 + rng.random_range(0..2usize),
                },
                1 => FaultOp::CallFault {
                    kind: CallFaultKind::Timeout,
                    count: 1,
                },
                2 => FaultOp::Crash { nth },
                3 => FaultOp::Drop { nth },
                4 => FaultOp::Duplicate { nth },
                _ => FaultOp::Reorder { nth },
            };
            vec![op]
        }
        for seed in [0u64, 9, 1234] {
            let plan = FaultPlan::random(seed, 0.5);
            for step in 0..200 {
                assert_eq!(
                    plan.ops_for(step),
                    frozen_ops_for(seed, 0.5, step),
                    "seed {seed} step {step}"
                );
            }
        }
    }

    #[test]
    fn auto_fault_stream_is_pinned_to_stdrng() {
        // `with_random` used to seed a StdRng; SimRng::new must draw the
        // identical burst pattern.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut w = FaultyWorld::new(Box::new(EmptyWorld)).with_random(42, 0.5, 3);
        let mut frozen = StdRng::seed_from_u64(42);
        let mut burst = 0usize;
        for _ in 0..200 {
            let expect_fault = burst < 3 && frozen.random_bool(0.5);
            if expect_fault {
                burst += 1;
            } else {
                burst = 0;
            }
            assert_eq!(w.try_call("f", &[]).is_err(), expect_fault);
        }
    }

    #[test]
    fn faulty_world_switch_faults_then_recovers() {
        let switch = FaultSwitch::new();
        let mut w = FaultyWorld::new(Box::new(EmptyWorld)).with_switch(switch.clone());
        switch.push(CallFaultKind::Timeout);
        let fault = w.try_call("f", &[]).unwrap_err();
        assert_eq!(fault.kind, CallFaultKind::Timeout);
        assert_eq!(w.try_call("f", &[]), Ok(String::new()));
    }

    #[test]
    fn auto_faults_are_burst_bounded() {
        let mut w = FaultyWorld::new(Box::new(EmptyWorld)).with_random(1, 1.0, 2);
        // Rate 1.0 would fault forever without the burst bound.
        assert!(w.try_call("f", &[]).is_err());
        assert!(w.try_call("f", &[]).is_err());
        assert!(w.try_call("f", &[]).is_ok());
        assert!(w.try_call("f", &[]).is_err());
    }
}
