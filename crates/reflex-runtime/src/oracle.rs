//! Dynamic soundness oracles.
//!
//! The paper proves once and for all, in Coq, that every trace the
//! interpreter produces is included in the program's behavioral
//! abstraction `BehAbs` (arrow (A) of Figure 1). This reproduction cannot
//! state that meta-theorem in Rust's type system; instead,
//! [`check_trace_inclusion`] *decides* membership for any concrete trace
//! by deterministic replay, and the property-based tests run it against
//! thousands of random executions. The replay state is packaged as a
//! persistent [`IncrementalOracle`] so the runtime monitor
//! ([`crate::monitor`]) can feed committed exchanges one at a time and pay
//! only for the new actions. A second oracle, [`observable_outputs`],
//! provides the π_o projection used to test non-interference dynamically
//! (comparing pairs of runs modulo component identities and
//! file-descriptor values — allocator artifacts that legitimately differ
//! between runs, see DESIGN.md).

use std::collections::BTreeMap;
use std::fmt;

use reflex_ast::{BinOp, Cmd, Expr, Handler, UnOp, Value};
use reflex_trace::{Action, CompInst, Trace};
use reflex_typeck::CheckedProgram;

/// A trace that is not a possible behavior of the program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleError {
    /// Chronological index of the offending action (or the trace length
    /// for "trace ended unexpectedly").
    pub position: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for OracleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace not in BehAbs at action #{}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for OracleError {}

/// A persistent trace-inclusion checker: the replay state survives between
/// [`feed`](Self::feed) calls, so checking a growing trace costs O(new
/// actions), not O(whole trace) per exchange.
///
/// Feed the init segment first (the trace of a freshly booted
/// interpreter), then each committed exchange; every `feed` must end at an
/// exchange boundary. After an error the oracle is poisoned — its replay
/// state stops mid-command — and must not be fed further.
#[derive(Debug, Clone)]
pub struct IncrementalOracle {
    checked: CheckedProgram,
    data: BTreeMap<String, Value>,
    globals: BTreeMap<String, CompInst>,
    comp_list: Vec<CompInst>,
    consumed: usize,
    init_done: bool,
}

impl IncrementalOracle {
    /// A fresh oracle for `checked`, expecting the init segment first.
    pub fn new(checked: &CheckedProgram) -> IncrementalOracle {
        IncrementalOracle {
            checked: checked.clone(),
            data: checked.state_initial_values().into_iter().collect(),
            globals: BTreeMap::new(),
            comp_list: Vec::new(),
            consumed: 0,
            init_done: false,
        }
    }

    /// Number of actions consumed so far — feed it the trace suffix
    /// starting here.
    pub fn consumed(&self) -> usize {
        self.consumed
    }

    /// Replays the next committed segment of the trace. The first call
    /// consumes the init segment (plus any exchanges after it); later
    /// calls consume whole exchanges. Error positions are absolute indices
    /// into the full trace.
    ///
    /// # Errors
    ///
    /// Returns the position and reason of the first divergence from
    /// `BehAbs`.
    pub fn feed(&mut self, actions: &[Action]) -> Result<(), OracleError> {
        let init = (!self.init_done).then(|| self.checked.program().init.clone());
        let mut replay = Replay {
            checked: &self.checked,
            actions,
            cursor: 0,
            base: self.consumed,
            data: &mut self.data,
            globals: &mut self.globals,
            comp_list: &mut self.comp_list,
        };
        if let Some(init) = init {
            let mut frame = BTreeMap::new();
            let mut comps = BTreeMap::new();
            replay.replay_cmd(&init, &mut frame, &mut comps)?;
            // Init binders become global component variables.
            for (k, v) in comps {
                replay.globals.insert(k, v);
            }
            for (k, v) in frame {
                replay.data.insert(k, v);
            }
            self.init_done = true;
        }
        while replay.cursor < actions.len() {
            replay.replay_exchange()?;
        }
        self.consumed += actions.len();
        Ok(())
    }
}

struct Replay<'a> {
    checked: &'a CheckedProgram,
    actions: &'a [Action],
    cursor: usize,
    /// Absolute index of `actions[0]` in the full trace (for errors).
    base: usize,
    data: &'a mut BTreeMap<String, Value>,
    globals: &'a mut BTreeMap<String, CompInst>,
    comp_list: &'a mut Vec<CompInst>,
}

/// Decides whether `trace` is a possible behavior of the program: it must
/// decompose into the init segment followed by complete exchanges, each
/// action matching a deterministic replay of the corresponding command
/// (with the recorded world inputs and message payloads as the
/// non-deterministic choices).
///
/// # Errors
///
/// Returns the position and reason of the first divergence.
pub fn check_trace_inclusion(checked: &CheckedProgram, trace: &Trace) -> Result<(), OracleError> {
    IncrementalOracle::new(checked).feed(trace.actions())
}

impl<'a> Replay<'a> {
    /// An error at the current cursor — for "trace ended" and for
    /// evaluation errors raised before any action is consumed.
    fn fail(&self, message: impl Into<String>) -> OracleError {
        OracleError {
            position: self.base + self.cursor,
            message: message.into(),
        }
    }

    /// An error about the action just consumed by
    /// [`next_action`](Self::next_action).
    fn fail_here(&self, message: impl Into<String>) -> OracleError {
        OracleError {
            position: self.base + self.cursor.saturating_sub(1),
            message: message.into(),
        }
    }

    fn next_action(&mut self) -> Result<&'a Action, OracleError> {
        let a = self
            .actions
            .get(self.cursor)
            .ok_or_else(|| self.fail("trace ended in the middle of a command"))?;
        self.cursor += 1;
        Ok(a)
    }

    fn replay_exchange(&mut self) -> Result<(), OracleError> {
        let select = self.next_action()?;
        let Action::Select { comp: sender } = select else {
            return Err(self.fail_here(format!("expected Select, found {select}")));
        };
        if !self.comp_list.contains(sender) {
            return Err(self.fail_here(format!("selected component {sender} is not live")));
        }
        let recv = self.next_action()?;
        let Action::Recv { comp, msg } = recv else {
            return Err(self.fail_here(format!("expected Recv, found {recv}")));
        };
        if comp != sender {
            return Err(self.fail_here("Recv component differs from the selected one"));
        }
        let decl = self
            .checked
            .program()
            .msg_decl(&msg.name)
            .ok_or_else(|| self.fail_here(format!("undeclared message `{}`", msg.name)))?;
        if decl.payload.len() != msg.args.len()
            || decl
                .payload
                .iter()
                .zip(&msg.args)
                .any(|(ty, v)| v.ty() != *ty)
        {
            return Err(self.fail_here(format!("ill-typed payload for `{}`", msg.name)));
        }
        let handler = self
            .checked
            .program()
            .handler(&sender.ctype, &msg.name)
            .cloned();
        if let Some(h) = handler {
            let mut frame: BTreeMap<String, Value> = h
                .params
                .iter()
                .cloned()
                .zip(msg.args.iter().cloned())
                .collect();
            let mut comps = BTreeMap::new();
            comps.insert(Handler::SENDER.to_owned(), sender.clone());
            self.replay_cmd(&h.body, &mut frame, &mut comps)?;
        }
        Ok(())
    }

    fn replay_cmd(
        &mut self,
        cmd: &Cmd,
        frame: &mut BTreeMap<String, Value>,
        comps: &mut BTreeMap<String, CompInst>,
    ) -> Result<(), OracleError> {
        match cmd {
            Cmd::Nop => Ok(()),
            Cmd::Block(cs) => {
                for c in cs {
                    self.replay_cmd(c, frame, comps)?;
                }
                Ok(())
            }
            Cmd::Assign(x, e) => {
                let v = self.eval(e, frame, comps)?;
                self.data.insert(x.clone(), v);
                Ok(())
            }
            Cmd::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let taken = self.eval(cond, frame, comps)? == Value::Bool(true);
                self.replay_cmd(if taken { then_branch } else { else_branch }, frame, comps)
            }
            Cmd::Send { target, msg, args } => {
                let comp = self.eval_comp(target, frame, comps)?;
                let values: Result<Vec<Value>, _> =
                    args.iter().map(|a| self.eval(a, frame, comps)).collect();
                let values = values?;
                let action = self.next_action()?;
                match action {
                    Action::Send { comp: c, msg: m }
                        if *c == comp && m.name == *msg && m.args == values =>
                    {
                        Ok(())
                    }
                    other => Err(OracleError {
                        position: self.base + self.cursor - 1,
                        message: format!("expected Send({comp}, {msg}(…)), found {other}"),
                    }),
                }
            }
            Cmd::Spawn {
                binder,
                ctype,
                config,
            } => {
                let values: Result<Vec<Value>, _> =
                    config.iter().map(|c| self.eval(c, frame, comps)).collect();
                let values = values?;
                let action = self.next_action()?;
                let Action::Spawn { comp } = action else {
                    return Err(OracleError {
                        position: self.base + self.cursor - 1,
                        message: format!("expected Spawn({ctype}), found {action}"),
                    });
                };
                if comp.ctype != *ctype || comp.config != values {
                    return Err(OracleError {
                        position: self.base + self.cursor - 1,
                        message: format!(
                            "spawned component {comp} does not match spawn of {ctype}"
                        ),
                    });
                }
                if self.comp_list.iter().any(|c| c.id == comp.id) {
                    return Err(OracleError {
                        position: self.base + self.cursor - 1,
                        message: format!("component id {} reused", comp.id),
                    });
                }
                self.comp_list.push(comp.clone());
                comps.insert(binder.clone(), comp.clone());
                Ok(())
            }
            Cmd::Call { binder, func, args } => {
                let values: Result<Vec<Value>, _> =
                    args.iter().map(|a| self.eval(a, frame, comps)).collect();
                let values = values?;
                let action = self.next_action()?;
                let Action::Call {
                    func: f,
                    args: a,
                    result,
                } = action
                else {
                    return Err(OracleError {
                        position: self.base + self.cursor - 1,
                        message: format!("expected Call({func}), found {action}"),
                    });
                };
                if f != func || *a != values {
                    return Err(OracleError {
                        position: self.base + self.cursor - 1,
                        message: format!("call {f}({a:?}) does not match {func}({values:?})"),
                    });
                }
                let Value::Str(s) = result else {
                    return Err(OracleError {
                        position: self.base + self.cursor - 1,
                        message: "call results must be strings".into(),
                    });
                };
                frame.insert(binder.clone(), Value::Str(s.clone()));
                Ok(())
            }
            Cmd::Broadcast {
                ctype,
                binder,
                pred,
                msg,
                args,
            } => {
                // One recorded Send per matching component, in spawn order.
                let candidates: Vec<CompInst> = self
                    .comp_list
                    .iter()
                    .filter(|c| c.ctype == *ctype)
                    .cloned()
                    .collect();
                for c in candidates {
                    comps.insert(binder.clone(), c.clone());
                    let hit = self.eval(pred, frame, comps)? == Value::Bool(true);
                    if hit {
                        let values: Result<Vec<Value>, _> =
                            args.iter().map(|a| self.eval(a, frame, comps)).collect();
                        let values = values?;
                        let action = self.next_action()?;
                        match action {
                            Action::Send { comp, msg: m }
                                if *comp == c && m.name == *msg && m.args == values => {}
                            other => {
                                return Err(OracleError {
                                    position: self.base + self.cursor - 1,
                                    message: format!(
                                        "expected broadcast Send({c}, {msg}(…)), found {other}"
                                    ),
                                })
                            }
                        }
                    }
                }
                comps.remove(binder);
                Ok(())
            }
            Cmd::Lookup {
                ctype,
                binder,
                pred,
                found,
                missing,
            } => {
                // Deterministic first-match, mirroring the interpreter.
                let candidates: Vec<CompInst> = self
                    .comp_list
                    .iter()
                    .filter(|c| c.ctype == *ctype)
                    .cloned()
                    .collect();
                for c in candidates {
                    comps.insert(binder.clone(), c);
                    let hit = self.eval(pred, frame, comps)? == Value::Bool(true);
                    if hit {
                        let result = self.replay_cmd(found, frame, comps);
                        comps.remove(binder);
                        return result;
                    }
                }
                comps.remove(binder);
                self.replay_cmd(missing, frame, comps)
            }
        }
    }

    fn eval(
        &self,
        e: &Expr,
        frame: &BTreeMap<String, Value>,
        comps: &BTreeMap<String, CompInst>,
    ) -> Result<Value, OracleError> {
        Ok(match e {
            Expr::Lit(v) => v.clone(),
            Expr::Var(x) => {
                if let Some(v) = frame.get(x) {
                    v.clone()
                } else if let Some(c) = comps.get(x) {
                    Value::Comp(c.id)
                } else if let Some(v) = self.data.get(x) {
                    v.clone()
                } else if let Some(c) = self.globals.get(x) {
                    Value::Comp(c.id)
                } else {
                    return Err(self.fail(format!("unbound variable `{x}`")));
                }
            }
            Expr::Cfg(inner, field) => {
                let comp = self.eval_comp(inner, frame, comps)?;
                let decl = self
                    .checked
                    .program()
                    .comp_type(&comp.ctype)
                    .ok_or_else(|| self.fail("undeclared component type"))?;
                let (idx, _) = decl
                    .config_field(field)
                    .ok_or_else(|| self.fail(format!("no configuration field `{field}`")))?;
                comp.config[idx].clone()
            }
            Expr::Un(op, t) => {
                let v = self.eval(t, frame, comps)?;
                match (op, v) {
                    (UnOp::Not, Value::Bool(b)) => Value::Bool(!b),
                    (UnOp::Neg, Value::Num(n)) => Value::Num(n.wrapping_neg()),
                    _ => return Err(self.fail("type error in unary operator")),
                }
            }
            Expr::Bin(op, l, r) => {
                let a = self.eval(l, frame, comps)?;
                let b = self.eval(r, frame, comps)?;
                match (op, a, b) {
                    (BinOp::Eq, a, b) => Value::Bool(a == b),
                    (BinOp::Ne, a, b) => Value::Bool(a != b),
                    (BinOp::And, Value::Bool(x), Value::Bool(y)) => Value::Bool(x && y),
                    (BinOp::Or, Value::Bool(x), Value::Bool(y)) => Value::Bool(x || y),
                    (BinOp::Add, Value::Num(x), Value::Num(y)) => Value::Num(x.wrapping_add(y)),
                    (BinOp::Sub, Value::Num(x), Value::Num(y)) => Value::Num(x.wrapping_sub(y)),
                    (BinOp::Lt, Value::Num(x), Value::Num(y)) => Value::Bool(x < y),
                    (BinOp::Le, Value::Num(x), Value::Num(y)) => Value::Bool(x <= y),
                    (BinOp::Cat, Value::Str(x), Value::Str(y)) => Value::Str(format!("{x}{y}")),
                    _ => return Err(self.fail("type error in binary operator")),
                }
            }
        })
    }

    fn eval_comp(
        &self,
        e: &Expr,
        frame: &BTreeMap<String, Value>,
        comps: &BTreeMap<String, CompInst>,
    ) -> Result<CompInst, OracleError> {
        let v = self.eval(e, frame, comps)?;
        let Value::Comp(id) = v else {
            return Err(self.fail(format!("expected component, got {v}")));
        };
        self.comp_list
            .iter()
            .find(|c| c.id == id)
            .cloned()
            .ok_or_else(|| self.fail(format!("no live component {id}")))
    }
}

/// One identity-erased observable output: what the π_o comparison of
/// non-interference sees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObservableOutput {
    /// `"Send"` or `"Spawn"`.
    pub kind: &'static str,
    /// Recipient / spawned component type.
    pub ctype: String,
    /// Its configuration.
    pub config: Vec<Value>,
    /// Message name (empty for spawns).
    pub msg: String,
    /// Message payload with file-descriptor values erased (they are
    /// allocator artifacts).
    pub payload: Vec<Value>,
}

/// Projects the `Send`/`Spawn` actions directed at components selected by
/// `is_high`, erasing component identities and file descriptors (π_o of
/// §4.2, up to allocator artifacts).
pub fn observable_outputs(
    trace: &Trace,
    is_high: impl Fn(&CompInst) -> bool,
) -> Vec<ObservableOutput> {
    let erase = |v: &Value| match v {
        Value::Fdesc(_) => Value::Fdesc(reflex_ast::Fdesc::new(0)),
        other => other.clone(),
    };
    let mut out = Vec::new();
    for a in trace.iter_chrono() {
        match a {
            Action::Send { comp, msg } if is_high(comp) => out.push(ObservableOutput {
                kind: "Send",
                ctype: comp.ctype.clone(),
                config: comp.config.clone(),
                msg: msg.name.clone(),
                payload: msg.args.iter().map(erase).collect(),
            }),
            Action::Spawn { comp } if is_high(comp) => out.push(ObservableOutput {
                kind: "Spawn",
                ctype: comp.ctype.clone(),
                config: comp.config.clone(),
                msg: String::new(),
                payload: Vec::new(),
            }),
            _ => {}
        }
    }
    out
}
