//! Executable interpreter for Reflex programs, with simulated components
//! and dynamic soundness oracles.
//!
//! This crate is the runtime of the reproduction (paper §3.2): a kernel
//! event loop that selects ready components, receives their messages, runs
//! handlers, and records every observable action in a
//! [`Trace`](reflex_trace::Trace). Components are in-process scripted
//! behaviors ([`ComponentBehavior`]) and world non-determinism comes from a
//! pluggable [`World`] — see DESIGN.md for why this substitution preserves
//! the verified guarantees.
//!
//! The [`oracle`] module decides trace inclusion in the behavioral
//! abstraction (the dynamic counterpart of the paper's once-and-for-all
//! Coq theorem) and provides the identity-erased π_o projection used to
//! test non-interference over pairs of runs.
//!
//! The supervised runtime layers deterministic robustness machinery on
//! top: [`faults`] injects external-call faults, component crashes and
//! message-level faults on a replayable schedule, [`supervisor`] recovers
//! from them (retry/backoff, restart, quarantine, rollback), and
//! [`monitor`] re-checks the kernel's certificates online so any
//! supervision bug halts the run at the offending action.
//!
//! # Example
//!
//! ```
//! use reflex_runtime::{Interpreter, Registry, ScriptedBehavior, EmptyWorld};
//! use reflex_trace::Msg;
//! use reflex_ast::Value;
//!
//! let src = r#"
//! components { Echo "echo.py" (); }
//! messages { Ping(str); Pong(str); }
//! init { e <- spawn Echo(); }
//! handlers {
//!   when Echo:Ping(s) { send(e, Pong(s)); }
//! }
//! "#;
//! let program = reflex_parser::parse_program("ping", src).unwrap();
//! let checked = reflex_typeck::check(&program).unwrap();
//!
//! // The echo component pings once at startup.
//! let registry = Registry::new().register("echo.py", |_| {
//!     Box::new(ScriptedBehavior::new().starts_with([Msg::new("Ping", [Value::from("hi")])]))
//! });
//! let mut kernel = Interpreter::new(&checked, registry, Box::new(EmptyWorld), 0).unwrap();
//! kernel.run(10).unwrap();
//!
//! // The kernel received the ping and sent the pong...
//! assert_eq!(kernel.trace().len(), 4); // Spawn, Select, Recv, Send
//! // ...and the trace is a possible behavior of the program.
//! reflex_runtime::oracle::check_trace_inclusion(&checked, kernel.trace()).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod component;
pub mod faults;
mod interpreter;
pub mod monitor;
pub mod oracle;
pub mod supervisor;
mod world;

pub use component::{ComponentBehavior, Registry, ScriptedBehavior, SilentBehavior};
pub use faults::{FaultOp, FaultPlan, FaultSwitch, FaultyWorld};
pub use interpreter::{
    CallAttempt, Checkpoint, Interpreter, RetryPolicy, RuntimeError, RuntimeErrorKind, StepReport,
};
pub use monitor::{Monitor, MonitorError};
pub use oracle::IncrementalOracle;
pub use supervisor::{
    render_incident_log, IncidentKind, IncidentReport, SupStep, Supervisor, SupervisorConfig,
    SupervisorError,
};
pub use world::{
    CallFault, CallFaultKind, EmptyWorld, RandomWorld, ScriptedWorld, UnscriptedPolicy, World,
};
