//! Simulated components.
//!
//! In the paper, components are sandboxed OS processes (WebKit, OpenSSH,
//! Python scripts) talking to the kernel over Unix domain sockets. This
//! reproduction replaces the process boundary with the [`ComponentBehavior`]
//! trait: a component is an in-process scripted object that receives the
//! messages the kernel sends it and may hand back messages for the kernel
//! to service. The kernel-side semantics — and therefore everything the
//! verified guarantees talk about — is unchanged (see DESIGN.md).

use std::collections::HashMap;
use std::fmt;

use reflex_trace::{CompInst, Msg};

/// A simulated component implementation.
pub trait ComponentBehavior {
    /// Messages the component wants to send to the kernel immediately
    /// after being spawned.
    fn on_start(&mut self) -> Vec<Msg> {
        Vec::new()
    }

    /// Called when the kernel delivers `msg` to this component; returns
    /// messages the component sends back to the kernel (serviced in
    /// order, when the scheduler selects this component).
    fn on_message(&mut self, msg: &Msg) -> Vec<Msg>;
}

/// A component that never reacts (the default for unregistered
/// executables).
#[derive(Debug, Default, Clone, Copy)]
pub struct SilentBehavior;

impl ComponentBehavior for SilentBehavior {
    fn on_message(&mut self, _msg: &Msg) -> Vec<Msg> {
        Vec::new()
    }
}

/// A table-driven component: a queue of startup messages plus
/// message-name-keyed reply rules.
///
/// ```
/// use reflex_runtime::ScriptedBehavior;
/// use reflex_trace::Msg;
/// use reflex_ast::Value;
///
/// let mut b = ScriptedBehavior::new()
///     .starts_with([Msg::new("Hello", [])])
///     .replies("Ping", |msg| vec![Msg::new("Pong", msg.args.clone())]);
/// # use reflex_runtime::ComponentBehavior;
/// assert_eq!(b.on_start().len(), 1);
/// assert_eq!(b.on_message(&Msg::new("Ping", [Value::Num(1)])).len(), 1);
/// assert!(b.on_message(&Msg::new("Other", [])).is_empty());
/// ```
#[derive(Default)]
pub struct ScriptedBehavior {
    startup: Vec<Msg>,
    #[allow(clippy::type_complexity)]
    rules: Vec<(String, Box<dyn FnMut(&Msg) -> Vec<Msg>>)>,
}

impl ScriptedBehavior {
    /// An empty script (equivalent to [`SilentBehavior`]).
    pub fn new() -> ScriptedBehavior {
        ScriptedBehavior::default()
    }

    /// Messages sent at startup.
    pub fn starts_with(mut self, msgs: impl IntoIterator<Item = Msg>) -> Self {
        self.startup.extend(msgs);
        self
    }

    /// Adds a reply rule for messages named `msg`.
    pub fn replies(
        mut self,
        msg: impl Into<String>,
        rule: impl FnMut(&Msg) -> Vec<Msg> + 'static,
    ) -> Self {
        self.rules.push((msg.into(), Box::new(rule)));
        self
    }
}

impl fmt::Debug for ScriptedBehavior {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScriptedBehavior")
            .field("startup", &self.startup)
            .field(
                "rules",
                &self.rules.iter().map(|(m, _)| m).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl ComponentBehavior for ScriptedBehavior {
    fn on_start(&mut self) -> Vec<Msg> {
        std::mem::take(&mut self.startup)
    }

    fn on_message(&mut self, msg: &Msg) -> Vec<Msg> {
        for (name, rule) in &mut self.rules {
            if *name == msg.name {
                return rule(msg);
            }
        }
        Vec::new()
    }
}

/// Creates behaviors for spawned components, keyed by the *executable*
/// declared for the component type (mirroring how the paper's kernel
/// spawns the executable on disk).
#[allow(clippy::type_complexity)]
#[derive(Default)]
pub struct Registry {
    factories: HashMap<String, Box<dyn Fn(&CompInst) -> Box<dyn ComponentBehavior>>>,
}

impl Registry {
    /// An empty registry; unknown executables behave as [`SilentBehavior`].
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Registers a behavior factory for `exe`.
    pub fn register(
        mut self,
        exe: impl Into<String>,
        factory: impl Fn(&CompInst) -> Box<dyn ComponentBehavior> + 'static,
    ) -> Self {
        self.factories.insert(exe.into(), Box::new(factory));
        self
    }

    /// Instantiates the behavior for a freshly spawned component.
    pub fn instantiate(&self, exe: &str, comp: &CompInst) -> Box<dyn ComponentBehavior> {
        match self.factories.get(exe) {
            Some(f) => f(comp),
            None => Box::new(SilentBehavior),
        }
    }
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Registry")
            .field("exes", &self.factories.keys().collect::<Vec<_>>())
            .finish()
    }
}
