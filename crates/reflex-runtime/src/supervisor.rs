//! The supervised runtime.
//!
//! The interpreter ([`crate::interpreter`]) is the verified core: it
//! executes exactly the behaviors the certificates speak about, and a
//! faulted external call or crashed component simply surfaces as an error.
//! The [`Supervisor`] wraps it with the recovery policies a deployed
//! kernel needs — retry with bounded backoff for external calls, restart
//! for crashed components, quarantine for components that crash too often,
//! rollback for exchanges whose retry budget is exhausted — while staying
//! *outside* the verified core: every recovery action only removes
//! non-determinism the behavioral abstraction already permits, and the
//! optional runtime [`Monitor`](crate::monitor::Monitor) re-checks the
//! certificates online to catch any supervision bug (see DESIGN.md
//! §"Runtime supervision").
//!
//! Everything is deterministic: the same `(program, seed, fault plan,
//! config)` produces byte-identical traces and incident logs, so any
//! incident is replayable from its parameters alone.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use reflex_ast::CompId;
use reflex_trace::Trace;
use reflex_typeck::CheckedProgram;

use crate::component::Registry;
use crate::faults::{FaultOp, FaultPlan, FaultSwitch, FaultyWorld};
use crate::interpreter::{Interpreter, RetryPolicy, RuntimeError, RuntimeErrorKind, StepReport};
use crate::monitor::{Monitor, MonitorError};
use crate::world::World;

/// Tunables of a [`Supervisor`].
#[derive(Debug, Clone, Copy)]
pub struct SupervisorConfig {
    /// Retry policy for faulted external calls.
    pub retry: RetryPolicy,
    /// Maximum restarts of one component within
    /// [`restart_window`](Self::restart_window) exchanges before it is
    /// quarantined (Erlang-style restart intensity).
    pub max_restarts: usize,
    /// Width, in exchanges, of the sliding restart-intensity window.
    pub restart_window: usize,
    /// Re-check the certificates online with a
    /// [`Monitor`](crate::monitor::Monitor).
    pub monitor: bool,
    /// Probability that the (decorated) world spontaneously faults a call
    /// attempt; `0.0` disables spontaneous faults.
    pub world_fault_rate: f64,
    /// Longest spontaneous fault burst — kept below
    /// [`retry`](Self::retry)`.max_attempts` so retried calls always
    /// recover.
    pub world_fault_burst: usize,
}

impl Default for SupervisorConfig {
    fn default() -> SupervisorConfig {
        SupervisorConfig {
            retry: RetryPolicy::attempts(4),
            max_restarts: 3,
            restart_window: 100,
            monitor: true,
            world_fault_rate: 0.0,
            world_fault_burst: 2,
        }
    }
}

/// One recovery (or injected-fault) event, for the incident log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IncidentKind {
    /// A call attempt faulted; `recovered` tells whether a later attempt
    /// of the same call succeeded.
    CallFaulted {
        /// The called function.
        func: String,
        /// 1-based faulted attempt.
        attempt: usize,
        /// Whether a later attempt succeeded.
        recovered: bool,
    },
    /// The retry budget was exhausted: the exchange was rolled back and
    /// the poisoned message dropped.
    CallAbandoned {
        /// The component whose message was being serviced.
        comp: Option<CompId>,
    },
    /// A component crashed (by fault injection).
    CompCrashed {
        /// The victim.
        comp: CompId,
    },
    /// A crashed component was restarted.
    CompRestarted {
        /// The component.
        comp: CompId,
    },
    /// A component exceeded the restart intensity and sits out until its
    /// crash record ages past the window.
    CompQuarantined {
        /// The component.
        comp: CompId,
    },
    /// A pending message was dropped (by fault injection).
    MsgDropped {
        /// The component whose message was dropped.
        comp: CompId,
    },
    /// A pending message was duplicated (by fault injection).
    MsgDuplicated {
        /// The component whose message was duplicated.
        comp: CompId,
    },
    /// A pending queue was rotated (delivery reordering, by fault
    /// injection).
    MsgReordered {
        /// The component whose queue was rotated.
        comp: CompId,
    },
}

impl IncidentKind {
    /// A short stable label for logs and counters.
    pub fn label(&self) -> &'static str {
        match self {
            IncidentKind::CallFaulted { .. } => "call-faulted",
            IncidentKind::CallAbandoned { .. } => "call-abandoned",
            IncidentKind::CompCrashed { .. } => "comp-crashed",
            IncidentKind::CompRestarted { .. } => "comp-restarted",
            IncidentKind::CompQuarantined { .. } => "comp-quarantined",
            IncidentKind::MsgDropped { .. } => "msg-dropped",
            IncidentKind::MsgDuplicated { .. } => "msg-duplicated",
            IncidentKind::MsgReordered { .. } => "msg-reordered",
        }
    }
}

/// A structured record of one supervision event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IncidentReport {
    /// The exchange index at which the event happened.
    pub step: usize,
    /// What happened.
    pub kind: IncidentKind,
    /// Human-readable specifics (deterministic — no clocks).
    pub detail: String,
}

impl fmt::Display for IncidentReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[step {:>6}] {:<16} {}",
            self.step,
            self.kind.label(),
            self.detail
        )
    }
}

/// Renders an incident log, one line per report.
pub fn render_incident_log(incidents: &[IncidentReport]) -> String {
    let mut out = String::new();
    for i in incidents {
        out.push_str(&i.to_string());
        out.push('\n');
    }
    out
}

/// What one supervised step did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SupStep {
    /// An exchange was committed (possibly after retried calls).
    Serviced(StepReport),
    /// The exchange could not be completed; it was rolled back and the
    /// poisoned message dropped — the kernel keeps serving everyone else.
    Recovered,
    /// No live component has a pending message.
    Idle,
}

/// Why a supervised run must abort.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SupervisorError {
    /// An unrecoverable interpreter error (API misuse).
    Runtime(RuntimeError),
    /// The runtime monitor caught a certificate violation.
    Monitor(MonitorError),
}

impl fmt::Display for SupervisorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SupervisorError::Runtime(e) => write!(f, "supervisor: unrecoverable: {e}"),
            SupervisorError::Monitor(e) => write!(f, "supervisor: {e}"),
        }
    }
}

impl std::error::Error for SupervisorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SupervisorError::Runtime(e) => Some(e),
            SupervisorError::Monitor(e) => Some(e),
        }
    }
}

/// The supervised runtime: an [`Interpreter`] plus fault injection,
/// recovery policies and an optional certificate monitor.
#[derive(Debug)]
pub struct Supervisor {
    interp: Interpreter,
    plan: FaultPlan,
    switch: FaultSwitch,
    monitor: Option<Monitor>,
    config: SupervisorConfig,
    incidents: Vec<IncidentReport>,
    /// Exchange indices at which each component crashed.
    crash_history: BTreeMap<CompId, Vec<usize>>,
    quarantined: BTreeSet<CompId>,
    /// The last exchange index whose plan ops were applied — the index
    /// does not advance across idle or rolled-back steps, and the ops
    /// must fire once per index, not once per `step()` call.
    plan_cursor: Option<usize>,
}

impl Supervisor {
    /// Boots a supervised kernel: wraps `world` in a
    /// [`FaultyWorld`] wired to this supervisor's fault switch (plus
    /// spontaneous faults per
    /// [`world_fault_rate`](SupervisorConfig::world_fault_rate)), boots
    /// the interpreter, and — if configured — observes the init trace
    /// with a fresh monitor.
    ///
    /// # Errors
    ///
    /// Propagates interpreter boot errors and init-trace monitor
    /// violations.
    pub fn new(
        checked: &CheckedProgram,
        registry: Registry,
        world: Box<dyn World>,
        seed: u64,
        plan: FaultPlan,
        config: SupervisorConfig,
    ) -> Result<Supervisor, SupervisorError> {
        let switch = FaultSwitch::new();
        let mut faulty = FaultyWorld::new(world).with_switch(switch.clone());
        if config.world_fault_rate > 0.0 {
            // A seed distinct from the scheduler's keeps world faults and
            // scheduling choices uncorrelated but jointly deterministic.
            faulty = faulty.with_random(
                seed ^ 0xC0FF_EE00_D15E_A5E5,
                config.world_fault_rate,
                config.world_fault_burst.min(config.retry.max_attempts - 1),
            );
        }
        let mut interp = Interpreter::new(checked, registry, Box::new(faulty), seed)
            .map_err(SupervisorError::Runtime)?;
        interp.set_retry_policy(config.retry);
        let mut monitor = config.monitor.then(|| Monitor::new(checked));
        if let Some(m) = &mut monitor {
            m.observe(interp.trace())
                .map_err(SupervisorError::Monitor)?;
        }
        Ok(Supervisor {
            interp,
            plan,
            switch,
            monitor,
            config,
            incidents: Vec::new(),
            crash_history: BTreeMap::new(),
            quarantined: BTreeSet::new(),
            plan_cursor: None,
        })
    }

    /// The supervised interpreter (read-only).
    pub fn interpreter(&self) -> &Interpreter {
        &self.interp
    }

    /// The supervised interpreter. Mutating it behind the supervisor's
    /// back (e.g. stepping it directly) will desynchronize the monitor —
    /// use [`inject`](Self::inject) and [`step`](Self::step) instead.
    pub fn interpreter_mut(&mut self) -> &mut Interpreter {
        &mut self.interp
    }

    /// The committed trace so far.
    pub fn trace(&self) -> &Trace {
        self.interp.trace()
    }

    /// The incident log so far.
    pub fn incidents(&self) -> &[IncidentReport] {
        &self.incidents
    }

    /// Drains the incident log.
    pub fn take_incidents(&mut self) -> Vec<IncidentReport> {
        std::mem::take(&mut self.incidents)
    }

    /// Components currently quarantined.
    pub fn quarantined(&self) -> Vec<CompId> {
        self.quarantined.iter().copied().collect()
    }

    /// Enqueues `msg` as if `comp` had sent it (delegates to
    /// [`Interpreter::inject`]). Messages for crashed components are
    /// dropped silently — their socket is closed — so workloads need not
    /// track which components are currently down.
    ///
    /// # Errors
    ///
    /// Propagates interpreter misuse errors (unknown component, ill-typed
    /// payload).
    pub fn inject(&mut self, comp: CompId, msg: reflex_trace::Msg) -> Result<(), SupervisorError> {
        if self.interp.is_crashed(comp) {
            return Ok(());
        }
        self.interp
            .inject(comp, msg)
            .map_err(SupervisorError::Runtime)
    }

    /// One supervised exchange: applies due restarts and this step's
    /// fault-plan operations, then services one message with
    /// checkpoint/rollback protection and feeds the committed trace to
    /// the monitor.
    ///
    /// # Errors
    ///
    /// [`SupervisorError::Monitor`] if the committed exchange violates a
    /// certificate; [`SupervisorError::Runtime`] for unrecoverable
    /// interpreter errors.
    pub fn step(&mut self) -> Result<SupStep, SupervisorError> {
        let s = self.interp.steps();
        self.restart_due(s);
        if self.plan_cursor != Some(s) {
            self.plan_cursor = Some(s);
            for op in self.plan.ops_for(s) {
                self.apply_op(s, op);
            }
        }
        if !self.interp.has_ready() {
            return Ok(SupStep::Idle);
        }
        let cp = self.interp.checkpoint();
        match self.interp.step() {
            Ok(Some(report)) => {
                self.drain_call_attempts(s);
                if let Some(m) = &mut self.monitor {
                    m.observe(self.interp.trace())
                        .map_err(SupervisorError::Monitor)?;
                }
                Ok(SupStep::Serviced(report))
            }
            Ok(None) => Ok(SupStep::Idle),
            Err(e) if e.kind == RuntimeErrorKind::CallFailed => {
                self.interp.restore(&cp);
                self.drain_call_attempts(s);
                if let Some(comp) = e.comp {
                    // The message that led into the doomed call is dropped:
                    // redelivering it would fail the same way forever.
                    self.interp.drop_pending(comp);
                }
                self.incidents.push(IncidentReport {
                    step: s,
                    kind: IncidentKind::CallAbandoned { comp: e.comp },
                    detail: format!("{}; exchange rolled back, message dropped", e.message),
                });
                Ok(SupStep::Recovered)
            }
            Err(e) => Err(SupervisorError::Runtime(e)),
        }
    }

    /// Services exchanges until idle or `max` exchanges, whichever first;
    /// returns how many were committed or recovered.
    ///
    /// # Errors
    ///
    /// Propagates the first [`Supervisor::step`] error.
    pub fn run(&mut self, max: usize) -> Result<usize, SupervisorError> {
        let mut n = 0;
        while n < max {
            match self.step()? {
                SupStep::Idle => break,
                _ => n += 1,
            }
        }
        Ok(n)
    }

    /// Stops all fault injection: replaces the fault plan with the empty
    /// plan and discards scheduled call faults. Spontaneous world faults
    /// (if configured) keep firing — they are burst-bounded below the
    /// retry budget, so they never prevent recovery. Used for the
    /// cooldown phase at the end of a soak, where the run must prove that
    /// every crashed component comes back once the faults stop.
    pub fn disarm(&mut self) {
        self.plan = FaultPlan::none();
        self.switch.clear();
    }

    /// Restarts every crashed component immediately, bypassing the
    /// restart-intensity window and clearing quarantine — for end-of-run
    /// recovery, so a soak can assert that nothing stays down.
    pub fn heal(&mut self) {
        let s = self.interp.steps();
        for comp in self.interp.crashed_components() {
            self.quarantined.remove(&comp);
            if let Ok(inst) = self.interp.restart_component(comp) {
                self.incidents.push(IncidentReport {
                    step: s,
                    kind: IncidentKind::CompRestarted { comp },
                    detail: format!("healed {inst} (restart window bypassed)"),
                });
            }
        }
    }

    /// Restarts crashed components whose recent crash count fits the
    /// restart-intensity budget; quarantines the others until their crash
    /// record ages out of the window.
    fn restart_due(&mut self, s: usize) {
        for comp in self.interp.crashed_components() {
            let recent = self
                .crash_history
                .get(&comp)
                .map(|h| {
                    h.iter()
                        .filter(|&&c| s.saturating_sub(c) <= self.config.restart_window)
                        .count()
                })
                .unwrap_or(0);
            if recent > self.config.max_restarts {
                if self.quarantined.insert(comp) {
                    self.incidents.push(IncidentReport {
                        step: s,
                        kind: IncidentKind::CompQuarantined { comp },
                        detail: format!(
                            "{recent} crashes within {} exchanges exceeds the budget of {}",
                            self.config.restart_window, self.config.max_restarts
                        ),
                    });
                }
            } else {
                let left_quarantine = self.quarantined.remove(&comp);
                if let Ok(inst) = self.interp.restart_component(comp) {
                    self.incidents.push(IncidentReport {
                        step: s,
                        kind: IncidentKind::CompRestarted { comp },
                        detail: if left_quarantine {
                            format!("restarted {inst} after quarantine cooldown")
                        } else {
                            format!("restarted {inst}")
                        },
                    });
                }
            }
        }
    }

    fn apply_op(&mut self, s: usize, op: FaultOp) {
        match op {
            FaultOp::CallFault { kind, count } => {
                for _ in 0..count {
                    self.switch.push(kind);
                }
            }
            FaultOp::Crash { nth } => {
                let live: Vec<CompId> = self
                    .interp
                    .components()
                    .iter()
                    .map(|c| c.id)
                    .filter(|&id| !self.interp.is_crashed(id))
                    .collect();
                if live.is_empty() {
                    return;
                }
                let victim = live[nth % live.len()];
                if let Ok(inst) = self.interp.kill_component(victim) {
                    self.crash_history.entry(victim).or_default().push(s);
                    self.incidents.push(IncidentReport {
                        step: s,
                        kind: IncidentKind::CompCrashed { comp: victim },
                        detail: format!("killed {inst} (fault injection)"),
                    });
                }
            }
            FaultOp::Drop { nth } => {
                if let Some(victim) = nth_pending(&self.interp, nth) {
                    if let Some(msg) = self.interp.drop_pending(victim) {
                        self.incidents.push(IncidentReport {
                            step: s,
                            kind: IncidentKind::MsgDropped { comp: victim },
                            detail: format!("dropped pending {msg} from {victim}"),
                        });
                    }
                }
            }
            FaultOp::Duplicate { nth } => {
                if let Some(victim) = nth_pending(&self.interp, nth) {
                    if let Some(msg) = self.interp.duplicate_pending(victim) {
                        self.incidents.push(IncidentReport {
                            step: s,
                            kind: IncidentKind::MsgDuplicated { comp: victim },
                            detail: format!("duplicated pending {msg} from {victim}"),
                        });
                    }
                }
            }
            FaultOp::Reorder { nth } => {
                if let Some(victim) = nth_pending(&self.interp, nth) {
                    if let Some(msg) = self.interp.rotate_pending(victim) {
                        self.incidents.push(IncidentReport {
                            step: s,
                            kind: IncidentKind::MsgReordered { comp: victim },
                            detail: format!("deferred pending {msg} from {victim}"),
                        });
                    }
                }
            }
        }
    }

    fn drain_call_attempts(&mut self, s: usize) {
        for a in self.interp.take_call_attempts() {
            let detail = if a.recovered {
                format!(
                    "attempt {} of `{}`: {}; recovered after {} ms simulated backoff",
                    a.attempt, a.func, a.fault, a.backoff_ms
                )
            } else {
                format!("attempt {} of `{}`: {}", a.attempt, a.func, a.fault)
            };
            self.incidents.push(IncidentReport {
                step: a.step.unwrap_or(s),
                kind: IncidentKind::CallFaulted {
                    func: a.func,
                    attempt: a.attempt,
                    recovered: a.recovered,
                },
                detail,
            });
        }
    }
}

/// The `nth` (mod population) component with pending messages.
fn nth_pending(interp: &Interpreter, nth: usize) -> Option<CompId> {
    let targets = interp.comps_with_pending();
    if targets.is_empty() {
        None
    } else {
        Some(targets[nth % targets.len()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{Registry, ScriptedBehavior};
    use crate::world::{CallFaultKind, EmptyWorld};
    use reflex_ast::Value;
    use reflex_trace::{Action, Msg};

    /// A one-component kernel whose `Req` handler performs an external
    /// call — the smallest program exercising every recovery policy.
    const CACHE: &str = r#"
components { C "c.py" (); }
messages { Req(str); Resp(str); Nudge(); }
init { c0 <- spawn C(); }
handlers {
  when C:Req(k) { v <- call lookup(k); send(c0, Resp(v)); }
  when C:Nudge() { send(c0, Resp("ok")); }
}
"#;

    fn cache_program() -> CheckedProgram {
        let p = reflex_parser::parse_program("cache", CACHE).expect("parses");
        reflex_typeck::check(&p).expect("well-formed")
    }

    fn boot(plan: FaultPlan, config: SupervisorConfig) -> Supervisor {
        let checked = cache_program();
        let registry = Registry::new().register("c.py", |_| Box::new(ScriptedBehavior::new()));
        Supervisor::new(&checked, registry, Box::new(EmptyWorld), 42, plan, config).expect("boots")
    }

    fn comp(sup: &Supervisor) -> CompId {
        sup.interpreter().components_of("C")[0].id
    }

    fn labels(sup: &Supervisor) -> Vec<&'static str> {
        sup.incidents().iter().map(|i| i.kind.label()).collect()
    }

    #[test]
    fn retried_call_recovers_within_budget() {
        let plan = FaultPlan::scripted().at(
            0,
            FaultOp::CallFault {
                kind: CallFaultKind::Failure,
                count: 2,
            },
        );
        let mut sup = boot(plan, SupervisorConfig::default());
        let c = comp(&sup);
        sup.inject(c, Msg::new("Req", [Value::from("k")])).unwrap();
        assert!(matches!(sup.step().unwrap(), SupStep::Serviced(_)));
        // Two faulted attempts, both marked recovered; the exchange
        // committed with its Call action intact.
        let faulted: Vec<_> = sup
            .incidents()
            .iter()
            .filter_map(|i| match &i.kind {
                IncidentKind::CallFaulted {
                    attempt, recovered, ..
                } => Some((*attempt, *recovered)),
                _ => None,
            })
            .collect();
        assert_eq!(faulted, vec![(1, true), (2, true)]);
        let trace = sup.trace().actions();
        assert!(trace.iter().any(|a| matches!(a, Action::Call { .. })));
        assert!(trace
            .iter()
            .any(|a| matches!(a, Action::Send { msg, .. } if msg.name == "Resp")));
    }

    #[test]
    fn exhausted_retry_budget_rolls_back_and_drops_the_message() {
        let plan = FaultPlan::scripted().at(
            0,
            FaultOp::CallFault {
                kind: CallFaultKind::Timeout,
                count: 10, // > the default budget of 4 attempts
            },
        );
        let mut sup = boot(plan, SupervisorConfig::default());
        let c = comp(&sup);
        let committed = sup.trace().len();
        sup.inject(c, Msg::new("Req", [Value::from("k")])).unwrap();
        assert_eq!(sup.step().unwrap(), SupStep::Recovered);
        // The exchange was rolled back action-for-action and the poisoned
        // message dropped, so the kernel is idle again.
        assert_eq!(sup.trace().len(), committed);
        assert_eq!(sup.interpreter().pending_count(c), 0);
        assert_eq!(
            labels(&sup),
            [
                "call-faulted",
                "call-faulted",
                "call-faulted",
                "call-faulted",
                "call-abandoned"
            ]
        );
        // And it keeps serving everyone else, monitor still attached.
        sup.inject(c, Msg::new("Nudge", [])).unwrap();
        assert!(matches!(sup.step().unwrap(), SupStep::Serviced(_)));
    }

    #[test]
    fn plan_ops_fire_once_per_exchange_index() {
        // A drop at exchange 0 empties the only mailbox; the very next
        // injection at the *same* index must not be dropped again.
        let plan = FaultPlan::scripted().at(0, FaultOp::Drop { nth: 0 });
        let mut sup = boot(plan, SupervisorConfig::default());
        let c = comp(&sup);
        sup.inject(c, Msg::new("Nudge", [])).unwrap();
        assert_eq!(sup.step().unwrap(), SupStep::Idle);
        assert_eq!(labels(&sup), ["msg-dropped"]);
        sup.inject(c, Msg::new("Nudge", [])).unwrap();
        assert!(matches!(sup.step().unwrap(), SupStep::Serviced(_)));
        assert_eq!(labels(&sup), ["msg-dropped"]);
    }

    #[test]
    fn crash_restart_quarantine_and_heal() {
        let plan = FaultPlan::scripted()
            .at(0, FaultOp::Crash { nth: 0 })
            .at(1, FaultOp::Crash { nth: 0 });
        let config = SupervisorConfig {
            max_restarts: 1,
            restart_window: 1000,
            ..SupervisorConfig::default()
        };
        let mut sup = boot(plan, config);
        let c = comp(&sup);

        sup.inject(c, Msg::new("Nudge", [])).unwrap();
        // Exchange 0: the crash eats the component (and its mailbox).
        assert_eq!(sup.step().unwrap(), SupStep::Idle);
        assert!(sup.interpreter().is_crashed(c));
        // Next step restarts it (1 recent crash fits the budget of 1).
        assert_eq!(sup.step().unwrap(), SupStep::Idle);
        assert!(!sup.interpreter().is_crashed(c));
        sup.inject(c, Msg::new("Nudge", [])).unwrap();
        assert!(matches!(sup.step().unwrap(), SupStep::Serviced(_)));
        // Exchange 1: second crash exceeds the restart intensity.
        assert_eq!(sup.step().unwrap(), SupStep::Idle);
        assert_eq!(sup.step().unwrap(), SupStep::Idle);
        assert_eq!(sup.quarantined(), vec![c]);
        assert_eq!(
            labels(&sup),
            [
                "comp-crashed",
                "comp-restarted",
                "comp-crashed",
                "comp-quarantined"
            ]
        );
        // Injections to the quarantined component are dropped silently.
        sup.inject(c, Msg::new("Nudge", [])).unwrap();
        assert_eq!(sup.step().unwrap(), SupStep::Idle);
        // heal() bypasses the window: everything comes back.
        sup.heal();
        assert!(sup.quarantined().is_empty());
        assert!(sup.interpreter().crashed_components().is_empty());
        sup.inject(c, Msg::new("Nudge", [])).unwrap();
        assert!(matches!(sup.step().unwrap(), SupStep::Serviced(_)));
    }

    #[test]
    fn spontaneous_world_faults_always_recover() {
        let config = SupervisorConfig {
            world_fault_rate: 1.0, // burst-bounded below the retry budget
            ..SupervisorConfig::default()
        };
        let mut sup = boot(FaultPlan::none(), config);
        let c = comp(&sup);
        for _ in 0..5 {
            sup.inject(c, Msg::new("Req", [Value::from("k")])).unwrap();
            assert!(matches!(sup.step().unwrap(), SupStep::Serviced(_)));
        }
        assert!(labels(&sup).iter().all(|&l| l == "call-faulted"));
        assert!(!sup.incidents().is_empty(), "rate 1.0 must fault");
    }

    #[test]
    fn same_seed_and_plan_replay_byte_identically() {
        let run = || {
            let config = SupervisorConfig {
                world_fault_rate: 0.5,
                ..SupervisorConfig::default()
            };
            let mut sup = boot(FaultPlan::random(7, 0.4), config);
            let c = comp(&sup);
            for i in 0..40 {
                sup.inject(c, Msg::new("Req", [Value::from(format!("k{i}"))]))
                    .unwrap();
                let _ = sup.step().expect("supervised step");
            }
            sup.heal();
            let trace: Vec<String> = sup
                .trace()
                .actions()
                .iter()
                .map(|a| a.to_string())
                .collect();
            (trace, render_incident_log(sup.incidents()))
        };
        assert_eq!(run(), run());
    }
}
