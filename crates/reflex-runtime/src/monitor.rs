//! Certificate-backed runtime monitoring.
//!
//! The paper's guarantee is static: every trace of a verified kernel
//! satisfies its proved properties. The supervisor ([`crate::supervisor`])
//! is *not* covered by those proofs — restarts, retries and rollbacks are
//! runtime machinery layered on top of the verified step function. The
//! [`Monitor`] closes that gap dynamically: after every committed exchange
//! it replays the new trace suffix through the behavioral-abstraction
//! oracle ([`crate::oracle::IncrementalOracle`]) and through an incremental
//! checker for the kernel's verified trace properties
//! ([`reflex_trace::IncrementalChecker`]). Both are streaming, so the
//! per-exchange cost is O(actions in the exchange), independent of how
//! long the run already is.
//!
//! A [`MonitorError`] therefore means the *supervisor* (or the interpreter
//! under it) emitted a trace the certificates forbid — a genuine
//! supervision bug, reported with the absolute index of the offending
//! action. What the monitor can and cannot catch is discussed in DESIGN.md
//! §"Runtime supervision".

use std::fmt;

use reflex_trace::props::PropError;
use reflex_trace::{IncrementalChecker, Trace};
use reflex_typeck::CheckedProgram;

use crate::oracle::{IncrementalOracle, OracleError};

/// A committed trace that the kernel's certificates forbid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MonitorError {
    /// The trace left the behavioral abstraction `BehAbs`.
    NotInBehAbs(OracleError),
    /// The trace violates a verified trace property.
    Property {
        /// Name of the violated property declaration.
        name: String,
        /// The violation (or ill-formedness) report.
        error: PropError,
    },
}

impl MonitorError {
    /// Absolute chronological index of the offending action.
    ///
    /// For property violations this is the trigger index of the
    /// counterexample; for ill-formed properties (which the verifier
    /// rejects before a run ever starts) there is no action and this
    /// returns `None`.
    pub fn action_index(&self) -> Option<usize> {
        match self {
            MonitorError::NotInBehAbs(e) => Some(e.position),
            MonitorError::Property { error, .. } => match error {
                PropError::Violation(v) => Some(v.trigger_index),
                PropError::UnboundObligationVar { .. } => None,
            },
        }
    }
}

impl fmt::Display for MonitorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MonitorError::NotInBehAbs(e) => write!(f, "monitor: {e}"),
            MonitorError::Property { name, error } => {
                write!(f, "monitor: property `{name}`: {error}")
            }
        }
    }
}

impl std::error::Error for MonitorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MonitorError::NotInBehAbs(e) => Some(e),
            MonitorError::Property { error, .. } => Some(error),
        }
    }
}

/// An online checker for the two certificate families of a verified
/// kernel: trace inclusion in `BehAbs` and the kernel's trace properties.
///
/// Feed it the interpreter's trace after every *committed* exchange with
/// [`observe`](Self::observe); it consumes only the suffix it has not seen
/// yet. Rolled-back (uncommitted) exchanges must never reach the monitor —
/// the supervisor restores the interpreter checkpoint first, so the trace
/// it hands over only ever grows.
#[derive(Debug, Clone)]
pub struct Monitor {
    oracle: IncrementalOracle,
    checker: IncrementalChecker,
    /// Number of trace actions already observed.
    fed: usize,
    /// Set once a violation is reported; the monitor refuses further input.
    poisoned: bool,
}

impl Monitor {
    /// A fresh monitor for `checked`, expecting the trace from a freshly
    /// booted interpreter (init segment first).
    pub fn new(checked: &CheckedProgram) -> Monitor {
        Monitor {
            oracle: IncrementalOracle::new(checked),
            checker: IncrementalChecker::new(&checked.program().properties),
            fed: 0,
            poisoned: false,
        }
    }

    /// Number of trace actions observed so far.
    pub fn observed(&self) -> usize {
        self.fed
    }

    /// Checks the suffix of `trace` beyond what has already been observed.
    /// `trace` must extend the previously observed trace and end at an
    /// exchange boundary (both hold for an interpreter trace between
    /// steps).
    ///
    /// # Errors
    ///
    /// The first certificate violation in the new suffix, with the
    /// absolute index of the offending action. After an error the monitor
    /// is poisoned and panics on further use.
    pub fn observe(&mut self, trace: &Trace) -> Result<(), MonitorError> {
        assert!(!self.poisoned, "monitor used after reporting a violation");
        let actions = trace.actions();
        assert!(
            actions.len() >= self.fed,
            "monitor fed a trace shorter than what it already observed"
        );
        let delta = &actions[self.fed..];
        let result = (|| {
            self.oracle.feed(delta).map_err(MonitorError::NotInBehAbs)?;
            for act in delta {
                self.checker
                    .on_action(act)
                    .map_err(|(name, error)| MonitorError::Property { name, error })?;
            }
            self.checker
                .end_of_exchange()
                .map_err(|(name, error)| MonitorError::Property { name, error })
        })();
        match result {
            Ok(()) => {
                self.fed = actions.len();
                Ok(())
            }
            Err(e) => {
                self.poisoned = true;
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{Registry, ScriptedBehavior};
    use crate::interpreter::Interpreter;
    use crate::world::EmptyWorld;
    use reflex_ast::Value;
    use reflex_trace::{Action, Msg};

    const ECHO: &str = r#"
components { Echo "echo.py" (); }
messages { Ping(str); Pong(str); }
init { e <- spawn Echo(); }
handlers {
  when Echo:Ping(s) { send(sender, Pong(s)); }
}
properties {
  PongOnlyAfterPing: forall v: str.
    [Recv(Echo(), Ping(v))] Enables [Send(Echo(), Pong(v))];
}
"#;

    fn echo_program() -> CheckedProgram {
        let p = reflex_parser::parse_program("echo", ECHO).expect("parses");
        reflex_typeck::check(&p).expect("well-formed")
    }

    fn registry() -> Registry {
        Registry::new().register("echo.py", |_| Box::new(ScriptedBehavior::new()))
    }

    #[test]
    fn monitor_accepts_a_clean_run_incrementally() {
        let checked = echo_program();
        let mut interp =
            Interpreter::new(&checked, registry(), Box::new(EmptyWorld), 7).expect("boot");
        let mut monitor = Monitor::new(&checked);
        monitor.observe(interp.trace()).expect("init observed");
        let echo = interp.components_of("Echo")[0].clone();
        for i in 0..5 {
            interp
                .inject(echo.id, Msg::new("Ping", [Value::from(format!("m{i}"))]))
                .unwrap();
            interp.step().expect("step").expect("serviced");
            monitor.observe(interp.trace()).expect("clean exchange");
        }
        assert_eq!(monitor.observed(), interp.trace().len());
    }

    #[test]
    fn monitor_flags_a_forged_send_with_its_index() {
        let checked = echo_program();
        let interp = Interpreter::new(&checked, registry(), Box::new(EmptyWorld), 7).expect("boot");
        let mut monitor = Monitor::new(&checked);
        monitor.observe(interp.trace()).expect("init observed");
        let echo = interp.components_of("Echo")[0].clone();
        // Forge a Pong the kernel never sent: property violation (Enables
        // with no matching Ping) — and also outside BehAbs. The oracle
        // runs first, so the report is NotInBehAbs at the forged index.
        let mut forged = interp.trace().clone();
        let index = forged.len();
        forged.push(Action::Send {
            comp: echo.clone(),
            msg: Msg::new("Pong", [Value::from("forged")]),
        });
        let err = monitor.observe(&forged).expect_err("must flag");
        assert_eq!(err.action_index(), Some(index), "{err}");
    }

    #[test]
    #[should_panic(expected = "after reporting a violation")]
    fn monitor_is_poisoned_after_a_violation() {
        let checked = echo_program();
        let interp = Interpreter::new(&checked, registry(), Box::new(EmptyWorld), 7).expect("boot");
        let mut monitor = Monitor::new(&checked);
        monitor.observe(interp.trace()).expect("init observed");
        let echo = interp.components_of("Echo")[0].clone();
        let mut forged = interp.trace().clone();
        forged.push(Action::Send {
            comp: echo,
            msg: Msg::new("Pong", [Value::from("forged")]),
        });
        let _ = monitor.observe(&forged);
        let _ = monitor.observe(&forged); // panics: poisoned
    }
}
