//! The non-deterministic outside world.
//!
//! `call` commands invoke external functions whose results the kernel
//! cannot predict — in the paper these are custom OCaml functions (fetching
//! a URL, reading the password file, …) and their results are modelled as
//! inputs from the outside world (the non-deterministic context trees of
//! §4.2). The [`World`] trait supplies those results to the interpreter;
//! tests plug in scripted or random worlds.

use std::collections::HashMap;
use std::fmt;

use reflex_ast::Value;

/// Supplies results for external `call`s.
pub trait World {
    /// Produces the result of calling `func(args…)`. Reflex `call` results
    /// are strings.
    fn call(&mut self, func: &str, args: &[Value]) -> String;
}

/// A world where every call returns the empty string.
#[derive(Debug, Default, Clone, Copy)]
pub struct EmptyWorld;

impl World for EmptyWorld {
    fn call(&mut self, _func: &str, _args: &[Value]) -> String {
        String::new()
    }
}

/// A world with per-function scripted implementations; unscripted
/// functions return the empty string.
#[derive(Default)]
pub struct ScriptedWorld {
    #[allow(clippy::type_complexity)]
    functions: HashMap<String, Box<dyn FnMut(&[Value]) -> String>>,
}

impl ScriptedWorld {
    /// An empty scripted world.
    pub fn new() -> ScriptedWorld {
        ScriptedWorld::default()
    }

    /// Scripts `func`.
    pub fn provides(
        mut self,
        func: impl Into<String>,
        f: impl FnMut(&[Value]) -> String + 'static,
    ) -> Self {
        self.functions.insert(func.into(), Box::new(f));
        self
    }
}

impl fmt::Debug for ScriptedWorld {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScriptedWorld")
            .field("functions", &self.functions.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl World for ScriptedWorld {
    fn call(&mut self, func: &str, args: &[Value]) -> String {
        match self.functions.get_mut(func) {
            Some(f) => f(args),
            None => String::new(),
        }
    }
}

/// A world producing pseudo-random short strings from a seed — used by the
/// property-based trace-inclusion tests to exercise non-determinism.
#[derive(Debug, Clone)]
pub struct RandomWorld {
    state: u64,
}

impl RandomWorld {
    /// Creates a random world from a seed.
    pub fn new(seed: u64) -> RandomWorld {
        RandomWorld {
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
        }
    }

    fn next(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

impl World for RandomWorld {
    fn call(&mut self, _func: &str, _args: &[Value]) -> String {
        let n = self.next() % 4;
        ["", "a", "b", "ok"][n as usize].to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_world_dispatches_by_name() {
        let mut w = ScriptedWorld::new()
            .provides("wget", |args| format!("page:{}", args.len()))
            .provides("rand", |_| "4".to_owned());
        assert_eq!(w.call("wget", &[Value::from("u")]), "page:1");
        assert_eq!(w.call("rand", &[]), "4");
        assert_eq!(w.call("unknown", &[]), "");
    }

    #[test]
    fn random_world_is_deterministic_per_seed() {
        let mut a = RandomWorld::new(7);
        let mut b = RandomWorld::new(7);
        for _ in 0..16 {
            assert_eq!(a.call("f", &[]), b.call("f", &[]));
        }
    }
}
