//! The non-deterministic outside world.
//!
//! `call` commands invoke external functions whose results the kernel
//! cannot predict — in the paper these are custom OCaml functions (fetching
//! a URL, reading the password file, …) and their results are modelled as
//! inputs from the outside world (the non-deterministic context trees of
//! §4.2). The [`World`] trait supplies those results to the interpreter;
//! tests plug in scripted or random worlds.

use std::collections::HashMap;
use std::fmt;

use reflex_ast::Value;

/// Why an external call produced no result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CallFaultKind {
    /// The call failed outright (connection refused, crash, …).
    Failure,
    /// The call did not answer within its deadline.
    Timeout,
}

impl CallFaultKind {
    /// A short lowercase label (`"failure"` / `"timeout"`).
    pub fn label(self) -> &'static str {
        match self {
            CallFaultKind::Failure => "failure",
            CallFaultKind::Timeout => "timeout",
        }
    }
}

/// A failed external call, as reported by [`World::try_call`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallFault {
    /// How the call failed.
    pub kind: CallFaultKind,
    /// Human-readable cause.
    pub message: String,
}

impl CallFault {
    /// A [`CallFaultKind::Failure`] with the given cause.
    pub fn failure(message: impl Into<String>) -> CallFault {
        CallFault {
            kind: CallFaultKind::Failure,
            message: message.into(),
        }
    }

    /// A [`CallFaultKind::Timeout`] with the given cause.
    pub fn timeout(message: impl Into<String>) -> CallFault {
        CallFault {
            kind: CallFaultKind::Timeout,
            message: message.into(),
        }
    }
}

impl fmt::Display for CallFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "external call {}: {}", self.kind.label(), self.message)
    }
}

impl std::error::Error for CallFault {}

/// Supplies results for external `call`s.
pub trait World {
    /// Produces the result of calling `func(args…)`. Reflex `call` results
    /// are strings.
    fn call(&mut self, func: &str, args: &[Value]) -> String;

    /// Fallible variant of [`call`](Self::call): worlds that model an
    /// unreliable exterior (see `FaultyWorld` in [`crate::faults`]) override
    /// this to report failures/timeouts instead of inventing a result. The
    /// interpreter routes every `call` command through here so a
    /// [`RetryPolicy`](crate::interpreter::RetryPolicy) can re-attempt
    /// faulted calls. The default never fails.
    fn try_call(&mut self, func: &str, args: &[Value]) -> Result<String, CallFault> {
        Ok(self.call(func, args))
    }
}

/// A world where every call returns the empty string.
#[derive(Debug, Default, Clone, Copy)]
pub struct EmptyWorld;

impl World for EmptyWorld {
    fn call(&mut self, _func: &str, _args: &[Value]) -> String {
        String::new()
    }
}

/// What a [`ScriptedWorld`] does when an unscripted function is called.
///
/// Silently returning `""` (the historical behavior, still the default for
/// compatibility) masks typos in test scripts — a misspelled `provides`
/// key just makes every call of the real function return the empty string.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum UnscriptedPolicy {
    /// Return the empty string (legacy default).
    #[default]
    Empty,
    /// Report a [`CallFault`] through [`World::try_call`].
    Error,
    /// Panic immediately — for tests that want typos loud.
    Panic,
}

/// A world with per-function scripted implementations; what happens for
/// unscripted functions is governed by an [`UnscriptedPolicy`].
#[derive(Default)]
pub struct ScriptedWorld {
    #[allow(clippy::type_complexity)]
    functions: HashMap<String, Box<dyn FnMut(&[Value]) -> String>>,
    policy: UnscriptedPolicy,
}

impl ScriptedWorld {
    /// An empty scripted world with the [`UnscriptedPolicy::Empty`] policy.
    pub fn new() -> ScriptedWorld {
        ScriptedWorld::default()
    }

    /// Scripts `func`.
    pub fn provides(
        mut self,
        func: impl Into<String>,
        f: impl FnMut(&[Value]) -> String + 'static,
    ) -> Self {
        self.functions.insert(func.into(), Box::new(f));
        self
    }

    /// Sets the policy for calls to unscripted functions.
    pub fn unscripted(mut self, policy: UnscriptedPolicy) -> Self {
        self.policy = policy;
        self
    }
}

impl fmt::Debug for ScriptedWorld {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScriptedWorld")
            .field("functions", &self.functions.keys().collect::<Vec<_>>())
            .field("policy", &self.policy)
            .finish()
    }
}

impl World for ScriptedWorld {
    fn call(&mut self, func: &str, args: &[Value]) -> String {
        match self.try_call(func, args) {
            Ok(s) => s,
            Err(fault) => panic!("{fault}"),
        }
    }

    fn try_call(&mut self, func: &str, args: &[Value]) -> Result<String, CallFault> {
        match self.functions.get_mut(func) {
            Some(f) => Ok(f(args)),
            None => match self.policy {
                UnscriptedPolicy::Empty => Ok(String::new()),
                UnscriptedPolicy::Error => Err(CallFault::failure(format!(
                    "function `{func}` is not scripted in this ScriptedWorld"
                ))),
                UnscriptedPolicy::Panic => {
                    panic!("ScriptedWorld: function `{func}` is not scripted")
                }
            },
        }
    }
}

/// A world producing pseudo-random short strings from a seed — used by the
/// property-based trace-inclusion tests to exercise non-determinism.
#[derive(Debug, Clone)]
pub struct RandomWorld {
    state: u64,
}

impl RandomWorld {
    /// Creates a random world from a seed.
    pub fn new(seed: u64) -> RandomWorld {
        RandomWorld {
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
        }
    }

    fn next(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

impl World for RandomWorld {
    fn call(&mut self, _func: &str, _args: &[Value]) -> String {
        let n = self.next() % 4;
        ["", "a", "b", "ok"][n as usize].to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_world_dispatches_by_name() {
        let mut w = ScriptedWorld::new()
            .provides("wget", |args| format!("page:{}", args.len()))
            .provides("rand", |_| "4".to_owned());
        assert_eq!(w.call("wget", &[Value::from("u")]), "page:1");
        assert_eq!(w.call("rand", &[]), "4");
        assert_eq!(w.call("unknown", &[]), "");
    }

    #[test]
    fn scripted_world_unscripted_policies() {
        let mut empty = ScriptedWorld::new().unscripted(UnscriptedPolicy::Empty);
        assert_eq!(empty.try_call("nope", &[]), Ok(String::new()));

        let mut erroring = ScriptedWorld::new()
            .provides("ok", |_| "y".into())
            .unscripted(UnscriptedPolicy::Error);
        assert_eq!(erroring.try_call("ok", &[]), Ok("y".into()));
        let fault = erroring.try_call("nope", &[]).unwrap_err();
        assert_eq!(fault.kind, CallFaultKind::Failure);
        assert!(fault.message.contains("`nope`"), "{fault}");
    }

    #[test]
    #[should_panic(expected = "not scripted")]
    fn scripted_world_panic_policy_panics() {
        let mut w = ScriptedWorld::new().unscripted(UnscriptedPolicy::Panic);
        let _ = w.try_call("nope", &[]);
    }

    #[test]
    fn default_try_call_never_fails() {
        let mut w = EmptyWorld;
        assert_eq!(w.try_call("anything", &[]), Ok(String::new()));
    }

    #[test]
    fn random_world_is_deterministic_per_seed() {
        let mut a = RandomWorld::new(7);
        let mut b = RandomWorld::new(7);
        for _ in 0..16 {
            assert_eq!(a.call("f", &[]), b.call("f", &[]));
        }
    }
}
