//! The Reflex interpreter (paper Figure 4).
//!
//! The kernel repeatedly: *selects* a ready component (one with a pending
//! message for the kernel), *receives* its message, and runs the matching
//! handler, which may assign state, *send* messages to components, *spawn*
//! new components and *call* external functions. Every effectful primitive
//! appends its action to the trace — the ghost state over which all
//! verified properties are stated. Unlike the paper's ghost traces, the
//! trace here is materialized so tests and the [`crate::oracle`] can
//! inspect it.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::fmt;

use rand::RngExt;
use reflex_rng::SimRng;

use reflex_ast::{BinOp, Cmd, CompId, Expr, Fdesc, Handler, UnOp, Value};
use reflex_trace::{Action, CompInst, Msg, Trace};
use reflex_typeck::CheckedProgram;

use crate::component::{ComponentBehavior, Registry};
use crate::world::{CallFault, World};

/// The broad class of a [`RuntimeError`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuntimeErrorKind {
    /// Misuse of the embedding API (e.g. injecting a message for an
    /// undeclared component) — cannot happen for checked programs driven
    /// through the documented API.
    Misuse,
    /// An external call faulted and the retry budget was exhausted. The
    /// supervisor recovers from these; an unsupervised run aborts.
    CallFailed,
}

/// A runtime fault, carrying where it happened: the exchange index (`None`
/// during init) and the component whose message was being serviced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeError {
    /// The class of fault.
    pub kind: RuntimeErrorKind,
    /// What went wrong.
    pub message: String,
    /// The exchange (step) index during which the fault occurred; `None`
    /// for faults raised while running the init section or by direct API
    /// misuse outside any exchange.
    pub step: Option<usize>,
    /// The component whose message was being serviced, if any.
    pub comp: Option<CompId>,
}

impl RuntimeError {
    /// Attaches the exchange index if not already present.
    pub fn with_step(mut self, step: usize) -> RuntimeError {
        self.step.get_or_insert(step);
        self
    }

    /// Attaches the component if not already present.
    pub fn with_comp(mut self, comp: CompId) -> RuntimeError {
        self.comp.get_or_insert(comp);
        self
    }
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "runtime error")?;
        if let Some(s) = self.step {
            write!(f, " at exchange #{s}")?;
        }
        if let Some(c) = self.comp {
            write!(f, " servicing {c}")?;
        }
        write!(f, ": {}", self.message)
    }
}

impl std::error::Error for RuntimeError {}

fn err(message: impl Into<String>) -> RuntimeError {
    RuntimeError {
        kind: RuntimeErrorKind::Misuse,
        message: message.into(),
        step: None,
        comp: None,
    }
}

/// What one [`Interpreter::step`] serviced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepReport {
    /// The component whose message was serviced.
    pub sender: CompInst,
    /// The message.
    pub msg: Msg,
    /// Whether an explicit handler ran (`false` for the implicit no-op).
    pub handled: bool,
}

/// How the interpreter re-attempts faulted external calls.
///
/// Backoff is *simulated*: attempts are instantaneous and deterministic,
/// and the would-be sleep is recorded in the [`CallAttempt`] log so
/// incident reports show the schedule a production kernel would follow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per call (1 = no retry).
    pub max_attempts: usize,
    /// Backoff before the second attempt, doubled per further attempt.
    pub base_backoff_ms: u64,
    /// Ceiling on the per-attempt backoff.
    pub max_backoff_ms: u64,
}

impl Default for RetryPolicy {
    /// No retries — the historical fail-fast behavior.
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base_backoff_ms: 10,
            max_backoff_ms: 1000,
        }
    }
}

impl RetryPolicy {
    /// A policy with `max_attempts` attempts and default backoff bounds.
    pub fn attempts(max_attempts: usize) -> RetryPolicy {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            ..RetryPolicy::default()
        }
    }

    /// The simulated backoff before attempt `attempt` (2-based: no wait
    /// precedes the first attempt): exponential, capped.
    pub fn backoff_ms(&self, attempt: usize) -> u64 {
        let exp = attempt.saturating_sub(2).min(32) as u32;
        self.base_backoff_ms
            .saturating_mul(1u64 << exp)
            .min(self.max_backoff_ms)
    }
}

/// One faulted attempt of an external call, for incident reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallAttempt {
    /// The exchange during which the call ran (`None` during init).
    pub step: Option<usize>,
    /// The called function.
    pub func: String,
    /// 1-based attempt number that faulted.
    pub attempt: usize,
    /// The fault.
    pub fault: CallFault,
    /// Simulated backoff before the next attempt (0 if this was the last).
    pub backoff_ms: u64,
    /// Whether a later attempt of the same call succeeded.
    pub recovered: bool,
}

/// A restorable snapshot of the interpreter's kernel-visible state.
///
/// Component *behaviors* (the `Box<dyn ComponentBehavior>` test doubles)
/// are not part of the snapshot — they model external processes, whose
/// internal state the kernel cannot rewind. Rolling back an exchange
/// therefore restores the kernel exactly, while behaviors keep whatever
/// they observed; this mirrors a real kernel crash-recovery, where the
/// outside world has already seen the aborted exchange's sends.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    data: BTreeMap<String, Value>,
    comp_vars: BTreeMap<String, CompInst>,
    comp_list: Vec<CompInst>,
    mailboxes: BTreeMap<CompId, VecDeque<Msg>>,
    dead: BTreeSet<CompId>,
    trace_len: usize,
    next_id: u64,
    next_fd: u64,
    steps: usize,
    rng: SimRng,
}

/// Handler-local bindings, dropped when the handler returns.
#[derive(Debug, Default)]
struct Frame {
    data: HashMap<String, Value>,
    comps: HashMap<String, CompInst>,
}

/// The executable kernel.
pub struct Interpreter {
    checked: CheckedProgram,
    registry: Registry,
    world: Box<dyn World>,
    data: BTreeMap<String, Value>,
    comp_vars: BTreeMap<String, CompInst>,
    comp_list: Vec<CompInst>,
    behaviors: HashMap<CompId, Box<dyn ComponentBehavior>>,
    mailboxes: BTreeMap<CompId, VecDeque<Msg>>,
    /// Crashed components. They stay in `comp_list` at their spawn
    /// position (so broadcast/lookup iteration order — and hence the
    /// oracle's replay — is unchanged) but are never selected, and sends
    /// to them are recorded without delivery, like writes to a closed
    /// socket.
    dead: BTreeSet<CompId>,
    trace: Trace,
    next_id: u64,
    next_fd: u64,
    steps: usize,
    /// The exchange currently being serviced (`None` outside `step`).
    current_step: Option<usize>,
    retry: RetryPolicy,
    call_attempts: Vec<CallAttempt>,
    rng: SimRng,
}

impl fmt::Debug for Interpreter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Interpreter")
            .field("program", &self.checked.program().name)
            .field("components", &self.comp_list.len())
            .field("trace_len", &self.trace.len())
            .finish()
    }
}

impl Interpreter {
    /// Boots the kernel: runs the init section (spawning the initial
    /// components) under the given component registry, world and scheduler
    /// seed.
    ///
    /// # Errors
    ///
    /// Returns an error if init misbehaves (cannot happen for checked
    /// programs unless a behavior or world misuses the API).
    pub fn new(
        checked: &CheckedProgram,
        registry: Registry,
        world: Box<dyn World>,
        seed: u64,
    ) -> Result<Interpreter, RuntimeError> {
        let mut interp = Interpreter {
            checked: checked.clone(),
            registry,
            world,
            data: checked.state_initial_values().into_iter().collect(),
            comp_vars: BTreeMap::new(),
            comp_list: Vec::new(),
            behaviors: HashMap::new(),
            mailboxes: BTreeMap::new(),
            dead: BTreeSet::new(),
            trace: Trace::new(),
            next_id: 0,
            next_fd: 100,
            steps: 0,
            current_step: None,
            retry: RetryPolicy::default(),
            call_attempts: Vec::new(),
            // SimRng::new is stream-identical to the StdRng this field
            // used to hold, so scheduler seeds keep their interleavings.
            rng: SimRng::new(seed),
        };
        let init = interp.checked.program().init.clone();
        let mut frame = Frame::default();
        interp.exec(&init, &mut frame)?;
        // Init binders become global component variables.
        for (name, comp) in frame.comps {
            interp.comp_vars.insert(name, comp);
        }
        for (name, value) in frame.data {
            interp.data.insert(name, value);
        }
        Ok(interp)
    }

    /// The trace so far (chronological order).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// All spawned components, in spawn order (crashed ones included —
    /// see [`is_crashed`](Self::is_crashed)).
    pub fn components(&self) -> &[CompInst] {
        &self.comp_list
    }

    /// The spawned components of the given type, in spawn order.
    pub fn components_of(&self, ctype: &str) -> Vec<&CompInst> {
        self.comp_list.iter().filter(|c| c.ctype == ctype).collect()
    }

    /// The current value of a global state variable.
    pub fn state_var(&self, name: &str) -> Option<&Value> {
        self.data.get(name)
    }

    /// Enqueues `msg` as if component `comp` had sent it to the kernel.
    ///
    /// This is how tests model spontaneous component activity (e.g. the
    /// engine reporting a crash): in the paper such messages arrive over
    /// the component's socket at any time.
    ///
    /// # Errors
    ///
    /// Fails if `comp` is not a live component or the message type is
    /// undeclared / ill-typed.
    pub fn inject(&mut self, comp: CompId, msg: Msg) -> Result<(), RuntimeError> {
        if !self.comp_list.iter().any(|c| c.id == comp) {
            return Err(err(format!("no live component {comp}")).with_comp(comp));
        }
        if self.dead.contains(&comp) {
            return Err(err(format!("component {comp} has crashed")).with_comp(comp));
        }
        let decl = self
            .checked
            .program()
            .msg_decl(&msg.name)
            .ok_or_else(|| err(format!("undeclared message `{}`", msg.name)))?;
        if decl.payload.len() != msg.args.len()
            || decl
                .payload
                .iter()
                .zip(&msg.args)
                .any(|(ty, v)| v.ty() != *ty)
        {
            return Err(err(format!("ill-typed payload for `{}`", msg.name)));
        }
        self.mailboxes.entry(comp).or_default().push_back(msg);
        Ok(())
    }

    /// Whether any live component has a pending message.
    pub fn has_ready(&self) -> bool {
        self.mailboxes
            .iter()
            .any(|(id, q)| !q.is_empty() && !self.dead.contains(id))
    }

    /// Number of exchanges serviced so far.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// The retry policy for faulted external calls.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Sets the retry policy for faulted external calls.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.retry = policy;
    }

    /// Drains the log of faulted call attempts accumulated since the last
    /// drain (successful first attempts are not logged).
    pub fn take_call_attempts(&mut self) -> Vec<CallAttempt> {
        std::mem::take(&mut self.call_attempts)
    }

    // ---- supervision hooks ----------------------------------------------

    /// Snapshots the kernel-visible state (see [`Checkpoint`] for what is
    /// and is not captured).
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            data: self.data.clone(),
            comp_vars: self.comp_vars.clone(),
            comp_list: self.comp_list.clone(),
            mailboxes: self.mailboxes.clone(),
            dead: self.dead.clone(),
            trace_len: self.trace.len(),
            next_id: self.next_id,
            next_fd: self.next_fd,
            steps: self.steps,
            rng: self.rng.clone(),
        }
    }

    /// Rolls the kernel back to `cp`, truncating the trace to its length
    /// at checkpoint time. Only sound for checkpoints taken from this
    /// interpreter at a point the trace has not been truncated past.
    pub fn restore(&mut self, cp: &Checkpoint) {
        self.data = cp.data.clone();
        self.comp_vars = cp.comp_vars.clone();
        self.comp_list = cp.comp_list.clone();
        self.mailboxes = cp.mailboxes.clone();
        self.dead = cp.dead.clone();
        self.trace.truncate(cp.trace_len);
        self.next_id = cp.next_id;
        self.next_fd = cp.next_fd;
        self.steps = cp.steps;
        self.rng = cp.rng.clone();
        // The call-attempt log is intentionally left alone: a rolled-back
        // exchange's faulted attempts still happened and belong in the
        // incident report. Drain with [`take_call_attempts`].
    }

    /// Whether `comp` has crashed (and not been restarted).
    pub fn is_crashed(&self, comp: CompId) -> bool {
        self.dead.contains(&comp)
    }

    /// The crashed components, in id order.
    pub fn crashed_components(&self) -> Vec<CompId> {
        self.dead.iter().copied().collect()
    }

    /// Crashes component `comp`: its pending messages are lost, it is
    /// never selected, and sends to it are recorded in the trace but not
    /// delivered (a write to a closed socket). The component keeps its
    /// position in spawn order, so the scheduling semantics of the
    /// survivors — and the oracle's replay — are unchanged.
    ///
    /// # Errors
    ///
    /// Fails if `comp` is not live or has already crashed.
    pub fn kill_component(&mut self, comp: CompId) -> Result<CompInst, RuntimeError> {
        let inst = self
            .comp_list
            .iter()
            .find(|c| c.id == comp)
            .cloned()
            .ok_or_else(|| err(format!("no live component {comp}")).with_comp(comp))?;
        if !self.dead.insert(comp) {
            return Err(err(format!("component {comp} has already crashed")).with_comp(comp));
        }
        self.mailboxes.remove(&comp);
        Ok(inst)
    }

    /// Restarts a crashed component: re-instantiates its behavior from the
    /// registry (re-running its `on_start` init messages) and remaps its
    /// file descriptor. The component keeps its identity — id, type and
    /// configuration — so certificates over its spawn parameters persist.
    ///
    /// # Errors
    ///
    /// Fails if `comp` is not a crashed component.
    pub fn restart_component(&mut self, comp: CompId) -> Result<CompInst, RuntimeError> {
        if !self.dead.remove(&comp) {
            return Err(err(format!("component {comp} has not crashed")).with_comp(comp));
        }
        let inst = self
            .comp_list
            .iter()
            .find(|c| c.id == comp)
            .cloned()
            .expect("crashed component is in comp_list");
        let decl = self
            .checked
            .program()
            .comp_type(&inst.ctype)
            .ok_or_else(|| err(format!("undeclared component type `{}`", inst.ctype)))?;
        // The restarted process gets a fresh socket.
        self.next_fd += 1;
        let mut behavior = self.registry.instantiate(&decl.exe, &inst);
        let startup = behavior.on_start();
        self.behaviors.insert(comp, behavior);
        if !startup.is_empty() {
            self.mailboxes.entry(comp).or_default().extend(startup);
        }
        Ok(inst)
    }

    // ---- mailbox fault hooks (used by deterministic fault plans) --------

    /// Live components with at least one pending message, in id order.
    pub fn comps_with_pending(&self) -> Vec<CompId> {
        self.mailboxes
            .iter()
            .filter(|(id, q)| !q.is_empty() && !self.dead.contains(id))
            .map(|(id, _)| *id)
            .collect()
    }

    /// Number of messages pending from `comp`.
    pub fn pending_count(&self, comp: CompId) -> usize {
        self.mailboxes.get(&comp).map_or(0, VecDeque::len)
    }

    /// Drops the oldest pending message of `comp` (a lossy channel).
    pub fn drop_pending(&mut self, comp: CompId) -> Option<Msg> {
        self.mailboxes.get_mut(&comp).and_then(VecDeque::pop_front)
    }

    /// Re-enqueues a copy of the oldest pending message of `comp` at the
    /// back of its queue (a duplicating channel).
    pub fn duplicate_pending(&mut self, comp: CompId) -> Option<Msg> {
        let q = self.mailboxes.get_mut(&comp)?;
        let m = q.front()?.clone();
        q.push_back(m.clone());
        Some(m)
    }

    /// Rotates the pending queue of `comp` by one (a reordering channel).
    /// Returns the message moved to the back.
    pub fn rotate_pending(&mut self, comp: CompId) -> Option<Msg> {
        let q = self.mailboxes.get_mut(&comp)?;
        if q.len() < 2 {
            return None;
        }
        let m = q.pop_front()?;
        q.push_back(m.clone());
        Some(m)
    }

    /// Services one exchange: selects a ready component (uniformly at
    /// random among ready components), receives its message, and runs the
    /// matching handler. Returns `None` when no component is ready.
    ///
    /// # Errors
    ///
    /// Propagates runtime faults from handler execution.
    pub fn step(&mut self) -> Result<Option<StepReport>, RuntimeError> {
        let ready: Vec<CompId> = self
            .mailboxes
            .iter()
            .filter(|(id, q)| !q.is_empty() && !self.dead.contains(id))
            .map(|(id, _)| *id)
            .collect();
        if ready.is_empty() {
            return Ok(None);
        }
        let id = ready[self.rng.random_range(0..ready.len())];
        let msg = self
            .mailboxes
            .get_mut(&id)
            .and_then(VecDeque::pop_front)
            .expect("ready queue non-empty");
        let sender = self
            .comp_list
            .iter()
            .find(|c| c.id == id)
            .expect("ready component is live")
            .clone();

        let step_index = self.steps;
        self.trace.push(Action::Select {
            comp: sender.clone(),
        });
        self.trace.push(Action::Recv {
            comp: sender.clone(),
            msg: msg.clone(),
        });

        let handler = self
            .checked
            .program()
            .handler(&sender.ctype, &msg.name)
            .cloned();
        let handled = handler.is_some();
        if let Some(h) = handler {
            let mut frame = Frame::default();
            frame
                .comps
                .insert(Handler::SENDER.to_owned(), sender.clone());
            for (p, v) in h.params.iter().zip(&msg.args) {
                frame.data.insert(p.clone(), v.clone());
            }
            self.current_step = Some(step_index);
            let outcome = self.exec(&h.body, &mut frame);
            self.current_step = None;
            outcome.map_err(|e| e.with_step(step_index).with_comp(sender.id))?;
        }
        self.steps += 1;
        Ok(Some(StepReport {
            sender,
            msg,
            handled,
        }))
    }

    /// Runs until quiescent or `max_steps` exchanges, returning the number
    /// of exchanges serviced.
    ///
    /// # Errors
    ///
    /// Propagates runtime faults from handler execution.
    pub fn run(&mut self, max_steps: usize) -> Result<usize, RuntimeError> {
        let mut steps = 0;
        while steps < max_steps {
            if self.step()?.is_none() {
                break;
            }
            steps += 1;
        }
        Ok(steps)
    }

    // ---- command execution ----------------------------------------------

    fn exec(&mut self, cmd: &Cmd, frame: &mut Frame) -> Result<(), RuntimeError> {
        match cmd {
            Cmd::Nop => Ok(()),
            Cmd::Block(cs) => {
                for c in cs {
                    self.exec(c, frame)?;
                }
                Ok(())
            }
            Cmd::Assign(x, e) => {
                let v = self.eval(e, frame)?;
                self.data.insert(x.clone(), v);
                Ok(())
            }
            Cmd::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let taken = self.eval(cond, frame)? == Value::Bool(true);
                self.exec(if taken { then_branch } else { else_branch }, frame)
            }
            Cmd::Send { target, msg, args } => {
                let comp = self.eval_comp(target, frame)?;
                let values: Result<Vec<Value>, _> =
                    args.iter().map(|a| self.eval(a, frame)).collect();
                let m = Msg::new(msg, values?);
                self.trace.push(Action::Send {
                    comp: comp.clone(),
                    msg: m.clone(),
                });
                // Deliver to the component; its replies queue up for the
                // kernel to service later. A send to a crashed component
                // is recorded but goes nowhere (closed socket).
                let replies = match self.behaviors.get_mut(&comp.id) {
                    Some(b) if !self.dead.contains(&comp.id) => b.on_message(&m),
                    _ => Vec::new(),
                };
                if !replies.is_empty() {
                    self.mailboxes.entry(comp.id).or_default().extend(replies);
                }
                Ok(())
            }
            Cmd::Spawn {
                binder,
                ctype,
                config,
            } => {
                let values: Result<Vec<Value>, _> =
                    config.iter().map(|c| self.eval(c, frame)).collect();
                let comp = self.spawn(ctype, values?)?;
                frame.comps.insert(binder.clone(), comp);
                Ok(())
            }
            Cmd::Call { binder, func, args } => {
                let values: Result<Vec<Value>, _> =
                    args.iter().map(|a| self.eval(a, frame)).collect();
                let values = values?;
                let result = self.call_with_retries(func, &values)?;
                self.trace.push(Action::Call {
                    func: func.clone(),
                    args: values,
                    result: Value::Str(result.clone()),
                });
                frame.data.insert(binder.clone(), Value::Str(result));
                Ok(())
            }
            Cmd::Broadcast {
                ctype,
                binder,
                pred,
                msg,
                args,
            } => {
                // Send to every matching component, in spawn order.
                let candidates: Vec<CompInst> = self
                    .comp_list
                    .iter()
                    .filter(|c| c.ctype == *ctype)
                    .cloned()
                    .collect();
                for c in candidates {
                    frame.comps.insert(binder.clone(), c.clone());
                    let hit = self.eval(pred, frame)? == Value::Bool(true);
                    if hit {
                        let values: Result<Vec<Value>, _> =
                            args.iter().map(|a| self.eval(a, frame)).collect();
                        let m = Msg::new(msg, values?);
                        self.trace.push(Action::Send {
                            comp: c.clone(),
                            msg: m.clone(),
                        });
                        let replies = match self.behaviors.get_mut(&c.id) {
                            Some(b) if !self.dead.contains(&c.id) => b.on_message(&m),
                            _ => Vec::new(),
                        };
                        if !replies.is_empty() {
                            self.mailboxes.entry(c.id).or_default().extend(replies);
                        }
                    }
                }
                frame.comps.remove(binder);
                Ok(())
            }
            Cmd::Lookup {
                ctype,
                binder,
                pred,
                found,
                missing,
            } => {
                // First-match semantics over spawn order.
                let candidates: Vec<CompInst> = self
                    .comp_list
                    .iter()
                    .filter(|c| c.ctype == *ctype)
                    .cloned()
                    .collect();
                for c in candidates {
                    frame.comps.insert(binder.clone(), c);
                    let hit = self.eval(pred, frame)? == Value::Bool(true);
                    if hit {
                        let result = self.exec(found, frame);
                        frame.comps.remove(binder);
                        return result;
                    }
                }
                frame.comps.remove(binder);
                self.exec(missing, frame)
            }
        }
    }

    /// Runs `func(args…)` through [`World::try_call`] under the retry
    /// policy, logging every faulted attempt.
    fn call_with_retries(&mut self, func: &str, args: &[Value]) -> Result<String, RuntimeError> {
        let step = self.current_step;
        let attempts = self.retry.max_attempts.max(1);
        for attempt in 1..=attempts {
            match self.world.try_call(func, args) {
                Ok(result) => {
                    // Mark this call's earlier attempts recovered.
                    for a in self.call_attempts.iter_mut().rev().take(attempt - 1) {
                        a.recovered = true;
                    }
                    return Ok(result);
                }
                Err(fault) => {
                    let last = attempt == attempts;
                    self.call_attempts.push(CallAttempt {
                        step,
                        func: func.to_owned(),
                        attempt,
                        backoff_ms: if last {
                            0
                        } else {
                            self.retry.backoff_ms(attempt + 1)
                        },
                        recovered: false,
                        fault: fault.clone(),
                    });
                    if last {
                        return Err(RuntimeError {
                            kind: RuntimeErrorKind::CallFailed,
                            message: format!(
                                "call `{func}` failed after {attempts} attempt(s): {fault}"
                            ),
                            step: None,
                            comp: None,
                        });
                    }
                }
            }
        }
        unreachable!("loop returns on last attempt")
    }

    fn spawn(&mut self, ctype: &str, config: Vec<Value>) -> Result<CompInst, RuntimeError> {
        let decl = self
            .checked
            .program()
            .comp_type(ctype)
            .ok_or_else(|| err(format!("undeclared component type `{ctype}`")))?;
        let comp = CompInst::new(CompId::new(self.next_id), ctype, config);
        self.next_id += 1;
        self.next_fd += 1;
        self.comp_list.push(comp.clone());
        self.trace.push(Action::Spawn { comp: comp.clone() });
        let mut behavior = self.registry.instantiate(&decl.exe, &comp);
        let startup = behavior.on_start();
        self.behaviors.insert(comp.id, behavior);
        if !startup.is_empty() {
            self.mailboxes.entry(comp.id).or_default().extend(startup);
        }
        Ok(comp)
    }

    fn eval(&mut self, e: &Expr, frame: &Frame) -> Result<Value, RuntimeError> {
        Ok(match e {
            Expr::Lit(v) => v.clone(),
            Expr::Var(x) => {
                if let Some(v) = frame.data.get(x) {
                    v.clone()
                } else if let Some(c) = frame.comps.get(x) {
                    Value::Comp(c.id)
                } else if let Some(v) = self.data.get(x) {
                    v.clone()
                } else if let Some(c) = self.comp_vars.get(x) {
                    Value::Comp(c.id)
                } else {
                    return Err(err(format!("unbound variable `{x}`")));
                }
            }
            Expr::Cfg(inner, field) => {
                let comp = self.eval_comp(inner, frame)?;
                let decl = self
                    .checked
                    .program()
                    .comp_type(&comp.ctype)
                    .ok_or_else(|| err(format!("undeclared component type `{}`", comp.ctype)))?;
                let (idx, _) = decl
                    .config_field(field)
                    .ok_or_else(|| err(format!("no configuration field `{field}`")))?;
                comp.config[idx].clone()
            }
            Expr::Un(op, t) => {
                let v = self.eval(t, frame)?;
                match (op, v) {
                    (UnOp::Not, Value::Bool(b)) => Value::Bool(!b),
                    (UnOp::Neg, Value::Num(n)) => Value::Num(n.wrapping_neg()),
                    (op, v) => return Err(err(format!("type error: {op:?} on {v}"))),
                }
            }
            Expr::Bin(op, l, r) => {
                let a = self.eval(l, frame)?;
                let b = self.eval(r, frame)?;
                match (op, a, b) {
                    (BinOp::Eq, a, b) => Value::Bool(a == b),
                    (BinOp::Ne, a, b) => Value::Bool(a != b),
                    (BinOp::And, Value::Bool(x), Value::Bool(y)) => Value::Bool(x && y),
                    (BinOp::Or, Value::Bool(x), Value::Bool(y)) => Value::Bool(x || y),
                    (BinOp::Add, Value::Num(x), Value::Num(y)) => Value::Num(x.wrapping_add(y)),
                    (BinOp::Sub, Value::Num(x), Value::Num(y)) => Value::Num(x.wrapping_sub(y)),
                    (BinOp::Lt, Value::Num(x), Value::Num(y)) => Value::Bool(x < y),
                    (BinOp::Le, Value::Num(x), Value::Num(y)) => Value::Bool(x <= y),
                    (BinOp::Cat, Value::Str(x), Value::Str(y)) => Value::Str(format!("{x}{y}")),
                    (op, a, b) => return Err(err(format!("type error: {op:?} on {a} and {b}"))),
                }
            }
        })
    }

    fn eval_comp(&mut self, e: &Expr, frame: &Frame) -> Result<CompInst, RuntimeError> {
        let v = self.eval(e, frame)?;
        let Value::Comp(id) = v else {
            return Err(err(format!("expected a component, got {v}")));
        };
        self.comp_list
            .iter()
            .find(|c| c.id == id)
            .cloned()
            .ok_or_else(|| err(format!("no live component {id}")))
    }

    /// Allocates a fresh file descriptor (exposed for behaviors that model
    /// resources like pseudo-terminals).
    pub fn fresh_fd(&mut self) -> Fdesc {
        let fd = Fdesc::new(self.next_fd);
        self.next_fd += 1;
        fd
    }
}
