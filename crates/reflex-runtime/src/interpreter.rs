//! The Reflex interpreter (paper Figure 4).
//!
//! The kernel repeatedly: *selects* a ready component (one with a pending
//! message for the kernel), *receives* its message, and runs the matching
//! handler, which may assign state, *send* messages to components, *spawn*
//! new components and *call* external functions. Every effectful primitive
//! appends its action to the trace — the ghost state over which all
//! verified properties are stated. Unlike the paper's ghost traces, the
//! trace here is materialized so tests and the [`crate::oracle`] can
//! inspect it.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use reflex_ast::{BinOp, Cmd, CompId, Expr, Fdesc, Handler, UnOp, Value};
use reflex_trace::{Action, CompInst, Msg, Trace};
use reflex_typeck::CheckedProgram;

use crate::component::{ComponentBehavior, Registry};
use crate::world::World;

/// A runtime fault. With a type-checked program these indicate misuse of
/// the embedding API (e.g. injecting a message for an undeclared
/// component), not programming errors in the kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeError {
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "runtime error: {}", self.message)
    }
}

impl std::error::Error for RuntimeError {}

fn err(message: impl Into<String>) -> RuntimeError {
    RuntimeError {
        message: message.into(),
    }
}

/// What one [`Interpreter::step`] serviced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepReport {
    /// The component whose message was serviced.
    pub sender: CompInst,
    /// The message.
    pub msg: Msg,
    /// Whether an explicit handler ran (`false` for the implicit no-op).
    pub handled: bool,
}

/// Handler-local bindings, dropped when the handler returns.
#[derive(Debug, Default)]
struct Frame {
    data: HashMap<String, Value>,
    comps: HashMap<String, CompInst>,
}

/// The executable kernel.
pub struct Interpreter {
    checked: CheckedProgram,
    registry: Registry,
    world: Box<dyn World>,
    data: BTreeMap<String, Value>,
    comp_vars: BTreeMap<String, CompInst>,
    comp_list: Vec<CompInst>,
    behaviors: HashMap<CompId, Box<dyn ComponentBehavior>>,
    mailboxes: BTreeMap<CompId, VecDeque<Msg>>,
    trace: Trace,
    next_id: u64,
    next_fd: u64,
    rng: StdRng,
}

impl fmt::Debug for Interpreter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Interpreter")
            .field("program", &self.checked.program().name)
            .field("components", &self.comp_list.len())
            .field("trace_len", &self.trace.len())
            .finish()
    }
}

impl Interpreter {
    /// Boots the kernel: runs the init section (spawning the initial
    /// components) under the given component registry, world and scheduler
    /// seed.
    ///
    /// # Errors
    ///
    /// Returns an error if init misbehaves (cannot happen for checked
    /// programs unless a behavior or world misuses the API).
    pub fn new(
        checked: &CheckedProgram,
        registry: Registry,
        world: Box<dyn World>,
        seed: u64,
    ) -> Result<Interpreter, RuntimeError> {
        let mut interp = Interpreter {
            checked: checked.clone(),
            registry,
            world,
            data: checked.state_initial_values().into_iter().collect(),
            comp_vars: BTreeMap::new(),
            comp_list: Vec::new(),
            behaviors: HashMap::new(),
            mailboxes: BTreeMap::new(),
            trace: Trace::new(),
            next_id: 0,
            next_fd: 100,
            rng: StdRng::seed_from_u64(seed),
        };
        let init = interp.checked.program().init.clone();
        let mut frame = Frame::default();
        interp.exec(&init, &mut frame)?;
        // Init binders become global component variables.
        for (name, comp) in frame.comps {
            interp.comp_vars.insert(name, comp);
        }
        for (name, value) in frame.data {
            interp.data.insert(name, value);
        }
        Ok(interp)
    }

    /// The trace so far (chronological order).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// All live components, in spawn order.
    pub fn components(&self) -> &[CompInst] {
        &self.comp_list
    }

    /// The live components of the given type.
    pub fn components_of(&self, ctype: &str) -> Vec<&CompInst> {
        self.comp_list.iter().filter(|c| c.ctype == ctype).collect()
    }

    /// The current value of a global state variable.
    pub fn state_var(&self, name: &str) -> Option<&Value> {
        self.data.get(name)
    }

    /// Enqueues `msg` as if component `comp` had sent it to the kernel.
    ///
    /// This is how tests model spontaneous component activity (e.g. the
    /// engine reporting a crash): in the paper such messages arrive over
    /// the component's socket at any time.
    ///
    /// # Errors
    ///
    /// Fails if `comp` is not a live component or the message type is
    /// undeclared / ill-typed.
    pub fn inject(&mut self, comp: CompId, msg: Msg) -> Result<(), RuntimeError> {
        if !self.comp_list.iter().any(|c| c.id == comp) {
            return Err(err(format!("no live component {comp}")));
        }
        let decl = self
            .checked
            .program()
            .msg_decl(&msg.name)
            .ok_or_else(|| err(format!("undeclared message `{}`", msg.name)))?;
        if decl.payload.len() != msg.args.len()
            || decl
                .payload
                .iter()
                .zip(&msg.args)
                .any(|(ty, v)| v.ty() != *ty)
        {
            return Err(err(format!("ill-typed payload for `{}`", msg.name)));
        }
        self.mailboxes.entry(comp).or_default().push_back(msg);
        Ok(())
    }

    /// Whether any component has a pending message.
    pub fn has_ready(&self) -> bool {
        self.mailboxes.values().any(|q| !q.is_empty())
    }

    /// Services one exchange: selects a ready component (uniformly at
    /// random among ready components), receives its message, and runs the
    /// matching handler. Returns `None` when no component is ready.
    ///
    /// # Errors
    ///
    /// Propagates runtime faults from handler execution.
    pub fn step(&mut self) -> Result<Option<StepReport>, RuntimeError> {
        let ready: Vec<CompId> = self
            .mailboxes
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .map(|(id, _)| *id)
            .collect();
        if ready.is_empty() {
            return Ok(None);
        }
        let id = ready[self.rng.random_range(0..ready.len())];
        let msg = self
            .mailboxes
            .get_mut(&id)
            .and_then(VecDeque::pop_front)
            .expect("ready queue non-empty");
        let sender = self
            .comp_list
            .iter()
            .find(|c| c.id == id)
            .expect("ready component is live")
            .clone();

        self.trace.push(Action::Select {
            comp: sender.clone(),
        });
        self.trace.push(Action::Recv {
            comp: sender.clone(),
            msg: msg.clone(),
        });

        let handler = self
            .checked
            .program()
            .handler(&sender.ctype, &msg.name)
            .cloned();
        let handled = handler.is_some();
        if let Some(h) = handler {
            let mut frame = Frame::default();
            frame
                .comps
                .insert(Handler::SENDER.to_owned(), sender.clone());
            for (p, v) in h.params.iter().zip(&msg.args) {
                frame.data.insert(p.clone(), v.clone());
            }
            self.exec(&h.body, &mut frame)?;
        }
        Ok(Some(StepReport {
            sender,
            msg,
            handled,
        }))
    }

    /// Runs until quiescent or `max_steps` exchanges, returning the number
    /// of exchanges serviced.
    ///
    /// # Errors
    ///
    /// Propagates runtime faults from handler execution.
    pub fn run(&mut self, max_steps: usize) -> Result<usize, RuntimeError> {
        let mut steps = 0;
        while steps < max_steps {
            if self.step()?.is_none() {
                break;
            }
            steps += 1;
        }
        Ok(steps)
    }

    // ---- command execution ----------------------------------------------

    fn exec(&mut self, cmd: &Cmd, frame: &mut Frame) -> Result<(), RuntimeError> {
        match cmd {
            Cmd::Nop => Ok(()),
            Cmd::Block(cs) => {
                for c in cs {
                    self.exec(c, frame)?;
                }
                Ok(())
            }
            Cmd::Assign(x, e) => {
                let v = self.eval(e, frame)?;
                self.data.insert(x.clone(), v);
                Ok(())
            }
            Cmd::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let taken = self.eval(cond, frame)? == Value::Bool(true);
                self.exec(if taken { then_branch } else { else_branch }, frame)
            }
            Cmd::Send { target, msg, args } => {
                let comp = self.eval_comp(target, frame)?;
                let values: Result<Vec<Value>, _> =
                    args.iter().map(|a| self.eval(a, frame)).collect();
                let m = Msg::new(msg, values?);
                self.trace.push(Action::Send {
                    comp: comp.clone(),
                    msg: m.clone(),
                });
                // Deliver to the component; its replies queue up for the
                // kernel to service later.
                let replies = match self.behaviors.get_mut(&comp.id) {
                    Some(b) => b.on_message(&m),
                    None => Vec::new(),
                };
                if !replies.is_empty() {
                    self.mailboxes.entry(comp.id).or_default().extend(replies);
                }
                Ok(())
            }
            Cmd::Spawn {
                binder,
                ctype,
                config,
            } => {
                let values: Result<Vec<Value>, _> =
                    config.iter().map(|c| self.eval(c, frame)).collect();
                let comp = self.spawn(ctype, values?)?;
                frame.comps.insert(binder.clone(), comp);
                Ok(())
            }
            Cmd::Call { binder, func, args } => {
                let values: Result<Vec<Value>, _> =
                    args.iter().map(|a| self.eval(a, frame)).collect();
                let values = values?;
                let result = self.world.call(func, &values);
                self.trace.push(Action::Call {
                    func: func.clone(),
                    args: values,
                    result: Value::Str(result.clone()),
                });
                frame.data.insert(binder.clone(), Value::Str(result));
                Ok(())
            }
            Cmd::Broadcast {
                ctype,
                binder,
                pred,
                msg,
                args,
            } => {
                // Send to every matching component, in spawn order.
                let candidates: Vec<CompInst> = self
                    .comp_list
                    .iter()
                    .filter(|c| c.ctype == *ctype)
                    .cloned()
                    .collect();
                for c in candidates {
                    frame.comps.insert(binder.clone(), c.clone());
                    let hit = self.eval(pred, frame)? == Value::Bool(true);
                    if hit {
                        let values: Result<Vec<Value>, _> =
                            args.iter().map(|a| self.eval(a, frame)).collect();
                        let m = Msg::new(msg, values?);
                        self.trace.push(Action::Send {
                            comp: c.clone(),
                            msg: m.clone(),
                        });
                        let replies = match self.behaviors.get_mut(&c.id) {
                            Some(b) => b.on_message(&m),
                            None => Vec::new(),
                        };
                        if !replies.is_empty() {
                            self.mailboxes.entry(c.id).or_default().extend(replies);
                        }
                    }
                }
                frame.comps.remove(binder);
                Ok(())
            }
            Cmd::Lookup {
                ctype,
                binder,
                pred,
                found,
                missing,
            } => {
                // First-match semantics over spawn order.
                let candidates: Vec<CompInst> = self
                    .comp_list
                    .iter()
                    .filter(|c| c.ctype == *ctype)
                    .cloned()
                    .collect();
                for c in candidates {
                    frame.comps.insert(binder.clone(), c);
                    let hit = self.eval(pred, frame)? == Value::Bool(true);
                    if hit {
                        let result = self.exec(found, frame);
                        frame.comps.remove(binder);
                        return result;
                    }
                }
                frame.comps.remove(binder);
                self.exec(missing, frame)
            }
        }
    }

    fn spawn(&mut self, ctype: &str, config: Vec<Value>) -> Result<CompInst, RuntimeError> {
        let decl = self
            .checked
            .program()
            .comp_type(ctype)
            .ok_or_else(|| err(format!("undeclared component type `{ctype}`")))?;
        let comp = CompInst::new(CompId::new(self.next_id), ctype, config);
        self.next_id += 1;
        self.next_fd += 1;
        self.comp_list.push(comp.clone());
        self.trace.push(Action::Spawn { comp: comp.clone() });
        let mut behavior = self.registry.instantiate(&decl.exe, &comp);
        let startup = behavior.on_start();
        self.behaviors.insert(comp.id, behavior);
        if !startup.is_empty() {
            self.mailboxes.entry(comp.id).or_default().extend(startup);
        }
        Ok(comp)
    }

    fn eval(&mut self, e: &Expr, frame: &Frame) -> Result<Value, RuntimeError> {
        Ok(match e {
            Expr::Lit(v) => v.clone(),
            Expr::Var(x) => {
                if let Some(v) = frame.data.get(x) {
                    v.clone()
                } else if let Some(c) = frame.comps.get(x) {
                    Value::Comp(c.id)
                } else if let Some(v) = self.data.get(x) {
                    v.clone()
                } else if let Some(c) = self.comp_vars.get(x) {
                    Value::Comp(c.id)
                } else {
                    return Err(err(format!("unbound variable `{x}`")));
                }
            }
            Expr::Cfg(inner, field) => {
                let comp = self.eval_comp(inner, frame)?;
                let decl = self
                    .checked
                    .program()
                    .comp_type(&comp.ctype)
                    .ok_or_else(|| err(format!("undeclared component type `{}`", comp.ctype)))?;
                let (idx, _) = decl
                    .config_field(field)
                    .ok_or_else(|| err(format!("no configuration field `{field}`")))?;
                comp.config[idx].clone()
            }
            Expr::Un(op, t) => {
                let v = self.eval(t, frame)?;
                match (op, v) {
                    (UnOp::Not, Value::Bool(b)) => Value::Bool(!b),
                    (UnOp::Neg, Value::Num(n)) => Value::Num(n.wrapping_neg()),
                    (op, v) => return Err(err(format!("type error: {op:?} on {v}"))),
                }
            }
            Expr::Bin(op, l, r) => {
                let a = self.eval(l, frame)?;
                let b = self.eval(r, frame)?;
                match (op, a, b) {
                    (BinOp::Eq, a, b) => Value::Bool(a == b),
                    (BinOp::Ne, a, b) => Value::Bool(a != b),
                    (BinOp::And, Value::Bool(x), Value::Bool(y)) => Value::Bool(x && y),
                    (BinOp::Or, Value::Bool(x), Value::Bool(y)) => Value::Bool(x || y),
                    (BinOp::Add, Value::Num(x), Value::Num(y)) => Value::Num(x.wrapping_add(y)),
                    (BinOp::Sub, Value::Num(x), Value::Num(y)) => Value::Num(x.wrapping_sub(y)),
                    (BinOp::Lt, Value::Num(x), Value::Num(y)) => Value::Bool(x < y),
                    (BinOp::Le, Value::Num(x), Value::Num(y)) => Value::Bool(x <= y),
                    (BinOp::Cat, Value::Str(x), Value::Str(y)) => Value::Str(format!("{x}{y}")),
                    (op, a, b) => return Err(err(format!("type error: {op:?} on {a} and {b}"))),
                }
            }
        })
    }

    fn eval_comp(&mut self, e: &Expr, frame: &Frame) -> Result<CompInst, RuntimeError> {
        let v = self.eval(e, frame)?;
        let Value::Comp(id) = v else {
            return Err(err(format!("expected a component, got {v}")));
        };
        self.comp_list
            .iter()
            .find(|c| c.id == id)
            .cloned()
            .ok_or_else(|| err(format!("no live component {id}")))
    }

    /// Allocates a fresh file descriptor (exposed for behaviors that model
    /// resources like pseudo-terminals).
    pub fn fresh_fd(&mut self) -> Fdesc {
        let fd = Fdesc::new(self.next_fd);
        self.next_fd += 1;
        fd
    }
}
