//! Fault-injection tests for the on-disk proof store: whatever a seeded
//! I/O fault schedule does to the disk, a store round-trip must either
//! produce byte-identical certificates or degrade to a miss (and a
//! re-prove) — never hand back a wrong certificate the checker accepts.
//! Also pins the crash-window fix: a torn write (reported as successful,
//! tail lost) must be surfaced by the pre-rename fsync, so no damaged
//! frame ever lands at a final entry path.

use std::path::PathBuf;
use std::sync::{Arc, OnceLock};

use proptest::prelude::*;
use reflex_parser::parse_program;
use reflex_typeck::{check, CheckedProgram};
use reflex_verify::{
    check_certificate, load_candidates, prove_all, verify_with_store, Certificate, FaultyFs,
    FsFault, FsFaultPlan, FsOp, ProofStore, ProverOptions, VerifyFs,
};

fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rx-storefault-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn car() -> &'static CheckedProgram {
    static CAR: OnceLock<CheckedProgram> = OnceLock::new();
    CAR.get_or_init(|| {
        check(&parse_program("car", reflex_kernels::car::SOURCE).expect("parses")).expect("checks")
    })
}

/// The clean-run ground truth: every property proved, certificates in
/// declaration order.
fn baseline() -> &'static Vec<(String, Certificate)> {
    static BASE: OnceLock<Vec<(String, Certificate)>> = OnceLock::new();
    BASE.get_or_init(|| {
        prove_all(car(), &ProverOptions::default())
            .into_iter()
            .map(|(name, o)| {
                let cert = o.certificate().expect("car properties all prove").clone();
                (name, cert)
            })
            .collect()
    })
}

/// Asserts a store-backed run's outcomes match the baseline exactly.
fn assert_matches_baseline(context: &str, outcomes: &[(String, reflex_verify::Outcome)]) {
    assert_eq!(outcomes.len(), baseline().len(), "{context}: arity");
    for ((name, outcome), (bname, bcert)) in outcomes.iter().zip(baseline()) {
        assert_eq!(name, bname, "{context}: property order");
        assert_eq!(
            outcome.certificate(),
            Some(bcert),
            "{context}: {name} must carry the baseline certificate"
        );
    }
}

/// The crash window the fsync fix closes: a torn first write claims
/// success but loses its tail. Without `sync` before the atomic rename
/// the damaged frame would land at the final path; with it, the save
/// aborts and the entry is simply missing — a future miss, re-proved
/// with an identical certificate.
#[test]
fn torn_write_is_surfaced_by_fsync_and_never_lands() {
    let dir = temp_store("torn");
    let fs = FaultyFs::new(FsFaultPlan::Scripted(vec![(
        FsOp::Write,
        0,
        FsFault::WriteTorn,
    )]));
    let options = ProverOptions::default();

    let store = ProofStore::open_with(&dir, Arc::new(fs.clone()) as Arc<dyn VerifyFs>)
        .expect("store opens");
    let sr = verify_with_store(car(), &options, &store, 1).expect("verifies");
    assert_matches_baseline("faulted save", &sr.report.outcomes);
    assert_eq!(fs.injected(), 1, "exactly the scripted torn write fired");
    assert_eq!(
        sr.saved,
        baseline().len() - 1,
        "the torn entry must not count as saved"
    );
    assert!(store.io_errors() > 0, "the failed fsync is counted");

    // No damaged frame landed: every entry on disk decodes and matches
    // the baseline; the torn property is a plain miss.
    let healed = ProofStore::open(&dir).expect("store re-opens on the real fs");
    let candidates = load_candidates(car(), &options, &healed);
    assert_eq!(
        candidates.len(),
        baseline().len() - 1,
        "the torn entry is a miss, the rest are hits"
    );
    for (name, cert) in &candidates {
        let (_, expected) = baseline()
            .iter()
            .find(|(b, _)| b == name)
            .expect("known property");
        assert_eq!(cert, expected, "{name}: store entry is byte-identical");
    }

    // A clean second run serves the survivors and re-proves (and
    // re-saves) the missing one, converging to the baseline.
    let sr2 = verify_with_store(car(), &options, &healed, 1).expect("verifies");
    assert_matches_baseline("healed reload", &sr2.report.outcomes);
    assert_eq!(sr2.loaded, baseline().len() - 1);
    // Every entry reports saved: the survivors as content-addressed
    // no-ops, the torn one re-persisted for real.
    assert_eq!(sr2.saved, baseline().len());
    let candidates = load_candidates(car(), &options, &healed);
    assert_eq!(candidates.len(), baseline().len(), "store is whole again");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For any seeded fault schedule: store rounds either serve
    /// byte-identical certificates or miss and re-prove — outcomes always
    /// converge to the baseline, and everything the store serves passes
    /// the independent checker. Never a wrong certificate.
    #[test]
    fn seeded_fault_schedules_round_trip_or_miss(seed in 0u64..64, rate_ppm in 1_000u32..150_000) {
        let dir = temp_store(&format!("prop-{seed}-{rate_ppm}"));
        let fs = FaultyFs::seeded(seed, rate_ppm);
        let options = ProverOptions::default();
        let Ok(store) = ProofStore::open_with(&dir, Arc::new(fs.clone()) as Arc<dyn VerifyFs>)
        else {
            // The schedule faulted the very mkdir: opening degraded to
            // nothing, which is an acceptable (store-less) outcome.
            return Ok(());
        };

        // Two faulted rounds: writes may be lost and reads may error, but
        // every verdict must still match the clean baseline.
        for round in 0..2 {
            let sr = verify_with_store(car(), &options, &store, 1).expect("session never aborts");
            assert_matches_baseline(&format!("faulted round {round}"), &sr.report.outcomes);
        }

        // Whatever the store is willing to serve — under faults or after
        // healing — is byte-identical to the baseline and checker-accepted.
        for healed in [false, true] {
            if healed {
                fs.heal();
            }
            for (name, cert) in load_candidates(car(), &options, &store) {
                let (_, expected) = baseline()
                    .iter()
                    .find(|(b, _)| *b == name)
                    .expect("known property");
                prop_assert_eq!(
                    &cert, expected,
                    "healed={}: {} served a non-baseline certificate", healed, name
                );
                prop_assert!(
                    check_certificate(car(), &cert, &options).is_ok(),
                    "healed={}: {} served a certificate the checker rejects", healed, name
                );
            }
        }

        // After healing, one more round converges: everything proved,
        // certificates identical to the baseline.
        let sr = verify_with_store(car(), &options, &store, 1).expect("verifies");
        assert_matches_baseline("healed round", &sr.report.outcomes);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Repeated scrubs must not destroy earlier evidence: each scrub writes a
/// fresh sequenced `quarantine/report-NNNN.json` and mirrors the latest
/// to `report.json`.
#[test]
fn repeated_scrubs_keep_every_report() {
    let dir = temp_store("scrub-reports");
    let options = ProverOptions::default();
    {
        let store = ProofStore::open(&dir).expect("store opens");
        verify_with_store(car(), &options, &store, 1).expect("verifies");
    }

    // Flips a payload byte in the first frame of the `skip`-th segment,
    // breaking its integrity fingerprint so the next scrub quarantines it.
    let corrupt_one_segment = |skip: usize| {
        let mut segments: Vec<PathBuf> = std::fs::read_dir(&dir)
            .expect("store dir")
            .map(|e| e.expect("entry").path())
            .filter(|p| p.is_dir())
            .flat_map(|shard| {
                std::fs::read_dir(shard)
                    .into_iter()
                    .flatten()
                    .map(|e| e.expect("entry").path())
            })
            .filter(|p| p.extension().is_some_and(|e| e == "log"))
            .collect();
        segments.sort();
        let victim = segments.get(skip).expect("enough segments");
        let mut bytes = std::fs::read(victim).expect("readable");
        bytes[50] ^= 0x40;
        std::fs::write(victim, bytes).expect("writable");
    };

    let quarantine = dir.join(reflex_verify::QUARANTINE_DIR);
    let store = ProofStore::open(&dir).expect("store re-opens");

    corrupt_one_segment(0);
    let first = store.scrub(None).expect("first scrub");
    assert_eq!(first.quarantined.len(), 1);
    assert!(quarantine.join("report-0000.json").exists());
    assert!(quarantine.join("report.json").exists());
    let first_seq = std::fs::read(quarantine.join("report-0000.json")).expect("report 0");

    corrupt_one_segment(0);
    let second = store.scrub(None).expect("second scrub");
    assert_eq!(second.quarantined.len(), 1);
    assert!(
        quarantine.join("report-0001.json").exists(),
        "second scrub must get its own sequenced report"
    );
    assert_eq!(
        std::fs::read(quarantine.join("report-0000.json")).expect("report 0 still there"),
        first_seq,
        "earlier reports are never overwritten"
    );
    assert_eq!(
        std::fs::read(quarantine.join("report.json")).expect("latest mirror"),
        std::fs::read(quarantine.join("report-0001.json")).expect("report 1"),
        "report.json mirrors the latest scrub"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Head records get the same torn-write discipline as certificate
/// frames: a torn tmp write is surfaced by the pre-rename fsync, the
/// save aborts, and no damaged head ever lands at the final path.
#[test]
fn head_save_aborts_on_torn_write_and_recovers() {
    use reflex_ast::fingerprint::Fp;
    use reflex_verify::StoreHead;

    let dir = temp_store("head-torn");
    let fs = FaultyFs::new(FsFaultPlan::Scripted(vec![(
        FsOp::Write,
        0,
        FsFault::WriteTorn,
    )]));
    let store = ProofStore::open_with(&dir, Arc::new(fs.clone()) as Arc<dyn VerifyFs>)
        .expect("store opens");
    let head = StoreHead {
        program: Fp(0xabc),
        properties: vec![("safe".into(), Fp(1)), ("sound".into(), Fp(2))],
    };

    assert!(
        store.save_head("car", Fp(7), &head).is_err(),
        "the torn head write must be surfaced by the fsync"
    );
    assert_eq!(fs.injected(), 1, "exactly the scripted torn write fired");
    assert!(store.io_errors() > 0, "the failed fsync is counted");
    assert!(
        store.load_head("car", Fp(7)).is_none(),
        "no damaged head lands at the final path"
    );

    // The script is spent: a clean retry round-trips bit-exactly.
    store.save_head("car", Fp(7), &head).expect("clean save");
    let back = store.load_head("car", Fp(7)).expect("head round-trips");
    assert_eq!(back.program, head.program);
    assert_eq!(back.properties, head.properties);
}

/// A read-EIO plan makes `load_head` a counted miss, never an error or a
/// wrong head; healing the fs serves the intact record again.
#[test]
fn head_load_treats_read_eio_as_a_counted_miss() {
    use reflex_ast::fingerprint::Fp;
    use reflex_verify::StoreHead;

    let dir = temp_store("head-eio");
    let head = StoreHead {
        program: Fp(0xf00d),
        properties: vec![("resp".into(), Fp(9))],
    };
    {
        let store = ProofStore::open(&dir).expect("store opens");
        store.save_head("car", Fp(7), &head).expect("saves");
    }

    // Every read faults: the head is a miss and the error is counted.
    let plan: Vec<(FsOp, u64, FsFault)> =
        (0..64).map(|i| (FsOp::Read, i, FsFault::ReadEio)).collect();
    let fs = FaultyFs::new(FsFaultPlan::Scripted(plan));
    let store = ProofStore::open_with(&dir, Arc::new(fs.clone()) as Arc<dyn VerifyFs>)
        .expect("store opens under read faults");
    assert!(
        store.load_head("car", Fp(7)).is_none(),
        "a faulted head read is a miss"
    );
    assert!(store.io_errors() > 0, "the read fault is counted");

    // Healed, the record on disk is still whole.
    fs.heal();
    let back = store.load_head("car", Fp(7)).expect("head survives intact");
    assert_eq!(back.program, head.program);
    assert_eq!(back.properties, head.properties);
    let _ = std::fs::remove_dir_all(&dir);
}
