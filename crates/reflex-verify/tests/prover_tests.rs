//! End-to-end tests of the proof automation, certificate checking and
//! falsification, on kernels shaped like the paper's benchmarks.

use reflex_parser::parse_program;
use reflex_typeck::{check, CheckedProgram};
use reflex_verify::{check_certificate, falsify, prove, prove_all, FalsifyOptions, ProverOptions};

fn checked(name: &str, src: &str) -> CheckedProgram {
    let p = parse_program(name, src).expect("parses");
    check(&p).expect("well-formed")
}

fn assert_proves(checked: &CheckedProgram, prop: &str, options: &ProverOptions) {
    let outcome = prove(checked, prop, options).expect("property exists");
    match outcome.failure() {
        None => {}
        Some(f) => panic!("`{prop}` should verify, but failed at {f}"),
    }
    let cert = outcome.certificate().expect("proved");
    check_certificate(checked, cert, options)
        .unwrap_or_else(|e| panic!("certificate for `{prop}` rejected: {e}"));
}

fn assert_fails(checked: &CheckedProgram, prop: &str, options: &ProverOptions) {
    let outcome = prove(checked, prop, options).expect("property exists");
    assert!(
        !outcome.is_proved(),
        "`{prop}` should NOT verify (it is false or beyond the automation)"
    );
}

const SSH: &str = r#"
components {
  Connection "client.py" ();
  Password "user-auth.c" ();
  Terminal "pty-alloc.c" ();
}
messages {
  ReqAuth(str, str);
  Auth(str);
  ReqTerm(str);
  Term(str, fdesc);
}
state {
  auth_user: str = "";
  auth_ok: bool = false;
}
init {
  C <- spawn Connection();
  P <- spawn Password();
  T <- spawn Terminal();
}
handlers {
  when Connection:ReqAuth(user, pass) {
    send(P, ReqAuth(user, pass));
  }
  when Password:Auth(user) {
    auth_user = user;
    auth_ok = true;
  }
  when Connection:ReqTerm(user) {
    if (user == auth_user && auth_ok) {
      send(T, ReqTerm(user));
    }
  }
  when Terminal:Term(user, t) {
    if (user == auth_user && auth_ok) {
      send(C, Term(user, t));
    }
  }
}
properties {
  AuthBeforeTerm: forall u: str.
    [Recv(Password(), Auth(u))] Enables [Send(Terminal(), ReqTerm(u))];
  AuthBeforeTermToClient: forall u: str.
    [Recv(Password(), Auth(u))] Enables [Send(Connection(), Term(u, _))];
}
"#;

#[test]
fn proves_the_paper_ssh_property() {
    let c = checked("ssh", SSH);
    let options = ProverOptions::default();
    // The paper's running example: requires synthesizing the invariant
    // "auth_user == u && auth_ok  ⇒  Recv(Password, Auth(u)) in trace".
    assert_proves(&c, "AuthBeforeTerm", &options);
    assert_proves(&c, "AuthBeforeTermToClient", &options);
}

#[test]
fn ssh_proofs_survive_disabled_optimizations() {
    let c = checked("ssh", SSH);
    for options in [
        ProverOptions::unoptimized(),
        ProverOptions {
            syntactic_skip: false,
            ..ProverOptions::default()
        },
        ProverOptions {
            prune_paths: false,
            ..ProverOptions::default()
        },
        ProverOptions {
            cache_invariants: false,
            ..ProverOptions::default()
        },
    ] {
        assert_proves(&c, "AuthBeforeTerm", &options);
    }
}

#[test]
fn rejects_false_variant_of_ssh_property() {
    // A buggy kernel: the ReqTerm handler forgets the auth check.
    let buggy = SSH.replace(
        "when Connection:ReqTerm(user) {\n    if (user == auth_user && auth_ok) {\n      send(T, ReqTerm(user));\n    }\n  }",
        "when Connection:ReqTerm(user) {\n    send(T, ReqTerm(user));\n  }",
    );
    let c = checked("ssh-buggy", &buggy);
    let options = ProverOptions::default();
    assert_fails(&c, "AuthBeforeTerm", &options);
    // And it is genuinely false: the falsifier finds a concrete trace.
    let cx =
        falsify(&c, "AuthBeforeTerm", &FalsifyOptions::default()).expect("counterexample exists");
    assert_eq!(cx.property, "AuthBeforeTerm");
    assert!(cx.trace.len() >= 3);
}

#[test]
fn wrong_user_check_is_caught() {
    // Bug from the paper's class: guard checks auth_ok but not the user.
    let buggy = SSH.replace(
        "if (user == auth_user && auth_ok) {\n      send(T, ReqTerm(user));",
        "if (auth_ok) {\n      send(T, ReqTerm(user));",
    );
    let c = checked("ssh-anyuser", &buggy);
    assert_fails(&c, "AuthBeforeTerm", &ProverOptions::default());
    let cx = falsify(&c, "AuthBeforeTerm", &FalsifyOptions::default())
        .expect("counterexample: authenticate as a, request terminal for b");
    assert!(cx.trace.len() >= 4);
}

const LOGIN_COUNTER: &str = r#"
components {
  Client "client.py" ();
  Auth "auth.c" ();
}
messages {
  TryLogin(str, str);
  Attempt(num, str, str);
}
state {
  attempts: num = 0;
}
init {
  A <- spawn Auth();
  Cl <- spawn Client();
}
handlers {
  when Client:TryLogin(user, pass) {
    if (attempts < 3) {
      attempts = attempts + 1;
      send(A, Attempt(attempts, user, pass));
    }
  }
}
properties {
  FirstAttemptOnce:
    [Send(Auth(), Attempt(1, _, _))] Disables [Send(Auth(), Attempt(1, _, _))];
  SecondAttemptOnce:
    [Send(Auth(), Attempt(2, _, _))] Disables [Send(Auth(), Attempt(2, _, _))];
  ThirdAttemptOnce:
    [Send(Auth(), Attempt(3, _, _))] Disables [Send(Auth(), Attempt(3, _, _))];
  SecondNeedsFirst:
    [Send(Auth(), Attempt(1, _, _))] Enables [Send(Auth(), Attempt(2, _, _))];
  ThirdNeedsSecond:
    [Send(Auth(), Attempt(2, _, _))] Enables [Send(Auth(), Attempt(3, _, _))];
  NoFourth:
    [Send(Auth(), Attempt(4, _, _))] Disables [Send(Auth(), Attempt(4, _, _))];
}
"#;

#[test]
fn proves_login_attempt_counter_properties() {
    // The ssh "at most 3 attempts" policy family: needs chained numeric
    // invariants (attempts == k ⇒ no Attempt(k+1) yet, for k = 0, 1, 2).
    let c = checked("logins", LOGIN_COUNTER);
    let options = ProverOptions::default();
    for prop in [
        "FirstAttemptOnce",
        "SecondAttemptOnce",
        "ThirdAttemptOnce",
        "SecondNeedsFirst",
        "ThirdNeedsSecond",
        "NoFourth",
    ] {
        assert_proves(&c, prop, &options);
    }
}

#[test]
fn counter_without_guard_fails_and_falsifies() {
    let buggy = LOGIN_COUNTER.replace(
        "if (attempts < 3) {\n      attempts = attempts + 1;\n      send(A, Attempt(attempts, user, pass));\n    }",
        "attempts = attempts + 1;\n    send(A, Attempt(attempts, user, pass));",
    );
    let c = checked("logins-unguarded", &buggy);
    // Uniqueness still holds (the counter still increments monotonically)…
    assert_proves(&c, "FirstAttemptOnce", &ProverOptions::default());
    // …but the cap is gone: Attempt(4) is now reachable, so a property
    // claiming it never repeats twice still holds, while a property that
    // it never happens at all would fail. Add such a property via a
    // separate program below.
    let with_never = buggy.replace(
        "NoFourth:\n    [Send(Auth(), Attempt(4, _, _))] Disables [Send(Auth(), Attempt(4, _, _))];",
        "NoFourth:\n    [Send(Auth(), Attempt(4, _, _))] Disables [Send(Auth(), Attempt(4, _, _))];\n  NeverFourth:\n    [Send(Auth(), Attempt(4, _, _))] Disables [Recv(Client(), TryLogin(_, _))];",
    );
    let c2 = checked("logins-never", &with_never);
    assert_fails(&c2, "NeverFourth", &ProverOptions::default());
    let cx = falsify(
        &c2,
        "NeverFourth",
        &FalsifyOptions {
            max_exchanges: 5,
            ..FalsifyOptions::default()
        },
    )
    .expect("five logins violate NeverFourth");
    assert!(cx.trace.len() > 8);
}

const UNIQUE_IDS: &str = r#"
components {
  Chrome "chrome.py" ();
  Tab "tab.py" (id: num);
}
messages {
  NewTab();
}
state {
  next_id: num = 0;
}
init {
  U <- spawn Chrome();
}
handlers {
  when Chrome:NewTab() {
    next_id = next_id + 1;
    t <- spawn Tab(next_id);
  }
}
properties {
  UniqueTabIds: forall i: num.
    [Spawn(Tab(i))] Disables [Spawn(Tab(i))];
}
"#;

#[test]
fn proves_unique_tab_ids() {
    // The browser benchmark's "tab processes have unique IDs": needs the
    // relational invariant "next_id == i ⇒ no Spawn(Tab(j)) with j > i"…
    // our automation finds the simpler chain "next_id == i ⇒ no
    // Spawn(Tab(i')) for the specific i' = i + 1 forced by unification".
    let c = checked("tabs", UNIQUE_IDS);
    assert_proves(&c, "UniqueTabIds", &ProverOptions::default());
}

#[test]
fn duplicate_ids_fail_and_falsify() {
    let buggy = UNIQUE_IDS.replace(
        "next_id = next_id + 1;\n    t <- spawn Tab(next_id);",
        "t <- spawn Tab(next_id);",
    );
    let c = checked("tabs-dup", &buggy);
    assert_fails(&c, "UniqueTabIds", &ProverOptions::default());
    let cx = falsify(&c, "UniqueTabIds", &FalsifyOptions::default()).expect("two tabs share id 0");
    assert!(cx.trace.len() >= 4);
}

const CAR: &str = r#"
components {
  Engine "engine.c" ();
  Doors "doors.c" ();
  Radio "radio.c" ();
}
messages {
  Crash();
  Accelerating();
  DoorsM(str);
  Volume(str);
}
init {
  E <- spawn Engine();
  D <- spawn Doors();
  R <- spawn Radio();
}
handlers {
  when Engine:Crash() {
    send(D, DoorsM("unlock"));
  }
  when Engine:Accelerating() {
    send(R, Volume("crank it up"));
  }
  when Doors:DoorsM(s) {
    if (s == "open") {
      send(R, Volume("mute"));
    }
  }
}
properties {
  EngineNI: noninterference {
    high components: Engine;
    high vars: ;
  }
  UnlockAfterCrash:
    [Recv(Engine(), Crash())] Ensures [Send(Doors(), DoorsM("unlock"))];
  UnlockImmediatelyAfterCrash:
    [Recv(Engine(), Crash())] ImmAfter [Send(Doors(), DoorsM("unlock"))];
  CrashBeforeUnlock:
    [Send(Doors(), DoorsM("unlock"))] ImmBefore [Recv(Engine(), Crash())];
}
"#;

#[test]
fn proves_car_noninterference_and_temporal_properties() {
    // Figure 5's kernel: Doors/Radio (low) must not interfere with the
    // Engine (high). Our kernel's low handlers never send to the Engine.
    let c = checked("car", CAR);
    let options = ProverOptions::default();
    assert_proves(&c, "EngineNI", &options);
    assert_proves(&c, "UnlockAfterCrash", &options);
    assert_proves(&c, "UnlockImmediatelyAfterCrash", &options);
}

#[test]
fn immbefore_with_wrong_direction_fails() {
    // DoorsM("unlock") is immediately *preceded* by Recv(Crash) — but the
    // property as stated uses ImmBefore(A=Send(unlock), B=Recv(Crash)),
    // i.e. every Crash Recv is immediately preceded by an unlock send,
    // which is false (Crash can be the first event).
    let c = checked("car", CAR);
    assert_fails(&c, "CrashBeforeUnlock", &ProverOptions::default());
}

#[test]
fn ni_fails_when_low_reaches_high() {
    // Give the Doors handler a path that commands the Engine: NIlo breaks.
    let bad = CAR.replace(
        "when Doors:DoorsM(s) {\n    if (s == \"open\") {\n      send(R, Volume(\"mute\"));\n    }\n  }",
        "when Doors:DoorsM(s) {\n    if (s == \"open\") {\n      send(E, Crash());\n    }\n  }",
    );
    let c = checked("car-bad", &bad);
    let outcome = prove(&c, "EngineNI", &ProverOptions::default()).expect("exists");
    let failure = outcome.failure().expect("NI must fail");
    assert!(
        failure.reason.contains("possibly-high"),
        "unexpected reason: {failure}"
    );
}

#[test]
fn ni_fails_when_high_branches_on_low_state() {
    let bad = CAR.replace("state {", "state {\n  radio_on: bool = false;");
    // radio_on written by a (low) Radio handler and branched on in a
    // (high) Engine handler.
    let bad = bad.replace(
        "handlers {",
        "handlers {\n  when Radio:Volume(v) {\n    radio_on = true;\n  }\n",
    );
    // Gating a *high* output on the low variable is real interference
    // (gating only low outputs would be accepted: such a case is
    // high-inert and contributes nothing to the high observation).
    let bad = bad.replace(
        "when Engine:Crash() {\n    send(D, DoorsM(\"unlock\"));\n  }",
        "when Engine:Crash() {\n    if (radio_on) {\n      send(E, Crash());\n    }\n  }",
    );
    // CAR has no state section: inject one.
    let bad = if bad.contains("state {") {
        bad
    } else {
        bad.replace("init {", "state {\n  radio_on: bool = false;\n}\n\ninit {")
    };
    let c = checked("car-lowbranch", &bad);
    let outcome = prove(&c, "EngineNI", &ProverOptions::default()).expect("exists");
    let failure = outcome.failure().expect("NIhi must fail");
    assert!(
        failure.reason.contains("low-influenced"),
        "unexpected reason: {failure}"
    );
}

const SELECT_PROPS: &str = r#"
components {
  Hub "hub.py" ();
  Node "node.py" (id: str);
}
messages {
  Join(str);
  Hello();
}
init {
  H <- spawn Hub();
}
handlers {
  when Hub:Join(n) {
    lookup Node(x : x.id == n) {
    } else {
      w <- spawn Node(n);
    }
  }
}
properties {
  // Every message received from a Node comes from a component whose spawn
  // is on the trace — pure component-origin reasoning with a Select/Recv
  // trigger and a variable-free... and a config-pinned obligation.
  NodesWereSpawned: forall n: str.
    [Spawn(Node(n))] Enables [Recv(Node(n), Hello())];
  // Variable-free variant: any selected Node was spawned at some point.
  SelectedNodesExist:
    [Spawn(Node(_))] Enables [Select(Node(_))];
}
"#;

#[test]
fn component_origin_covers_select_and_recv_triggers() {
    let c = checked("selects", SELECT_PROPS);
    let options = ProverOptions::default();
    assert_proves(&c, "NodesWereSpawned", &options);
    assert_proves(&c, "SelectedNodesExist", &options);
}

#[test]
fn prove_all_reports_each_property() {
    let c = checked("ssh", SSH);
    let results = prove_all(&c, &ProverOptions::default());
    assert_eq!(results.len(), 2);
    assert!(results.iter().all(|(_, o)| o.is_proved()));
}

#[test]
fn certificates_are_tamper_evident() {
    use reflex_verify::Certificate;
    let c = checked("ssh", SSH);
    let options = ProverOptions::default();
    let outcome = prove(&c, "AuthBeforeTerm", &options).expect("exists");
    let cert = outcome.certificate().expect("proved").clone();

    // Valid as produced.
    check_certificate(&c, &cert, &options).expect("valid");

    // Tamper 1: drop an invariant.
    if let Certificate::Trace(mut t) = cert.clone() {
        if !t.invariants.is_empty() {
            t.invariants.clear();
            let tampered = Certificate::Trace(t);
            assert!(check_certificate(&c, &tampered, &options).is_err());
        }
    }

    // Tamper 2: weaken an invariant's guard to `true`.
    if let Certificate::Trace(mut t) = cert.clone() {
        if let Some(inv) = t.invariants.first_mut() {
            inv.guard = reflex_verify::canon::Guard::new(vec![]);
            let tampered = Certificate::Trace(t);
            assert!(check_certificate(&c, &tampered, &options).is_err());
        }
    }

    // Tamper 3: claim a skip that is not justified.
    if let Certificate::Trace(mut t) = cert.clone() {
        if let Some(case) = t
            .cases
            .iter_mut()
            .find(|k| !k.skipped && !k.paths.is_empty())
        {
            case.skipped = true;
            case.paths.clear();
            let tampered = Certificate::Trace(t);
            assert!(check_certificate(&c, &tampered, &options).is_err());
        }
    }

    // Tamper 4: certificate for a different program.
    let other = checked("logins", LOGIN_COUNTER);
    assert!(check_certificate(&other, &cert, &options).is_err());
}

#[test]
fn falsifier_ignores_ni_and_unknown_properties() {
    let c = checked("car", CAR);
    assert!(falsify(&c, "EngineNI", &FalsifyOptions::default()).is_none());
    assert!(falsify(&c, "DoesNotExist", &FalsifyOptions::default()).is_none());
}
