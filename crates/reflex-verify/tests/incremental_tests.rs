//! Tests for incremental re-verification (the paper's §6.4 future work).

use reflex_parser::parse_program;
use reflex_typeck::check;
use reflex_verify::{prove_all, reverify, ProverOptions};

#[test]
fn unrelated_edit_reuses_local_certificates() {
    let old = reflex_kernels::browser::checked();
    let options = ProverOptions::default();
    let previous: Vec<_> = prove_all(&old, &options)
        .into_iter()
        .map(|(name, o)| (name, o.certificate().expect("proved").clone()))
        .collect();

    // Edit only the OpenSocket handler (a volume tweak that keeps its
    // behaviour shape); nothing it can emit matches the cookie or spawn
    // properties' triggers.
    let edited_src = reflex_kernels::browser::SOURCE.replace(
        "    if (host == sender.domain) {\n      send(N, Connect(host));\n    }",
        "    if (host == sender.domain && host != \"\") {\n      send(N, Connect(host));\n    }",
    );
    assert_ne!(edited_src, reflex_kernels::browser::SOURCE);
    let new = check(&parse_program("browser", &edited_src).expect("parses")).expect("checks");

    let report = reverify(&old, &previous, &new, &options);
    // Everything still verifies…
    for (name, outcome) in &report.outcomes {
        assert!(outcome.is_proved(), "{name} must verify after the edit");
    }
    // …and the local certificates not involving Connect were reused.
    assert!(
        report.reused.contains(&"CookiesStayInDomain".to_owned()),
        "reused: {:?}",
        report.reused
    );
    assert!(
        report
            .reused
            .contains(&"UniqueCookieMgrPerDomain".to_owned()),
        "reused: {:?}",
        report.reused
    );
    // The socket property's trigger lives in the edited handler: re-proved.
    assert!(report
        .reproved
        .contains(&"SocketsOnlyToOwnDomain".to_owned()));
    // Invariant-based and NI certificates are never reused.
    assert!(report.reproved.contains(&"UniqueTabIds".to_owned()));
    assert!(report.reproved.contains(&"DomainNI".to_owned()));
}

#[test]
fn breaking_edit_is_still_caught() {
    let old = reflex_kernels::browser::checked();
    let options = ProverOptions::default();
    let previous: Vec<_> = prove_all(&old, &options)
        .into_iter()
        .map(|(name, o)| (name, o.certificate().expect("proved").clone()))
        .collect();

    // Remove the socket guard: the affected property must be re-proved
    // (not reused!) and must now fail.
    let edited_src = reflex_kernels::browser::SOURCE.replace(
        "    if (host == sender.domain) {\n      send(N, Connect(host));\n    }",
        "    send(N, Connect(host));",
    );
    let new = check(&parse_program("browser", &edited_src).expect("parses")).expect("checks");
    let report = reverify(&old, &previous, &new, &options);
    let socket = report
        .outcomes
        .iter()
        .find(|(n, _)| n == "SocketsOnlyToOwnDomain")
        .expect("present");
    assert!(!socket.1.is_proved(), "the regression must be caught");
    assert!(report
        .reproved
        .contains(&"SocketsOnlyToOwnDomain".to_owned()));
}

#[test]
fn declaration_changes_force_full_reproving() {
    let old = reflex_kernels::ssh::checked();
    let options = ProverOptions::default();
    let previous: Vec<_> = prove_all(&old, &options)
        .into_iter()
        .map(|(name, o)| (name, o.certificate().expect("proved").clone()))
        .collect();

    // Adding a message type changes the case split: nothing is reusable.
    let edited_src =
        reflex_kernels::ssh::SOURCE.replace("messages {", "messages {\n  Heartbeat();");
    let new = check(&parse_program("ssh", &edited_src).expect("parses")).expect("checks");
    let report = reverify(&old, &previous, &new, &options);
    assert!(report.reused.is_empty());
    assert_eq!(report.reproved.len(), new.program().properties.len());
    for (name, outcome) in &report.outcomes {
        assert!(outcome.is_proved(), "{name}");
    }
}

#[test]
fn property_edits_are_never_reused() {
    let old = reflex_kernels::webserver::checked();
    let options = ProverOptions::default();
    let previous: Vec<_> = prove_all(&old, &options)
        .into_iter()
        .map(|(name, o)| (name, o.certificate().expect("proved").clone()))
        .collect();

    // Rename a pattern variable inside a property (semantically equal but
    // syntactically different): conservative re-prove.
    let edited_src = reflex_kernels::webserver::SOURCE.replace(
        "ReadsOnlyAuthorized: forall p: str.",
        "ReadsOnlyAuthorized: forall q: str.",
    );
    let edited_src = edited_src.replace(
        "[Recv(AccessCtl(), PathOk(_, p))] Enables [Send(Disk(), ReadFile(p))];",
        "[Recv(AccessCtl(), PathOk(_, q))] Enables [Send(Disk(), ReadFile(q))];",
    );
    let new = check(&parse_program("webserver", &edited_src).expect("parses")).expect("checks");
    let report = reverify(&old, &previous, &new, &options);
    assert!(report.reproved.contains(&"ReadsOnlyAuthorized".to_owned()));
    assert!(report.outcomes.iter().all(|(_, o)| o.is_proved()));
}
