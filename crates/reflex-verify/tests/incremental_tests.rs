//! Tests for incremental re-verification (the paper's §6.4 future work).

use reflex_parser::parse_program;
use reflex_typeck::check;
use reflex_verify::{
    check_certificate, prove_all, reverify, Certificate, ProverOptions, VerifyError,
};

#[test]
fn unrelated_edit_reuses_local_certificates() {
    let old = reflex_kernels::browser::checked();
    let options = ProverOptions::default();
    let previous: Vec<_> = prove_all(&old, &options)
        .into_iter()
        .map(|(name, o)| (name, o.certificate().expect("proved").clone()))
        .collect();

    // Edit only the OpenSocket handler (a volume tweak that keeps its
    // behaviour shape); nothing it can emit matches the cookie or spawn
    // properties' triggers.
    let edited_src = reflex_kernels::browser::SOURCE.replace(
        "    if (host == sender.domain) {\n      send(N, Connect(host));\n    }",
        "    if (host == sender.domain && host != \"\") {\n      send(N, Connect(host));\n    }",
    );
    assert_ne!(edited_src, reflex_kernels::browser::SOURCE);
    let new = check(&parse_program("browser", &edited_src).expect("parses")).expect("checks");

    let report = reverify(&previous, &new, &options).expect("well-formed previous");
    // Everything still verifies…
    for (name, outcome) in &report.outcomes {
        assert!(outcome.is_proved(), "{name} must verify after the edit");
    }
    // …and the local certificates not involving Connect were reused.
    assert!(
        report.reused.contains(&"CookiesStayInDomain".to_owned()),
        "reused: {:?}",
        report.reused
    );
    assert!(
        report
            .reused
            .contains(&"UniqueCookieMgrPerDomain".to_owned()),
        "reused: {:?}",
        report.reused
    );
    // The socket property's trigger lives in the edited handler: its
    // certificate cannot be reused wholesale — it is either patched
    // per-case or re-proved, never served stale.
    let socket = "SocketsOnlyToOwnDomain".to_owned();
    assert!(!report.reused.contains(&socket));
    assert!(
        report.partial.contains(&socket) || report.reproved.contains(&socket),
        "partial: {:?}, reproved: {:?}",
        report.partial,
        report.reproved
    );
    // Invariant-based and NI certificates depend on every handler, so a
    // handler edit always re-proves them.
    assert!(report.reproved.contains(&"UniqueTabIds".to_owned()));
    assert!(report.reproved.contains(&"DomainNI".to_owned()));

    // The report is byte-identical to a from-scratch run, and every reused
    // or patched certificate passes the independent checker against the
    // *new* program.
    let scratch = prove_all(&new, &options);
    assert_eq!(report.outcomes.len(), scratch.len());
    for ((name, outcome), (sname, soutcome)) in report.outcomes.iter().zip(&scratch) {
        assert_eq!(name, sname);
        assert_eq!(
            outcome.certificate(),
            soutcome.certificate(),
            "certificate for {name} must be byte-identical to from-scratch"
        );
        if let Some(cert) = outcome.certificate() {
            check_certificate(&new, cert, &options).expect("reused certificate checks");
        }
    }
}

#[test]
fn breaking_edit_is_still_caught() {
    let old = reflex_kernels::browser::checked();
    let options = ProverOptions::default();
    let previous: Vec<_> = prove_all(&old, &options)
        .into_iter()
        .map(|(name, o)| (name, o.certificate().expect("proved").clone()))
        .collect();

    // Remove the socket guard: the affected property must not be reused
    // wholesale and must now fail.
    let edited_src = reflex_kernels::browser::SOURCE.replace(
        "    if (host == sender.domain) {\n      send(N, Connect(host));\n    }",
        "    send(N, Connect(host));",
    );
    let new = check(&parse_program("browser", &edited_src).expect("parses")).expect("checks");
    let report = reverify(&previous, &new, &options).expect("well-formed previous");
    let socket = report
        .outcomes
        .iter()
        .find(|(n, _)| n == "SocketsOnlyToOwnDomain")
        .expect("present");
    assert!(!socket.1.is_proved(), "the regression must be caught");
    assert!(!report.reused.contains(&"SocketsOnlyToOwnDomain".to_owned()));
}

#[test]
fn declaration_changes_force_full_reproving() {
    let old = reflex_kernels::ssh::checked();
    let options = ProverOptions::default();
    let previous: Vec<_> = prove_all(&old, &options)
        .into_iter()
        .map(|(name, o)| (name, o.certificate().expect("proved").clone()))
        .collect();

    // Adding a message type changes the case split: nothing is reusable.
    let edited_src =
        reflex_kernels::ssh::SOURCE.replace("messages {", "messages {\n  Heartbeat();");
    let new = check(&parse_program("ssh", &edited_src).expect("parses")).expect("checks");
    let report = reverify(&previous, &new, &options).expect("well-formed previous");
    assert!(report.reused.is_empty());
    assert!(report.partial.is_empty());
    assert_eq!(report.reproved.len(), new.program().properties.len());
    for (name, outcome) in &report.outcomes {
        assert!(outcome.is_proved(), "{name}");
    }
}

#[test]
fn property_edits_are_never_reused() {
    let old = reflex_kernels::webserver::checked();
    let options = ProverOptions::default();
    let previous: Vec<_> = prove_all(&old, &options)
        .into_iter()
        .map(|(name, o)| (name, o.certificate().expect("proved").clone()))
        .collect();

    // Rename a pattern variable inside a property (semantically equal but
    // syntactically different): conservative re-prove.
    let edited_src = reflex_kernels::webserver::SOURCE.replace(
        "ReadsOnlyAuthorized: forall p: str.",
        "ReadsOnlyAuthorized: forall q: str.",
    );
    let edited_src = edited_src.replace(
        "[Recv(AccessCtl(), PathOk(_, p))] Enables [Send(Disk(), ReadFile(p))];",
        "[Recv(AccessCtl(), PathOk(_, q))] Enables [Send(Disk(), ReadFile(q))];",
    );
    let new = check(&parse_program("webserver", &edited_src).expect("parses")).expect("checks");
    let report = reverify(&previous, &new, &options).expect("well-formed previous");
    assert!(report.reproved.contains(&"ReadsOnlyAuthorized".to_owned()));
    assert!(!report.reused.contains(&"ReadsOnlyAuthorized".to_owned()));
    assert!(report.outcomes.iter().all(|(_, o)| o.is_proved()));
}

#[test]
fn identical_program_reuses_everything() {
    let checked = reflex_kernels::car::checked();
    let options = ProverOptions::default();
    let previous: Vec<_> = prove_all(&checked, &options)
        .into_iter()
        .map(|(name, o)| (name, o.certificate().expect("proved").clone()))
        .collect();
    let report = reverify(&previous, &checked, &options).expect("well-formed previous");
    assert_eq!(report.reused.len(), previous.len());
    assert!(report.partial.is_empty());
    assert!(report.reproved.is_empty());
}

#[test]
fn malformed_previous_is_an_error_not_a_panic() {
    let checked = reflex_kernels::car::checked();
    let options = ProverOptions::default();
    let proved: Vec<_> = prove_all(&checked, &options)
        .into_iter()
        .map(|(name, o)| (name, o.certificate().expect("proved").clone()))
        .collect();

    // Duplicate entry.
    let mut dup = proved.clone();
    dup.push(proved[0].clone());
    match reverify(&dup, &checked, &options) {
        Err(VerifyError::DuplicateCertificate { name }) => assert_eq!(name, proved[0].0),
        other => panic!("expected DuplicateCertificate, got {other:?}"),
    }

    // Certificate filed under the wrong name.
    let mut misfiled = proved.clone();
    misfiled[0].0 = "NoSuchName".to_owned();
    match reverify(&misfiled, &checked, &options) {
        Err(VerifyError::CertificateMismatch { name, certified }) => {
            assert_eq!(name, "NoSuchName");
            assert_eq!(certified, proved[0].0);
        }
        other => panic!("expected CertificateMismatch, got {other:?}"),
    }
}

#[test]
fn parallel_reverify_matches_serial() {
    let old = reflex_kernels::browser::checked();
    let options = ProverOptions::default();
    let previous: Vec<_> = prove_all(&old, &options)
        .into_iter()
        .map(|(name, o)| (name, o.certificate().expect("proved").clone()))
        .collect();
    let edited_src = reflex_kernels::browser::SOURCE.replace(
        "    if (host == sender.domain) {",
        "    if (host == sender.domain && host != \"\") {",
    );
    let new = check(&parse_program("browser", &edited_src).expect("parses")).expect("checks");
    let serial = reverify(&previous, &new, &options).expect("serial");
    let parallel = reflex_verify::reverify_jobs(&previous, &new, &options, 8).expect("parallel");
    assert_eq!(serial.reused, parallel.reused);
    assert_eq!(serial.partial, parallel.partial);
    assert_eq!(serial.reproved, parallel.reproved);
    for ((n1, o1), (n2, o2)) in serial.outcomes.iter().zip(&parallel.outcomes) {
        assert_eq!(n1, n2);
        assert_eq!(o1.certificate(), o2.certificate(), "{n1}");
        assert_eq!(o1.is_proved(), o2.is_proved(), "{n1}");
    }
}

#[test]
fn dep_sets_record_what_proofs_consult() {
    let checked = reflex_kernels::browser::checked();
    let options = ProverOptions::default();
    let all_cases = checked.fingerprints().handlers.len();
    for (name, outcome) in prove_all(&checked, &options) {
        let cert = outcome.certificate().expect("proved").clone();
        let deps = cert.deps().clone();
        assert_eq!(deps.decls, checked.fingerprints().decls);
        assert_eq!(Some(deps.property), checked.property_fp(&name));
        match &cert {
            Certificate::NonInterference(_) => {
                // NI consults every handler, recorded explicitly.
                assert_eq!(deps.handlers.len(), all_cases, "{name}");
                assert!(deps.syntactic_only.is_empty(), "{name}");
            }
            Certificate::Trace(t) if !t.invariants.is_empty() || !t.lemmas.is_empty() => {
                assert_eq!(deps.handlers.len(), all_cases, "{name}");
            }
            Certificate::Trace(_) => {
                // Local certificates: tracked + skipped partition the cases.
                assert_eq!(
                    deps.handlers.len() + deps.syntactic_only.len(),
                    all_cases,
                    "{name}"
                );
            }
        }
        // Recorded fingerprints match the program the proof ran over.
        for (ctype, msg, fp) in &deps.handlers {
            assert_eq!(checked.handler_fp(ctype, msg), Some(*fp), "{name}");
        }
    }
}
