//! Property-based tests for incremental re-verification: mutate one
//! randomly chosen handler of every bundled kernel and assert the two
//! contracts the reuse machinery must never break, regardless of which
//! handler changed:
//!
//! * the incremental report is **byte-identical** to a from-scratch
//!   `prove_all` of the mutated program — same outcomes, same
//!   certificates;
//! * every certificate the planner reused or patched still passes the
//!   independent checker against the *mutated* program.
//!
//! The mutation is a self-assignment of a state variable inserted at the
//! top of the chosen handler: semantically a no-op (so every property
//! stays provable), but a new handler fingerprint (so the planner must
//! actually work — full reuse is only allowed where the dependency sets
//! justify it).

use std::sync::OnceLock;

use proptest::prelude::*;
use reflex_parser::parse_program;
use reflex_typeck::check;
use reflex_verify::{
    check_certificate, prove_all, reverify, reverify_jobs, Certificate, ProverOptions,
};

/// Every bundled kernel, with a state variable to self-assign.
const KERNELS: [(&str, &str, &str); 7] = [
    ("car", reflex_kernels::car::SOURCE, "crashed"),
    ("browser", reflex_kernels::browser::SOURCE, "tab_counter"),
    ("browser2", reflex_kernels::browser2::SOURCE, "tab_counter"),
    ("browser3", reflex_kernels::browser3::SOURCE, "tab_counter"),
    ("ssh", reflex_kernels::ssh::SOURCE, "attempts"),
    ("ssh2", reflex_kernels::ssh2::SOURCE, "auth_user"),
    ("webserver", reflex_kernels::webserver::SOURCE, "cur_user"),
];

/// Offsets of every handler's opening `{` in `source`.
fn handler_braces(source: &str) -> Vec<usize> {
    let mut braces = Vec::new();
    let mut pos = 0;
    while let Some(p) = source[pos..].find("\n  when ") {
        let at = pos + p;
        let brace = at + source[at..].find('{').expect("handler opens a block");
        braces.push(brace);
        pos = at + 1;
    }
    braces
}

/// Inserts `var = var;` as the first statement of the `idx`-th handler.
fn mutate_handler(source: &str, idx: usize, var: &str) -> String {
    let braces = handler_braces(source);
    let brace = braces[idx % braces.len()];
    let mut out = String::with_capacity(source.len() + var.len() * 2 + 16);
    out.push_str(&source[..=brace]);
    out.push_str(&format!("\n    {var} = {var};"));
    out.push_str(&source[brace + 1..]);
    out
}

/// One kernel's handler count and base-run certificates.
type BaseRun = (usize, Vec<(String, Certificate)>);

/// Base certificates per kernel, proved once and shared by every case.
fn base_certificates() -> &'static Vec<BaseRun> {
    static BASE: OnceLock<Vec<BaseRun>> = OnceLock::new();
    BASE.get_or_init(|| {
        let options = ProverOptions::default();
        KERNELS
            .iter()
            .map(|(name, source, _)| {
                let checked =
                    check(&parse_program(name, source).expect("kernel parses")).expect("checks");
                let certs: Vec<_> = prove_all(&checked, &options)
                    .into_iter()
                    .map(|(prop, o)| {
                        let cert = o
                            .certificate()
                            .unwrap_or_else(|| panic!("{name}/{prop}: bundled kernels all prove"));
                        (prop, cert.clone())
                    })
                    .collect();
                (handler_braces(source).len(), certs)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn random_handler_mutation_reverifies_byte_identically(seed in any::<u64>()) {
        let options = ProverOptions::default();
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for ((name, source, var), (handlers, previous)) in
            KERNELS.iter().zip(base_certificates())
        {
            let idx = (next() as usize) % handlers;
            let mutated = mutate_handler(source, idx, var);
            let new = check(&parse_program(name, &mutated).expect("mutation parses"))
                .expect("mutation type-checks");

            let report = reverify(previous, &new, &options).expect("well-formed previous");
            let scratch = prove_all(&new, &options);

            // Byte-identical to a from-scratch run, failures included.
            prop_assert_eq!(report.outcomes.len(), scratch.len());
            for ((n, o), (sn, so)) in report.outcomes.iter().zip(&scratch) {
                prop_assert_eq!(n, sn);
                prop_assert_eq!(o.is_proved(), so.is_proved(), "{}/{}", name, n);
                prop_assert_eq!(o.certificate(), so.certificate(), "{}/{}", name, n);
            }

            // Everything served from the previous run still satisfies the
            // independent checker against the mutated program.
            for prop in report.reused.iter().chain(&report.partial) {
                let (_, outcome) = report
                    .outcomes
                    .iter()
                    .find(|(n, _)| n == prop)
                    .expect("classified properties are reported");
                let cert = outcome.certificate().expect("reused implies proved");
                prop_assert!(
                    check_certificate(&new, cert, &options).is_ok(),
                    "{}/{}: reused certificate rejected by the checker",
                    name,
                    prop
                );
            }

            // Thread fan-out must not change a single byte.
            let parallel = reverify_jobs(previous, &new, &options, 8).expect("parallel");
            prop_assert_eq!(&report.reused, &parallel.reused, "{}", name);
            prop_assert_eq!(&report.partial, &parallel.partial, "{}", name);
            prop_assert_eq!(&report.reproved, &parallel.reproved, "{}", name);
            for ((n, o), (pn, po)) in report.outcomes.iter().zip(&parallel.outcomes) {
                prop_assert_eq!(n, pn);
                prop_assert_eq!(o.certificate(), po.certificate(), "{}/{}", name, n);
            }
        }
    }
}
