//! Focused tests for the bounded counterexample finder: one violation per
//! primitive kind, bound sensitivity, and minimality-ish sanity.

use reflex_parser::parse_program;
use reflex_typeck::{check, CheckedProgram};
use reflex_verify::{falsify, FalsifyOptions};

fn checked(src: &str) -> CheckedProgram {
    check(&parse_program("f", src).expect("parses")).expect("checks")
}

const BASE: &str = r#"
components {
  C "c.py" ();
  D "d.py" ();
}
messages {
  A(str);
  B(str);
}
init {
  c0 <- spawn C();
  d0 <- spawn D();
}
handlers {
  when C:A(s) {
    send(d0, A(s));
  }
  when C:B(s) {
    send(d0, B(s));
  }
}
properties {
  PROPS
}
"#;

fn with_props(props: &str) -> CheckedProgram {
    checked(&BASE.replace("  PROPS", props))
}

#[test]
fn violates_enables() {
    // B can be sent without A ever having happened.
    let c = with_props("  P: forall s: str.\n    [Send(D(), A(s))] Enables [Send(D(), B(s))];");
    let cx = falsify(&c, "P", &FalsifyOptions::default()).expect("violation");
    // Minimal-ish: one exchange (Select, Recv, Send) suffices.
    assert!(cx.trace.len() <= 6, "trace:\n{}", cx.trace);
    assert_eq!(cx.violation.kind, reflex_ast::TracePropKind::Enables);
}

#[test]
fn violates_disables() {
    let c = with_props("  P: forall s: str.\n    [Send(D(), A(s))] Disables [Send(D(), B(s))];");
    let cx = falsify(&c, "P", &FalsifyOptions::default()).expect("violation");
    assert_eq!(cx.violation.kind, reflex_ast::TracePropKind::Disables);
    // Needs an A-send followed by a B-send with the same payload.
    assert!(cx.trace.len() >= 6, "trace:\n{}", cx.trace);
}

#[test]
fn violates_immafter_and_ensures() {
    let c = with_props(
        "  P: forall s: str.\n    [Recv(C(), A(s))] ImmAfter [Send(D(), B(s))];\n  Q: forall s: str.\n    [Recv(C(), A(s))] Ensures [Send(D(), B(s))];",
    );
    for (name, kind) in [
        ("P", reflex_ast::TracePropKind::ImmAfter),
        ("Q", reflex_ast::TracePropKind::Ensures),
    ] {
        let cx = falsify(&c, name, &FalsifyOptions::default()).expect("violation");
        assert_eq!(cx.violation.kind, kind);
    }
}

#[test]
fn violates_immbefore() {
    let c = with_props("  P: forall s: str.\n    [Recv(C(), A(s))] ImmBefore [Send(D(), B(s))];");
    let cx = falsify(&c, "P", &FalsifyOptions::default()).expect("violation");
    assert_eq!(cx.violation.kind, reflex_ast::TracePropKind::ImmBefore);
}

#[test]
fn respects_exchange_bound() {
    // The only violation needs two exchanges; with max_exchanges = 1 the
    // search must come up empty.
    let c = with_props("  P: forall s: str.\n    [Send(D(), A(s))] Disables [Send(D(), B(s))];");
    let shallow = FalsifyOptions {
        max_exchanges: 1,
        ..FalsifyOptions::default()
    };
    assert!(falsify(&c, "P", &shallow).is_none());
    let deep = FalsifyOptions {
        max_exchanges: 2,
        ..FalsifyOptions::default()
    };
    assert!(falsify(&c, "P", &deep).is_some());
}

#[test]
fn counterexample_traces_are_real_behaviors() {
    // Any counterexample the falsifier reports must itself be a valid
    // trace (checked via the certified trace checker on the violation).
    let c = with_props("  P: forall s: str.\n    [Send(D(), A(s))] Enables [Send(D(), B(s))];");
    let cx = falsify(&c, "P", &FalsifyOptions::default()).expect("violation");
    let prop = c.program().property("P").expect("exists");
    let reflex_ast::PropBody::Trace(tp) = &prop.body else {
        panic!("trace prop")
    };
    // Re-checking the trace reproduces the violation.
    assert!(reflex_trace::check_trace(&cx.trace, tp).is_err());
    assert!(!cx.to_string().is_empty());
}

#[test]
fn true_properties_yield_no_counterexample() {
    let c = with_props("  P: forall s: str.\n    [Recv(C(), A(s))] Enables [Send(D(), A(s))];");
    assert!(falsify(&c, "P", &FalsifyOptions::default()).is_none());
}

#[test]
fn world_call_results_are_explored() {
    // The violation only occurs for a particular call result.
    let src = r#"
components {
  C "c.py" ();
}
messages {
  Go();
  Alarm();
}
init {
  c0 <- spawn C();
}
handlers {
  when C:Go() {
    r <- call oracle();
    if (r == "a") {
      send(c0, Alarm());
    }
  }
}
properties {
  NoAlarm:
    [Send(C(), Alarm())] Disables [Recv(C(), Go())];
}
"#;
    let c = checked(src);
    let cx = falsify(&c, "NoAlarm", &FalsifyOptions::default())
        .expect("the \"a\" world result triggers the alarm");
    assert!(cx
        .trace
        .iter_chrono()
        .any(|a| matches!(a, reflex_trace::Action::Call { .. })));
}
