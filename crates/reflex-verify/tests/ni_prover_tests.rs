//! Focused tests for the non-interference prover: each rule of the
//! `NIlo`/`NIhi` analysis, exercised positively and negatively.

use reflex_parser::parse_program;
use reflex_typeck::check;
use reflex_verify::{check_certificate, prove, ProverOptions};

fn outcome(src: &str, prop: &str) -> reflex_verify::Outcome {
    let checked = check(&parse_program("ni", src).expect("parses")).expect("checks");
    let options = ProverOptions::default();
    let o = prove(&checked, prop, &options).expect("exists");
    if let Some(cert) = o.certificate() {
        check_certificate(&checked, cert, &options).expect("certificate valid");
    }
    o
}

fn assert_ni_holds(src: &str, prop: &str) {
    let o = outcome(src, prop);
    assert!(o.is_proved(), "{prop} should hold: {:?}", o.failure());
}

fn assert_ni_fails(src: &str, prop: &str, expected_reason: &str) {
    let o = outcome(src, prop);
    let f = o.failure().unwrap_or_else(|| panic!("{prop} should fail"));
    assert!(
        f.reason.contains(expected_reason),
        "expected reason containing {expected_reason:?}, got: {f}"
    );
}

const BASE: &str = r#"
components {
  Hi "hi.py" ();
  Lo "lo.py" ();
  Peer "peer.py" (owner: str);
}
messages {
  Ping(str);
  Pong(str);
  Poke(num);
}
state {
  secret: str = "";
  public: num = 0;
}
init {
  H <- spawn Hi();
  L <- spawn Lo();
}
handlers {
  HANDLERS
}
properties {
  Isolated: noninterference {
    high components: Hi;
    high vars: secret;
  }
}
"#;

fn with_handlers(handlers: &str) -> String {
    BASE.replace("  HANDLERS", handlers)
}

#[test]
fn empty_handlers_are_trivially_noninterfering() {
    assert_ni_holds(&with_handlers(""), "Isolated");
}

#[test]
fn low_writes_to_low_vars_are_fine() {
    assert_ni_holds(
        &with_handlers(
            "  when Lo:Poke(n) {\n    public = public + n;\n    send(L, Pong(\"ok\"));\n  }",
        ),
        "Isolated",
    );
}

#[test]
fn low_writes_to_high_vars_are_rejected() {
    assert_ni_fails(
        &with_handlers("  when Lo:Ping(s) {\n    secret = s;\n  }"),
        "Isolated",
        "high state variable",
    );
}

#[test]
fn low_rewrite_of_high_var_with_same_value_is_fine() {
    // Semantically a no-op: the solver proves post == pre.
    assert_ni_holds(
        &with_handlers("  when Lo:Ping(s) {\n    secret = secret ++ \"\";\n  }"),
        "Isolated",
    );
}

#[test]
fn low_sends_to_high_are_rejected() {
    assert_ni_fails(
        &with_handlers("  when Lo:Ping(s) {\n    send(H, Ping(s));\n  }"),
        "Isolated",
        "possibly-high",
    );
}

#[test]
fn high_reads_of_low_vars_going_low_are_fine() {
    // A high handler may compute low outputs from low data.
    assert_ni_holds(
        &with_handlers(
            "  when Hi:Poke(n) {\n    if (public < n) {\n      send(L, Poke(n));\n    }\n  }",
        ),
        "Isolated",
    );
}

#[test]
fn high_branching_to_high_output_on_low_var_is_rejected() {
    assert_ni_fails(
        &with_handlers(
            "  when Hi:Poke(n) {\n    if (public < n) {\n      send(H, Poke(n));\n    }\n  }",
        ),
        "Isolated",
        "low-influenced",
    );
}

#[test]
fn high_outputs_from_high_data_are_fine() {
    assert_ni_holds(
        &with_handlers(
            "  when Hi:Ping(s) {\n    secret = s;\n    if (secret == s) {\n      send(H, Pong(secret));\n    }\n  }",
        ),
        "Isolated",
    );
}

#[test]
fn high_output_of_low_data_is_rejected() {
    // Payload computed from a low variable flowing to a high component.
    assert_ni_fails(
        &with_handlers("  when Hi:Poke(n) {\n    send(H, Poke(public));\n  }"),
        "Isolated",
        "low-influenced payload",
    );
}

#[test]
fn world_calls_in_high_handlers_are_permitted() {
    // The paper explicitly permits interference through channels outside
    // the kernel (§4.2): call arguments may carry anything, and call
    // results are part of the shared non-deterministic context.
    assert_ni_holds(
        &with_handlers(
            "  when Hi:Poke(n) {\n    r <- call log(public);\n    send(H, Pong(r));\n  }",
        ),
        "Isolated",
    );
}

#[test]
fn quantified_labeling_discriminates_by_config() {
    // Peers are high exactly when owned by ?u.
    let src = r#"
components {
  Peer "peer.py" (owner: str);
}
messages {
  Note(str);
}
init {
}
handlers {
  when Peer:Note(s) {
    lookup Peer(p : p.owner == sender.owner) {
      send(p, Note(s));
    }
  }
}
properties {
  PerOwner: forall u: str. noninterference {
    high components: Peer(u);
    high vars: ;
  }
}
"#;
    assert_ni_holds(src, "PerOwner");

    // Routing to a *fixed* other peer breaks the quantified isolation.
    let bad = src.replace(
        "lookup Peer(p : p.owner == sender.owner) {",
        "lookup Peer(p : p.owner == \"admin\") {",
    );
    assert_ni_fails(&bad, "PerOwner", "possibly-high");
}

#[test]
fn high_spawns_with_agreed_config_are_fine() {
    let src = r#"
components {
  Boss "boss.py" ();
  Worker "worker.py" (team: str);
}
messages {
  Hire(str);
}
init {
  B <- spawn Boss();
}
handlers {
  when Boss:Hire(team) {
    w <- spawn Worker(team);
    send(w, Hire(team));
  }
}
properties {
  TeamNI: forall t: str. noninterference {
    high components: Boss, Worker(t);
    high vars: ;
  }
}
"#;
    assert_ni_holds(src, "TeamNI");
}

#[test]
fn high_spawns_with_low_config_are_rejected() {
    let src = r#"
components {
  Boss "boss.py" ();
  Worker "worker.py" (team: str);
}
messages {
  Hire(str);
}
state {
  last_team: str = "";
}
init {
  B <- spawn Boss();
}
handlers {
  when Worker:Hire(team) {
    last_team = team;
  }
  when Boss:Hire(team) {
    w <- spawn Worker(last_team);
  }
}
properties {
  TeamNI: forall t: str. noninterference {
    high components: Boss, Worker(t);
    high vars: ;
  }
}
"#;
    // `last_team` is written by Worker handlers; low workers make it
    // low-influenced, and the Boss (high) spawns a possibly-high Worker
    // from it.
    assert_ni_fails(src, "TeamNI", "low-influenced");
}
