//! Integration tests for the on-disk proof store: the file layer must
//! round-trip certificates across store instances (i.e. across
//! processes), shrug off corrupt or stale entries as cache misses, and
//! produce bit-identical directories regardless of thread fan-out.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use reflex_parser::parse_program;
use reflex_typeck::{check, CheckedProgram};
use reflex_verify::{verify_with_store, ProofStore, ProverOptions};

fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rx-store-test-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn checked(name: &str, source: &str) -> CheckedProgram {
    check(&parse_program(name, source).expect("parses")).expect("checks")
}

/// Every `.cert` entry file in the store directory.
fn cert_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = fs::read_dir(dir)
        .expect("store directory exists")
        .map(|e| e.expect("readable entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "cert"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "store has certificate entries");
    files
}

/// `file name -> bytes` for the whole store directory.
fn snapshot(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    fs::read_dir(dir)
        .expect("store directory exists")
        .map(|e| {
            let path = e.expect("readable entry").path();
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .expect("utf-8 file name")
                .to_owned();
            (name, fs::read(&path).expect("readable file"))
        })
        .collect()
}

#[test]
fn certificates_survive_process_boundaries() {
    let dir = temp_store("roundtrip");
    let options = ProverOptions::default();
    let program = checked("ssh", reflex_kernels::ssh::SOURCE);

    // First "process": everything proves from scratch and is saved.
    let first = {
        let store = ProofStore::open(&dir).expect("store opens");
        let sr = verify_with_store(&program, &options, &store, 1).expect("verifies");
        assert_eq!(sr.loaded, 0, "a fresh store has nothing to serve");
        assert!(sr.saved > 0, "proved certificates are persisted");
        assert_eq!(sr.report.reproved.len(), program.program().properties.len());
        sr.report.outcomes
    };

    // Second "process": a brand-new store instance over the same
    // directory serves every certificate, and each one is re-validated
    // and byte-identical to the first run's.
    let store = ProofStore::open(&dir).expect("store re-opens");
    let sr = verify_with_store(&program, &options, &store, 1).expect("verifies");
    assert_eq!(sr.loaded, program.program().properties.len());
    assert_eq!(sr.report.reused.len(), program.program().properties.len());
    assert!(sr.report.reproved.is_empty());
    for ((n1, o1), (n2, o2)) in first.iter().zip(&sr.report.outcomes) {
        assert_eq!(n1, n2);
        assert_eq!(
            o1.certificate(),
            o2.certificate(),
            "{n1}: store round-trip must be byte-identical"
        );
        assert!(o2.is_proved(), "{n1}");
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn version_mismatch_degrades_to_a_miss() {
    let dir = temp_store("version");
    let options = ProverOptions::default();
    let program = checked("ssh", reflex_kernels::ssh::SOURCE);
    {
        let store = ProofStore::open(&dir).expect("store opens");
        verify_with_store(&program, &options, &store, 1).expect("verifies");
    }
    // Bump the format version byte of every entry (frame layout: 4 bytes
    // magic, then the version as u32 LE).
    for path in cert_files(&dir) {
        let mut bytes = fs::read(&path).expect("readable entry");
        bytes[4] ^= 0x01;
        fs::write(&path, &bytes).expect("writable entry");
    }
    let store = ProofStore::open(&dir).expect("store re-opens");
    let sr = verify_with_store(&program, &options, &store, 1).expect("still verifies");
    assert_eq!(sr.loaded, 0, "future-version entries must read as misses");
    assert_eq!(sr.report.reproved.len(), program.program().properties.len());
    assert!(sr.report.outcomes.iter().all(|(_, o)| o.is_proved()));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn truncated_and_corrupted_entries_degrade_to_misses() {
    let dir = temp_store("corrupt");
    let options = ProverOptions::default();
    let program = checked("browser", reflex_kernels::browser::SOURCE);
    {
        let store = ProofStore::open(&dir).expect("store opens");
        verify_with_store(&program, &options, &store, 1).expect("verifies");
    }
    // Mangle each entry a different way: truncate to half, truncate to
    // zero, flip a payload byte — round-robin over the entries.
    for (i, path) in cert_files(&dir).into_iter().enumerate() {
        let mut bytes = fs::read(&path).expect("readable entry");
        match i % 3 {
            0 => bytes.truncate(bytes.len() / 2),
            1 => bytes.clear(),
            _ => *bytes.last_mut().expect("non-empty entry") ^= 0xFF,
        }
        fs::write(&path, &bytes).expect("writable entry");
    }
    let store = ProofStore::open(&dir).expect("store re-opens");
    let sr = verify_with_store(&program, &options, &store, 1).expect("still verifies");
    assert_eq!(sr.loaded, 0, "mangled entries must read as misses");
    assert_eq!(sr.report.reproved.len(), program.program().properties.len());
    assert!(sr.report.outcomes.iter().all(|(_, o)| o.is_proved()));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn parallel_and_serial_stores_are_bit_identical() {
    let options = ProverOptions::default();
    let base = checked("browser", reflex_kernels::browser::SOURCE);
    let edited_src = reflex_kernels::browser::SOURCE.replace(
        "    if (host == sender.domain) {",
        "    if (host == sender.domain && host != \"\") {",
    );
    assert_ne!(edited_src, reflex_kernels::browser::SOURCE);
    let edited = checked("browser", &edited_src);

    // The same prime-then-edit session, serial and with 8 workers.
    let mut snapshots = Vec::new();
    for (tag, jobs) in [("serial", 1), ("jobs8", 8)] {
        let dir = temp_store(tag);
        let store = ProofStore::open(&dir).expect("store opens");
        verify_with_store(&base, &options, &store, jobs).expect("prime verifies");
        let sr = verify_with_store(&edited, &options, &store, jobs).expect("edit verifies");
        assert!(sr.loaded > 0, "{tag}: the edit run uses stored proofs");
        let contents = snapshot(&dir);
        snapshots.push((dir, contents));
    }
    let (serial, parallel) = (&snapshots[0].1, &snapshots[1].1);
    assert_eq!(
        serial.keys().collect::<Vec<_>>(),
        parallel.keys().collect::<Vec<_>>(),
        "same entry set regardless of thread fan-out"
    );
    for (name, bytes) in serial {
        assert_eq!(
            Some(bytes),
            parallel.get(name),
            "{name}: store contents must be bit-identical across jobs counts"
        );
    }
    for (dir, _) in &snapshots {
        let _ = fs::remove_dir_all(dir);
    }
}
