//! Integration tests for the on-disk proof store: the file layer must
//! round-trip certificates across store instances (i.e. across
//! processes), shrug off corrupt or stale entries as cache misses, and
//! produce bit-identical directories regardless of thread fan-out.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use reflex_parser::parse_program;
use reflex_typeck::{check, CheckedProgram};
use reflex_verify::{verify_with_store, ProofStore, ProverOptions};

fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rx-store-test-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn checked(name: &str, source: &str) -> CheckedProgram {
    check(&parse_program(name, source).expect("parses")).expect("checks")
}

/// Every segment log file across the store's shard directories.
fn segment_files(dir: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    for entry in fs::read_dir(dir).expect("store directory exists") {
        let path = entry.expect("readable entry").path();
        let shard = path
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.starts_with("shard-"));
        if path.is_dir() && shard {
            for seg in fs::read_dir(&path).expect("readable shard") {
                let seg = seg.expect("readable entry").path();
                if seg.extension().is_some_and(|e| e == "log") {
                    files.push(seg);
                }
            }
        }
    }
    files.sort();
    assert!(!files.is_empty(), "store has segment files");
    files
}

/// `relative path -> bytes` for the whole store tree (shards included).
fn snapshot(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    fn walk(root: &Path, dir: &Path, out: &mut BTreeMap<String, Vec<u8>>) {
        for entry in fs::read_dir(dir).expect("store directory exists") {
            let path = entry.expect("readable entry").path();
            if path.is_dir() {
                walk(root, &path, out);
            } else {
                let rel = path
                    .strip_prefix(root)
                    .expect("under root")
                    .to_str()
                    .expect("utf-8 path")
                    .to_owned();
                out.insert(rel, fs::read(&path).expect("readable file"));
            }
        }
    }
    let mut out = BTreeMap::new();
    walk(dir, dir, &mut out);
    out
}

#[test]
fn certificates_survive_process_boundaries() {
    let dir = temp_store("roundtrip");
    let options = ProverOptions::default();
    let program = checked("ssh", reflex_kernels::ssh::SOURCE);

    // First "process": everything proves from scratch and is saved.
    let first = {
        let store = ProofStore::open(&dir).expect("store opens");
        let sr = verify_with_store(&program, &options, &store, 1).expect("verifies");
        assert_eq!(sr.loaded, 0, "a fresh store has nothing to serve");
        assert!(sr.saved > 0, "proved certificates are persisted");
        assert_eq!(sr.report.reproved.len(), program.program().properties.len());
        sr.report.outcomes
    };

    // Second "process": a brand-new store instance over the same
    // directory serves every certificate, and each one is re-validated
    // and byte-identical to the first run's.
    let store = ProofStore::open(&dir).expect("store re-opens");
    let sr = verify_with_store(&program, &options, &store, 1).expect("verifies");
    assert_eq!(sr.loaded, program.program().properties.len());
    assert_eq!(sr.report.reused.len(), program.program().properties.len());
    assert!(sr.report.reproved.is_empty());
    for ((n1, o1), (n2, o2)) in first.iter().zip(&sr.report.outcomes) {
        assert_eq!(n1, n2);
        assert_eq!(
            o1.certificate(),
            o2.certificate(),
            "{n1}: store round-trip must be byte-identical"
        );
        assert!(o2.is_proved(), "{n1}");
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn version_mismatch_degrades_to_a_miss() {
    let dir = temp_store("version");
    let options = ProverOptions::default();
    let program = checked("ssh", reflex_kernels::ssh::SOURCE);
    {
        let store = ProofStore::open(&dir).expect("store opens");
        verify_with_store(&program, &options, &store, 1).expect("verifies");
    }
    // Bump the format version byte of every segment's first frame (frame
    // layout: 4 bytes magic, then the version as u32 LE). The open-time
    // scan stops at the first invalid frame, darkening the whole segment.
    for path in segment_files(&dir) {
        let mut bytes = fs::read(&path).expect("readable segment");
        bytes[4] ^= 0x01;
        fs::write(&path, &bytes).expect("writable segment");
    }
    let store = ProofStore::open(&dir).expect("store re-opens");
    let sr = verify_with_store(&program, &options, &store, 1).expect("still verifies");
    assert_eq!(sr.loaded, 0, "future-version entries must read as misses");
    assert_eq!(sr.report.reproved.len(), program.program().properties.len());
    assert!(sr.report.outcomes.iter().all(|(_, o)| o.is_proved()));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn truncated_and_corrupted_entries_degrade_to_misses() {
    let dir = temp_store("corrupt");
    let options = ProverOptions::default();
    let program = checked("browser", reflex_kernels::browser::SOURCE);
    {
        let store = ProofStore::open(&dir).expect("store opens");
        verify_with_store(&program, &options, &store, 1).expect("verifies");
    }
    // Mangle each segment a different way, always hitting the *first*
    // frame so the scan finds nothing live: truncate mid-header, truncate
    // to zero, flip the first payload byte — round-robin over segments.
    for (i, path) in segment_files(&dir).into_iter().enumerate() {
        let mut bytes = fs::read(&path).expect("readable segment");
        match i % 3 {
            0 => bytes.truncate(22),
            1 => bytes.clear(),
            _ => bytes[44] ^= 0xFF,
        }
        fs::write(&path, &bytes).expect("writable segment");
    }
    let store = ProofStore::open(&dir).expect("store re-opens");
    let sr = verify_with_store(&program, &options, &store, 1).expect("still verifies");
    assert_eq!(sr.loaded, 0, "mangled entries must read as misses");
    assert_eq!(sr.report.reproved.len(), program.program().properties.len());
    assert!(sr.report.outcomes.iter().all(|(_, o)| o.is_proved()));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn parallel_and_serial_stores_are_bit_identical() {
    let options = ProverOptions::default();
    let base = checked("browser", reflex_kernels::browser::SOURCE);
    let edited_src = reflex_kernels::browser::SOURCE.replace(
        "    if (host == sender.domain) {",
        "    if (host == sender.domain && host != \"\") {",
    );
    assert_ne!(edited_src, reflex_kernels::browser::SOURCE);
    let edited = checked("browser", &edited_src);

    // The same prime-then-edit session, serial and with 8 workers.
    let mut snapshots = Vec::new();
    for (tag, jobs) in [("serial", 1), ("jobs8", 8)] {
        let dir = temp_store(tag);
        let store = ProofStore::open(&dir).expect("store opens");
        verify_with_store(&base, &options, &store, jobs).expect("prime verifies");
        let sr = verify_with_store(&edited, &options, &store, jobs).expect("edit verifies");
        assert!(sr.loaded > 0, "{tag}: the edit run uses stored proofs");
        let contents = snapshot(&dir);
        snapshots.push((dir, contents));
    }
    let (serial, parallel) = (&snapshots[0].1, &snapshots[1].1);
    assert_eq!(
        serial.keys().collect::<Vec<_>>(),
        parallel.keys().collect::<Vec<_>>(),
        "same entry set regardless of thread fan-out"
    );
    for (name, bytes) in serial {
        assert_eq!(
            Some(bytes),
            parallel.get(name),
            "{name}: store contents must be bit-identical across jobs counts"
        );
    }
    for (dir, _) in &snapshots {
        let _ = fs::remove_dir_all(dir);
    }
}

#[test]
fn flat_stores_read_transparently_and_migrate_into_segments() {
    let dir = temp_store("migrate");
    let options = ProverOptions::default();
    let program = checked("ssh", reflex_kernels::ssh::SOURCE);
    let props = program.program().properties.len();
    let fps = program.fingerprints();
    let opts_fp = options.fingerprint();

    // A "legacy" store: one flat `.cert` file per certificate, written in
    // the pre-segment format.
    let outcomes = reflex_verify::prove_all(&program, &options);
    {
        let store = ProofStore::open(&dir).expect("store opens");
        for (name, outcome) in &outcomes {
            let cert = outcome.certificate().expect("ssh proves");
            let pfp = fps.property(name).expect("known property");
            store
                .write_flat_entry(fps.program, pfp, opts_fp, cert)
                .expect("flat write");
        }
    }
    let flat_names: Vec<PathBuf> = fs::read_dir(&dir)
        .expect("store dir")
        .map(|e| e.expect("entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "cert"))
        .collect();
    assert_eq!(flat_names.len(), props, "legacy layout on disk");

    // Transparent reads: a fresh open indexes the flat entries and serves
    // every certificate without rewriting anything.
    let store = ProofStore::open(&dir).expect("store re-opens");
    let stat = store.stat().expect("stat");
    assert_eq!(stat.flat_entries, props);
    assert_eq!(stat.entries, 0);
    let sr = verify_with_store(&program, &options, &store, 1).expect("verifies");
    assert_eq!(sr.loaded, props, "flat entries are served transparently");
    assert_eq!(sr.report.reused.len(), props);

    // Migration rewrites them into segments and removes the flat files;
    // the live set is unchanged key-for-key and byte-for-byte.
    let before = store.entries();
    let report = store.migrate().expect("migrates");
    assert_eq!(report.migrated, props, "every flat entry moved");
    assert!(report.quarantined.is_empty(), "nothing was corrupt");
    assert_eq!(store.entries(), before, "live set unchanged by migration");
    for path in &flat_names {
        assert!(!path.exists(), "{}: flat entry swept", path.display());
    }
    let stat = store.stat().expect("stat after migrate");
    assert_eq!(stat.flat_entries, 0);
    assert_eq!(stat.entries, props);
    assert!(stat.segments >= 1, "live entries now live in segments");

    // And a from-scratch open over the migrated layout still serves all.
    let store = ProofStore::open(&dir).expect("store re-opens post-migration");
    let sr = verify_with_store(&program, &options, &store, 1).expect("verifies");
    assert_eq!(sr.loaded, props, "migrated entries serve on reopen");
    assert_eq!(sr.report.reused.len(), props);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn compaction_drops_superseded_frames_and_keeps_the_live_set() {
    let dir = temp_store("compact");
    let options = ProverOptions::default();
    let base = checked("browser", reflex_kernels::browser::SOURCE);
    let edited_src = reflex_kernels::browser::SOURCE.replace(
        "    if (host == sender.domain) {",
        "    if (host == sender.domain && host != \"\") {",
    );
    let edited = checked("browser", &edited_src);

    let store = ProofStore::open(&dir).expect("store opens");
    verify_with_store(&base, &options, &store, 1).expect("prime");
    verify_with_store(&edited, &options, &store, 1).expect("edit");

    let before = store.entries();
    let loaded_before = {
        let sr = verify_with_store(&edited, &options, &store, 1).expect("warm");
        sr.loaded
    };
    let report = store.compact(Some((&edited, &options))).expect("compacts");
    assert!(report.quarantined.is_empty(), "nothing was corrupt");
    assert_eq!(report.checker_rejected, 0);
    assert_eq!(store.entries(), before, "compaction preserves the live set");

    // Reopen: the compacted layout serves exactly what it served before.
    let store = ProofStore::open(&dir).expect("store re-opens");
    assert_eq!(store.entries(), before);
    let sr = verify_with_store(&edited, &options, &store, 1).expect("verifies");
    assert_eq!(sr.loaded, loaded_before);
    assert_eq!(sr.report.reused.len(), edited.program().properties.len());
    let _ = fs::remove_dir_all(&dir);
}
