//! Adversarial certificate checking: every structural element of a
//! certificate is individually corrupted and the checker must reject it.
//! This is the "Coq kernel" property of the reproduction — nothing the
//! (untrusted) search produces is accepted without re-derivation.

use reflex_parser::parse_program;
use reflex_typeck::{check, CheckedProgram};
use reflex_verify::certificate::{Certificate, InvPathJust, Justification, NegPrior};
use reflex_verify::{check_certificate, prove, ProverOptions};

fn proved(src: &str, prop: &str) -> (CheckedProgram, Certificate) {
    let checked = check(&parse_program("t", src).expect("parses")).expect("checks");
    let options = ProverOptions::default();
    let outcome = prove(&checked, prop, &options).expect("exists");
    let cert = outcome
        .certificate()
        .unwrap_or_else(|| panic!("{prop} should verify: {:?}", outcome.failure()))
        .clone();
    check_certificate(&checked, &cert, &options).expect("original is valid");
    (checked, cert)
}

fn assert_rejected(checked: &CheckedProgram, cert: &Certificate, what: &str) {
    let err = check_certificate(checked, cert, &ProverOptions::default());
    assert!(err.is_err(), "tampered certificate accepted: {what}");
}

const SSH: &str = r#"
components {
  Client "c.py" ();
  Pass "p.py" ();
  Term "t.py" ();
}
messages {
  Auth(str);
  Ok(str);
  Pty(str);
}
state {
  user: str = "";
  ok: bool = false;
}
init {
  C <- spawn Client();
  P <- spawn Pass();
  T <- spawn Term();
}
handlers {
  when Pass:Ok(u) {
    user = u;
    ok = true;
  }
  when Client:Pty(u) {
    if (ok && u == user) {
      send(T, Pty(u));
    }
  }
}
properties {
  AuthFirst: forall u: str.
    [Recv(Pass(), Ok(u))] Enables [Send(Term(), Pty(u))];
}
"#;

#[test]
fn invariant_justification_tampering_is_rejected() {
    let (checked, cert) = proved(SSH, "AuthFirst");
    let Certificate::Trace(t) = &cert else {
        panic!("trace cert")
    };
    assert!(!t.invariants.is_empty(), "proof should need an invariant");

    // 1. Point an obligation at a non-existent invariant.
    {
        let mut t = t.clone();
        for case in &mut t.cases {
            for path in &mut case.paths {
                for (_, just) in &mut path.obligations {
                    if let Justification::Invariant { inv_id } = just {
                        *inv_id = 999;
                    }
                }
            }
        }
        assert_rejected(&checked, &Certificate::Trace(t), "dangling invariant id");
    }

    // 2. Flip the invariant's polarity.
    {
        let mut t = t.clone();
        t.invariants[0].positive = !t.invariants[0].positive;
        assert_rejected(&checked, &Certificate::Trace(t), "flipped polarity");
    }

    // 3. Replace an invariant step justification with `GuardUnsat` where
    //    the guard is actually satisfiable.
    {
        let mut t = t.clone();
        let mut tampered = false;
        for inv in &mut t.invariants {
            for case in &mut inv.cases {
                for just in &mut case.paths {
                    if matches!(just, InvPathJust::Witness { .. } | InvPathJust::Preserved) {
                        *just = InvPathJust::GuardUnsat;
                        tampered = true;
                    }
                }
            }
        }
        if tampered {
            assert_rejected(&checked, &Certificate::Trace(t), "bogus GuardUnsat");
        }
    }

    // 4. Claim `Preserved` where the prover had a fresh-witness step.
    {
        let mut t = t.clone();
        let mut tampered = false;
        for inv in &mut t.invariants {
            for case in &mut inv.cases {
                for just in &mut case.paths {
                    if matches!(just, InvPathJust::Witness { .. }) {
                        *just = InvPathJust::Preserved;
                        tampered = true;
                    }
                }
            }
        }
        if tampered {
            assert_rejected(&checked, &Certificate::Trace(t), "bogus Preserved");
        }
    }

    // 5. Mark a case skipped that the skip check does not justify.
    {
        let mut t = t.clone();
        let mut tampered = false;
        for inv in &mut t.invariants {
            for case in &mut inv.cases {
                if !case.skipped && !case.paths.is_empty() {
                    case.skipped = true;
                    case.paths.clear();
                    tampered = true;
                    break;
                }
            }
            if tampered {
                break;
            }
        }
        if tampered {
            assert_rejected(&checked, &Certificate::Trace(t), "unjustified inv skip");
        }
    }
}

#[test]
fn witness_index_tampering_is_rejected() {
    let (checked, cert) = proved(SSH, "AuthFirst");
    let Certificate::Trace(t) = &cert else {
        panic!("trace cert")
    };
    let mut t = t.clone();
    let mut tampered = false;
    for case in &mut t.cases {
        for path in &mut case.paths {
            for (idx, just) in &mut path.obligations {
                if let Justification::Witness { index } = just {
                    *index = *idx + 1; // illegal position for Enables
                    tampered = true;
                }
            }
        }
    }
    if tampered {
        assert_rejected(&checked, &Certificate::Trace(t), "witness after trigger");
    }
}

const UNIQ: &str = r#"
components {
  Boss "b.py" ();
  Worker "w.py" (name: str);
}
messages {
  Hire(str);
}
init {
  B <- spawn Boss();
}
handlers {
  when Boss:Hire(n) {
    lookup Worker(w : w.name == n) {
    } else {
      x <- spawn Worker(n);
    }
  }
}
properties {
  NoDuplicates: forall n: str.
    [Spawn(Worker(n))] Disables [Spawn(Worker(n))];
}
"#;

#[test]
fn missed_lookup_tampering_is_rejected() {
    let (checked, cert) = proved(UNIQ, "NoDuplicates");
    let Certificate::Trace(t) = &cert else {
        panic!("trace cert")
    };
    // The proof must have used the missed-lookup mechanism somewhere.
    let uses_ml = t
        .cases
        .iter()
        .flat_map(|c| c.paths.iter())
        .flat_map(|p| p.obligations.iter())
        .any(|(_, j)| {
            matches!(
                j,
                Justification::NoMatch {
                    prior: NegPrior::MissedLookup { .. }
                }
            )
        });
    assert!(uses_ml, "expected a missed-lookup justification");

    // Dangling lookup index.
    let mut bad = t.clone();
    for case in &mut bad.cases {
        for path in &mut case.paths {
            for (_, just) in &mut path.obligations {
                if let Justification::NoMatch {
                    prior: NegPrior::MissedLookup { lookup_index },
                } = just
                {
                    *lookup_index = 42;
                }
            }
        }
    }
    assert_rejected(&checked, &Certificate::Trace(bad), "dangling lookup index");

    // Claim EmptyTrace in an inductive case.
    let mut bad = t.clone();
    for case in &mut bad.cases {
        for path in &mut case.paths {
            for (_, just) in &mut path.obligations {
                if let Justification::NoMatch { prior } = just {
                    *prior = NegPrior::EmptyTrace;
                }
            }
        }
    }
    assert_rejected(&checked, &Certificate::Trace(bad), "EmptyTrace in step");
}

const ORIGIN: &str = r#"
components {
  Acl "a.py" ();
  Client "c.py" (user: str);
}
messages {
  Yes(str);
  Req(str);
  Check(str, str);
}
init {
  A <- spawn Acl();
}
handlers {
  when Acl:Yes(u) {
    lookup Client(c : c.user == u) {
    } else {
      n <- spawn Client(u);
    }
  }
  when Client:Req(path) {
    send(A, Check(sender.user, path));
  }
}
properties {
  OnlyLoggedIn: forall u: str.
    [Recv(Acl(), Yes(u))] Enables [Send(Acl(), Check(u, _))];
}
"#;

#[test]
fn lemma_tampering_is_rejected() {
    let (checked, cert) = proved(ORIGIN, "OnlyLoggedIn");
    let Certificate::Trace(t) = &cert else {
        panic!("trace cert")
    };
    assert!(
        !t.lemmas.is_empty(),
        "proof should use a component-origin lemma"
    );

    // 1. Drop the lemmas.
    {
        let mut bad = t.clone();
        bad.lemmas.clear();
        assert_rejected(&checked, &Certificate::Trace(bad), "dropped lemmas");
    }

    // 2. Swap the lemma's enabling pattern for something weaker.
    {
        let mut bad = t.clone();
        bad.lemmas[0].a = bad.lemmas[0].b.clone(); // "spawn enables spawn"
        assert_rejected(&checked, &Certificate::Trace(bad), "weakened lemma");
    }

    // 3. Point the origin justification at a dangling lemma.
    {
        let mut bad = t.clone();
        for case in &mut bad.cases {
            for path in &mut case.paths {
                for (_, just) in &mut path.obligations {
                    if let Justification::ViaCompOrigin {
                        lemma_id: Some(id), ..
                    } = just
                    {
                        *id = 7;
                    }
                }
            }
        }
        assert_rejected(&checked, &Certificate::Trace(bad), "dangling lemma id");
    }

    // 4. Claim a direct (lemma-less) origin discharge that does not hold.
    {
        let mut bad = t.clone();
        let mut tampered = false;
        for case in &mut bad.cases {
            for path in &mut case.paths {
                for (_, just) in &mut path.obligations {
                    if let Justification::ViaCompOrigin { lemma_id, .. } = just {
                        if lemma_id.is_some() {
                            *lemma_id = None;
                            tampered = true;
                        }
                    }
                }
            }
        }
        if tampered {
            assert_rejected(&checked, &Certificate::Trace(bad), "bogus direct origin");
        }
    }
}

#[test]
fn ni_certificate_tampering_is_rejected() {
    let src = r#"
components {
  Hi "h.py" ();
  Lo "l.py" ();
}
messages { M(str); }
state { s: str = ""; }
init {
  H <- spawn Hi();
  L <- spawn Lo();
}
handlers {
  when Hi:M(x) { s = x; }
}
properties {
  NI: noninterference { high components: Hi; high vars: s; }
}
"#;
    let (checked, cert) = proved(src, "NI");
    let Certificate::NonInterference(n) = &cert else {
        panic!("NI cert")
    };
    let mut bad = n.clone();
    bad.cases.pop();
    assert_rejected(
        &checked,
        &Certificate::NonInterference(bad),
        "dropped NI case",
    );
}
