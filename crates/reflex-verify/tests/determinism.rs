//! Scheduler-determinism tests: serial and `--jobs 8` runs must produce
//! byte-identical outcomes and certificates, on the Figure-6 kernels and
//! on generated kernels (several seeds), as promised by the obligation
//! scheduler's design (DESIGN.md §6.9). The CI `scale` job re-checks the
//! same property end-to-end through the `rx` binary.

use reflex_verify::{prove_all, prove_all_parallel, ProverOptions};

fn options() -> ProverOptions {
    ProverOptions {
        shared_cache: true,
        ..ProverOptions::default()
    }
}

/// Asserts serial and 8-way runs agree outcome-for-outcome on `checked`.
fn assert_jobs_invariant(name: &str, checked: &reflex_typeck::CheckedProgram) {
    let options = options();
    let serial = prove_all(checked, &options);
    let parallel = prove_all_parallel(checked, &options, 8);
    assert_eq!(
        serial.len(),
        parallel.len(),
        "{name}: run shapes must match"
    );
    for ((sn, so), (pn, po)) in serial.iter().zip(&parallel) {
        assert_eq!(sn, pn, "{name}: property order must match");
        assert_eq!(
            so.is_proved(),
            po.is_proved(),
            "{name}/{sn}: verdict must not depend on the job count"
        );
        assert_eq!(
            so.certificate(),
            po.certificate(),
            "{name}/{sn}: certificates must be identical under any job count"
        );
    }
}

#[test]
fn fig6_kernels_are_certificate_identical_serial_vs_parallel() {
    for bench in reflex_kernels::all_benchmarks() {
        assert_jobs_invariant(bench.name, &(bench.checked)());
    }
}

#[test]
fn generated_kernels_are_certificate_identical_serial_vs_parallel() {
    for seed in [1, 7, 42] {
        let config =
            reflex_kernels::synth::SynthConfig::preset("small", seed).expect("small preset exists");
        let kernel = reflex_kernels::synth::generate(&config);
        assert_jobs_invariant(&kernel.name, &kernel.checked());
    }
}

#[test]
fn generated_kernel_variants_stay_deterministic() {
    // The chaos harness replays variants as watch-session edits; each
    // variant must itself be schedulable deterministically.
    let config =
        reflex_kernels::synth::SynthConfig::preset("small", 3).expect("small preset exists");
    for variant in [1, 4] {
        let kernel = reflex_kernels::synth::generate_variant(&config, variant);
        assert_jobs_invariant(&kernel.name, &kernel.checked());
    }
}
