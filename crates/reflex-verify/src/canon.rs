//! Canonical symbolic variables and state guards.
//!
//! Auxiliary invariants (the "secondary induction" of §5.1) must be stated
//! independently of any particular symbolic-evaluation context: each
//! context allocates its own fresh variables for pre-state values. Guards
//! are therefore expressed over *canonical* symbols — id `0`, distinguished
//! purely by their [`SymKind`] payload — and instantiated into a context by
//! leaf rewriting.

use std::collections::BTreeMap;

use reflex_ast::Ty;
use reflex_symbolic::{SymKind, SymState, SymVar, Term};

/// The canonical symbol denoting the current value of state variable
/// `name`.
pub fn state_sym(name: &str, ty: Ty) -> SymVar {
    SymVar {
        id: 0,
        ty,
        kind: SymKind::StateVar(name.to_owned()),
    }
}

/// The canonical symbol denoting universally quantified property variable
/// `name`.
pub fn prop_sym(name: &str, ty: Ty) -> SymVar {
    SymVar {
        id: 0,
        ty,
        kind: SymKind::PropVar(name.to_owned()),
    }
}

/// The canonical term for property variable `name`.
pub fn prop_term(name: &str, ty: Ty) -> Term {
    Term::Sym(prop_sym(name, ty))
}

/// A guard: a conjunction of boolean literals over canonical state
/// variables and canonical property variables.
///
/// `Guard { atoms }` denotes `⋀ (term == polarity)`. Guards are the
/// hypotheses of auxiliary invariants: "whenever the kernel state satisfies
/// this guard, the trace contains / does not contain an action matching the
/// pattern".
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Guard {
    /// The literals, in canonical (sorted, deduplicated) order.
    pub atoms: Vec<(Term, bool)>,
}

impl Guard {
    /// Creates a guard, sorting and deduplicating the literals.
    pub fn new(mut atoms: Vec<(Term, bool)>) -> Guard {
        atoms.sort();
        atoms.dedup();
        Guard { atoms }
    }

    /// The trivially true guard.
    pub fn is_trivial(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Instantiates the guard at a symbolic state: canonical state symbols
    /// become the state's value terms; canonical property variables are
    /// left as-is (they are globally shared across contexts).
    pub fn instantiate(&self, state: &SymState) -> Vec<(Term, bool)> {
        self.atoms
            .iter()
            .map(|(t, pol)| {
                let inst = t.rewrite_leaves(&|leaf| match leaf {
                    Term::Sym(SymVar {
                        kind: SymKind::StateVar(name),
                        ..
                    }) => state.data.get(name).cloned(),
                    _ => None,
                });
                (inst, *pol)
            })
            .collect()
    }

    /// Instantiates the guard with both a state (for canonical state
    /// symbols) and a binding for property variables. Used by the
    /// certificate checker to verify that an invariant applies to a
    /// specific obligation.
    pub fn instantiate_with(
        &self,
        state: &SymState,
        prop_binding: &impl Fn(&str) -> Option<Term>,
    ) -> Vec<(Term, bool)> {
        self.atoms
            .iter()
            .map(|(t, pol)| {
                let inst = t.rewrite_leaves(&|leaf| match leaf {
                    Term::Sym(SymVar {
                        kind: SymKind::StateVar(name),
                        ..
                    }) => state.data.get(name).cloned(),
                    Term::Sym(SymVar {
                        kind: SymKind::PropVar(name),
                        ..
                    }) => prop_binding(name),
                    _ => None,
                });
                (inst, *pol)
            })
            .collect()
    }

    /// The property variables mentioned by the guard.
    pub fn prop_vars(&self) -> Vec<String> {
        let mut out = Vec::new();
        for (t, _) in &self.atoms {
            let mut syms = Vec::new();
            t.collect_syms(&mut syms);
            for s in syms {
                if let SymKind::PropVar(n) = &s.kind {
                    if !out.contains(n) {
                        out.push(n.clone());
                    }
                }
            }
        }
        out
    }
}

impl std::fmt::Display for Guard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.atoms.is_empty() {
            return f.write_str("true");
        }
        for (i, (t, pol)) in self.atoms.iter().enumerate() {
            if i > 0 {
                f.write_str(" ∧ ")?;
            }
            if *pol {
                write!(f, "{t}")?;
            } else {
                write!(f, "¬({t})")?;
            }
        }
        Ok(())
    }
}

/// Converts a context literal into canonical guard form, if possible.
///
/// `sigma_inverse` maps context terms (the terms property variables are
/// bound to) back to canonical property-variable terms; context pre-state
/// symbols are mapped to canonical state symbols. Returns `None` when the
/// literal mentions anything else (payload parameters not bound by the
/// property, sender configuration, call results, …), because such literals
/// cannot be stated as an invariant over kernel states.
pub fn generalize_literal(
    term: &Term,
    polarity: bool,
    sigma_inverse: &BTreeMap<Term, Term>,
) -> Option<(Term, bool)> {
    // First replace whole bound subterms with their property variables.
    let replaced = replace_subterms(term, sigma_inverse);
    // Then canonicalize state symbols and reject anything else.
    let ok = std::cell::Cell::new(true);
    let canon = replaced.rewrite_leaves(&|leaf| match leaf {
        Term::Sym(sv) => match &sv.kind {
            SymKind::StateVar(name) => Some(Term::Sym(state_sym(name, sv.ty))),
            SymKind::PropVar(_) => None, // already canonical
            _ => {
                ok.set(false);
                None
            }
        },
        _ => None,
    });
    ok.get().then_some((canon, polarity))
}

/// Canonicalizes a context term over state variables: pre-state symbols
/// become canonical state symbols; property variables stay; anything else
/// makes the term non-canonicalizable (`None`).
pub fn canonicalize_state_term(term: &Term) -> Option<Term> {
    let ok = std::cell::Cell::new(true);
    let canon = term.rewrite_leaves(&|leaf| match leaf {
        Term::Sym(sv) => match &sv.kind {
            SymKind::StateVar(name) => Some(Term::Sym(state_sym(name, sv.ty))),
            SymKind::PropVar(_) => None,
            _ => {
                ok.set(false);
                None
            }
        },
        _ => None,
    });
    ok.get().then_some(canon)
}

/// Weakens equality atoms of the form `?v == K + c` (with `K` a term over
/// state variables and `c ≠ 0`) into the strict inequality they entail
/// (`K < ?v` for `c > 0`, `?v < K` for `c < 0`).
///
/// This is the *widening* step of invariant synthesis: for monotone
/// counters, the exact equality chain `?v == K + 1`, `?v == K + 2`, …
/// diverges, while the widened `K < ?v` is inductive. Returns `None` when
/// no atom is weakenable.
pub fn weaken_guard(guard: &Guard) -> Option<Guard> {
    use reflex_ast::BinOp;
    let mut changed = false;
    let mut atoms = Vec::with_capacity(guard.atoms.len());
    for (term, pol) in &guard.atoms {
        let weakened = if *pol { weaken_atom(term) } else { None };
        match weakened {
            Some(w) => {
                changed = true;
                atoms.push((w, true));
            }
            None => atoms.push((term.clone(), *pol)),
        }
    }
    return changed.then(|| Guard::new(atoms));

    fn weaken_atom(term: &Term) -> Option<Term> {
        let Term::Bin(BinOp::Eq, l, r) = term else {
            return None;
        };
        // One side must be a bare property variable; the other a numeric
        // state-variable term with a nonzero constant offset.
        let oriented = [(&**l, &**r), (&**r, &**l)];
        for (var_side, other) in oriented {
            let Term::Sym(sv) = var_side else { continue };
            if !matches!(sv.kind, SymKind::PropVar(_)) || sv.ty != Ty::Num {
                continue;
            }
            // Split the trailing constant of the normalized linear form.
            let (k, c): (Term, i64) = match other {
                Term::Bin(BinOp::Add, a, n) => match &**n {
                    Term::Lit(reflex_ast::Value::Num(c)) => ((**a).clone(), *c),
                    _ => continue,
                },
                Term::Bin(BinOp::Sub, a, n) => match &**n {
                    Term::Lit(reflex_ast::Value::Num(c)) => ((**a).clone(), -*c),
                    _ => continue,
                },
                _ => continue,
            };
            if c == 0 {
                continue;
            }
            // Only weaken when the remaining term is state-variable-only.
            let mut syms = Vec::new();
            k.collect_syms(&mut syms);
            if !syms.iter().all(|s| matches!(s.kind, SymKind::StateVar(_))) {
                continue;
            }
            return Some(if c > 0 {
                Term::bin(BinOp::Lt, k, var_side.clone())
            } else {
                Term::bin(BinOp::Lt, var_side.clone(), k)
            });
        }
        None
    }
}

/// Flattens a literal set: conjunctions asserted true, disjunctions
/// asserted false and negations are decomposed into their atomic literals,
/// so guard extraction can salvage the generalizable conjuncts of a
/// compound branch condition.
pub fn flatten_literals(phi: &[(Term, bool)]) -> Vec<(Term, bool)> {
    use reflex_ast::{BinOp, UnOp};
    let mut out = Vec::with_capacity(phi.len());
    let mut stack: Vec<(Term, bool)> = phi.to_vec();
    while let Some((t, pol)) = stack.pop() {
        match (&t, pol) {
            (Term::Un(UnOp::Not, inner), _) => stack.push(((**inner).clone(), !pol)),
            (Term::Bin(BinOp::And, l, r), true) => {
                stack.push(((**l).clone(), true));
                stack.push(((**r).clone(), true));
            }
            (Term::Bin(BinOp::Or, l, r), false) => {
                stack.push(((**l).clone(), false));
                stack.push(((**r).clone(), false));
            }
            _ => out.push((t, pol)),
        }
    }
    out
}

/// Replaces every occurrence of each key of `map` (as a whole subtree) with
/// its value, preferring larger keys first so overlapping replacements
/// behave predictably.
pub fn replace_subterms(term: &Term, map: &BTreeMap<Term, Term>) -> Term {
    if map.is_empty() {
        return term.clone();
    }
    if let Some(rep) = map.get(term) {
        return rep.clone();
    }
    match term {
        Term::Lit(_) | Term::Sym(_) => term.clone(),
        Term::Un(op, inner) => Term::un(*op, replace_subterms(inner, map)),
        Term::Bin(op, l, r) => Term::bin(*op, replace_subterms(l, map), replace_subterms(r, map)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reflex_ast::BinOp;
    use reflex_symbolic::SymCtx;

    #[test]
    fn guard_instantiation_substitutes_state_vars() {
        let guard = Guard::new(vec![(
            Term::bin(
                BinOp::Eq,
                Term::Sym(state_sym("auth_user", Ty::Str)),
                prop_term("u", Ty::Str),
            ),
            true,
        )]);
        let mut state = SymState::default();
        state.data.insert("auth_user".into(), Term::lit("alice"));
        let inst = guard.instantiate(&state);
        assert_eq!(
            inst,
            vec![(
                Term::bin(BinOp::Eq, Term::lit("alice"), prop_term("u", Ty::Str)),
                true
            )]
        );
        assert_eq!(guard.prop_vars(), vec!["u"]);
    }

    #[test]
    fn generalize_accepts_state_and_bound_terms_only() {
        let mut ctx = SymCtx::new();
        let state_val = ctx.fresh_term(Ty::Str, SymKind::StateVar("auth_user".into()));
        let param = ctx.fresh_term(Ty::Str, SymKind::Param("user".into()));
        let other = ctx.fresh_term(Ty::Str, SymKind::CallResult("wget".into()));

        let mut inv = BTreeMap::new();
        inv.insert(param.clone(), prop_term("u", Ty::Str));

        // auth_user₀ == m.user generalizes to auth_user == ?u.
        let lit = Term::bin(BinOp::Eq, state_val.clone(), param.clone());
        let (g, pol) = generalize_literal(&lit, true, &inv).expect("generalizes");
        assert!(pol);
        assert_eq!(
            g,
            Term::bin(
                BinOp::Eq,
                Term::Sym(state_sym("auth_user", Ty::Str)),
                prop_term("u", Ty::Str)
            )
        );

        // Literals mentioning unbound context symbols are rejected.
        let bad = Term::bin(BinOp::Eq, state_val, other);
        assert!(generalize_literal(&bad, true, &inv).is_none());
    }

    #[test]
    fn guards_deduplicate_and_compare() {
        let a = (Term::Sym(state_sym("ok", Ty::Bool)), true);
        let g1 = Guard::new(vec![a.clone(), a.clone()]);
        assert_eq!(g1.atoms.len(), 1);
        let g2 = Guard::new(vec![a]);
        assert_eq!(g1, g2);
        assert!(!g1.is_trivial());
        assert!(Guard::new(vec![]).is_trivial());
    }
}
