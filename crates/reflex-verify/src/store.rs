//! The persistent, content-addressed proof store (`.rx-store/`).
//!
//! Certificates survive the process: a store entry is the full certificate
//! tree (justifications, invariants, lemmas, dependency set) serialized in
//! a deterministic binary format and keyed by content —
//!
//! ```text
//! {program fp}-{property fp}-{options fp}.cert
//! ```
//!
//! where the program fingerprint covers declarations plus all handlers
//! (properties excluded, so editing one property never invalidates the
//! others' entries), the property fingerprint covers the statement, and the
//! options fingerprint covers every [`ProverOptions`] field that can change
//! a certificate. Content addressing makes the store append-mostly: editing
//! back and forth between two program versions hits both sets of entries,
//! and concurrent writers racing on one key write identical bytes.
//!
//! A small **head** file per (program name, options fingerprint) records
//! which program fingerprint the last run proved and under which property
//! fingerprints, so the next run can find the *previous* version's
//! certificates for cross-edit planning (full or per-case reuse via
//! [`crate::DepGraph`]) even though their keys contain the old fingerprints.
//!
//! # Trust
//!
//! The store is untrusted, like the proof search and the incremental
//! planner. Four layers keep that safe:
//!
//! 1. every file carries a versioned magic header and an integrity
//!    fingerprint of its payload — mismatches, truncations and decode
//!    errors all degrade to cache **misses**, never errors;
//! 2. decoding rebuilds the exact stored structure (terms are re-interned
//!    without re-simplification), so round-tripping is the identity;
//! 3. every certificate loaded from disk must pass
//!    [`crate::check_certificate`] against the *current* program before its
//!    reuse is reported — a corrupt-but-decodable entry costs a re-prove,
//!    never a wrong "Proved";
//! 4. writes go to a temporary file first and are renamed into place, so
//!    readers never observe half-written entries.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use reflex_ast::fingerprint::{Fp, FpHasher};
use reflex_ast::{ActionPat, CompPat, PatField, Ty, Value};
use reflex_symbolic::{SymKind, SymVar, Term, TermRef};
use reflex_typeck::CheckedProgram;

use crate::canon::Guard;
use crate::certificate::{
    CaseCert, Certificate, CompOriginRef, DepSet, InvCaseCert, InvPathJust, InvariantCert,
    Justification, LemmaCert, NegPrior, NegPriorStep, NiCaseCert, NiCert, PathCert, TraceCert,
};
use crate::incremental::IncrementalReport;
use crate::options::{Outcome, ProverOptions, VerifyError};
use crate::vfs::{RealFs, VerifyFs};

/// On-disk format version; bumped whenever the encoding changes. Entries
/// written by any other version read as misses.
pub const STORE_VERSION: u32 = 1;

const MAGIC: &[u8; 4] = b"RXPS";

/// A handle to an on-disk proof store directory.
///
/// Cheap to clone: clones share the same root, filesystem and I/O error
/// counter.
#[derive(Debug, Clone)]
pub struct ProofStore {
    root: PathBuf,
    /// Every disk touch goes through this, so tests and the chaos harness
    /// can inject a [`crate::vfs::FaultyFs`].
    fs: Arc<dyn VerifyFs>,
    /// Unexpected I/O failures observed (not plain not-found misses) —
    /// the watch loop's degradation signal.
    io_errors: Arc<AtomicU64>,
}

/// What the last successful run against a program (by name) proved: the
/// program fingerprint it ran over and the property fingerprints its
/// certificates are filed under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreHead {
    /// The program fingerprint of that run.
    pub program: Fp,
    /// `(property name, property fingerprint)` pairs of that run.
    pub properties: Vec<(String, Fp)>,
}

impl ProofStore {
    /// Opens (creating if needed) the store rooted at `dir`, on the real
    /// filesystem.
    ///
    /// # Errors
    ///
    /// Fails only if the directory cannot be created.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<ProofStore> {
        ProofStore::open_with(dir, Arc::new(RealFs))
    }

    /// Opens (creating if needed) the store rooted at `dir`, routing every
    /// disk operation through `fs` — the fault-injection seam used by the
    /// robustness tests and `rx chaos`.
    ///
    /// # Errors
    ///
    /// Fails only if the directory cannot be created.
    pub fn open_with(dir: impl AsRef<Path>, fs: Arc<dyn VerifyFs>) -> io::Result<ProofStore> {
        let root = dir.as_ref().to_path_buf();
        fs.create_dir_all(&root)?;
        Ok(ProofStore {
            root,
            fs,
            io_errors: Arc::new(AtomicU64::new(0)),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Unexpected I/O failures observed by this handle (and its clones)
    /// since opening. Plain not-found reads are misses, not errors; the
    /// watch loop compares snapshots of this counter to decide when the
    /// store has become unreliable.
    pub fn io_errors(&self) -> u64 {
        self.io_errors.load(Ordering::SeqCst)
    }

    fn count_io_error(&self) {
        self.io_errors.fetch_add(1, Ordering::SeqCst);
    }

    /// A quick read-back health check: writes a small framed probe entry,
    /// reads it back, and removes it. The watch loop calls this before
    /// re-attaching a degraded store.
    ///
    /// # Errors
    ///
    /// Any write, sync, rename or read-back failure.
    pub fn probe(&self) -> io::Result<()> {
        let path = self.root.join(format!(".probe-{}", std::process::id()));
        self.write_framed(&path, b"probe")?;
        let ok = matches!(self.read_framed(&path), Some(p) if p == b"probe");
        let _ = self.fs.remove_file(&path);
        if ok {
            Ok(())
        } else {
            Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "probe entry did not read back intact",
            ))
        }
    }

    fn entry_path(&self, program: Fp, property: Fp, options: Fp) -> PathBuf {
        self.root
            .join(format!("{program}-{property}-{options}.cert"))
    }

    fn head_path(&self, program_name: &str, options: Fp) -> PathBuf {
        // Head files are looked up before any fingerprint of the current
        // source is known, so they key on the (hashed) program *name*.
        let name = reflex_ast::fingerprint::fp_str(program_name);
        self.root.join(format!("head-{name}-{options}.head"))
    }

    /// Loads the certificate stored under the given key, or `None` if
    /// absent, unreadable, truncated, corrupt or written by a different
    /// format version (all of these are cache misses, not errors).
    pub fn load(&self, program: Fp, property: Fp, options: Fp) -> Option<Certificate> {
        let payload = self.read_framed(&self.entry_path(program, property, options))?;
        let mut d = Dec::new(&payload);
        let cert = dec_certificate(&mut d)?;
        d.finish()?;
        Some(cert)
    }

    /// Stores `cert` under the given key, atomically (write to a temporary
    /// file, then rename). An existing entry is left alone: keys are
    /// content-addressed, so it already holds the same bytes.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; callers persisting opportunistically may
    /// ignore them (a failed write is a future miss).
    pub fn save(
        &self,
        program: Fp,
        property: Fp,
        options: Fp,
        cert: &Certificate,
    ) -> io::Result<()> {
        let path = self.entry_path(program, property, options);
        if self.fs.exists(&path) {
            return Ok(());
        }
        let mut e = Enc::new();
        enc_certificate(&mut e, cert);
        self.write_framed(&path, &e.buf)
    }

    /// Loads the head record for (`program_name`, `options`), with the same
    /// miss semantics as [`ProofStore::load`].
    pub fn load_head(&self, program_name: &str, options: Fp) -> Option<StoreHead> {
        let payload = self.read_framed(&self.head_path(program_name, options))?;
        decode_head(&payload)
    }

    /// Stores the head record for (`program_name`, `options`), atomically.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn save_head(&self, program_name: &str, options: Fp, head: &StoreHead) -> io::Result<()> {
        let mut e = Enc::new();
        e.fp(head.program);
        e.len(head.properties.len());
        for (name, fp) in &head.properties {
            e.str(name);
            e.fp(*fp);
        }
        self.write_framed(&self.head_path(program_name, options), &e.buf)
    }

    /// Reads a framed file: magic, version, payload integrity fingerprint,
    /// payload. Any mismatch is a miss (`None`); unexpected I/O errors
    /// (anything but not-found) also bump [`ProofStore::io_errors`].
    fn read_framed(&self, path: &Path) -> Option<Vec<u8>> {
        let bytes = match self.fs.read(path) {
            Ok(bytes) => bytes,
            Err(e) => {
                if e.kind() != io::ErrorKind::NotFound {
                    self.count_io_error();
                }
                return None;
            }
        };
        decode_frame(&bytes)
    }

    /// Writes a framed file atomically and durably: temporary file, then
    /// `sync_all`, then rename. The fsync closes the crash window between
    /// write and rename — without it, a crash (or a torn page-cache write)
    /// could leave a *renamed* frame with lost bytes, which readers would
    /// then pay for on every load. The bytes are a deterministic function
    /// of the payload — no timestamps — so identical content always
    /// produces identical files.
    fn write_framed(&self, path: &Path, payload: &[u8]) -> io::Result<()> {
        let mut bytes = Vec::with_capacity(16 + payload.len());
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&STORE_VERSION.to_le_bytes());
        let mut h = FpHasher::new();
        h.write(payload);
        bytes.extend_from_slice(&h.finish().0.to_le_bytes());
        bytes.extend_from_slice(payload);
        let dir = path.parent().unwrap_or_else(|| Path::new("."));
        let file_name = path.file_name().and_then(|n| n.to_str()).unwrap_or("entry");
        let tmp = dir.join(format!(".tmp-{}-{file_name}", std::process::id()));
        let result = self
            .fs
            .write(&tmp, &bytes)
            .and_then(|()| self.fs.sync(&tmp))
            .and_then(|()| self.fs.rename(&tmp, path));
        if result.is_err() {
            self.count_io_error();
            // Best-effort: do not leave the torn temporary behind (scrub
            // sweeps up any that survive a crash).
            let _ = self.fs.remove_file(&tmp);
        }
        result
    }
}

/// Decodes a head record's payload.
fn decode_head(payload: &[u8]) -> Option<StoreHead> {
    let mut d = Dec::new(payload);
    let program = d.fp()?;
    let n = d.len()?;
    let mut properties = Vec::with_capacity(n);
    for _ in 0..n {
        let name = d.str()?;
        let fp = d.fp()?;
        properties.push((name, fp));
    }
    d.finish()?;
    Some(StoreHead {
        program,
        properties,
    })
}

/// Validates and strips a framed file's header, returning the payload, or
/// `None` for any mismatch.
fn decode_frame(bytes: &[u8]) -> Option<Vec<u8>> {
    if bytes.len() < 16 || &bytes[0..4] != MAGIC {
        return None;
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().ok()?);
    if version != STORE_VERSION {
        return None;
    }
    let stored_fp = u64::from_le_bytes(bytes[8..16].try_into().ok()?);
    let payload = &bytes[16..];
    let mut h = FpHasher::new();
    h.write(payload);
    if h.finish().0 != stored_fp {
        return None;
    }
    Some(payload.to_vec())
}

/// The quarantine subdirectory scrub moves bad entries into.
pub const QUARANTINE_DIR: &str = "quarantine";

/// What one [`ProofStore::scrub`] pass found and did.
#[derive(Debug, Clone, Default)]
pub struct ScrubReport {
    /// Framed entries examined (`.cert` and `.head` files).
    pub scanned: usize,
    /// Entries that validated clean and were kept.
    pub ok: usize,
    /// Stale temporary/probe files deleted (compaction).
    pub tmp_removed: usize,
    /// Quarantined entries that decoded fine but were rejected by the
    /// certificate checker (a subset of `quarantined`).
    pub checker_rejected: usize,
    /// `(file name, reason)` for every entry moved to `quarantine/`.
    pub quarantined: Vec<(String, String)>,
}

impl ScrubReport {
    /// One human-readable summary line.
    pub fn summary(&self) -> String {
        format!(
            "scrubbed {} entries: {} ok, {} quarantined ({} checker-rejected), {} stale tmp files removed",
            self.scanned,
            self.ok,
            self.quarantined.len(),
            self.checker_rejected,
            self.tmp_removed
        )
    }

    /// The machine-readable report written to `quarantine/report.json`.
    pub fn render_json(&self) -> String {
        use std::fmt::Write as _;
        let mut entries = String::new();
        for (i, (file, reason)) in self.quarantined.iter().enumerate() {
            if i > 0 {
                entries.push(',');
            }
            let _ = write!(
                entries,
                r#"{{"file":{},"reason":{}}}"#,
                json_str(file),
                json_str(reason)
            );
        }
        format!(
            concat!(
                r#"{{"scanned":{},"ok":{},"tmp_removed":{},"#,
                r#""checker_rejected":{},"quarantined":[{}]}}"#
            ),
            self.scanned, self.ok, self.tmp_removed, self.checker_rejected, entries
        )
    }
}

/// Encodes a string as a JSON string literal (with quotes).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl ProofStore {
    /// Validates every framed entry in the store, quarantining the bad
    /// ones and compacting leftovers.
    ///
    /// * `.cert` files must carry an intact frame and decode to a
    ///   certificate; `.head` files must decode to a head record. Failures
    ///   are moved into [`QUARANTINE_DIR`] with a reason.
    /// * With `validate` supplied, every entry keyed by that program and
    ///   options is additionally run through the independent certificate
    ///   checker; rejects are quarantined too ("checker rejected").
    /// * Stale `.tmp-*` and `.probe-*` files — debris of crashed writers —
    ///   are deleted.
    /// * When anything was quarantined, a machine-readable report is
    ///   written to a fresh `quarantine/report-NNNN.json` (one per scrub,
    ///   never overwritten) and mirrored to `quarantine/report.json`
    ///   (always the latest).
    ///
    /// Quarantining moves files, never deletes them, so a scrub
    /// false-positive (e.g. a flaky read) costs a future miss, not data.
    ///
    /// # Errors
    ///
    /// Only if the store directory itself cannot be listed; per-entry
    /// failures are reported inside the [`ScrubReport`].
    pub fn scrub(
        &self,
        validate: Option<(&CheckedProgram, &ProverOptions)>,
    ) -> io::Result<ScrubReport> {
        let quarantine = self.root.join(QUARANTINE_DIR);
        // File name → property name, for entries the supplied program can
        // vouch for (same program, property and options fingerprints).
        let mut expected: std::collections::HashMap<String, String> = Default::default();
        if let Some((checked, options)) = validate {
            let fps = checked.fingerprints();
            let opts_fp = options.fingerprint();
            for prop in &checked.program().properties {
                if let Some(pfp) = fps.property(&prop.name) {
                    let path = self.entry_path(fps.program, pfp, opts_fp);
                    if let Some(name) = path.file_name().and_then(|n| n.to_str()) {
                        expected.insert(name.to_owned(), prop.name.clone());
                    }
                }
            }
        }

        let mut report = ScrubReport::default();
        for path in self.fs.read_dir(&self.root)? {
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if name.starts_with(".tmp-") || name.starts_with(".probe-") {
                if self.fs.remove_file(&path).is_ok() {
                    report.tmp_removed += 1;
                }
                continue;
            }
            let is_cert = name.ends_with(".cert");
            let is_head = name.ends_with(".head");
            if !is_cert && !is_head {
                continue; // quarantine/ itself, user files, …
            }
            report.scanned += 1;
            let verdict: Result<(), String> = match self.fs.read(&path) {
                Err(e) => Err(format!("unreadable: {e}")),
                Ok(bytes) => match decode_frame(&bytes) {
                    None => Err(
                        "corrupt frame (bad magic, version, or integrity fingerprint)".to_owned(),
                    ),
                    Some(payload) if is_head => match decode_head(&payload) {
                        Some(_) => Ok(()),
                        None => Err("undecodable head payload".to_owned()),
                    },
                    Some(payload) => {
                        let mut d = Dec::new(&payload);
                        match dec_certificate(&mut d).filter(|_| d.finish().is_some()) {
                            None => Err("undecodable certificate payload".to_owned()),
                            Some(cert) => match (validate, expected.get(name)) {
                                (Some((checked, options)), Some(prop_name)) => {
                                    if cert.property() != *prop_name {
                                        Err(format!(
                                            "filed under `{prop_name}` but certifies `{}`",
                                            cert.property()
                                        ))
                                    } else {
                                        match crate::check_certificate(checked, &cert, options) {
                                            Ok(()) => Ok(()),
                                            Err(e) => {
                                                report.checker_rejected += 1;
                                                Err(format!("checker rejected: {e}"))
                                            }
                                        }
                                    }
                                }
                                _ => Ok(()),
                            },
                        }
                    }
                },
            };
            match verdict {
                Ok(()) => report.ok += 1,
                Err(reason) => {
                    let moved = self
                        .fs
                        .create_dir_all(&quarantine)
                        .and_then(|()| self.fs.rename(&path, &quarantine.join(name)));
                    let outcome = match moved {
                        Ok(()) => reason,
                        Err(e) => format!("{reason}; quarantine move failed: {e}"),
                    };
                    report.quarantined.push((name.to_owned(), outcome));
                }
            }
        }
        if !report.quarantined.is_empty() {
            // Best-effort: the report is advisory; a failed write must not
            // fail the scrub that just cleaned the store. Each scrub gets
            // its own sequenced `report-NNNN.json` (earlier reports are
            // evidence — a second scrub must not destroy the first's), and
            // `report.json` is rewritten as a copy of the latest.
            let _ = self.fs.create_dir_all(&quarantine).and_then(|()| {
                let seq = (0..u32::MAX)
                    .map(|i| quarantine.join(format!("report-{i:04}.json")))
                    .find(|p| !self.fs.exists(p))
                    .expect("fewer than u32::MAX scrub reports");
                self.fs.write(&seq, report.render_json().as_bytes())?;
                self.fs.write(
                    &quarantine.join("report.json"),
                    report.render_json().as_bytes(),
                )
            });
        }
        Ok(report)
    }
}

/// The result of a store-backed verification run.
#[derive(Debug)]
pub struct StoreReport {
    /// The underlying incremental report ([`IncrementalReport::reused`]
    /// counts certificates served from the store and validated).
    pub report: IncrementalReport,
    /// Previous certificates found in the store and offered to the planner.
    pub loaded: usize,
    /// Entries written back after this run.
    pub saved: usize,
}

/// Verifies every property of `new`, reusing proofs from `store` where the
/// dependency analysis allows, and persists this run's certificates back.
///
/// Candidate certificates come from two places: **exact** entries keyed by
/// the current program fingerprint (hit when editing back to a previously
/// proved version), and the **previous** run's entries found via the head
/// record (planned onto the full/per-case/re-prove ladder exactly like an
/// in-memory [`crate::reverify`]). Every candidate taken — wholesale or
/// spliced — must pass [`crate::check_certificate`] against `new` before it
/// is reported as reused; rejects are re-proved from scratch.
///
/// Persistence is best-effort: I/O failures while writing back cost future
/// misses, not verification failures.
///
/// # Errors
///
/// Proof-search failures are reported per-property inside the report;
/// errors are reserved for malformed inputs (impossible here: loaded
/// candidates are filtered before planning).
pub fn verify_with_store(
    new: &CheckedProgram,
    options: &ProverOptions,
    store: &ProofStore,
    jobs: usize,
) -> Result<StoreReport, VerifyError> {
    verify_with_store_observed(new, options, store, jobs, None)
}

/// [`verify_with_store`] with a per-property [`crate::incremental::PropObserver`]
/// invoked as each outcome is decided (used by the session engine's
/// instrumentation; `None` is exactly `verify_with_store`).
pub fn verify_with_store_observed(
    new: &CheckedProgram,
    options: &ProverOptions,
    store: &ProofStore,
    jobs: usize,
    observer: Option<crate::incremental::PropObserver<'_>>,
) -> Result<StoreReport, VerifyError> {
    let previous = load_candidates(new, options, store);
    let loaded = previous.len();
    let report = crate::incremental::reverify_core(&previous, new, options, jobs, true, observer)?;
    let saved = persist_outcomes(new, options, store, &report.outcomes);
    Ok(StoreReport {
        report,
        loaded,
        saved,
    })
}

/// The **plan** half of [`verify_with_store`]: loads every certificate the
/// store can offer for `new`'s properties — exact entries keyed by the
/// current program fingerprint, then the previous run's entries via the
/// head record — filtered down to decodable, correctly-filed candidates.
///
/// The returned slice feeds the reuse planner
/// ([`crate::reverify_jobs_observed`] with validation, or
/// [`crate::DepGraph`] directly); nothing in it is trusted until it passes
/// the independent checker.
pub fn load_candidates(
    new: &CheckedProgram,
    options: &ProverOptions,
    store: &ProofStore,
) -> Vec<(String, Certificate)> {
    let fps = new.fingerprints();
    let opts_fp = options.fingerprint();
    let head = store.load_head(&new.program().name, opts_fp);

    let mut previous: Vec<(String, Certificate)> = Vec::new();
    for prop in &new.program().properties {
        let name = &prop.name;
        let exact = fps
            .property(name)
            .and_then(|pfp| store.load(fps.program, pfp, opts_fp));
        let candidate = exact.or_else(|| {
            let head = head.as_ref()?;
            if head.program == fps.program {
                // Same program: the exact lookup above already covered it.
                return None;
            }
            let (_, old_pfp) = head.properties.iter().find(|(n, _)| n == name)?;
            store.load(head.program, *old_pfp, opts_fp)
        });
        // A corrupt-but-decodable entry could certify a different property;
        // filter it here so planning (which treats that as a caller bug in
        // the in-memory API) just sees a miss.
        if let Some(cert) = candidate {
            if cert.property() == *name {
                previous.push((name.clone(), cert));
            }
        }
    }
    previous
}

/// The **persist** half of [`verify_with_store`]: writes this run's
/// certificates and the program's head record back to the store,
/// returning how many entries were saved.
///
/// Best-effort by design: I/O failures cost future misses, never
/// verification failures.
pub fn persist_outcomes(
    new: &CheckedProgram,
    options: &ProverOptions,
    store: &ProofStore,
    outcomes: &[(String, Outcome)],
) -> usize {
    let fps = new.fingerprints();
    let opts_fp = options.fingerprint();
    let mut saved = 0usize;
    for (name, outcome) in outcomes {
        let (Some(cert), Some(pfp)) = (outcome.certificate(), fps.property(name)) else {
            continue;
        };
        if store.save(fps.program, pfp, opts_fp, cert).is_ok() {
            saved += 1;
        }
    }
    let head = StoreHead {
        program: fps.program,
        properties: new
            .program()
            .properties
            .iter()
            .filter_map(|p| Some((p.name.clone(), fps.property(&p.name)?)))
            .collect(),
    };
    let _ = store.save_head(&new.program().name, opts_fp, &head);
    saved
}

// ---------------------------------------------------------------------------
// Deterministic binary encoding.
//
// Little-endian fixed-width integers; strings as u32 length + UTF-8 bytes;
// sequences as u32 length + elements; enums as a u8 tag + payload. The
// encoder writes exactly what the decoder reads — no padding, no
// timestamps — so equal values produce equal bytes.
// ---------------------------------------------------------------------------

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new() -> Enc {
        Enc { buf: Vec::new() }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn len(&mut self, v: usize) {
        self.u32(u32::try_from(v).expect("sequence fits in u32"));
    }
    fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }
    fn str(&mut self, s: &str) {
        self.len(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn fp(&mut self, fp: Fp) {
        self.u64(fp.0);
    }
    fn opt_usize(&mut self, v: Option<usize>) {
        match v {
            None => self.u8(0),
            Some(n) => {
                self.u8(1);
                self.u64(n as u64);
            }
        }
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }
    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }
    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }
    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }
    fn i64(&mut self) -> Option<i64> {
        Some(i64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }
    fn len(&mut self) -> Option<usize> {
        let n = self.u32()? as usize;
        // A declared length can never exceed the remaining bytes (every
        // element is at least one byte): reject early so corrupt lengths
        // cannot trigger huge allocations.
        (n <= self.buf.len() - self.pos).then_some(n)
    }
    fn bool(&mut self) -> Option<bool> {
        match self.u8()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
    fn str(&mut self) -> Option<String> {
        let n = self.len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).ok()
    }
    fn fp(&mut self) -> Option<Fp> {
        Some(Fp(self.u64()?))
    }
    fn usize(&mut self) -> Option<usize> {
        usize::try_from(self.u64()?).ok()
    }
    fn opt_usize(&mut self) -> Option<Option<usize>> {
        match self.u8()? {
            0 => Some(None),
            1 => Some(Some(self.usize()?)),
            _ => None,
        }
    }
    /// Succeeds only when every byte was consumed: trailing garbage is
    /// corruption.
    fn finish(&self) -> Option<()> {
        (self.pos == self.buf.len()).then_some(())
    }
}

fn enc_ty(e: &mut Enc, ty: Ty) {
    e.u8(match ty {
        Ty::Bool => 0,
        Ty::Num => 1,
        Ty::Str => 2,
        Ty::Fdesc => 3,
        Ty::Comp => 4,
    });
}

fn dec_ty(d: &mut Dec) -> Option<Ty> {
    Some(match d.u8()? {
        0 => Ty::Bool,
        1 => Ty::Num,
        2 => Ty::Str,
        3 => Ty::Fdesc,
        4 => Ty::Comp,
        _ => return None,
    })
}

fn enc_value(e: &mut Enc, v: &Value) {
    match v {
        Value::Bool(b) => {
            e.u8(0);
            e.bool(*b);
        }
        Value::Num(n) => {
            e.u8(1);
            e.i64(*n);
        }
        Value::Str(s) => {
            e.u8(2);
            e.str(s);
        }
        Value::Fdesc(fd) => {
            e.u8(3);
            e.u64(fd.raw());
        }
        Value::Comp(id) => {
            e.u8(4);
            e.u64(id.raw());
        }
    }
}

fn dec_value(d: &mut Dec) -> Option<Value> {
    Some(match d.u8()? {
        0 => Value::Bool(d.bool()?),
        1 => Value::Num(d.i64()?),
        2 => Value::Str(d.str()?),
        3 => Value::Fdesc(reflex_ast::Fdesc::new(d.u64()?)),
        4 => Value::Comp(reflex_ast::CompId::new(d.u64()?)),
        _ => return None,
    })
}

fn enc_sym(e: &mut Enc, s: &SymVar) {
    e.u32(s.id);
    enc_ty(e, s.ty);
    match &s.kind {
        SymKind::StateVar(n) => {
            e.u8(0);
            e.str(n);
        }
        SymKind::Param(n) => {
            e.u8(1);
            e.str(n);
        }
        SymKind::SenderCfg(i) => {
            e.u8(2);
            e.u64(*i as u64);
        }
        SymKind::LookupCfg(i) => {
            e.u8(3);
            e.u64(*i as u64);
        }
        SymKind::CallResult(f) => {
            e.u8(4);
            e.str(f);
        }
        SymKind::CompId => e.u8(5),
        SymKind::PropVar(n) => {
            e.u8(6);
            e.str(n);
        }
        SymKind::Fresh => e.u8(7),
    }
}

fn dec_sym(d: &mut Dec) -> Option<SymVar> {
    let id = d.u32()?;
    let ty = dec_ty(d)?;
    let kind = match d.u8()? {
        0 => SymKind::StateVar(d.str()?),
        1 => SymKind::Param(d.str()?),
        2 => SymKind::SenderCfg(d.usize()?),
        3 => SymKind::LookupCfg(d.usize()?),
        4 => SymKind::CallResult(d.str()?),
        5 => SymKind::CompId,
        6 => SymKind::PropVar(d.str()?),
        7 => SymKind::Fresh,
        _ => return None,
    };
    Some(SymVar { id, ty, kind })
}

fn enc_term(e: &mut Enc, t: &Term) {
    match t {
        Term::Lit(v) => {
            e.u8(0);
            enc_value(e, v);
        }
        Term::Sym(s) => {
            e.u8(1);
            enc_sym(e, s);
        }
        Term::Un(op, inner) => {
            e.u8(2);
            e.u8(match op {
                reflex_ast::UnOp::Not => 0,
                reflex_ast::UnOp::Neg => 1,
            });
            enc_term(e, inner);
        }
        Term::Bin(op, l, r) => {
            e.u8(3);
            e.u8(bin_op_tag(*op));
            enc_term(e, l);
            enc_term(e, r);
        }
    }
}

fn bin_op_tag(op: reflex_ast::BinOp) -> u8 {
    use reflex_ast::BinOp as B;
    match op {
        B::Eq => 0,
        B::Ne => 1,
        B::And => 2,
        B::Or => 3,
        B::Add => 4,
        B::Sub => 5,
        B::Lt => 6,
        B::Le => 7,
        B::Cat => 8,
    }
}

fn dec_bin_op(tag: u8) -> Option<reflex_ast::BinOp> {
    use reflex_ast::BinOp as B;
    Some(match tag {
        0 => B::Eq,
        1 => B::Ne,
        2 => B::And,
        3 => B::Or,
        4 => B::Add,
        5 => B::Sub,
        6 => B::Lt,
        7 => B::Le,
        8 => B::Cat,
        _ => return None,
    })
}

/// Decodes a term, rebuilding the *exact* stored tree. Compound nodes are
/// re-interned via [`TermRef::new`] directly — not through the normalizing
/// [`Term::bin`]/[`Term::un`] constructors — because the stored tree was
/// already normalized at prove time and must round-trip unchanged for the
/// byte-identity guarantees to hold.
fn dec_term(d: &mut Dec) -> Option<Term> {
    Some(match d.u8()? {
        0 => Term::Lit(dec_value(d)?),
        1 => Term::Sym(dec_sym(d)?),
        2 => {
            let op = match d.u8()? {
                0 => reflex_ast::UnOp::Not,
                1 => reflex_ast::UnOp::Neg,
                _ => return None,
            };
            Term::Un(op, TermRef::new(dec_term(d)?))
        }
        3 => {
            let op = dec_bin_op(d.u8()?)?;
            let l = dec_term(d)?;
            let r = dec_term(d)?;
            Term::Bin(op, TermRef::new(l), TermRef::new(r))
        }
        _ => return None,
    })
}

fn enc_pat_field(e: &mut Enc, f: &PatField) {
    match f {
        PatField::Lit(v) => {
            e.u8(0);
            enc_value(e, v);
        }
        PatField::Var(n) => {
            e.u8(1);
            e.str(n);
        }
        PatField::Any => e.u8(2),
    }
}

fn dec_pat_field(d: &mut Dec) -> Option<PatField> {
    Some(match d.u8()? {
        0 => PatField::Lit(dec_value(d)?),
        1 => PatField::Var(d.str()?),
        2 => PatField::Any,
        _ => return None,
    })
}

fn enc_pat_fields(e: &mut Enc, fs: &[PatField]) {
    e.len(fs.len());
    for f in fs {
        enc_pat_field(e, f);
    }
}

fn dec_pat_fields(d: &mut Dec) -> Option<Vec<PatField>> {
    let n = d.len()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(dec_pat_field(d)?);
    }
    Some(out)
}

fn enc_comp_pat(e: &mut Enc, c: &CompPat) {
    match &c.ctype {
        None => e.u8(0),
        Some(t) => {
            e.u8(1);
            e.str(t);
        }
    }
    match &c.config {
        None => e.u8(0),
        Some(fs) => {
            e.u8(1);
            enc_pat_fields(e, fs);
        }
    }
}

fn dec_comp_pat(d: &mut Dec) -> Option<CompPat> {
    let ctype = match d.u8()? {
        0 => None,
        1 => Some(d.str()?),
        _ => return None,
    };
    let config = match d.u8()? {
        0 => None,
        1 => Some(dec_pat_fields(d)?),
        _ => return None,
    };
    Some(CompPat { ctype, config })
}

fn enc_action_pat(e: &mut Enc, p: &ActionPat) {
    match p {
        ActionPat::Select { comp } => {
            e.u8(0);
            enc_comp_pat(e, comp);
        }
        ActionPat::Recv { comp, msg, args } => {
            e.u8(1);
            enc_comp_pat(e, comp);
            e.str(msg);
            enc_pat_fields(e, args);
        }
        ActionPat::Send { comp, msg, args } => {
            e.u8(2);
            enc_comp_pat(e, comp);
            e.str(msg);
            enc_pat_fields(e, args);
        }
        ActionPat::Spawn { comp } => {
            e.u8(3);
            enc_comp_pat(e, comp);
        }
        ActionPat::Call { func, args, result } => {
            e.u8(4);
            e.str(func);
            match args {
                None => e.u8(0),
                Some(fs) => {
                    e.u8(1);
                    enc_pat_fields(e, fs);
                }
            }
            enc_pat_field(e, result);
        }
    }
}

fn dec_action_pat(d: &mut Dec) -> Option<ActionPat> {
    Some(match d.u8()? {
        0 => ActionPat::Select {
            comp: dec_comp_pat(d)?,
        },
        1 => ActionPat::Recv {
            comp: dec_comp_pat(d)?,
            msg: d.str()?,
            args: dec_pat_fields(d)?,
        },
        2 => ActionPat::Send {
            comp: dec_comp_pat(d)?,
            msg: d.str()?,
            args: dec_pat_fields(d)?,
        },
        3 => ActionPat::Spawn {
            comp: dec_comp_pat(d)?,
        },
        4 => {
            let func = d.str()?;
            let args = match d.u8()? {
                0 => None,
                1 => Some(dec_pat_fields(d)?),
                _ => return None,
            };
            let result = dec_pat_field(d)?;
            ActionPat::Call { func, args, result }
        }
        _ => return None,
    })
}

fn enc_guard(e: &mut Enc, g: &Guard) {
    e.len(g.atoms.len());
    for (t, pol) in &g.atoms {
        enc_term(e, t);
        e.bool(*pol);
    }
}

fn dec_guard(d: &mut Dec) -> Option<Guard> {
    let n = d.len()?;
    let mut atoms = Vec::with_capacity(n);
    for _ in 0..n {
        let t = dec_term(d)?;
        let pol = d.bool()?;
        atoms.push((t, pol));
    }
    // Direct construction: the stored atom order is the canonical one.
    Some(Guard { atoms })
}

fn enc_justification(e: &mut Enc, j: &Justification) {
    match j {
        Justification::Refuted => e.u8(0),
        Justification::Witness { index } => {
            e.u8(1);
            e.u64(*index as u64);
        }
        Justification::Invariant { inv_id } => {
            e.u8(2);
            e.u64(*inv_id as u64);
        }
        Justification::NoMatch { prior } => {
            e.u8(3);
            match prior {
                NegPrior::EmptyTrace => e.u8(0),
                NegPrior::Invariant { inv_id } => {
                    e.u8(1);
                    e.u64(*inv_id as u64);
                }
                NegPrior::MissedLookup { lookup_index } => {
                    e.u8(2);
                    e.u64(*lookup_index as u64);
                }
            }
        }
        Justification::ViaCompOrigin { origin, lemma_id } => {
            e.u8(4);
            match origin {
                CompOriginRef::Sender => e.u8(0),
                CompOriginRef::Lookup { index } => {
                    e.u8(1);
                    e.u64(*index as u64);
                }
            }
            e.opt_usize(*lemma_id);
        }
    }
}

fn dec_justification(d: &mut Dec) -> Option<Justification> {
    Some(match d.u8()? {
        0 => Justification::Refuted,
        1 => Justification::Witness { index: d.usize()? },
        2 => Justification::Invariant { inv_id: d.usize()? },
        3 => {
            let prior = match d.u8()? {
                0 => NegPrior::EmptyTrace,
                1 => NegPrior::Invariant { inv_id: d.usize()? },
                2 => NegPrior::MissedLookup {
                    lookup_index: d.usize()?,
                },
                _ => return None,
            };
            Justification::NoMatch { prior }
        }
        4 => {
            let origin = match d.u8()? {
                0 => CompOriginRef::Sender,
                1 => CompOriginRef::Lookup { index: d.usize()? },
                _ => return None,
            };
            let lemma_id = d.opt_usize()?;
            Justification::ViaCompOrigin { origin, lemma_id }
        }
        _ => return None,
    })
}

fn enc_path_cert(e: &mut Enc, p: &PathCert) {
    e.len(p.obligations.len());
    for (idx, j) in &p.obligations {
        e.u64(*idx as u64);
        enc_justification(e, j);
    }
}

fn dec_path_cert(d: &mut Dec) -> Option<PathCert> {
    let n = d.len()?;
    let mut obligations = Vec::with_capacity(n);
    for _ in 0..n {
        let idx = d.usize()?;
        let j = dec_justification(d)?;
        obligations.push((idx, j));
    }
    Some(PathCert { obligations })
}

fn enc_inv_path_just(e: &mut Enc, j: &InvPathJust) {
    match j {
        InvPathJust::GuardUnsat => e.u8(0),
        InvPathJust::Preserved => e.u8(1),
        InvPathJust::Witness { index } => {
            e.u8(2);
            e.u64(*index as u64);
        }
        InvPathJust::ViaInvariant { inv_id } => {
            e.u8(3);
            e.u64(*inv_id as u64);
        }
        InvPathJust::NegativeOk { prior } => {
            e.u8(4);
            match prior {
                NegPriorStep::Ih => e.u8(0),
                NegPriorStep::Invariant { inv_id } => {
                    e.u8(1);
                    e.u64(*inv_id as u64);
                }
                NegPriorStep::EmptyTrace => e.u8(2),
            }
        }
    }
}

fn dec_inv_path_just(d: &mut Dec) -> Option<InvPathJust> {
    Some(match d.u8()? {
        0 => InvPathJust::GuardUnsat,
        1 => InvPathJust::Preserved,
        2 => InvPathJust::Witness { index: d.usize()? },
        3 => InvPathJust::ViaInvariant { inv_id: d.usize()? },
        4 => {
            let prior = match d.u8()? {
                0 => NegPriorStep::Ih,
                1 => NegPriorStep::Invariant { inv_id: d.usize()? },
                2 => NegPriorStep::EmptyTrace,
                _ => return None,
            };
            InvPathJust::NegativeOk { prior }
        }
        _ => return None,
    })
}

fn enc_invariant(e: &mut Enc, inv: &InvariantCert) {
    e.len(inv.vars.len());
    for (name, ty) in &inv.vars {
        e.str(name);
        enc_ty(e, *ty);
    }
    enc_guard(e, &inv.guard);
    enc_action_pat(e, &inv.pattern);
    e.bool(inv.positive);
    e.len(inv.base.len());
    for j in &inv.base {
        enc_inv_path_just(e, j);
    }
    e.len(inv.cases.len());
    for c in &inv.cases {
        e.str(&c.ctype);
        e.str(&c.msg);
        e.bool(c.skipped);
        e.len(c.paths.len());
        for j in &c.paths {
            enc_inv_path_just(e, j);
        }
    }
}

fn dec_invariant(d: &mut Dec) -> Option<InvariantCert> {
    let nv = d.len()?;
    let mut vars = Vec::with_capacity(nv);
    for _ in 0..nv {
        let name = d.str()?;
        let ty = dec_ty(d)?;
        vars.push((name, ty));
    }
    let guard = dec_guard(d)?;
    let pattern = dec_action_pat(d)?;
    let positive = d.bool()?;
    let nb = d.len()?;
    let mut base = Vec::with_capacity(nb);
    for _ in 0..nb {
        base.push(dec_inv_path_just(d)?);
    }
    let nc = d.len()?;
    let mut cases = Vec::with_capacity(nc);
    for _ in 0..nc {
        let ctype = d.str()?;
        let msg = d.str()?;
        let skipped = d.bool()?;
        let np = d.len()?;
        let mut paths = Vec::with_capacity(np);
        for _ in 0..np {
            paths.push(dec_inv_path_just(d)?);
        }
        cases.push(InvCaseCert {
            ctype,
            msg,
            skipped,
            paths,
        });
    }
    Some(InvariantCert {
        vars,
        guard,
        pattern,
        positive,
        base,
        cases,
    })
}

fn enc_dep_set(e: &mut Enc, deps: &DepSet) {
    e.fp(deps.decls);
    e.fp(deps.property);
    e.fp(deps.ranges);
    e.len(deps.handlers.len());
    for (ctype, msg, fp) in &deps.handlers {
        e.str(ctype);
        e.str(msg);
        e.fp(*fp);
    }
    e.len(deps.syntactic_only.len());
    for (ctype, msg) in &deps.syntactic_only {
        e.str(ctype);
        e.str(msg);
    }
}

fn dec_dep_set(d: &mut Dec) -> Option<DepSet> {
    let decls = d.fp()?;
    let property = d.fp()?;
    let ranges = d.fp()?;
    let nh = d.len()?;
    let mut handlers = Vec::with_capacity(nh);
    for _ in 0..nh {
        let ctype = d.str()?;
        let msg = d.str()?;
        let fp = d.fp()?;
        handlers.push((ctype, msg, fp));
    }
    let ns = d.len()?;
    let mut syntactic_only = Vec::with_capacity(ns);
    for _ in 0..ns {
        let ctype = d.str()?;
        let msg = d.str()?;
        syntactic_only.push((ctype, msg));
    }
    Some(DepSet {
        decls,
        property,
        ranges,
        handlers,
        syntactic_only,
    })
}

fn enc_trace_cert(e: &mut Enc, t: &TraceCert) {
    e.str(&t.property);
    e.len(t.base.len());
    for p in &t.base {
        enc_path_cert(e, p);
    }
    e.len(t.cases.len());
    for c in &t.cases {
        e.str(&c.ctype);
        e.str(&c.msg);
        e.bool(c.skipped);
        e.len(c.paths.len());
        for p in &c.paths {
            enc_path_cert(e, p);
        }
    }
    e.len(t.invariants.len());
    for inv in &t.invariants {
        enc_invariant(e, inv);
    }
    e.len(t.lemmas.len());
    for lemma in &t.lemmas {
        e.len(lemma.vars.len());
        for (name, ty) in &lemma.vars {
            e.str(name);
            enc_ty(e, *ty);
        }
        enc_action_pat(e, &lemma.a);
        enc_action_pat(e, &lemma.b);
        enc_trace_cert(e, &lemma.cert);
    }
    enc_dep_set(e, &t.deps);
}

fn dec_trace_cert(d: &mut Dec) -> Option<TraceCert> {
    let property = d.str()?;
    let nb = d.len()?;
    let mut base = Vec::with_capacity(nb);
    for _ in 0..nb {
        base.push(dec_path_cert(d)?);
    }
    let nc = d.len()?;
    let mut cases = Vec::with_capacity(nc);
    for _ in 0..nc {
        let ctype = d.str()?;
        let msg = d.str()?;
        let skipped = d.bool()?;
        let np = d.len()?;
        let mut paths = Vec::with_capacity(np);
        for _ in 0..np {
            paths.push(dec_path_cert(d)?);
        }
        cases.push(CaseCert {
            ctype,
            msg,
            skipped,
            paths,
        });
    }
    let ni = d.len()?;
    let mut invariants = Vec::with_capacity(ni);
    for _ in 0..ni {
        invariants.push(dec_invariant(d)?);
    }
    let nl = d.len()?;
    let mut lemmas = Vec::with_capacity(nl);
    for _ in 0..nl {
        let nv = d.len()?;
        let mut vars = Vec::with_capacity(nv);
        for _ in 0..nv {
            let name = d.str()?;
            let ty = dec_ty(d)?;
            vars.push((name, ty));
        }
        let a = dec_action_pat(d)?;
        let b = dec_action_pat(d)?;
        let cert = dec_trace_cert(d)?;
        lemmas.push(LemmaCert { vars, a, b, cert });
    }
    let deps = dec_dep_set(d)?;
    Some(TraceCert {
        property,
        base,
        cases,
        invariants,
        lemmas,
        deps,
    })
}

fn enc_certificate(e: &mut Enc, cert: &Certificate) {
    match cert {
        Certificate::Trace(t) => {
            e.u8(0);
            enc_trace_cert(e, t);
        }
        Certificate::NonInterference(n) => {
            e.u8(1);
            e.str(&n.property);
            e.len(n.cases.len());
            for c in &n.cases {
                e.str(&c.ctype);
                e.str(&c.msg);
                e.opt_usize(c.low_paths);
                e.opt_usize(c.high_paths);
            }
            enc_dep_set(e, &n.deps);
        }
    }
}

fn dec_certificate(d: &mut Dec) -> Option<Certificate> {
    Some(match d.u8()? {
        0 => Certificate::Trace(dec_trace_cert(d)?),
        1 => {
            let property = d.str()?;
            let nc = d.len()?;
            let mut cases = Vec::with_capacity(nc);
            for _ in 0..nc {
                let ctype = d.str()?;
                let msg = d.str()?;
                let low_paths = d.opt_usize()?;
                let high_paths = d.opt_usize()?;
                cases.push(NiCaseCert {
                    ctype,
                    msg,
                    low_paths,
                    high_paths,
                });
            }
            let deps = dec_dep_set(d)?;
            Certificate::NonInterference(NiCert {
                property,
                cases,
                deps,
            })
        }
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Round-trips a certificate through the binary codec in memory.
    fn round_trip(cert: &Certificate) -> Certificate {
        let mut e = Enc::new();
        enc_certificate(&mut e, cert);
        let mut d = Dec::new(&e.buf);
        let back = dec_certificate(&mut d).expect("decodes");
        d.finish().expect("fully consumed");
        back
    }

    #[test]
    fn certificates_round_trip_bit_exactly() {
        let checked = reflex_kernels::ssh::checked();
        let options = ProverOptions::default();
        for (name, outcome) in crate::prove_all(&checked, &options) {
            let cert = outcome.certificate().expect("proved");
            assert_eq!(&round_trip(cert), cert, "{name}");
        }
    }

    #[test]
    fn truncated_and_corrupt_payloads_are_misses() {
        let checked = reflex_kernels::car::checked();
        let options = ProverOptions::default();
        let (_, outcome) = crate::prove_all(&checked, &options).remove(0);
        let cert = outcome.certificate().expect("proved").clone();
        let mut e = Enc::new();
        enc_certificate(&mut e, &cert);
        // Every truncation point fails to decode (or fails `finish`).
        for cut in 0..e.buf.len() {
            let mut d = Dec::new(&e.buf[..cut]);
            let ok = dec_certificate(&mut d).is_some() && d.finish().is_some();
            assert!(!ok, "truncation at {cut} must be a miss");
        }
        // Trailing garbage is rejected by `finish`.
        let mut padded = e.buf.clone();
        padded.push(0);
        let mut d = Dec::new(&padded);
        let _ = dec_certificate(&mut d);
        assert!(d.finish().is_none());
    }
}
